# Empty dependencies file for bench_link_failures.
# This may be replaced when dependencies are built.
