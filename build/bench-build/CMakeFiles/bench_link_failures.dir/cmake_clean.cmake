file(REMOVE_RECURSE
  "../bench/bench_link_failures"
  "../bench/bench_link_failures.pdb"
  "CMakeFiles/bench_link_failures.dir/bench_link_failures.cpp.o"
  "CMakeFiles/bench_link_failures.dir/bench_link_failures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
