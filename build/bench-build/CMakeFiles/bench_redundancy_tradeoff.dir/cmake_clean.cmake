file(REMOVE_RECURSE
  "../bench/bench_redundancy_tradeoff"
  "../bench/bench_redundancy_tradeoff.pdb"
  "CMakeFiles/bench_redundancy_tradeoff.dir/bench_redundancy_tradeoff.cpp.o"
  "CMakeFiles/bench_redundancy_tradeoff.dir/bench_redundancy_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redundancy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
