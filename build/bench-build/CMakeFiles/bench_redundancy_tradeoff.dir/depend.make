# Empty dependencies file for bench_redundancy_tradeoff.
# This may be replaced when dependencies are built.
