file(REMOVE_RECURSE
  "../bench/bench_fig23_transient"
  "../bench/bench_fig23_transient.pdb"
  "CMakeFiles/bench_fig23_transient.dir/bench_fig23_transient.cpp.o"
  "CMakeFiles/bench_fig23_transient.dir/bench_fig23_transient.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
