# Empty compiler generated dependencies file for bench_fig23_transient.
# This may be replaced when dependencies are built.
