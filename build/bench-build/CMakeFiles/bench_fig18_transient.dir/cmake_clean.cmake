file(REMOVE_RECURSE
  "../bench/bench_fig18_transient"
  "../bench/bench_fig18_transient.pdb"
  "CMakeFiles/bench_fig18_transient.dir/bench_fig18_transient.cpp.o"
  "CMakeFiles/bench_fig18_transient.dir/bench_fig18_transient.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
