# Empty dependencies file for bench_fig18_transient.
# This may be replaced when dependencies are built.
