# Empty dependencies file for bench_faulty_timing.
# This may be replaced when dependencies are built.
