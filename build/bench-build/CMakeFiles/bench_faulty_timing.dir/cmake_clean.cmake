file(REMOVE_RECURSE
  "../bench/bench_faulty_timing"
  "../bench/bench_faulty_timing.pdb"
  "CMakeFiles/bench_faulty_timing.dir/bench_faulty_timing.cpp.o"
  "CMakeFiles/bench_faulty_timing.dir/bench_faulty_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_faulty_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
