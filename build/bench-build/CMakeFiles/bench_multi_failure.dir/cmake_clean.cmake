file(REMOVE_RECURSE
  "../bench/bench_multi_failure"
  "../bench/bench_multi_failure.pdb"
  "CMakeFiles/bench_multi_failure.dir/bench_multi_failure.cpp.o"
  "CMakeFiles/bench_multi_failure.dir/bench_multi_failure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
