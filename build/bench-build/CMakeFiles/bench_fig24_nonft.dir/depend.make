# Empty dependencies file for bench_fig24_nonft.
# This may be replaced when dependencies are built.
