file(REMOVE_RECURSE
  "../bench/bench_fig24_nonft"
  "../bench/bench_fig24_nonft.pdb"
  "CMakeFiles/bench_fig24_nonft.dir/bench_fig24_nonft.cpp.o"
  "CMakeFiles/bench_fig24_nonft.dir/bench_fig24_nonft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_nonft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
