file(REMOVE_RECURSE
  "../bench/bench_bus_vs_p2p"
  "../bench/bench_bus_vs_p2p.pdb"
  "CMakeFiles/bench_bus_vs_p2p.dir/bench_bus_vs_p2p.cpp.o"
  "CMakeFiles/bench_bus_vs_p2p.dir/bench_bus_vs_p2p.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_vs_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
