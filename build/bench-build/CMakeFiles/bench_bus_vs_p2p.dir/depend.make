# Empty dependencies file for bench_bus_vs_p2p.
# This may be replaced when dependencies are built.
