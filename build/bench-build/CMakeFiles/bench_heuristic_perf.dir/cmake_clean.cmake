file(REMOVE_RECURSE
  "../bench/bench_heuristic_perf"
  "../bench/bench_heuristic_perf.pdb"
  "CMakeFiles/bench_heuristic_perf.dir/bench_heuristic_perf.cpp.o"
  "CMakeFiles/bench_heuristic_perf.dir/bench_heuristic_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
