# Empty compiler generated dependencies file for bench_heuristic_perf.
# This may be replaced when dependencies are built.
