file(REMOVE_RECURSE
  "../bench/bench_reliability"
  "../bench/bench_reliability.pdb"
  "CMakeFiles/bench_reliability.dir/bench_reliability.cpp.o"
  "CMakeFiles/bench_reliability.dir/bench_reliability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
