file(REMOVE_RECURSE
  "../bench/bench_fig19_nonft"
  "../bench/bench_fig19_nonft.pdb"
  "CMakeFiles/bench_fig19_nonft.dir/bench_fig19_nonft.cpp.o"
  "CMakeFiles/bench_fig19_nonft.dir/bench_fig19_nonft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_nonft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
