file(REMOVE_RECURSE
  "../bench/bench_fig17_solution1"
  "../bench/bench_fig17_solution1.pdb"
  "CMakeFiles/bench_fig17_solution1.dir/bench_fig17_solution1.cpp.o"
  "CMakeFiles/bench_fig17_solution1.dir/bench_fig17_solution1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_solution1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
