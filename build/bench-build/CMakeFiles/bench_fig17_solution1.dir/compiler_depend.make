# Empty compiler generated dependencies file for bench_fig17_solution1.
# This may be replaced when dependencies are built.
