file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched/gantt_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/gantt_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/heuristics_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/heuristics_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/metrics_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/metrics_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/paper_examples_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/paper_examples_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/pressure_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/pressure_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/schedule_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/schedule_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/timeouts_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/timeouts_test.cpp.o.d"
  "CMakeFiles/sched_test.dir/sched/validate_test.cpp.o"
  "CMakeFiles/sched_test.dir/sched/validate_test.cpp.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
