
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/error_test.cpp" "tests/CMakeFiles/core_test.dir/core/error_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/error_test.cpp.o.d"
  "/root/repo/tests/core/ids_test.cpp" "tests/CMakeFiles/core_test.dir/core/ids_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ids_test.cpp.o.d"
  "/root/repo/tests/core/text_test.cpp" "tests/CMakeFiles/core_test.dir/core/text_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/text_test.cpp.o.d"
  "/root/repo/tests/core/time_test.cpp" "tests/CMakeFiles/core_test.dir/core/time_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ftsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ftsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ftsched_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ftsched_io.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/ftsched_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ftsched_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ftsched_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftsched_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
