# Empty dependencies file for dataflow_compiler.
# This may be replaced when dependencies are built.
