file(REMOVE_RECURSE
  "CMakeFiles/dataflow_compiler.dir/dataflow_compiler.cpp.o"
  "CMakeFiles/dataflow_compiler.dir/dataflow_compiler.cpp.o.d"
  "dataflow_compiler"
  "dataflow_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
