# Empty dependencies file for avionics_p2p.
# This may be replaced when dependencies are built.
