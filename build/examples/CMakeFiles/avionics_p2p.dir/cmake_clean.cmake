file(REMOVE_RECURSE
  "CMakeFiles/avionics_p2p.dir/avionics_p2p.cpp.o"
  "CMakeFiles/avionics_p2p.dir/avionics_p2p.cpp.o.d"
  "avionics_p2p"
  "avionics_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avionics_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
