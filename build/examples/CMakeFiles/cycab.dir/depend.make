# Empty dependencies file for cycab.
# This may be replaced when dependencies are built.
