file(REMOVE_RECURSE
  "CMakeFiles/cycab.dir/cycab.cpp.o"
  "CMakeFiles/cycab.dir/cycab.cpp.o.d"
  "cycab"
  "cycab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
