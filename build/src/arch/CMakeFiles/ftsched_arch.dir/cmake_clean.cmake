file(REMOVE_RECURSE
  "CMakeFiles/ftsched_arch.dir/architecture_graph.cpp.o"
  "CMakeFiles/ftsched_arch.dir/architecture_graph.cpp.o.d"
  "CMakeFiles/ftsched_arch.dir/characteristics.cpp.o"
  "CMakeFiles/ftsched_arch.dir/characteristics.cpp.o.d"
  "CMakeFiles/ftsched_arch.dir/routing.cpp.o"
  "CMakeFiles/ftsched_arch.dir/routing.cpp.o.d"
  "CMakeFiles/ftsched_arch.dir/topologies.cpp.o"
  "CMakeFiles/ftsched_arch.dir/topologies.cpp.o.d"
  "libftsched_arch.a"
  "libftsched_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
