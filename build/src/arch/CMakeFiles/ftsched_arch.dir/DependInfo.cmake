
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/architecture_graph.cpp" "src/arch/CMakeFiles/ftsched_arch.dir/architecture_graph.cpp.o" "gcc" "src/arch/CMakeFiles/ftsched_arch.dir/architecture_graph.cpp.o.d"
  "/root/repo/src/arch/characteristics.cpp" "src/arch/CMakeFiles/ftsched_arch.dir/characteristics.cpp.o" "gcc" "src/arch/CMakeFiles/ftsched_arch.dir/characteristics.cpp.o.d"
  "/root/repo/src/arch/routing.cpp" "src/arch/CMakeFiles/ftsched_arch.dir/routing.cpp.o" "gcc" "src/arch/CMakeFiles/ftsched_arch.dir/routing.cpp.o.d"
  "/root/repo/src/arch/topologies.cpp" "src/arch/CMakeFiles/ftsched_arch.dir/topologies.cpp.o" "gcc" "src/arch/CMakeFiles/ftsched_arch.dir/topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ftsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftsched_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
