# Empty compiler generated dependencies file for ftsched_arch.
# This may be replaced when dependencies are built.
