file(REMOVE_RECURSE
  "libftsched_arch.a"
)
