# Empty dependencies file for ftsched_graph.
# This may be replaced when dependencies are built.
