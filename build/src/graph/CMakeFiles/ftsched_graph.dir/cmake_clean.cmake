file(REMOVE_RECURSE
  "CMakeFiles/ftsched_graph.dir/algorithm_graph.cpp.o"
  "CMakeFiles/ftsched_graph.dir/algorithm_graph.cpp.o.d"
  "CMakeFiles/ftsched_graph.dir/dot.cpp.o"
  "CMakeFiles/ftsched_graph.dir/dot.cpp.o.d"
  "CMakeFiles/ftsched_graph.dir/operation.cpp.o"
  "CMakeFiles/ftsched_graph.dir/operation.cpp.o.d"
  "libftsched_graph.a"
  "libftsched_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
