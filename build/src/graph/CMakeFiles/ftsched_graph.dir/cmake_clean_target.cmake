file(REMOVE_RECURSE
  "libftsched_graph.a"
)
