# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("graph")
subdirs("arch")
subdirs("sched")
subdirs("workload")
subdirs("io")
subdirs("tuning")
subdirs("lang")
subdirs("exec")
subdirs("sim")
