file(REMOVE_RECURSE
  "libftsched_exec.a"
)
