file(REMOVE_RECURSE
  "CMakeFiles/ftsched_exec.dir/codegen.cpp.o"
  "CMakeFiles/ftsched_exec.dir/codegen.cpp.o.d"
  "libftsched_exec.a"
  "libftsched_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
