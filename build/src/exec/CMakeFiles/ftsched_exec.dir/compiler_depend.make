# Empty compiler generated dependencies file for ftsched_exec.
# This may be replaced when dependencies are built.
