# Empty dependencies file for ftsched_sched.
# This may be replaced when dependencies are built.
