file(REMOVE_RECURSE
  "libftsched_sched.a"
)
