file(REMOVE_RECURSE
  "CMakeFiles/ftsched_sched.dir/gantt.cpp.o"
  "CMakeFiles/ftsched_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/ftsched_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/ftsched_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/ftsched_sched.dir/metrics.cpp.o"
  "CMakeFiles/ftsched_sched.dir/metrics.cpp.o.d"
  "CMakeFiles/ftsched_sched.dir/pressure.cpp.o"
  "CMakeFiles/ftsched_sched.dir/pressure.cpp.o.d"
  "CMakeFiles/ftsched_sched.dir/schedule.cpp.o"
  "CMakeFiles/ftsched_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/ftsched_sched.dir/timeouts.cpp.o"
  "CMakeFiles/ftsched_sched.dir/timeouts.cpp.o.d"
  "CMakeFiles/ftsched_sched.dir/validate.cpp.o"
  "CMakeFiles/ftsched_sched.dir/validate.cpp.o.d"
  "libftsched_sched.a"
  "libftsched_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
