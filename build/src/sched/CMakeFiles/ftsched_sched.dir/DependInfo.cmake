
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/gantt.cpp" "src/sched/CMakeFiles/ftsched_sched.dir/gantt.cpp.o" "gcc" "src/sched/CMakeFiles/ftsched_sched.dir/gantt.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/ftsched_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ftsched_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/metrics.cpp" "src/sched/CMakeFiles/ftsched_sched.dir/metrics.cpp.o" "gcc" "src/sched/CMakeFiles/ftsched_sched.dir/metrics.cpp.o.d"
  "/root/repo/src/sched/pressure.cpp" "src/sched/CMakeFiles/ftsched_sched.dir/pressure.cpp.o" "gcc" "src/sched/CMakeFiles/ftsched_sched.dir/pressure.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/ftsched_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/ftsched_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/timeouts.cpp" "src/sched/CMakeFiles/ftsched_sched.dir/timeouts.cpp.o" "gcc" "src/sched/CMakeFiles/ftsched_sched.dir/timeouts.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/sched/CMakeFiles/ftsched_sched.dir/validate.cpp.o" "gcc" "src/sched/CMakeFiles/ftsched_sched.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/ftsched_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftsched_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
