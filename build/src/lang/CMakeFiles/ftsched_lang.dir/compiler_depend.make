# Empty compiler generated dependencies file for ftsched_lang.
# This may be replaced when dependencies are built.
