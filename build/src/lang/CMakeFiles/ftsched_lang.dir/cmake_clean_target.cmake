file(REMOVE_RECURSE
  "libftsched_lang.a"
)
