file(REMOVE_RECURSE
  "CMakeFiles/ftsched_lang.dir/compiler.cpp.o"
  "CMakeFiles/ftsched_lang.dir/compiler.cpp.o.d"
  "libftsched_lang.a"
  "libftsched_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
