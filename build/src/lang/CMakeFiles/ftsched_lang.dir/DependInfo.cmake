
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/compiler.cpp" "src/lang/CMakeFiles/ftsched_lang.dir/compiler.cpp.o" "gcc" "src/lang/CMakeFiles/ftsched_lang.dir/compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ftsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftsched_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
