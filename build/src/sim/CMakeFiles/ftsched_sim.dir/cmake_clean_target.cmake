file(REMOVE_RECURSE
  "libftsched_sim.a"
)
