file(REMOVE_RECURSE
  "CMakeFiles/ftsched_sim.dir/failure.cpp.o"
  "CMakeFiles/ftsched_sim.dir/failure.cpp.o.d"
  "CMakeFiles/ftsched_sim.dir/mission.cpp.o"
  "CMakeFiles/ftsched_sim.dir/mission.cpp.o.d"
  "CMakeFiles/ftsched_sim.dir/reliability.cpp.o"
  "CMakeFiles/ftsched_sim.dir/reliability.cpp.o.d"
  "CMakeFiles/ftsched_sim.dir/simulator.cpp.o"
  "CMakeFiles/ftsched_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ftsched_sim.dir/trace.cpp.o"
  "CMakeFiles/ftsched_sim.dir/trace.cpp.o.d"
  "libftsched_sim.a"
  "libftsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
