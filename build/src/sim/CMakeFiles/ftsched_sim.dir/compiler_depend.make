# Empty compiler generated dependencies file for ftsched_sim.
# This may be replaced when dependencies are built.
