
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/failure.cpp" "src/sim/CMakeFiles/ftsched_sim.dir/failure.cpp.o" "gcc" "src/sim/CMakeFiles/ftsched_sim.dir/failure.cpp.o.d"
  "/root/repo/src/sim/mission.cpp" "src/sim/CMakeFiles/ftsched_sim.dir/mission.cpp.o" "gcc" "src/sim/CMakeFiles/ftsched_sim.dir/mission.cpp.o.d"
  "/root/repo/src/sim/reliability.cpp" "src/sim/CMakeFiles/ftsched_sim.dir/reliability.cpp.o" "gcc" "src/sim/CMakeFiles/ftsched_sim.dir/reliability.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ftsched_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ftsched_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/ftsched_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/ftsched_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/ftsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ftsched_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftsched_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
