file(REMOVE_RECURSE
  "libftsched_core.a"
)
