file(REMOVE_RECURSE
  "CMakeFiles/ftsched_core.dir/error.cpp.o"
  "CMakeFiles/ftsched_core.dir/error.cpp.o.d"
  "CMakeFiles/ftsched_core.dir/text.cpp.o"
  "CMakeFiles/ftsched_core.dir/text.cpp.o.d"
  "CMakeFiles/ftsched_core.dir/time.cpp.o"
  "CMakeFiles/ftsched_core.dir/time.cpp.o.d"
  "libftsched_core.a"
  "libftsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
