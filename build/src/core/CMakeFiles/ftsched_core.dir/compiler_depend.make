# Empty compiler generated dependencies file for ftsched_core.
# This may be replaced when dependencies are built.
