file(REMOVE_RECURSE
  "libftsched_tuning.a"
)
