# Empty dependencies file for ftsched_tuning.
# This may be replaced when dependencies are built.
