file(REMOVE_RECURSE
  "CMakeFiles/ftsched_tuning.dir/hybrid.cpp.o"
  "CMakeFiles/ftsched_tuning.dir/hybrid.cpp.o.d"
  "CMakeFiles/ftsched_tuning.dir/transient_analysis.cpp.o"
  "CMakeFiles/ftsched_tuning.dir/transient_analysis.cpp.o.d"
  "libftsched_tuning.a"
  "libftsched_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
