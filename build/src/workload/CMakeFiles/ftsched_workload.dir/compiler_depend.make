# Empty compiler generated dependencies file for ftsched_workload.
# This may be replaced when dependencies are built.
