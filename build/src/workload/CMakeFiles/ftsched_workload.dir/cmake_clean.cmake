file(REMOVE_RECURSE
  "CMakeFiles/ftsched_workload.dir/paper_examples.cpp.o"
  "CMakeFiles/ftsched_workload.dir/paper_examples.cpp.o.d"
  "CMakeFiles/ftsched_workload.dir/random_arch.cpp.o"
  "CMakeFiles/ftsched_workload.dir/random_arch.cpp.o.d"
  "CMakeFiles/ftsched_workload.dir/random_dag.cpp.o"
  "CMakeFiles/ftsched_workload.dir/random_dag.cpp.o.d"
  "CMakeFiles/ftsched_workload.dir/shapes.cpp.o"
  "CMakeFiles/ftsched_workload.dir/shapes.cpp.o.d"
  "libftsched_workload.a"
  "libftsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
