
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/paper_examples.cpp" "src/workload/CMakeFiles/ftsched_workload.dir/paper_examples.cpp.o" "gcc" "src/workload/CMakeFiles/ftsched_workload.dir/paper_examples.cpp.o.d"
  "/root/repo/src/workload/random_arch.cpp" "src/workload/CMakeFiles/ftsched_workload.dir/random_arch.cpp.o" "gcc" "src/workload/CMakeFiles/ftsched_workload.dir/random_arch.cpp.o.d"
  "/root/repo/src/workload/random_dag.cpp" "src/workload/CMakeFiles/ftsched_workload.dir/random_dag.cpp.o" "gcc" "src/workload/CMakeFiles/ftsched_workload.dir/random_dag.cpp.o.d"
  "/root/repo/src/workload/shapes.cpp" "src/workload/CMakeFiles/ftsched_workload.dir/shapes.cpp.o" "gcc" "src/workload/CMakeFiles/ftsched_workload.dir/shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/ftsched_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftsched_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
