file(REMOVE_RECURSE
  "libftsched_workload.a"
)
