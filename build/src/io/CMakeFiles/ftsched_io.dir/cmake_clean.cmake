file(REMOVE_RECURSE
  "CMakeFiles/ftsched_io.dir/problem_format.cpp.o"
  "CMakeFiles/ftsched_io.dir/problem_format.cpp.o.d"
  "CMakeFiles/ftsched_io.dir/schedule_export.cpp.o"
  "CMakeFiles/ftsched_io.dir/schedule_export.cpp.o.d"
  "libftsched_io.a"
  "libftsched_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftsched_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
