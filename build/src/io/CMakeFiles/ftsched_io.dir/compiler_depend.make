# Empty compiler generated dependencies file for ftsched_io.
# This may be replaced when dependencies are built.
