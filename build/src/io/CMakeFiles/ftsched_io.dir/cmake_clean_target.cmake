file(REMOVE_RECURSE
  "libftsched_io.a"
)
