// Discrete-event simulator of a static distributed schedule under fail-stop
// processor failures — the runtime half of AAA (§4.1 step 2 generates an
// executive; this simulator executes its semantics).
//
// Faithful behaviours:
//  * each computation unit runs its replicas in static order, a replica
//    starting once all its input values are in local memory;
//  * each link serves transfers one at a time (the bus arbiter of §4.3);
//    statically scheduled transfers are served in schedule order, transfers
//    created at runtime (solution-1 backup sends) queue behind ready ones;
//  * a bus transfer is observed by every attached processor (broadcast,
//    §6.1 item 1); point-to-point transfers store-and-forward along the
//    static route (§5.5 item 2);
//  * a failed processor halts mid-operation, its in-flight transfers are
//    lost, and it never sends again (§5.1 fail-stop);
//  * under solution 1, every waiting processor watches the producer's
//    replicas in election order with the static deadlines of the
//    TimeoutTable; an expired deadline sets the local fail flag (Figure 10)
//    and a backup whose whole watch chain expired sends the value itself
//    (Figure 12). Late messages are still accepted — a detection mistake
//    causes at most an unnecessary send (§6.1 item 3);
//  * under solution 2 (and the baseline) there are no timeouts: all
//    scheduled transfers fire, receivers keep the first arrival and discard
//    later ones (§7.1).
//
// Processors listed in FailureScenario::failed_at_start are dead AND known
// dead by everyone (fail flags pre-set), which is the paper's "subsequent
// iteration" regime; processors in FailureScenario::events crash mid-run,
// giving the "transient iteration".
//
// Forking: per-run state lives in a snapshotable sim_detail::SimState, so a
// shared prefix (typically the failure-free run up to a crash instant) is
// simulated once, then forked per failure branch — the engine behind the
// exhaustive K-failure certifier (campaign/certify.hpp). A branch advanced
// to t and given the remaining faults by inject() produces a bit-identical
// IterationResult to a from-scratch run() of the whole scenario
// (tests/sim/fork_equivalence_test.cpp pins this).
#pragma once

#include <memory>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/timeouts.hpp"
#include "sim/event_queue.hpp"
#include "sim/failure.hpp"
#include "sim/trace.hpp"

namespace ftsched {

/// Run-independent simulator knobs.
struct SimOptions {
  /// Event-queue implementation. kAuto selects the calendar queue for
  /// plans dense enough (expected events over the schedule horizon) for
  /// bucketing to pay off, else the binary heap. Every kind produces
  /// bit-identical results — events are totally ordered by
  /// (time, kind, push order), so the pop sequence is unique.
  EventSchedulerKind scheduler = EventSchedulerKind::kAuto;
};

/// Canonical 128-bit digest of a paused run's live state — the memo key of
/// the certification pruning layer (campaign/certify). Two branches with
/// equal digests are (with ~2^-128 collision probability) behaviourally
/// identical: every future event, every certifier candidate instant, and
/// the finished verdict coincide. See Simulator::branch_digest for what is
/// hashed and what is provably excluded.
struct StateDigest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  /// True when a non-identity victim relabeling produced the canonical
  /// form — consumers that replay labeled artifacts (counterexample
  /// records) must not trust label equality across such a match.
  bool relabeled = false;

  friend bool operator==(const StateDigest& a, const StateDigest& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct DigestOptions {
  /// Include each silent window's response-allowance contribution (the
  /// tight per-window deferral bound) in the hash. Required whenever the
  /// consumer's verdict depends on the response envelope; a sweep with an
  /// infinite response bound can drop it and collapse harder.
  bool with_allowance = true;
  /// Interchangeable-processor classes (each a sorted list of processor
  /// indices, only non-singleton classes listed): members must be
  /// schedule-automorphic — no scheduled operation, no static transfer
  /// involvement, identical link incidence — so any permutation within a
  /// class is a behaviour-preserving relabeling. The digest canonicalizes
  /// by sorting class members on their own state slice, making it
  /// invariant to victim identity relabeling within a class. Null = no
  /// relabeling (exact identity). See campaign::automorphism_classes.
  const std::vector<std::vector<std::uint32_t>>* proc_classes = nullptr;
};

struct IterationResult {
  Trace trace;
  /// Events the producing run dispatched itself — NOT counting the shared
  /// prefix it was forked from (Branch::fork resets the counter). For a
  /// from-scratch run() this is the whole iteration's event count; for a
  /// forked branch it is the marginal simulation work the branch cost,
  /// which is exactly what prefix sharing (and the certifier's replay
  /// cache) saves.
  std::size_t events_executed = 0;
  /// True when every extio output of the algorithm was executed by at least
  /// one processor alive at the end of the iteration.
  bool all_outputs_produced = false;
  /// max over extio outputs of the earliest completion on a processor alive
  /// at the end of the iteration; kInfinite when an output is missing.
  Time response_time = kInfinite;
  /// Processors each healthy processor has flagged faulty by iteration end,
  /// merged (feed these into the next iteration's failed_at_start).
  std::vector<ProcessorId> detected_failures;
  /// Tight response allowance earned by the scenario's silent windows: the
  /// max over windows of (window.to - first instant the window actually
  /// blocked a send attempt), 0 for a window that never deferred anything.
  /// Always <= the window length, so bounds checked against it are at
  /// least as strict as the historical uniform length allowance.
  Time silence_deferral = 0;
  /// Earliest kOpEnd instant per graph operation (indexed by
  /// OperationId::index), kInfinite for an operation no live processor
  /// completed. The per-chain latency oracle (campaign/oracle.hpp) derives
  /// every LatencyConstraint verdict from this table; response_time is its
  /// extio-output projection.
  std::vector<Time> op_completions;
};

/// The trace-free digest of one iteration: everything the mission runner
/// (and through it the campaign oracle) consumes, without materializing a
/// Trace. Produced by Simulator::run_summary; field for field equal to
/// what the same scenario's IterationResult derives
/// (tests/sim/summary_equiv_test.cpp pins this).
struct IterationSummary {
  bool all_outputs_produced = false;
  Time response_time = kInfinite;
  std::size_t events_executed = 0;
  /// Trace-event counts: kTimeout / kElection / kTransferStart.
  std::size_t timeouts = 0;
  std::size_t elections = 0;
  std::size_t transfer_starts = 0;
  /// See IterationResult::detected_failures.
  std::vector<ProcessorId> detected_failures;
  /// See IterationResult::silence_deferral.
  Time silence_deferral = 0;
  /// See IterationResult::op_completions.
  std::vector<Time> op_completions;
};

namespace sim_detail {
struct SimPlan;
struct SimState;
}  // namespace sim_detail

class Simulator {
 public:
  /// The schedule must outlive the simulator.
  explicit Simulator(const Schedule& schedule, SimOptions options = {});
  ~Simulator();

  /// Simulates one iteration under `scenario`. Deterministic.
  [[nodiscard]] IterationResult run(const FailureScenario& scenario) const;

  /// Convenience: failure-free run.
  [[nodiscard]] IterationResult run() const { return run({}); }

  /// Reusable run state for the batched summary path: one Scratch per
  /// worker amortizes every per-run allocation (state tables, event queue,
  /// scenario buffers) across a whole campaign chunk — run_summary resets
  /// the arena without releasing its storage. Default-constructed empty;
  /// lazily sized on first use. Move-only, cheap to hold.
  class Scratch {
   public:
    Scratch();
    Scratch(Scratch&&) noexcept;
    Scratch& operator=(Scratch&&) noexcept;
    ~Scratch();

   private:
    friend class Simulator;
    std::unique_ptr<sim_detail::SimState> state_;
  };

  /// Simulates one iteration under `scenario` without recording a trace,
  /// accumulating the digest directly into `out` (cleared first). Reuses
  /// `scratch`'s storage. Deterministic, and summary-equivalent to run():
  /// same event sequence, same digest values.
  void run_summary(const FailureScenario& scenario, Scratch& scratch,
                   IterationSummary& out) const;

  /// A paused, snapshotable simulation owned by the Simulator that created
  /// it: the (partially failed) prefix of one iteration. fork() deep-copies
  /// the run state — flat POD tables, no re-simulation — so a certifier
  /// explores a tree of failure branches while paying for each shared
  /// prefix once. Move-only; forked copies are independent.
  class Branch {
   public:
    Branch(Branch&&) noexcept;
    Branch& operator=(Branch&&) noexcept;
    ~Branch();

    /// Deep copy of the paused state. O(state size); no event is replayed.
    /// The copy's event counter restarts at zero: work executed after the
    /// fork is attributed to the fork, the shared prefix to its parent
    /// (branch-reuse accounting; see IterationResult::events_executed).
    [[nodiscard]] Branch fork() const;

    /// Earliest pending event instant; kInfinite when the queue drained.
    [[nodiscard]] Time frontier() const;

    /// Events this branch dispatched itself since it was begun or forked.
    [[nodiscard]] std::size_t executed_events() const;

   private:
    friend class Simulator;
    explicit Branch(std::unique_ptr<sim_detail::SimState> state);
    std::unique_ptr<sim_detail::SimState> state_;
  };

  /// A paused run with `scenario`'s whole start state applied (dead / dead
  /// links / suspects / silent windows / queued mid-run events) and nothing
  /// executed yet.
  [[nodiscard]] Branch begin(const FailureScenario& scenario = {}) const;

  /// Executes every pending instant strictly before `t` (epsilon-strict, so
  /// an event within kTimeEpsilon of `t` stays pending). After this, faults
  /// at times >= t can still be injected.
  void advance_until(Branch& branch, Time t) const;

  /// Injects a mid-run fault into a paused branch. The fault instant (a
  /// silent window's opening edge) must lie strictly after the last
  /// executed instant (inject before advance_until passes it); violating
  /// that throws std::invalid_argument. All three overloads carry the
  /// fork-equivalence guarantee: advance + inject + finish is bit-identical
  /// to a from-scratch run() with the fault in the scenario.
  void inject(Branch& branch, const FailureEvent& failure) const;
  void inject(Branch& branch, const LinkFailureEvent& failure) const;
  void inject(Branch& branch, const SilentWindow& window) const;

  /// Runs the branch to completion, consuming it.
  [[nodiscard]] IterationResult finish(Branch branch) const;

  /// Canonical digest of the branch's paused state. Hashes exactly the
  /// state a future observer can distinguish: per-processor liveness /
  /// busy / program counters / fail flags, link liveness & occupancy,
  /// static transfer progress, dynamic transfers (payload, destination,
  /// remaining route), watcher progress, delivered/certified value
  /// tables, pending non-derivable events (time, kind, subject — pop
  /// order below the frontier is already spent), canonicalized silent
  /// windows, earliest completion per output op, and the date of the most
  /// recent recorded trace event (it seeds the certifier's candidate
  /// grid). Deliberately excluded because they are derivable or
  /// observationally dead: the trace itself, queue push sequence numbers,
  /// executed-event counters, the execution frontier, wake-dedup stamps
  /// (tr_wake / w_sched) and their kDeadline queue entries, and intrusive
  /// active-list membership. Stable across EventQueue scheduler kinds and
  /// across fork/replay construction of the same state.
  [[nodiscard]] StateDigest branch_digest(const Branch& branch,
                                          const DigestOptions& options = {})
      const;

  /// The schedule this simulator executes.
  [[nodiscard]] const Schedule& schedule() const noexcept {
    return *schedule_;
  }

 private:
  const Schedule* schedule_;
  SimOptions options_;
  RoutingTable routing_;
  TimeoutTable timeouts_;
  /// Scenario-independent run state (per-processor programs, static
  /// transfer templates with their routes and slots, watcher templates),
  /// derived from the schedule once so that each run() — and each fork — is
  /// a cheap copy of flat runtime tables instead of a re-derivation.
  std::unique_ptr<const sim_detail::SimPlan> plan_;
};

}  // namespace ftsched
