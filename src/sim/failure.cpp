#include "sim/failure.hpp"

namespace ftsched {

std::vector<std::vector<ProcessorId>> failure_subsets(
    std::size_t processors, std::size_t max_failures) {
  std::vector<std::vector<ProcessorId>> result;
  const std::size_t total = std::size_t{1} << processors;
  for (std::size_t mask = 1; mask < total; ++mask) {
    std::vector<ProcessorId> subset;
    for (std::size_t p = 0; p < processors; ++p) {
      if (mask & (std::size_t{1} << p)) {
        subset.push_back(
            ProcessorId{static_cast<ProcessorId::underlying_type>(p)});
      }
    }
    if (subset.size() <= max_failures) result.push_back(std::move(subset));
  }
  return result;
}

}  // namespace ftsched
