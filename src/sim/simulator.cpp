#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>

#include "core/error.hpp"
#include "graph/algorithm_graph.hpp"
#include "obs/span.hpp"

namespace ftsched {

namespace sim_detail {

/// Scenario-independent description of one transfer: the static ones are
/// derived from the schedule once (SimPlan), the dynamic (elected-backup)
/// ones are appended to SimState at runtime. Mutable run state lives in
/// TransferState so that copying a run never copies routes.
struct Transfer {
  DependencyId dep;
  int sender_rank = 0;
  ProcessorId from;
  ProcessorId to;
  /// The actual route (static transfers: reconstructed from the schedule
  /// segments, which may follow a disjoint detour; dynamic transfers: the
  /// shortest route). hops[i] feeds links[i].
  Route route;
  /// Static transfers are time-triggered: hop i never starts before its
  /// scheduled slot. This makes the failure-free run replay the static
  /// schedule exactly (each link's static total order is enforced by the
  /// slots themselves, §4.4); under failures a late value simply starts
  /// its hop late. Empty for runtime-created (backup) transfers.
  std::vector<Time> slots;
  bool dynamic = false;
  /// Liveness notification to a later backup (cancelled once the
  /// destination has certified the dependency's distribution).
  bool liveness = false;
  /// Observing this transfer certifies the sender finished distributing
  /// the value: dynamic (elected-backup) sends, static liveness sends,
  /// and the final static consumer delivery.
  bool certifies = false;
};

inline constexpr std::uint32_t kNoWake = static_cast<std::uint32_t>(-1);

struct TransferState {
  std::uint32_t hop = 0;
  std::uint32_t wake_scheduled_hop = kNoWake;
  bool in_flight = false;
  bool done = false;
  bool cancelled = false;
};

struct Watcher {
  const TimeoutChain* chain = nullptr;
  /// Rank of the local backup replica of the producer; -1 for a pure
  /// consumer watcher.
  int backup_rank = -1;
};

struct WatcherState {
  std::uint32_t pos = 0;
  std::uint32_t scheduled_pos = kNoWake;
  bool elected = false;
  bool sent = false;
};

struct ProcState {
  bool alive = true;
  bool busy = false;
  bool abort = false;  // the running operation died with the processor
  std::uint32_t next = 0;
};

struct LinkState {
  bool busy = false;
  bool alive = true;
};

/// Everything about a run that does not depend on the failure scenario,
/// derived from the schedule exactly once per Simulator. A campaign runs
/// tens of thousands of scenarios against one schedule; rebuilding the
/// per-processor programs (a scan + sort each), reconstructing every static
/// transfer's route from its segments, and re-resolving watcher backup
/// ranks per scenario dominated run start-up. Runs point at the plan
/// (read-only during execution) and keep only flat POD state.
struct SimPlan {
  std::vector<std::vector<const ScheduledOperation*>> programs;  // [proc]
  std::vector<Transfer> transfers;
  std::vector<Watcher> watchers;
};

std::unique_ptr<const SimPlan> build_plan(const Schedule& schedule,
                                          const TimeoutTable& timeouts) {
  const AlgorithmGraph& graph = *schedule.problem().algorithm;
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  auto plan = std::make_unique<SimPlan>();

  const std::size_t procs = arch.processor_count();
  plan->programs.resize(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    plan->programs[p] = schedule.operations_on(
        ProcessorId{static_cast<ProcessorId::underlying_type>(p)});
  }

  // Static transfers, in schedule order (their creation order). The
  // latest-ending consumer delivery of each dependency certifies the
  // main's end of distribution (see ScheduledComm::liveness).
  std::vector<Time> final_end(graph.dependency_count(), 0);
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active || comm.liveness || comm.segments.empty()) continue;
    final_end[comm.dep.index()] =
        std::max(final_end[comm.dep.index()], comm.segments.back().end);
  }
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active) continue;
    Transfer transfer;
    transfer.dep = comm.dep;
    transfer.sender_rank = comm.sender_rank;
    transfer.from = comm.from;
    transfer.to = comm.to;
    transfer.liveness = comm.liveness;
    transfer.certifies =
        comm.liveness ||
        (!comm.segments.empty() &&
         time_ge(comm.segments.back().end, final_end[comm.dep.index()]));
    transfer.route.hops = schedule.comm_hops(comm);
    for (const CommSegment& segment : comm.segments) {
      transfer.route.links.push_back(segment.link);
      transfer.slots.push_back(segment.start);
    }
    plan->transfers.push_back(std::move(transfer));
  }

  // Watch chains (solution 1 and the hybrid's passive dependencies; the
  // TimeoutTable already excludes actively replicated ones).
  if (schedule.kind() == HeuristicKind::kSolution1 ||
      schedule.kind() == HeuristicKind::kHybrid) {
    for (const TimeoutChain& chain : timeouts.chains()) {
      Watcher watcher;
      watcher.chain = &chain;
      const Dependency& dep = graph.dependency(chain.dep);
      if (const ScheduledOperation* local =
              schedule.replica_on(dep.src, chain.receiver)) {
        watcher.backup_rank = local->rank;
      }
      plan->watchers.push_back(watcher);
    }
  }
  return plan;
}

/// Event kinds, in same-instant processing order: deliveries first (a value
/// arriving exactly at a deadline satisfies the watcher), then completions,
/// then failures (an operation finishing at the failure instant counts),
/// then deadlines.
enum class EventKind {
  kHopDone = 0,
  kOpDone = 1,
  kFailure = 2,
  kLinkFailure = 3,
  kDeadline = 4,
};

struct Event {
  Time time;
  EventKind kind;
  std::size_t seq;    // deterministic FIFO tie-break
  std::size_t index;  // proc / transfer / watcher index, per kind

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return seq > other.seq;
  }
};

/// The complete per-run state of one simulated iteration, separated from
/// the engine so a paused run can be snapshotted (Simulator::Branch) and
/// forked per failure branch. Every member is a flat value — copying is a
/// handful of vector copies (the trace prefix being the largest), never a
/// re-simulation and never a per-transfer route copy.
struct SimState {
  bool prologue_done = false;
  /// Events dispatched by THIS state since it was begun or forked (fork
  /// resets the copy's counter): the marginal simulation work of a branch,
  /// excluding the shared prefix it inherited.
  std::size_t events_dispatched = 0;
  /// Instant of the last fully executed event batch; injected faults must
  /// lie strictly after it.
  Time executed_until = -kInfinite;
  std::size_t seq = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  Trace trace;
  std::vector<ProcState> procs;
  std::vector<char> flags;  // [p * procs + q]: p believes q failed
  std::vector<LinkState> links;
  /// Run state of plan transfers [0, plan.transfers.size()) followed by
  /// dynamic transfers; templates of the latter live in `dynamic`.
  std::vector<TransferState> tstate;
  std::vector<Transfer> dynamic;
  std::vector<WatcherState> wstate;
  std::vector<SilentWindow> silent_windows;
  std::size_t deps = 0;         // stride of the [proc][dep] tables below
  std::vector<char> has_value;  // [proc * deps + dep]
  std::vector<char> certified;  // [proc * deps + dep]
};

}  // namespace sim_detail

namespace {

using sim_detail::Event;
using sim_detail::EventKind;
using sim_detail::kNoWake;
using sim_detail::LinkState;
using sim_detail::ProcState;
using sim_detail::SimPlan;
using sim_detail::SimState;
using sim_detail::Transfer;
using sim_detail::TransferState;
using sim_detail::Watcher;
using sim_detail::WatcherState;

/// Executes one iteration over an externally owned SimState. The engine
/// itself is stateless between calls — Simulator::run drives a fresh state
/// to completion, the Branch API drives a state in stop-and-go slices with
/// faults injected between slices, and both orders produce bit-identical
/// results (event order is a pure function of (time, kind, push order)).
class Engine {
 public:
  Engine(const Schedule& schedule, const RoutingTable& routing,
         const SimPlan& plan, SimState& s)
      : schedule_(schedule),
        routing_(routing),
        plan_(plan),
        graph_(*schedule.problem().algorithm),
        arch_(*schedule.problem().architecture),
        s_(s) {}

  void init(const FailureScenario& scenario) {
    const std::size_t procs = arch_.processor_count();
    s_.procs.assign(procs, ProcState{});
    s_.flags.assign(procs * procs, 0);
    s_.links.assign(arch_.link_count(), LinkState{});
    s_.deps = graph_.dependency_count();
    s_.has_value.assign(procs * s_.deps, 0);
    s_.certified.assign(procs * s_.deps, 0);
    s_.tstate.assign(plan_.transfers.size(), TransferState{});
    s_.wstate.assign(plan_.watchers.size(), WatcherState{});

    // Failures known since a previous iteration: dead, and flagged by all.
    for (ProcessorId dead : scenario.failed_at_start) {
      s_.procs[dead.index()].alive = false;
      for (std::size_t p = 0; p < procs; ++p) {
        s_.flags[p * procs + dead.index()] = 1;
      }
    }
    // Detection mistakes carried over: flagged by everyone, yet alive.
    for (ProcessorId suspect : scenario.suspected_at_start) {
      for (std::size_t p = 0; p < procs; ++p) {
        s_.flags[p * procs + suspect.index()] = 1;
      }
      s_.flags[suspect.index() * procs + suspect.index()] = 0;
    }
    // Mid-iteration crashes.
    for (const FailureEvent& failure : scenario.events) {
      push(failure.time, EventKind::kFailure, failure.processor.index());
    }
    // Link failures.
    for (LinkId link : scenario.failed_links_at_start) {
      s_.links[link.index()].alive = false;
    }
    for (const LinkFailureEvent& failure : scenario.link_events) {
      push(failure.time, EventKind::kLinkFailure, failure.link.index());
    }
    // Fail-silent windows: blocked sends must be retried when each window
    // closes, so schedule a generic wake-up at every window end.
    s_.silent_windows = scenario.silent_windows;
    for (const SilentWindow& window : s_.silent_windows) {
      push(window.to, EventKind::kDeadline, 0);
    }
  }

  void inject(const FailureEvent& failure) {
    FTSCHED_REQUIRE(failure.time > s_.executed_until,
                    "injected fault predates the executed prefix");
    push(failure.time, EventKind::kFailure, failure.processor.index());
  }

  void inject(const LinkFailureEvent& failure) {
    FTSCHED_REQUIRE(failure.time > s_.executed_until,
                    "injected fault predates the executed prefix");
    push(failure.time, EventKind::kLinkFailure, failure.link.index());
  }

  void inject(const SilentWindow& window) {
    FTSCHED_REQUIRE(window.from > s_.executed_until,
                    "injected fault predates the executed prefix");
    FTSCHED_REQUIRE(window.from < window.to,
                    "silent window must have positive length");
    // Mirrors init(): the window only influences is_silent() at instants in
    // [from, to), all after the executed prefix, and the wake at the closing
    // edge dispatches as a no-op kDeadline — so the injection is
    // fork-equivalent to starting with the window in the scenario.
    s_.silent_windows.push_back(window);
    push(window.to, EventKind::kDeadline, 0);
  }

  /// Executes every pending instant strictly (epsilon-strict) before `t`.
  void run_until(Time t) {
    ensure_prologue();
    while (!s_.queue.empty() && time_lt(s_.queue.top().time, t)) {
      step_batch();
    }
  }

  void run_all() {
    ensure_prologue();
    while (!s_.queue.empty()) step_batch();
  }

  [[nodiscard]] IterationResult finish() {
    IterationResult result;
    result.events_executed = s_.events_dispatched;
    result.all_outputs_produced = true;
    Time response = 0;
    for (const Operation& op : graph_.operations()) {
      if (op.kind != OperationKind::kExtioOut) continue;
      const Time earliest = s_.trace.earliest_op_end(op.id);
      if (is_infinite(earliest)) {
        result.all_outputs_produced = false;
      } else {
        response = std::max(response, earliest);
      }
    }
    result.response_time =
        result.all_outputs_produced ? response : kInfinite;

    const std::size_t procs = s_.procs.size();
    std::vector<char> flagged(procs, 0);
    for (std::size_t p = 0; p < procs; ++p) {
      if (!s_.procs[p].alive) continue;
      for (std::size_t q = 0; q < procs; ++q) {
        if (s_.flags[p * procs + q]) flagged[q] = 1;
      }
    }
    for (std::size_t q = 0; q < procs; ++q) {
      if (flagged[q]) result.detected_failures.push_back(pid(q));
    }
    result.trace = std::move(s_.trace);
    return result;
  }

 private:
  /// Start everything startable at time 0 before the first event batch —
  /// deliberately queue-independent, so running it before or after faults
  /// are injected at t >= 0 cannot change the outcome.
  void ensure_prologue() {
    if (s_.prologue_done) return;
    s_.prologue_done = true;
    advance(0);
  }

  void step_batch() {
    // Drain every event of this instant before re-evaluating the system,
    // so that e.g. an operation completing at t and the link freeing at t
    // are both visible when the arbiter picks the next transfer.
    const Time now = s_.queue.top().time;
    while (!s_.queue.empty() && s_.queue.top().time == now) {
      const Event event = s_.queue.top();
      s_.queue.pop();
      ++s_.events_dispatched;
      dispatch(event);
    }
    advance(now);
    s_.executed_until = now;
  }

  [[nodiscard]] std::size_t transfer_count() const {
    return plan_.transfers.size() + s_.dynamic.size();
  }

  [[nodiscard]] const Transfer& tmpl(std::size_t t) const {
    return t < plan_.transfers.size()
               ? plan_.transfers[t]
               : s_.dynamic[t - plan_.transfers.size()];
  }

  /// True while `proc`'s communication units are omitting sends
  /// (intermittent fail-silent episode, §6.1 item 3).
  bool is_silent(ProcessorId proc, Time now) const {
    for (const SilentWindow& window : s_.silent_windows) {
      if (window.processor == proc && time_le(window.from, now) &&
          time_lt(now, window.to)) {
        return true;
      }
    }
    return false;
  }

  void push(Time time, EventKind kind, std::size_t index) {
    s_.queue.push(Event{time, kind, s_.seq++, index});
  }

  void record(TraceEvent event) { s_.trace.record(std::move(event)); }

  ProcessorId pid(std::size_t index) const {
    return ProcessorId{static_cast<ProcessorId::underlying_type>(index)};
  }

  void dispatch(const Event& event) {
    switch (event.kind) {
      case EventKind::kFailure:
        on_failure(event.time, event.index);
        break;
      case EventKind::kOpDone:
        on_op_done(event.time, event.index);
        break;
      case EventKind::kHopDone:
        on_hop_done(event.time, event.index);
        break;
      case EventKind::kLinkFailure:
        on_link_failure(event.time, event.index);
        break;
      case EventKind::kDeadline:
        break;  // advance() re-examines watchers at this instant
    }
  }

  void on_failure(Time now, std::size_t p) {
    ProcState& proc = s_.procs[p];
    if (!proc.alive) return;
    proc.alive = false;
    if (proc.busy) proc.abort = true;
    record({TraceEvent::Kind::kFailure, now, pid(p), {}, {}, -1, {}, {}});
    // In-flight transfers fed by the dead processor are lost; the medium
    // frees (a partial frame is discarded by the receivers).
    for (std::size_t t = 0; t < transfer_count(); ++t) {
      TransferState& state = s_.tstate[t];
      if (!state.in_flight) continue;
      const Transfer& transfer = tmpl(t);
      if (transfer.route.hops[state.hop].index() != p) continue;
      state.in_flight = false;
      state.cancelled = true;
      s_.links[transfer.route.links[state.hop].index()].busy = false;
      record({TraceEvent::Kind::kDrop, now, pid(p), transfer.to, {}, -1,
              transfer.dep, transfer.route.links[state.hop]});
    }
  }

  /// A communication link fails permanently: the frame in flight is lost
  /// and nothing crosses the medium again (the paper's §8 future work; a
  /// processor failure already silences that processor's units, this models
  /// the medium itself dying).
  void on_link_failure(Time now, std::size_t l) {
    LinkState& link = s_.links[l];
    if (!link.alive) return;
    link.alive = false;
    link.busy = false;
    const LinkId link_id{static_cast<LinkId::underlying_type>(l)};
    record({TraceEvent::Kind::kFailure, now, {}, {}, {}, -1, {}, link_id});
    for (std::size_t t = 0; t < transfer_count(); ++t) {
      TransferState& state = s_.tstate[t];
      if (!state.in_flight) continue;
      const Transfer& transfer = tmpl(t);
      if (transfer.route.links[state.hop] != link_id) continue;
      state.in_flight = false;
      state.cancelled = true;
      record({TraceEvent::Kind::kDrop, now, transfer.route.hops[state.hop],
              transfer.to, {}, -1, transfer.dep, link_id});
    }
  }

  void on_op_done(Time now, std::size_t p) {
    ProcState& proc = s_.procs[p];
    if (!proc.alive) {
      proc.abort = false;
      return;
    }
    const ScheduledOperation* placement = plan_.programs[p][proc.next];
    record({TraceEvent::Kind::kOpEnd, now, pid(p), {}, placement->op,
            placement->rank, {}, {}});
    for (DependencyId out : graph_.out_dependencies(placement->op)) {
      s_.has_value[p * s_.deps + out.index()] = 1;
    }
    proc.busy = false;
    ++proc.next;
  }

  void on_hop_done(Time now, std::size_t t) {
    TransferState& state = s_.tstate[t];
    if (state.cancelled || !state.in_flight) return;
    state.in_flight = false;
    const Transfer& transfer = tmpl(t);
    const LinkId link = transfer.route.links[state.hop];
    s_.links[link.index()].busy = false;
    record({TraceEvent::Kind::kTransferEnd, now,
            transfer.route.hops[state.hop], transfer.to, {}, -1,
            transfer.dep, link});
    // Every live processor attached to the medium observes the value: a bus
    // delivers it to all endpoints (broadcast), a point-to-point link to the
    // far endpoint. Observing a processor transmit is also proof of life:
    // healthy processors keep scanning the medium and clear a fail flag that
    // turns out to be a detection mistake or an intermittent fail-silent
    // episode (§6.1 item 3).
    const ProcessorId feeding = transfer.route.hops[state.hop];
    const std::size_t procs = s_.procs.size();
    for (ProcessorId endpoint : arch_.link(link).endpoints) {
      if (!s_.procs[endpoint.index()].alive) continue;
      s_.has_value[endpoint.index() * s_.deps + transfer.dep.index()] = 1;
      if (transfer.certifies) {
        s_.certified[endpoint.index() * s_.deps + transfer.dep.index()] = 1;
      }
      s_.flags[endpoint.index() * procs + feeding.index()] = 0;
    }
    ++state.hop;
    if (state.hop == transfer.route.links.size()) state.done = true;
  }

  /// Fixpoint: start everything that can start at `now`.
  void advance(Time now) {
    bool progress = true;
    while (progress) {
      progress = false;
      progress |= progress_watchers(now);
      progress |= start_operations(now);
      progress |= start_transfers(now);
    }
  }

  bool start_operations(Time now) {
    bool progress = false;
    for (std::size_t p = 0; p < s_.procs.size(); ++p) {
      ProcState& proc = s_.procs[p];
      const std::vector<const ScheduledOperation*>& program =
          plan_.programs[p];
      if (!proc.alive || proc.busy || proc.next >= program.size()) {
        continue;
      }
      const ScheduledOperation* placement = program[proc.next];
      bool ready = true;
      for (DependencyId dep : graph_.precedence_in_ref(placement->op)) {
        if (!s_.has_value[p * s_.deps + dep.index()]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      const Time duration = placement->end - placement->start;
      proc.busy = true;
      record({TraceEvent::Kind::kOpStart, now, pid(p), {}, placement->op,
              placement->rank, {}, {}});
      push(now + duration, EventKind::kOpDone, p);
      progress = true;
    }
    return progress;
  }

  bool start_transfers(Time now) {
    bool progress = false;
    for (std::size_t t = 0; t < transfer_count(); ++t) {
      TransferState& state = s_.tstate[t];
      if (state.done || state.cancelled || state.in_flight) continue;
      const Transfer& transfer = tmpl(t);
      const ProcessorId feeding = transfer.route.hops[state.hop];
      if (!s_.procs[feeding.index()].alive) continue;
      if (is_silent(feeding, now)) continue;  // retried at the window end
      if (!s_.has_value[feeding.index() * s_.deps + transfer.dep.index()]) {
        continue;
      }
      if (!transfer.slots.empty() &&
          time_lt(now, transfer.slots[state.hop])) {
        if (state.wake_scheduled_hop != state.hop) {
          state.wake_scheduled_hop = state.hop;
          push(transfer.slots[state.hop], EventKind::kDeadline, t);
        }
        continue;
      }
      // Runtime-created transfers are pointless once the destination got or
      // observed the value through another path.
      if (transfer.dynamic) {
        const std::vector<char>& dest_seen =
            transfer.liveness ? s_.certified : s_.has_value;
        if (dest_seen[transfer.to.index() * s_.deps + transfer.dep.index()]) {
          state.cancelled = true;
          record({TraceEvent::Kind::kDrop, now, feeding, transfer.to, {}, -1,
                  transfer.dep, {}});
          progress = true;
          continue;
        }
      }
      LinkState& link = s_.links[transfer.route.links[state.hop].index()];
      if (!link.alive || link.busy) continue;
      link.busy = true;
      state.in_flight = true;
      const LinkId link_id = transfer.route.links[state.hop];
      record({TraceEvent::Kind::kTransferStart, now, feeding, transfer.to,
              {}, -1, transfer.dep, link_id});
      push(now + schedule_.problem().comm->duration(transfer.dep, link_id),
           EventKind::kHopDone, t);
      progress = true;
    }
    return progress;
  }

  bool progress_watchers(Time now) {
    bool progress = false;
    const std::size_t procs = s_.procs.size();
    for (std::size_t w = 0; w < s_.wstate.size(); ++w) {
      const Watcher& watcher = plan_.watchers[w];
      WatcherState& state = s_.wstate[w];
      const TimeoutChain& chain = *watcher.chain;
      const std::size_t recv = chain.receiver.index();
      if (!s_.procs[recv].alive) continue;

      const bool satisfied =
          watcher.backup_rank >= 0
              ? s_.certified[recv * s_.deps + chain.dep.index()] != 0
              : s_.has_value[recv * s_.deps + chain.dep.index()] != 0;
      if (satisfied) continue;

      while (state.pos < chain.entries.size()) {
        const TimeoutEntry& entry = chain.entries[state.pos];
        if (s_.flags[recv * procs + entry.sender.index()]) {
          // Already known faulty (Figure 12: skip without waiting).
          ++state.pos;
          progress = true;
          continue;
        }
        if (time_ge(now, entry.deadline)) {
          s_.flags[recv * procs + entry.sender.index()] = 1;
          record({TraceEvent::Kind::kTimeout, now, chain.receiver,
                  entry.sender, {}, entry.rank, chain.dep, {}});
          ++state.pos;
          progress = true;
          continue;
        }
        if (state.scheduled_pos != state.pos) {
          state.scheduled_pos = state.pos;
          push(entry.deadline, EventKind::kDeadline, w);
        }
        break;
      }

      // Watch chain exhausted: a backup replica takes over the send
      // (Figure 12's final `if m = i then send`); once it has computed the
      // value itself, it transmits to everyone still waiting.
      if (state.pos == chain.entries.size() && watcher.backup_rank >= 0 &&
          !state.sent) {
        if (!state.elected) {
          state.elected = true;
          record({TraceEvent::Kind::kElection, now, chain.receiver, {}, {},
                  watcher.backup_rank, chain.dep, {}});
          progress = true;
        }
        if (s_.has_value[recv * s_.deps + chain.dep.index()]) {
          state.sent = true;
          create_backup_sends(watcher);
          progress = true;
        }
      }
    }
    return progress;
  }

  /// The elected backup sends the value to every consumer processor that
  /// still needs it and a liveness notification to every later backup
  /// (§6.1: "send the result to the units of successors and remainder
  /// backup processors").
  void create_backup_sends(const Watcher& watcher) {
    const TimeoutChain& chain = *watcher.chain;
    const Dependency& dep = graph_.dependency(chain.dep);

    // Figure 12 sends unconditionally: a fail flag can be a detection
    // mistake (late message under contention), so filtering destinations by
    // flags could starve a healthy processor. A transfer to a dead
    // processor merely wastes a slot; cancel-at-start already suppresses
    // transfers whose destination got the value another way.
    auto enqueue = [&](ProcessorId to, bool liveness) {
      if (to == chain.receiver) return;
      Transfer transfer;
      transfer.dep = chain.dep;
      transfer.sender_rank = watcher.backup_rank;
      transfer.from = chain.receiver;
      transfer.to = to;
      transfer.route = routing_.route(chain.receiver, to);
      transfer.dynamic = true;
      transfer.liveness = liveness;
      transfer.certifies = true;
      s_.dynamic.push_back(std::move(transfer));
      s_.tstate.push_back(TransferState{});
    };

    for (const ScheduledOperation* consumer :
         schedule_.replicas_view(dep.dst)) {
      if (schedule_.replica_on(dep.src, consumer->processor) != nullptr) {
        continue;  // computes the producer locally
      }
      enqueue(consumer->processor, /*liveness=*/false);
    }
    for (const ScheduledOperation* later : schedule_.replicas_view(dep.src)) {
      if (later->rank <= watcher.backup_rank) continue;
      enqueue(later->processor, /*liveness=*/true);
    }
  }

  const Schedule& schedule_;
  const RoutingTable& routing_;
  const SimPlan& plan_;
  const AlgorithmGraph& graph_;
  const ArchitectureGraph& arch_;
  SimState& s_;
};

}  // namespace

Simulator::Branch::Branch(std::unique_ptr<sim_detail::SimState> state)
    : state_(std::move(state)) {}
Simulator::Branch::Branch(Branch&&) noexcept = default;
Simulator::Branch& Simulator::Branch::operator=(Branch&&) noexcept = default;
Simulator::Branch::~Branch() = default;

Simulator::Branch Simulator::Branch::fork() const {
  auto copy = std::make_unique<sim_detail::SimState>(*state_);
  // Fork-local accounting: the copy inherits the prefix's behaviour but
  // not its cost — events it dispatches from here on are its own.
  copy->events_dispatched = 0;
  return Branch(std::move(copy));
}

Time Simulator::Branch::frontier() const {
  return state_->queue.empty() ? kInfinite : state_->queue.top().time;
}

std::size_t Simulator::Branch::executed_events() const {
  return state_->events_dispatched;
}

Simulator::Simulator(const Schedule& schedule)
    : schedule_(&schedule),
      routing_(*schedule.problem().architecture),
      timeouts_(schedule, routing_),
      plan_(sim_detail::build_plan(schedule, timeouts_)) {}

Simulator::~Simulator() = default;

IterationResult Simulator::run(const FailureScenario& scenario) const {
  FTSCHED_SPAN("sim.run");
  sim_detail::SimState state;
  Engine engine(*schedule_, routing_, *plan_, state);
  engine.init(scenario);
  engine.run_all();
  return engine.finish();
}

Simulator::Branch Simulator::begin(const FailureScenario& scenario) const {
  auto state = std::make_unique<sim_detail::SimState>();
  Engine(*schedule_, routing_, *plan_, *state).init(scenario);
  return Branch(std::move(state));
}

void Simulator::advance_until(Branch& branch, Time t) const {
  Engine(*schedule_, routing_, *plan_, *branch.state_).run_until(t);
}

void Simulator::inject(Branch& branch, const FailureEvent& failure) const {
  Engine(*schedule_, routing_, *plan_, *branch.state_).inject(failure);
}

void Simulator::inject(Branch& branch,
                       const LinkFailureEvent& failure) const {
  Engine(*schedule_, routing_, *plan_, *branch.state_).inject(failure);
}

void Simulator::inject(Branch& branch, const SilentWindow& window) const {
  Engine(*schedule_, routing_, *plan_, *branch.state_).inject(window);
}

IterationResult Simulator::finish(Branch branch) const {
  FTSCHED_SPAN("sim.finish");
  Engine engine(*schedule_, routing_, *plan_, *branch.state_);
  engine.run_all();
  return engine.finish();
}

}  // namespace ftsched
