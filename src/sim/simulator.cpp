#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>

#include "core/error.hpp"
#include "graph/algorithm_graph.hpp"
#include "obs/span.hpp"

namespace ftsched {

namespace sim_detail {

inline constexpr std::uint32_t kNoWake = static_cast<std::uint32_t>(-1);

/// One operation of a processor's static program, flattened from the
/// ScheduledOperation it was built from: everything the hot loop reads
/// (duration, input/output dependency lists) sits in the plan's contiguous
/// arrays instead of behind graph lookups.
struct OpRecord {
  OperationId op;
  int rank = 0;
  Time duration = 0;
  std::uint32_t in_begin = 0, in_end = 0;    // SimPlan::op_in (dep indices)
  std::uint32_t out_begin = 0, out_end = 0;  // SimPlan::op_out
};

/// One hop of a static transfer: the feeding processor, the link crossed,
/// the scheduled slot (static transfers are time-triggered, §4.4) and the
/// precomputed transfer duration on that link.
struct HopRecord {
  ProcessorId feed;
  LinkId link;
  Time slot = 0;
  Time duration = 0;
};

/// Scenario-independent description of one statically scheduled transfer;
/// hops live in SimPlan::hops[hop_begin, hop_end).
struct StaticTransfer {
  DependencyId dep;
  ProcessorId to;
  std::uint32_t hop_begin = 0, hop_end = 0;
  /// Observing this transfer certifies the sender finished distributing
  /// the value (liveness sends and the final static consumer delivery).
  bool certifies = false;
};

/// A transfer created at runtime (solution-1 elected-backup send). Rare
/// enough to keep its route by value; run state lives in the same flat
/// tr_* arrays as the static transfers, at indices past them.
struct DynTransfer {
  DependencyId dep;
  ProcessorId to;
  /// hops[i] feeds links[i]. Points into the RoutingTable (owned by the
  /// Simulator, which outlives every SimState including Branch forks), so
  /// creating or copying a dynamic transfer never copies the route.
  const Route* route = nullptr;
  /// Liveness notification to a later backup (cancelled once the
  /// destination has certified the dependency's distribution).
  bool liveness = false;
};

/// A watch chain (Figure 10/12), flattened: entries live in
/// SimPlan::wentries[e_begin, e_end).
struct WatcherRec {
  DependencyId dep;
  ProcessorId receiver;
  /// Rank of the local backup replica of the producer; -1 for a pure
  /// consumer watcher.
  int backup_rank = -1;
  std::uint32_t e_begin = 0, e_end = 0;
};

struct WatchEntry {
  ProcessorId sender;
  Time deadline = 0;
  int rank = 0;
};

/// Everything about a run that does not depend on the failure scenario,
/// derived from the schedule exactly once per Simulator and flattened into
/// contiguous arrays (CSR layout for per-processor programs, per-transfer
/// hops, per-link endpoints and per-watcher chains) so the inner loops walk
/// cache lines, not pointer graphs. A campaign runs tens of thousands of
/// scenarios against one schedule; runs point at the plan (read-only during
/// execution) and keep only flat POD state.
struct SimPlan {
  std::uint32_t procs = 0;
  std::uint32_t links = 0;
  std::uint32_t deps = 0;
  std::uint32_t op_count = 0;  // graph operation count (op_end table size)

  std::vector<std::uint32_t> op_begin;  // [procs + 1] into ops
  std::vector<OpRecord> ops;
  std::vector<std::uint32_t> op_in;   // input dep indices
  std::vector<std::uint32_t> op_out;  // output dep indices

  std::vector<StaticTransfer> transfers;
  std::vector<HopRecord> hops;

  std::vector<std::uint32_t> link_ep_begin;  // [links + 1] into link_ep
  std::vector<std::uint32_t> link_ep;        // endpoint processor indices

  std::vector<WatcherRec> watchers;
  std::vector<WatchEntry> wentries;

  std::vector<OperationId> extio_out;  // response-defining outputs

  Time horizon = 0;                  // schedule makespan (calendar sizing)
  std::size_t expected_events = 0;   // calendar-vs-heap auto selection
};

/// The complete per-run state of one simulated iteration, separated from
/// the engine so a paused run can be snapshotted (Simulator::Branch) and
/// forked per failure branch, and so a worker can reuse one state as an
/// arena across a whole chunk of scenarios (Simulator::Scratch — init()
/// resets every table without releasing storage). Hot fields are split
/// into parallel struct-of-arrays byte/index tables sized for cache lines;
/// copying is a handful of flat vector copies (the trace prefix being the
/// largest), never a re-simulation and never a per-transfer route copy.
struct SimState {
  bool prologue_done = false;
  /// Summary mode: record() skips the Trace and feeds the digest
  /// accumulators only (run_summary); trace mode keeps both in sync.
  bool summary = false;
  /// Events dispatched by THIS state since it was begun or forked (fork
  /// resets the copy's counter): the marginal simulation work of a branch,
  /// excluding the shared prefix it inherited.
  std::size_t events_dispatched = 0;
  /// Instant of the last fully executed event batch; injected faults must
  /// lie strictly after it.
  Time executed_until = -kInfinite;
  std::uint32_t seq = 0;
  EventQueue queue;
  Trace trace;

  // Processors (SoA).
  std::vector<char> proc_alive;
  std::vector<char> proc_busy;
  std::vector<char> proc_abort;  // the running operation died with the proc
  std::vector<std::uint32_t> proc_next;
  std::vector<char> flags;  // [p * procs + q]: p believes q failed

  // Links (SoA).
  std::vector<char> link_alive;
  std::vector<char> link_busy;

  // Transfers (SoA): plan transfers [0, plan.transfers.size()) followed by
  // dynamic transfers; templates of the latter live in `dynamic`.
  std::vector<std::uint32_t> tr_hop;
  std::vector<std::uint32_t> tr_wake;
  std::vector<char> tr_status;  // 0 idle, 1 in flight, 2 done, 3 cancelled
  std::vector<DynTransfer> dynamic;
  /// Intrusive singly linked list of non-terminal transfers in index order
  /// (statics then dynamics in creation order — the exact order the old
  /// full scan visited them, so the trace is unchanged). start_transfers
  /// unlinks a transfer lazily once it observes a terminal status
  /// (done/cancelled — terminal states never revert); new dynamic
  /// transfers append at the tail.
  std::uint32_t tr_head = kNoWake;
  std::uint32_t tr_tail = kNoWake;
  std::vector<std::uint32_t> tr_next;

  // Watchers (SoA).
  std::vector<std::uint32_t> w_pos;
  std::vector<std::uint32_t> w_sched;
  std::vector<char> w_elected;
  std::vector<char> w_sent;
  /// Intrusive singly linked list of live watchers in index order:
  /// w_head -> w_next[...] -> kNoWake. A watcher is unlinked permanently
  /// when it retires (receiver dead, dependency satisfied, or chain
  /// exhausted with nothing left to send) — all monotone conditions
  /// (processors never resurrect, has_value/certified never clear), so a
  /// retired watcher can never make progress again and the fixpoint scans
  /// never touch it. Retirement happens only inside progress_watchers'
  /// scan, which walks in index order, so unlinking preserves the scan
  /// order exactly.
  std::uint32_t w_head = kNoWake;
  std::vector<std::uint32_t> w_next;

  std::vector<SilentWindow> silent_windows;
  /// Parallel to silent_windows: the earliest instant window i actually
  /// blocked a send attempt, kInfinite while it never deferred anything.
  /// Drives the tight per-window response allowance (window.to - first
  /// blocked instant, instead of the window's full length) — see
  /// IterationResult::silence_deferral.
  std::vector<Time> silent_first_blocked;
  std::uint32_t deps = 0;       // stride of the [proc][dep] tables below
  std::vector<char> has_value;  // [proc * deps + dep]
  std::vector<char> certified;  // [proc * deps + dep]

  // Digest accumulators, maintained in both modes (finish() derives the
  // response from op_end instead of re-scanning the trace).
  std::size_t n_timeouts = 0;
  std::size_t n_elections = 0;
  std::size_t n_transfer_starts = 0;
  std::vector<Time> op_end;  // [op] earliest kOpEnd instant, kInfinite if none
  /// Date of the most recent recorded trace event (maintained even when the
  /// Trace itself is suppressed). Part of the state digest: the certifier's
  /// candidate-instant grid takes midpoints between consecutive trace
  /// dates, so the last already-recorded date determines the first
  /// midpoint a resumed exploration will straddle.
  Time last_trace_date = -kInfinite;
};

inline constexpr char kIdle = 0;
inline constexpr char kInFlight = 1;
inline constexpr char kDone = 2;
inline constexpr char kCancelled = 3;

std::unique_ptr<const SimPlan> build_plan(const Schedule& schedule,
                                          const TimeoutTable& timeouts) {
  const AlgorithmGraph& graph = *schedule.problem().algorithm;
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  auto plan = std::make_unique<SimPlan>();

  plan->procs = static_cast<std::uint32_t>(arch.processor_count());
  plan->links = static_cast<std::uint32_t>(arch.link_count());
  plan->deps = static_cast<std::uint32_t>(graph.dependency_count());
  plan->op_count = static_cast<std::uint32_t>(graph.operation_count());

  // Per-processor static programs, flattened with their dependency lists.
  plan->op_begin.reserve(plan->procs + 1);
  plan->op_begin.push_back(0);
  for (std::uint32_t p = 0; p < plan->procs; ++p) {
    for (const ScheduledOperation* so : schedule.operations_on(
             ProcessorId{static_cast<ProcessorId::underlying_type>(p)})) {
      OpRecord record;
      record.op = so->op;
      record.rank = so->rank;
      record.duration = so->end - so->start;
      record.in_begin = static_cast<std::uint32_t>(plan->op_in.size());
      for (DependencyId dep : graph.precedence_in_ref(so->op)) {
        plan->op_in.push_back(static_cast<std::uint32_t>(dep.index()));
      }
      record.in_end = static_cast<std::uint32_t>(plan->op_in.size());
      record.out_begin = static_cast<std::uint32_t>(plan->op_out.size());
      for (DependencyId dep : graph.out_dependencies(so->op)) {
        plan->op_out.push_back(static_cast<std::uint32_t>(dep.index()));
      }
      record.out_end = static_cast<std::uint32_t>(plan->op_out.size());
      plan->ops.push_back(record);
    }
    plan->op_begin.push_back(static_cast<std::uint32_t>(plan->ops.size()));
  }

  // Static transfers, in schedule order (their creation order). The
  // latest-ending consumer delivery of each dependency certifies the
  // main's end of distribution (see ScheduledComm::liveness).
  std::vector<Time> final_end(graph.dependency_count(), 0);
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active || comm.liveness || comm.segments.empty()) continue;
    final_end[comm.dep.index()] =
        std::max(final_end[comm.dep.index()], comm.segments.back().end);
  }
  const CommTable& comm_costs = *schedule.problem().comm;
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active) continue;
    StaticTransfer transfer;
    transfer.dep = comm.dep;
    transfer.to = comm.to;
    transfer.certifies =
        comm.liveness ||
        (!comm.segments.empty() &&
         time_ge(comm.segments.back().end, final_end[comm.dep.index()]));
    const std::vector<ProcessorId> route_hops = schedule.comm_hops(comm);
    transfer.hop_begin = static_cast<std::uint32_t>(plan->hops.size());
    for (std::size_t i = 0; i < comm.segments.size(); ++i) {
      const CommSegment& segment = comm.segments[i];
      HopRecord hop;
      hop.feed = route_hops[i];
      hop.link = segment.link;
      hop.slot = segment.start;
      hop.duration = comm_costs.duration(comm.dep, segment.link);
      plan->hops.push_back(hop);
    }
    transfer.hop_end = static_cast<std::uint32_t>(plan->hops.size());
    plan->transfers.push_back(transfer);
  }

  // Per-link endpoint lists (broadcast delivery walks these per hop).
  plan->link_ep_begin.reserve(plan->links + 1);
  plan->link_ep_begin.push_back(0);
  for (std::uint32_t l = 0; l < plan->links; ++l) {
    for (ProcessorId endpoint :
         arch.link(LinkId{static_cast<LinkId::underlying_type>(l)})
             .endpoints) {
      plan->link_ep.push_back(static_cast<std::uint32_t>(endpoint.index()));
    }
    plan->link_ep_begin.push_back(
        static_cast<std::uint32_t>(plan->link_ep.size()));
  }

  // Watch chains (solution 1 and the hybrid's passive dependencies; the
  // TimeoutTable already excludes actively replicated ones).
  if (schedule.kind() == HeuristicKind::kSolution1 ||
      schedule.kind() == HeuristicKind::kHybrid) {
    for (const TimeoutChain& chain : timeouts.chains()) {
      WatcherRec watcher;
      watcher.dep = chain.dep;
      watcher.receiver = chain.receiver;
      const Dependency& dep = graph.dependency(chain.dep);
      if (const ScheduledOperation* local =
              schedule.replica_on(dep.src, chain.receiver)) {
        watcher.backup_rank = local->rank;
      }
      watcher.e_begin = static_cast<std::uint32_t>(plan->wentries.size());
      for (const TimeoutEntry& entry : chain.entries) {
        plan->wentries.push_back(
            WatchEntry{entry.sender, entry.deadline, entry.rank});
      }
      watcher.e_end = static_cast<std::uint32_t>(plan->wentries.size());
      plan->watchers.push_back(watcher);
    }
  }

  for (const Operation& op : graph.operations()) {
    if (op.kind == OperationKind::kExtioOut) plan->extio_out.push_back(op.id);
  }

  plan->horizon = schedule.makespan();
  plan->expected_events =
      plan->ops.size() + plan->hops.size() * 2 + plan->wentries.size() + 8;
  return plan;
}

}  // namespace sim_detail

namespace {

using sim_detail::DynTransfer;
using sim_detail::Event;
using sim_detail::EventKind;
using sim_detail::HopRecord;
using sim_detail::kCancelled;
using sim_detail::kDone;
using sim_detail::kIdle;
using sim_detail::kInFlight;
using sim_detail::kNoWake;
using sim_detail::OpRecord;
using sim_detail::SimPlan;
using sim_detail::SimState;
using sim_detail::StaticTransfer;
using sim_detail::WatcherRec;
using sim_detail::WatchEntry;

/// Which advance() phases a dispatched event can possibly enable. Phases
/// not in the batch's mask provably cannot start anything (and therefore
/// cannot record anything): between batches the system sits at a fixpoint,
/// so only a state change an event actually performs can unblock a start.
/// Crossing a watcher deadline or a transfer slot always comes with its own
/// kDeadline event (the scans schedule one whenever they block on a future
/// instant), so time passing alone is covered by kDeadline's mask.
constexpr unsigned kDirtyWatchers = 1;
constexpr unsigned kDirtyOps = 2;
constexpr unsigned kDirtyTransfers = 4;

/// Executes one iteration over an externally owned SimState. The engine
/// itself is stateless between calls — Simulator::run drives a fresh state
/// to completion, the Branch API drives a state in stop-and-go slices with
/// faults injected between slices, and both orders produce bit-identical
/// results (event order is a pure function of (time, kind, push order)).
class Engine {
 public:
  Engine(const Schedule& schedule, const RoutingTable& routing,
         const SimPlan& plan, EventSchedulerKind scheduler, SimState& s)
      : schedule_(schedule),
        routing_(routing),
        plan_(plan),
        scheduler_(scheduler),
        graph_(*schedule.problem().algorithm),
        s_(s) {}

  /// Applies `scenario` to a fresh (or recycled — every table is re-armed
  /// without releasing storage) state.
  void init(const FailureScenario& scenario) {
    const std::size_t procs = plan_.procs;
    s_.prologue_done = false;
    s_.events_dispatched = 0;
    s_.executed_until = -kInfinite;
    s_.seq = 0;
    s_.queue.configure(scheduler_, plan_.horizon, plan_.expected_events);
    s_.trace.clear();
    s_.proc_alive.assign(procs, 1);
    s_.proc_busy.assign(procs, 0);
    s_.proc_abort.assign(procs, 0);
    s_.proc_next.assign(procs, 0);
    s_.flags.assign(procs * procs, 0);
    s_.link_alive.assign(plan_.links, 1);
    s_.link_busy.assign(plan_.links, 0);
    s_.deps = plan_.deps;
    s_.has_value.assign(procs * plan_.deps, 0);
    s_.certified.assign(procs * plan_.deps, 0);
    s_.tr_hop.assign(plan_.transfers.size(), 0);
    s_.tr_wake.assign(plan_.transfers.size(), kNoWake);
    s_.tr_status.assign(plan_.transfers.size(), kIdle);
    s_.dynamic.clear();
    const std::uint32_t ntransfers =
        static_cast<std::uint32_t>(plan_.transfers.size());
    s_.tr_next.resize(ntransfers);
    for (std::uint32_t t = 0; t < ntransfers; ++t) {
      s_.tr_next[t] = t + 1 < ntransfers ? t + 1 : kNoWake;
    }
    s_.tr_head = ntransfers > 0 ? 0 : kNoWake;
    s_.tr_tail = ntransfers > 0 ? ntransfers - 1 : kNoWake;
    s_.w_pos.assign(plan_.watchers.size(), 0);
    s_.w_sched.assign(plan_.watchers.size(), kNoWake);
    s_.w_elected.assign(plan_.watchers.size(), 0);
    s_.w_sent.assign(plan_.watchers.size(), 0);
    const std::uint32_t nwatch =
        static_cast<std::uint32_t>(plan_.watchers.size());
    s_.w_next.resize(nwatch);
    for (std::uint32_t w = 0; w < nwatch; ++w) {
      s_.w_next[w] = w + 1 < nwatch ? w + 1 : kNoWake;
    }
    s_.w_head = nwatch > 0 ? 0 : kNoWake;
    s_.n_timeouts = 0;
    s_.n_elections = 0;
    s_.n_transfer_starts = 0;
    s_.op_end.assign(plan_.op_count, kInfinite);
    s_.last_trace_date = -kInfinite;

    // Failures known since a previous iteration: dead, and flagged by all.
    for (ProcessorId dead : scenario.failed_at_start) {
      s_.proc_alive[dead.index()] = 0;
      for (std::size_t p = 0; p < procs; ++p) {
        s_.flags[p * procs + dead.index()] = 1;
      }
    }
    // Detection mistakes carried over: flagged by everyone, yet alive.
    for (ProcessorId suspect : scenario.suspected_at_start) {
      for (std::size_t p = 0; p < procs; ++p) {
        s_.flags[p * procs + suspect.index()] = 1;
      }
      s_.flags[suspect.index() * procs + suspect.index()] = 0;
    }
    // Mid-iteration crashes.
    for (const FailureEvent& failure : scenario.events) {
      push(failure.time, EventKind::kFailure, failure.processor.index());
    }
    // Link failures.
    for (LinkId link : scenario.failed_links_at_start) {
      s_.link_alive[link.index()] = 0;
    }
    for (const LinkFailureEvent& failure : scenario.link_events) {
      push(failure.time, EventKind::kLinkFailure, failure.link.index());
    }
    // Fail-silent windows: blocked sends must be retried when each window
    // closes, so schedule a generic wake-up at every window end.
    s_.silent_windows.assign(scenario.silent_windows.begin(),
                             scenario.silent_windows.end());
    s_.silent_first_blocked.assign(s_.silent_windows.size(), kInfinite);
    for (const SilentWindow& window : s_.silent_windows) {
      push(window.to, EventKind::kDeadline, 0);
    }
  }

  void inject(const FailureEvent& failure) {
    FTSCHED_REQUIRE(failure.time > s_.executed_until,
                    "injected fault predates the executed prefix");
    push(failure.time, EventKind::kFailure, failure.processor.index());
  }

  void inject(const LinkFailureEvent& failure) {
    FTSCHED_REQUIRE(failure.time > s_.executed_until,
                    "injected fault predates the executed prefix");
    push(failure.time, EventKind::kLinkFailure, failure.link.index());
  }

  void inject(const SilentWindow& window) {
    FTSCHED_REQUIRE(window.from > s_.executed_until,
                    "injected fault predates the executed prefix");
    FTSCHED_REQUIRE(window.from < window.to,
                    "silent window must have positive length");
    // Mirrors init(): the window only influences is_silent() at instants in
    // [from, to), all after the executed prefix, and the wake at the closing
    // edge dispatches as a no-op kDeadline — so the injection is
    // fork-equivalent to starting with the window in the scenario.
    s_.silent_windows.push_back(window);
    s_.silent_first_blocked.push_back(kInfinite);
    push(window.to, EventKind::kDeadline, 0);
  }

  /// Executes every pending instant strictly (epsilon-strict) before `t`.
  void run_until(Time t) {
    ensure_prologue();
    while (!s_.queue.empty() && time_lt(s_.queue.top().time, t)) {
      step_batch();
    }
  }

  void run_all() {
    ensure_prologue();
    while (!s_.queue.empty()) step_batch();
  }

  [[nodiscard]] IterationResult finish() {
    IterationResult result;
    result.events_executed = s_.events_dispatched;
    result.all_outputs_produced = true;
    Time response = 0;
    for (OperationId op : plan_.extio_out) {
      const Time earliest = s_.op_end[op.index()];
      if (is_infinite(earliest)) {
        result.all_outputs_produced = false;
      } else {
        response = std::max(response, earliest);
      }
    }
    result.response_time =
        result.all_outputs_produced ? response : kInfinite;
    result.silence_deferral = silence_deferral();
    result.op_completions = s_.op_end;
    collect_detected(result.detected_failures);
    result.trace = std::move(s_.trace);
    return result;
  }

  /// Trace-free digest of the finished run; `out` is overwritten.
  void finish_summary(IterationSummary& out) {
    out.events_executed = s_.events_dispatched;
    out.timeouts = s_.n_timeouts;
    out.elections = s_.n_elections;
    out.transfer_starts = s_.n_transfer_starts;
    out.all_outputs_produced = true;
    Time response = 0;
    for (OperationId op : plan_.extio_out) {
      const Time earliest = s_.op_end[op.index()];
      if (is_infinite(earliest)) {
        out.all_outputs_produced = false;
      } else {
        response = std::max(response, earliest);
      }
    }
    out.response_time = out.all_outputs_produced ? response : kInfinite;
    out.silence_deferral = silence_deferral();
    out.op_completions.assign(s_.op_end.begin(), s_.op_end.end());
    out.detected_failures.clear();
    collect_detected(out.detected_failures);
  }

  /// Max over windows of (closing edge - first blocked attempt): the tight
  /// allowance the response bound is widened by. 0 when nothing was
  /// deferred; always <= the max window length.
  [[nodiscard]] Time silence_deferral() const {
    Time deferral = 0;
    for (std::size_t i = 0; i < s_.silent_windows.size(); ++i) {
      const Time first = s_.silent_first_blocked[i];
      if (!is_infinite(first)) {
        deferral = std::max(deferral, s_.silent_windows[i].to - first);
      }
    }
    return deferral;
  }

 private:
  /// Start everything startable at time 0 before the first event batch —
  /// deliberately queue-independent, so running it before or after faults
  /// are injected at t >= 0 cannot change the outcome.
  void ensure_prologue() {
    if (s_.prologue_done) return;
    s_.prologue_done = true;
    advance(0, kDirtyWatchers | kDirtyOps | kDirtyTransfers);
  }

  void step_batch() {
    // Drain every event of this instant before re-evaluating the system,
    // so that e.g. an operation completing at t and the link freeing at t
    // are both visible when the arbiter picks the next transfer.
    const Time now = s_.queue.top().time;
    unsigned dirty = 0;
    while (!s_.queue.empty() && s_.queue.top().time == now) {
      const Event event = s_.queue.top();
      s_.queue.pop();
      ++s_.events_dispatched;
      dirty |= dispatch(event);
    }
    advance(now, dirty);
    s_.executed_until = now;
  }

  /// True while `proc`'s communication units are omitting sends
  /// (intermittent fail-silent episode, §6.1 item 3). Records on every
  /// covering window the first instant it actually blocked an attempt —
  /// the tight response allowance is window.to minus that instant, since
  /// the window demonstrably deferred nothing earlier. Recording happens
  /// at the attempt (before value/slot/link checks deeper in
  /// transfer_step), which is conservative-early: it can only lengthen the
  /// reported deferral, never shorten it below the true one.
  bool is_silent(ProcessorId proc, Time now) {
    bool silent = false;
    const std::size_t n = s_.silent_windows.size();
    for (std::size_t i = 0; i < n; ++i) {
      const SilentWindow& window = s_.silent_windows[i];
      if (window.processor == proc && time_le(window.from, now) &&
          time_lt(now, window.to)) {
        silent = true;
        if (now < s_.silent_first_blocked[i]) {
          s_.silent_first_blocked[i] = now;
        }
      }
    }
    return silent;
  }

  void push(Time time, EventKind kind, std::size_t index) {
    s_.queue.push(
        Event{time, s_.seq++, static_cast<std::uint32_t>(index), kind});
  }

  void record(const TraceEvent& event) {
    if (event.time > s_.last_trace_date) s_.last_trace_date = event.time;
    if (!s_.summary) s_.trace.record(event);
  }

  ProcessorId pid(std::size_t index) const {
    return ProcessorId{static_cast<ProcessorId::underlying_type>(index)};
  }

  void collect_detected(std::vector<ProcessorId>& out) const {
    const std::size_t procs = plan_.procs;
    for (std::size_t q = 0; q < procs; ++q) {
      for (std::size_t p = 0; p < procs; ++p) {
        if (s_.proc_alive[p] && s_.flags[p * procs + q]) {
          out.push_back(pid(q));
          break;
        }
      }
    }
  }

  [[nodiscard]] unsigned dispatch(const Event& event) {
    switch (event.kind) {
      case EventKind::kFailure:
        // A death only disables computing/watching and frees links (the
        // dropped frames) — nothing but a transfer can become startable.
        return on_failure(event.time, event.index) ? kDirtyTransfers : 0;
      case EventKind::kOpDone:
        return on_op_done(event.time, event.index)
                   ? (kDirtyWatchers | kDirtyOps | kDirtyTransfers)
                   : 0;
      case EventKind::kHopDone:
        return on_hop_done(event.time, event.index)
                   ? (kDirtyWatchers | kDirtyOps | kDirtyTransfers)
                   : 0;
      case EventKind::kLinkFailure:
        return on_link_failure(event.time, event.index) ? kDirtyTransfers
                                                        : 0;
      case EventKind::kDeadline:
        // Watcher deadlines fire, slot-blocked transfers wake and silent
        // windows close at these instants; operations start on values, not
        // on time, so the op scan cannot find anything new.
        return kDirtyWatchers | kDirtyTransfers;
    }
    return 0;
  }

  bool on_failure(Time now, std::size_t p) {
    if (!s_.proc_alive[p]) return false;
    s_.proc_alive[p] = 0;
    if (s_.proc_busy[p]) s_.proc_abort[p] = 1;
    record({TraceEvent::Kind::kFailure, now, pid(p), {}, {}, -1, {}, {}});
    // In-flight transfers fed by the dead processor are lost; the medium
    // frees (a partial frame is discarded by the receivers).
    const std::size_t nstatic = plan_.transfers.size();
    for (std::size_t t = 0; t < nstatic; ++t) {
      if (s_.tr_status[t] != kInFlight) continue;
      const StaticTransfer& transfer = plan_.transfers[t];
      const HopRecord& hop = plan_.hops[transfer.hop_begin + s_.tr_hop[t]];
      if (hop.feed.index() != p) continue;
      s_.tr_status[t] = kCancelled;
      s_.link_busy[hop.link.index()] = 0;
      record({TraceEvent::Kind::kDrop, now, pid(p), transfer.to, {}, -1,
              transfer.dep, hop.link});
    }
    for (std::size_t d = 0; d < s_.dynamic.size(); ++d) {
      const std::size_t t = nstatic + d;
      if (s_.tr_status[t] != kInFlight) continue;
      const DynTransfer& transfer = s_.dynamic[d];
      const std::uint32_t hop = s_.tr_hop[t];
      if (transfer.route->hops[hop].index() != p) continue;
      s_.tr_status[t] = kCancelled;
      s_.link_busy[transfer.route->links[hop].index()] = 0;
      record({TraceEvent::Kind::kDrop, now, pid(p), transfer.to, {}, -1,
              transfer.dep, transfer.route->links[hop]});
    }
    return true;
  }

  /// A communication link fails permanently: the frame in flight is lost
  /// and nothing crosses the medium again (the paper's §8 future work; a
  /// processor failure already silences that processor's units, this models
  /// the medium itself dying).
  bool on_link_failure(Time now, std::size_t l) {
    if (!s_.link_alive[l]) return false;
    s_.link_alive[l] = 0;
    s_.link_busy[l] = 0;
    const LinkId link_id{static_cast<LinkId::underlying_type>(l)};
    record({TraceEvent::Kind::kFailure, now, {}, {}, {}, -1, {}, link_id});
    const std::size_t nstatic = plan_.transfers.size();
    for (std::size_t t = 0; t < nstatic; ++t) {
      if (s_.tr_status[t] != kInFlight) continue;
      const StaticTransfer& transfer = plan_.transfers[t];
      const HopRecord& hop = plan_.hops[transfer.hop_begin + s_.tr_hop[t]];
      if (hop.link != link_id) continue;
      s_.tr_status[t] = kCancelled;
      record({TraceEvent::Kind::kDrop, now, hop.feed, transfer.to, {}, -1,
              transfer.dep, link_id});
    }
    for (std::size_t d = 0; d < s_.dynamic.size(); ++d) {
      const std::size_t t = nstatic + d;
      if (s_.tr_status[t] != kInFlight) continue;
      const DynTransfer& transfer = s_.dynamic[d];
      const std::uint32_t hop = s_.tr_hop[t];
      if (transfer.route->links[hop] != link_id) continue;
      s_.tr_status[t] = kCancelled;
      record({TraceEvent::Kind::kDrop, now, transfer.route->hops[hop],
              transfer.to, {}, -1, transfer.dep, link_id});
    }
    return true;
  }

  bool on_op_done(Time now, std::size_t p) {
    if (!s_.proc_alive[p]) {
      s_.proc_abort[p] = 0;
      return false;
    }
    const OpRecord& op = plan_.ops[plan_.op_begin[p] + s_.proc_next[p]];
    if (Time& end = s_.op_end[op.op.index()]; now < end) end = now;
    if (!s_.summary) {
      record({TraceEvent::Kind::kOpEnd, now, pid(p), {}, op.op, op.rank,
              {}, {}});
    }
    for (std::uint32_t i = op.out_begin; i < op.out_end; ++i) {
      s_.has_value[p * s_.deps + plan_.op_out[i]] = 1;
    }
    s_.proc_busy[p] = 0;
    ++s_.proc_next[p];
    return true;
  }

  /// Shared tail of a completed hop: broadcast delivery to every live
  /// endpoint of the link. Every live processor attached to the medium
  /// observes the value: a bus delivers it to all endpoints (broadcast), a
  /// point-to-point link to the far endpoint. Observing a processor
  /// transmit is also proof of life: healthy processors keep scanning the
  /// medium and clear a fail flag that turns out to be a detection mistake
  /// or an intermittent fail-silent episode (§6.1 item 3).
  void deliver(DependencyId dep, LinkId link, ProcessorId feeding,
               bool certifies) {
    const std::size_t procs = plan_.procs;
    const std::uint32_t l = static_cast<std::uint32_t>(link.index());
    for (std::uint32_t i = plan_.link_ep_begin[l];
         i < plan_.link_ep_begin[l + 1]; ++i) {
      const std::uint32_t endpoint = plan_.link_ep[i];
      if (!s_.proc_alive[endpoint]) continue;
      s_.has_value[endpoint * s_.deps + dep.index()] = 1;
      if (certifies) s_.certified[endpoint * s_.deps + dep.index()] = 1;
      s_.flags[endpoint * procs + feeding.index()] = 0;
    }
  }

  bool on_hop_done(Time now, std::size_t t) {
    if (s_.tr_status[t] != kInFlight) return false;
    const std::size_t nstatic = plan_.transfers.size();
    const std::uint32_t hop = s_.tr_hop[t];
    if (t < nstatic) {
      const StaticTransfer& transfer = plan_.transfers[t];
      const HopRecord& h = plan_.hops[transfer.hop_begin + hop];
      s_.link_busy[h.link.index()] = 0;
      if (!s_.summary) {
        record({TraceEvent::Kind::kTransferEnd, now, h.feed, transfer.to,
                {}, -1, transfer.dep, h.link});
      }
      deliver(transfer.dep, h.link, h.feed, transfer.certifies);
      s_.tr_hop[t] = hop + 1;
      s_.tr_status[t] = (transfer.hop_begin + hop + 1 == transfer.hop_end)
                            ? kDone
                            : kIdle;
    } else {
      const DynTransfer& transfer = s_.dynamic[t - nstatic];
      const LinkId link = transfer.route->links[hop];
      const ProcessorId feeding = transfer.route->hops[hop];
      s_.link_busy[link.index()] = 0;
      if (!s_.summary) {
        record({TraceEvent::Kind::kTransferEnd, now, feeding, transfer.to,
                {}, -1, transfer.dep, link});
      }
      deliver(transfer.dep, link, feeding, /*certifies=*/true);
      s_.tr_hop[t] = hop + 1;
      s_.tr_status[t] =
          (hop + 1 == transfer.route->links.size()) ? kDone : kIdle;
    }
    return true;
  }

  /// Fixpoint: start everything that can start at `now`, scanning only the
  /// phases the batch's dispatches could have unblocked. A skipped phase
  /// would scan a state no event changed since the previous fixpoint, so
  /// it provably finds nothing to start and nothing to record — the trace
  /// is byte-identical to the every-phase-every-round original. Watcher
  /// progress (timeouts setting flags other chains skip on; elections
  /// creating backup sends) can cascade into watchers and transfers;
  /// nothing inside the fixpoint produces a new value at the same instant,
  /// so the op scan never needs a second round.
  void advance(Time now, unsigned dirty) {
    while (dirty != 0) {
      const bool watchers =
          (dirty & kDirtyWatchers) != 0 && progress_watchers(now);
      if ((dirty & kDirtyOps) != 0) start_operations(now);
      if ((dirty & kDirtyTransfers) != 0 || watchers) start_transfers(now);
      dirty = watchers ? (kDirtyWatchers | kDirtyTransfers) : 0;
    }
  }

  bool start_operations(Time now) {
    bool progress = false;
    const std::size_t procs = plan_.procs;
    for (std::size_t p = 0; p < procs; ++p) {
      if (!s_.proc_alive[p] || s_.proc_busy[p]) continue;
      const std::uint32_t slot = plan_.op_begin[p] + s_.proc_next[p];
      if (slot >= plan_.op_begin[p + 1]) continue;
      const OpRecord& op = plan_.ops[slot];
      bool ready = true;
      for (std::uint32_t i = op.in_begin; i < op.in_end; ++i) {
        if (!s_.has_value[p * s_.deps + plan_.op_in[i]]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      s_.proc_busy[p] = 1;
      if (!s_.summary) {
        record({TraceEvent::Kind::kOpStart, now, pid(p), {}, op.op, op.rank,
                {}, {}});
      }
      push(now + op.duration, EventKind::kOpDone, p);
      progress = true;
    }
    return progress;
  }

  /// Tries to start the idle transfer `t`; true when it turned terminal
  /// (a runtime transfer cancelled at start) and should be unlinked.
  bool transfer_step(Time now, std::uint32_t t, bool& progress) {
    const std::size_t nstatic = plan_.transfers.size();
    if (t < nstatic) {
      const StaticTransfer& transfer = plan_.transfers[t];
      const std::uint32_t hop = s_.tr_hop[t];
      const HopRecord& h = plan_.hops[transfer.hop_begin + hop];
      if (!s_.proc_alive[h.feed.index()]) return false;
      if (!s_.silent_windows.empty() && is_silent(h.feed, now)) {
        return false;  // retried at the window end
      }
      if (!s_.has_value[h.feed.index() * s_.deps + transfer.dep.index()]) {
        return false;
      }
      // Static transfers are time-triggered: hop i never starts before its
      // scheduled slot (§4.4).
      if (time_lt(now, h.slot)) {
        if (s_.tr_wake[t] != hop) {
          s_.tr_wake[t] = hop;
          push(h.slot, EventKind::kDeadline, t);
        }
        return false;
      }
      if (!s_.link_alive[h.link.index()] || s_.link_busy[h.link.index()]) {
        return false;
      }
      s_.link_busy[h.link.index()] = 1;
      s_.tr_status[t] = kInFlight;
      ++s_.n_transfer_starts;
      if (!s_.summary) {
        record({TraceEvent::Kind::kTransferStart, now, h.feed, transfer.to,
                {}, -1, transfer.dep, h.link});
      }
      push(now + h.duration, EventKind::kHopDone, t);
      progress = true;
      return false;
    }

    const DynTransfer& transfer = s_.dynamic[t - nstatic];
    const std::uint32_t hop = s_.tr_hop[t];
    const ProcessorId feeding = transfer.route->hops[hop];
    if (!s_.proc_alive[feeding.index()]) return false;
    if (!s_.silent_windows.empty() && is_silent(feeding, now)) return false;
    if (!s_.has_value[feeding.index() * s_.deps + transfer.dep.index()]) {
      return false;
    }
    // Runtime-created transfers are pointless once the destination got or
    // observed the value through another path.
    const std::vector<char>& dest_seen =
        transfer.liveness ? s_.certified : s_.has_value;
    if (dest_seen[transfer.to.index() * s_.deps + transfer.dep.index()]) {
      s_.tr_status[t] = kCancelled;
      record({TraceEvent::Kind::kDrop, now, feeding, transfer.to, {}, -1,
              transfer.dep, {}});
      progress = true;
      return true;
    }
    const LinkId link = transfer.route->links[hop];
    if (!s_.link_alive[link.index()] || s_.link_busy[link.index()]) {
      return false;
    }
    s_.link_busy[link.index()] = 1;
    s_.tr_status[t] = kInFlight;
    ++s_.n_transfer_starts;
    if (!s_.summary) {
      record({TraceEvent::Kind::kTransferStart, now, feeding, transfer.to,
              {}, -1, transfer.dep, link});
    }
    push(now + schedule_.problem().comm->duration(transfer.dep, link),
         EventKind::kHopDone, t);
    progress = true;
    return false;
  }

  bool start_transfers(Time now) {
    bool progress = false;
    std::uint32_t prev = kNoWake;
    std::uint32_t t = s_.tr_head;
    while (t != kNoWake) {
      // Unlinking never touches tr_next[t], so the cached successor stays
      // valid; in-flight transfers stay linked (they return to idle or
      // turn terminal only when their hop completes).
      const std::uint32_t next = s_.tr_next[t];
      const char status = s_.tr_status[t];
      bool retire = false;
      if (status == kIdle) {
        retire = transfer_step(now, t, progress);
      } else if (status != kInFlight) {
        // Went done/cancelled outside this scan (hop completion, processor
        // or link death); terminal states never revert.
        retire = true;
      }
      if (retire) {
        if (prev == kNoWake) {
          s_.tr_head = next;
        } else {
          s_.tr_next[prev] = next;
        }
        if (t == s_.tr_tail) s_.tr_tail = prev;
      } else {
        prev = t;
      }
      t = next;
    }
    return progress;
  }

  /// Advances one live watcher; true when it retired (see SimState::w_head
  /// for why retirement is permanent).
  bool watcher_step(Time now, std::uint32_t w, bool& progress) {
    const std::size_t procs = plan_.procs;
    const WatcherRec& watcher = plan_.watchers[w];
    const std::size_t recv = watcher.receiver.index();
    if (!s_.proc_alive[recv]) return true;

    const bool satisfied =
        watcher.backup_rank >= 0
            ? s_.certified[recv * s_.deps + watcher.dep.index()] != 0
            : s_.has_value[recv * s_.deps + watcher.dep.index()] != 0;
    if (satisfied) return true;

    std::uint32_t pos = s_.w_pos[w];
    const std::uint32_t entries = watcher.e_end - watcher.e_begin;
    while (pos < entries) {
      const WatchEntry& entry = plan_.wentries[watcher.e_begin + pos];
      if (s_.flags[recv * procs + entry.sender.index()]) {
        // Already known faulty (Figure 12: skip without waiting).
        ++pos;
        progress = true;
        continue;
      }
      if (time_ge(now, entry.deadline)) {
        s_.flags[recv * procs + entry.sender.index()] = 1;
        ++s_.n_timeouts;
        if (!s_.summary) {
          record({TraceEvent::Kind::kTimeout, now, watcher.receiver,
                  entry.sender, {}, entry.rank, watcher.dep, {}});
        }
        ++pos;
        progress = true;
        continue;
      }
      if (s_.w_sched[w] != pos) {
        s_.w_sched[w] = pos;
        push(entry.deadline, EventKind::kDeadline, w);
      }
      break;
    }
    s_.w_pos[w] = pos;

    // Watch chain exhausted: a backup replica takes over the send
    // (Figure 12's final `if m = i then send`); once it has computed the
    // value itself, it transmits to everyone still waiting.
    if (pos == entries && watcher.backup_rank >= 0 && !s_.w_sent[w]) {
      if (!s_.w_elected[w]) {
        s_.w_elected[w] = 1;
        ++s_.n_elections;
        if (!s_.summary) {
          record({TraceEvent::Kind::kElection, now, watcher.receiver, {},
                  {}, watcher.backup_rank, watcher.dep, {}});
        }
        progress = true;
      }
      if (s_.has_value[recv * s_.deps + watcher.dep.index()]) {
        s_.w_sent[w] = 1;
        create_backup_sends(watcher);
        progress = true;
      }
    }
    // Exhausted chain with nothing left to send: the pure-consumer
    // watcher has flagged every sender, the backup has transmitted.
    return pos == entries && (watcher.backup_rank < 0 || s_.w_sent[w]);
  }

  bool progress_watchers(Time now) {
    bool progress = false;
    std::uint32_t prev = kNoWake;
    std::uint32_t w = s_.w_head;
    while (w != kNoWake) {
      // Retirement never touches w_next[w], so the cached successor stays
      // valid across the unlink.
      const std::uint32_t next = s_.w_next[w];
      if (watcher_step(now, w, progress)) {
        if (prev == kNoWake) {
          s_.w_head = next;
        } else {
          s_.w_next[prev] = next;
        }
      } else {
        prev = w;
      }
      w = next;
    }
    return progress;
  }

  /// The elected backup sends the value to every consumer processor that
  /// still needs it and a liveness notification to every later backup
  /// (§6.1: "send the result to the units of successors and remainder
  /// backup processors").
  void create_backup_sends(const WatcherRec& watcher) {
    const Dependency& dep = graph_.dependency(watcher.dep);

    // Figure 12 sends unconditionally: a fail flag can be a detection
    // mistake (late message under contention), so filtering destinations by
    // flags could starve a healthy processor. A transfer to a dead
    // processor merely wastes a slot; cancel-at-start already suppresses
    // transfers whose destination got the value another way.
    auto enqueue = [&](ProcessorId to, bool liveness) {
      if (to == watcher.receiver) return;
      DynTransfer transfer;
      transfer.dep = watcher.dep;
      transfer.to = to;
      transfer.route = &routing_.route(watcher.receiver, to);
      transfer.liveness = liveness;
      s_.dynamic.push_back(std::move(transfer));
      const std::uint32_t t = static_cast<std::uint32_t>(s_.tr_hop.size());
      s_.tr_hop.push_back(0);
      s_.tr_wake.push_back(kNoWake);
      s_.tr_status.push_back(kIdle);
      // Append to the active list's tail: creation order, after every
      // static transfer — the order the old full scan used.
      s_.tr_next.push_back(kNoWake);
      if (s_.tr_tail == kNoWake) {
        s_.tr_head = t;
      } else {
        s_.tr_next[s_.tr_tail] = t;
      }
      s_.tr_tail = t;
    };

    for (const ScheduledOperation* consumer :
         schedule_.replicas_view(dep.dst)) {
      if (schedule_.replica_on(dep.src, consumer->processor) != nullptr) {
        continue;  // computes the producer locally
      }
      enqueue(consumer->processor, /*liveness=*/false);
    }
    for (const ScheduledOperation* later : schedule_.replicas_view(dep.src)) {
      if (later->rank <= watcher.backup_rank) continue;
      enqueue(later->processor, /*liveness=*/true);
    }
  }

  const Schedule& schedule_;
  const RoutingTable& routing_;
  const SimPlan& plan_;
  const EventSchedulerKind scheduler_;
  const AlgorithmGraph& graph_;
  SimState& s_;
};

/// Two coupled multiply-xorshift streams; not cryptographic, but every
/// absorbed word perturbs all 128 bits, which is what the ~0 collision rate
/// on the certifier's memo key needs.
class Hash128 {
 public:
  void absorb(std::uint64_t x) noexcept {
    a_ ^= x;
    a_ *= 0x9E3779B97F4A7C15ULL;
    a_ ^= a_ >> 29;
    b_ += x ^ (a_ >> 7);
    b_ *= 0xC2B2AE3D27D4EB4FULL;
    b_ ^= b_ >> 31;
  }
  void absorb_time(Time t) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(Time));
    std::memcpy(&bits, &t, sizeof(bits));
    absorb(bits);
  }
  [[nodiscard]] std::uint64_t hi() const noexcept { return a_; }
  [[nodiscard]] std::uint64_t lo() const noexcept { return b_; }

 private:
  std::uint64_t a_ = 0x243F6A8885A308D3ULL;
  std::uint64_t b_ = 0x13198A2E03707344ULL;
};

/// See Simulator::branch_digest for the hashed / excluded contract. The
/// exclusions rest on three facts, pinned by tests/sim/digest_test.cpp:
///  * wake-dedup stamps (tr_wake, w_sched) and their kDeadline fire TIMES
///    are derivable at a fixpoint — a blocked transfer (watcher) holds a
///    pending wake iff it is idle with its value before its slot
///    (deadline); the COUNT of pending kDeadline entries IS hashed, since
///    each dispatches as exactly one (fixpoint no-op) event and downstream
///    event counts must be a function of the digest;
///  * same-instant same-kind dispatch order (seq) commutes on state — a
///    batch drains fully before the fixpoint re-evaluates anything;
///  * intrusive active-list membership is lazy unlink bookkeeping with no
///    behavioural content.
StateDigest digest_state(const SimPlan& plan, const SimState& s,
                         const DigestOptions& opt) {
  const std::size_t procs = plan.procs;
  const std::size_t nstatic = plan.transfers.size();

  // Canonical victim relabeling: members of an interchangeable class are
  // reordered by a label-free sub-hash of their own state slice, so two
  // states differing only by which class member played victim canonicalize
  // identically. from_canon[q] = source processor occupying canonical
  // slot q; to_canon is its inverse.
  std::vector<std::uint32_t> to_canon(procs), from_canon(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    to_canon[p] = static_cast<std::uint32_t>(p);
    from_canon[p] = static_cast<std::uint32_t>(p);
  }
  bool relabeled = false;
  if (opt.proc_classes != nullptr) {
    std::vector<char> in_class(procs, 0);
    struct Keyed {
      std::uint64_t hi, lo;
      std::uint32_t p;
    };
    std::vector<Keyed> keyed;
    for (const std::vector<std::uint32_t>& cls : *opt.proc_classes) {
      for (std::uint32_t p : cls) in_class[p] = 1;
      keyed.clear();
      for (std::uint32_t p : cls) {
        // Label-free slice: relations to other class members are excluded
        // here (the class precondition makes them a function of the
        // column's own status) and hashed exactly under the final
        // permutation below.
        Hash128 h;
        h.absorb(static_cast<std::uint64_t>(s.proc_alive[p]) |
                 (static_cast<std::uint64_t>(s.proc_busy[p]) << 1) |
                 (static_cast<std::uint64_t>(s.proc_abort[p]) << 2));
        h.absorb(s.proc_next[p]);
        for (std::size_t q = 0; q < procs; ++q) {
          if (in_class[q]) continue;
          h.absorb(static_cast<std::uint64_t>(s.flags[p * procs + q]) |
                   (static_cast<std::uint64_t>(s.flags[q * procs + p]) << 1));
        }
        for (std::size_t d = 0; d < s.deps; ++d) {
          h.absorb(static_cast<std::uint64_t>(s.has_value[p * s.deps + d]) |
                   (static_cast<std::uint64_t>(s.certified[p * s.deps + d])
                    << 1));
        }
        std::vector<std::uint64_t> wins;
        for (std::size_t i = 0; i < s.silent_windows.size(); ++i) {
          if (s.silent_windows[i].processor.index() != p) continue;
          Hash128 wh;
          wh.absorb_time(s.silent_windows[i].from);
          wh.absorb_time(s.silent_windows[i].to);
          wh.absorb_time(s.silent_first_blocked[i]);
          wins.push_back(wh.hi() ^ wh.lo());
        }
        std::sort(wins.begin(), wins.end());
        for (std::uint64_t w : wins) h.absorb(w);
        keyed.push_back(Keyed{h.hi(), h.lo(), p});
      }
      std::sort(keyed.begin(), keyed.end(),
                [](const Keyed& a, const Keyed& b) {
                  if (a.hi != b.hi) return a.hi < b.hi;
                  if (a.lo != b.lo) return a.lo < b.lo;
                  return a.p < b.p;
                });
      for (std::size_t r = 0; r < cls.size(); ++r) {
        if (keyed[r].p != cls[r]) relabeled = true;
        from_canon[cls[r]] = keyed[r].p;
        to_canon[keyed[r].p] = cls[r];
      }
      for (std::uint32_t p : cls) in_class[p] = 0;
    }
  }

  Hash128 h;
  h.absorb(procs);
  h.absorb(plan.links);
  h.absorb(plan.deps);

  for (std::size_t q = 0; q < procs; ++q) {
    const std::uint32_t p = from_canon[q];
    h.absorb(static_cast<std::uint64_t>(s.proc_alive[p]) |
             (static_cast<std::uint64_t>(s.proc_busy[p]) << 1) |
             (static_cast<std::uint64_t>(s.proc_abort[p]) << 2));
    h.absorb(s.proc_next[p]);
  }
  for (std::size_t q1 = 0; q1 < procs; ++q1) {
    std::uint64_t row = 0;
    for (std::size_t q2 = 0; q2 < procs; ++q2) {
      row = (row << 1) | static_cast<std::uint64_t>(
                             s.flags[from_canon[q1] * procs + from_canon[q2]]);
      if ((q2 & 63u) == 63u) {
        h.absorb(row);
        row = 0;
      }
    }
    h.absorb(row);
  }
  for (std::size_t l = 0; l < plan.links; ++l) {
    h.absorb(static_cast<std::uint64_t>(s.link_alive[l]) |
             (static_cast<std::uint64_t>(s.link_busy[l]) << 1));
  }
  for (std::size_t t = 0; t < nstatic; ++t) {
    h.absorb((static_cast<std::uint64_t>(s.tr_hop[t]) << 2) |
             static_cast<std::uint64_t>(s.tr_status[t]));
  }
  for (std::size_t d = 0; d < s.dynamic.size(); ++d) {
    const DynTransfer& tr = s.dynamic[d];
    h.absorb((static_cast<std::uint64_t>(tr.dep.index()) << 1) |
             static_cast<std::uint64_t>(tr.liveness));
    h.absorb(to_canon[tr.to.index()]);
    // hops has links.size() + 1 entries (the destination closes the
    // route); pair each link with its feeding hop and absorb the final
    // hop alone.
    h.absorb(tr.route->hops.size());
    for (std::size_t i = 0; i < tr.route->links.size(); ++i) {
      h.absorb(to_canon[tr.route->hops[i].index()]);
      h.absorb(tr.route->links[i].index());
    }
    h.absorb(to_canon[tr.route->hops.back().index()]);
    const std::size_t t = nstatic + d;
    h.absorb((static_cast<std::uint64_t>(s.tr_hop[t]) << 2) |
             static_cast<std::uint64_t>(s.tr_status[t]));

  }
  for (std::size_t w = 0; w < plan.watchers.size(); ++w) {
    h.absorb((static_cast<std::uint64_t>(s.w_pos[w]) << 2) |
             (static_cast<std::uint64_t>(s.w_elected[w]) << 1) |
             static_cast<std::uint64_t>(s.w_sent[w]));
  }
  for (std::size_t q = 0; q < procs; ++q) {
    const std::uint32_t p = from_canon[q];
    std::uint64_t row = 0;
    for (std::size_t d = 0; d < s.deps; ++d) {
      row = (row << 2) |
            (static_cast<std::uint64_t>(s.has_value[p * s.deps + d]) << 1) |
            static_cast<std::uint64_t>(s.certified[p * s.deps + d]);
      if ((d & 31u) == 31u) {
        h.absorb(row);
        row = 0;
      }
    }
    h.absorb(row);
  }

  // Silent windows, canonicalized by what a future observer can still see:
  // a live window (victim alive, closing edge ahead of the frontier) keeps
  // (victim, effective opening edge, closing edge, first blocked instant);
  // a spent window survives only as its response-allowance contribution
  // (closing edge - first blocked instant), and only when the consumer's
  // verdict depends on the response envelope at all; windows that blocked
  // nothing and can block nothing vanish. This is what lets a crash that
  // kills a silenced victim collapse the whole remaining closing-edge grid
  // into one subtree.
  struct WindowEntry {
    int tag;
    std::uint32_t proc;
    Time a, b, c;
  };
  std::vector<WindowEntry> windows;
  for (std::size_t i = 0; i < s.silent_windows.size(); ++i) {
    const SilentWindow& w = s.silent_windows[i];
    const Time first = s.silent_first_blocked[i];
    const bool live = s.proc_alive[w.processor.index()] != 0 &&
                      time_lt(s.executed_until, w.to);
    if (live) {
      const Time from =
          time_le(w.from, s.executed_until) ? -kInfinite : w.from;
      windows.push_back(WindowEntry{0, to_canon[w.processor.index()], from,
                                    w.to,
                                    opt.with_allowance ? first : kInfinite});
    } else if (opt.with_allowance && !is_infinite(first)) {
      windows.push_back(WindowEntry{1, 0, 0, w.to - first, 0});
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const WindowEntry& x, const WindowEntry& y) {
              if (x.tag != y.tag) return x.tag < y.tag;
              if (x.proc != y.proc) return x.proc < y.proc;
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.c < y.c;
            });
  h.absorb(windows.size());
  for (const WindowEntry& w : windows) {
    h.absorb(static_cast<std::uint64_t>(w.tag));
    h.absorb(w.proc);
    h.absorb_time(w.a);
    h.absorb_time(w.b);
    h.absorb_time(w.c);
  }

  // Pending events, as a sorted multiset of (time, kind, canonical
  // subject). kDeadline entries are wake-ups, all derivable from the
  // hashed state (transfer slots, watcher deadlines, window closing
  // edges); everything else is real pending work.
  struct PendingEvent {
    Time time;
    std::uint8_t kind;
    std::uint32_t index;
  };
  std::vector<PendingEvent> pending;
  std::uint64_t deadline_count = 0;
  s.queue.for_each_pending([&](const Event& event) {
    if (event.kind == EventKind::kDeadline) {
      // Deadline fire TIMES are derivable wake-ups (excluded above), but
      // the COUNT of pending deadlines is not: each one dispatches as one
      // event, so two otherwise-equal states carrying different numbers of
      // no-op deadlines would execute different event counts downstream —
      // and the certifier's events_simulated metric must be a function of
      // the digest for memo replay to reproduce it exactly.
      ++deadline_count;
      return;
    }
    std::uint32_t index = event.index;
    if (event.kind == EventKind::kFailure ||
        event.kind == EventKind::kOpDone) {
      index = to_canon[index];
    }
    pending.push_back(
        PendingEvent{event.time, static_cast<std::uint8_t>(event.kind),
                     index});
  });
  std::sort(pending.begin(), pending.end(),
            [](const PendingEvent& x, const PendingEvent& y) {
              if (x.time != y.time) return x.time < y.time;
              if (x.kind != y.kind) return x.kind < y.kind;
              return x.index < y.index;
            });
  h.absorb(pending.size());
  for (const PendingEvent& event : pending) {
    h.absorb_time(event.time);
    h.absorb((static_cast<std::uint64_t>(event.index) << 3) | event.kind);
  }
  h.absorb(deadline_count);

  for (std::size_t op = 0; op < plan.op_count; ++op) {
    h.absorb_time(s.op_end[op]);
  }
  h.absorb_time(s.last_trace_date);

  StateDigest digest;
  digest.hi = h.hi();
  digest.lo = h.lo();
  digest.relabeled = relabeled;
  return digest;
}

}  // namespace

Simulator::Branch::Branch(std::unique_ptr<sim_detail::SimState> state)
    : state_(std::move(state)) {}
Simulator::Branch::Branch(Branch&&) noexcept = default;
Simulator::Branch& Simulator::Branch::operator=(Branch&&) noexcept = default;
Simulator::Branch::~Branch() = default;

Simulator::Branch Simulator::Branch::fork() const {
  auto copy = std::make_unique<sim_detail::SimState>(*state_);
  // Fork-local accounting: the copy inherits the prefix's behaviour but
  // not its cost — events it dispatches from here on are its own.
  copy->events_dispatched = 0;
  return Branch(std::move(copy));
}

Time Simulator::Branch::frontier() const {
  return state_->queue.empty() ? kInfinite : state_->queue.top().time;
}

std::size_t Simulator::Branch::executed_events() const {
  return state_->events_dispatched;
}

Simulator::Scratch::Scratch() = default;
Simulator::Scratch::Scratch(Scratch&&) noexcept = default;
Simulator::Scratch& Simulator::Scratch::operator=(Scratch&&) noexcept =
    default;
Simulator::Scratch::~Scratch() = default;

Simulator::Simulator(const Schedule& schedule, SimOptions options)
    : schedule_(&schedule),
      options_(options),
      routing_(*schedule.problem().architecture),
      timeouts_(schedule, routing_),
      plan_(sim_detail::build_plan(schedule, timeouts_)) {}

Simulator::~Simulator() = default;

IterationResult Simulator::run(const FailureScenario& scenario) const {
  FTSCHED_SPAN("sim.run");
  sim_detail::SimState state;
  Engine engine(*schedule_, routing_, *plan_, options_.scheduler, state);
  engine.init(scenario);
  engine.run_all();
  return engine.finish();
}

void Simulator::run_summary(const FailureScenario& scenario, Scratch& scratch,
                            IterationSummary& out) const {
  FTSCHED_SPAN("sim.run");
  if (!scratch.state_) {
    scratch.state_ = std::make_unique<sim_detail::SimState>();
  }
  sim_detail::SimState& state = *scratch.state_;
  state.summary = true;
  Engine engine(*schedule_, routing_, *plan_, options_.scheduler, state);
  engine.init(scenario);
  engine.run_all();
  engine.finish_summary(out);
}

Simulator::Branch Simulator::begin(const FailureScenario& scenario) const {
  auto state = std::make_unique<sim_detail::SimState>();
  Engine(*schedule_, routing_, *plan_, options_.scheduler, *state)
      .init(scenario);
  return Branch(std::move(state));
}

void Simulator::advance_until(Branch& branch, Time t) const {
  Engine(*schedule_, routing_, *plan_, options_.scheduler, *branch.state_)
      .run_until(t);
}

void Simulator::inject(Branch& branch, const FailureEvent& failure) const {
  Engine(*schedule_, routing_, *plan_, options_.scheduler, *branch.state_)
      .inject(failure);
}

void Simulator::inject(Branch& branch,
                       const LinkFailureEvent& failure) const {
  Engine(*schedule_, routing_, *plan_, options_.scheduler, *branch.state_)
      .inject(failure);
}

void Simulator::inject(Branch& branch, const SilentWindow& window) const {
  Engine(*schedule_, routing_, *plan_, options_.scheduler, *branch.state_)
      .inject(window);
}

IterationResult Simulator::finish(Branch branch) const {
  FTSCHED_SPAN("sim.finish");
  Engine engine(*schedule_, routing_, *plan_, options_.scheduler,
                *branch.state_);
  engine.run_all();
  return engine.finish();
}

StateDigest Simulator::branch_digest(const Branch& branch,
                                     const DigestOptions& options) const {
  return digest_state(*plan_, *branch.state_, options);
}

}  // namespace ftsched
