#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>
#include <queue>

#include "graph/algorithm_graph.hpp"
#include "obs/span.hpp"

namespace ftsched {

namespace sim_detail {

struct Transfer {
  DependencyId dep;
  int sender_rank = 0;
  ProcessorId from;
  ProcessorId to;
  /// The actual route (static transfers: reconstructed from the schedule
  /// segments, which may follow a disjoint detour; dynamic transfers: the
  /// shortest route). hops[i] feeds links[i].
  Route route;
  std::size_t hop = 0;
  /// Static transfers are time-triggered: hop i never starts before its
  /// scheduled slot. This makes the failure-free run replay the static
  /// schedule exactly (each link's static total order is enforced by the
  /// slots themselves, §4.4); under failures a late value simply starts
  /// its hop late. Empty for runtime-created (backup) transfers.
  std::vector<Time> slots;
  bool dynamic = false;
  /// Liveness notification to a later backup (cancelled once the
  /// destination has certified the dependency's distribution).
  bool liveness = false;
  /// Observing this transfer certifies the sender finished distributing
  /// the value: dynamic (elected-backup) sends, static liveness sends,
  /// and the final static consumer delivery.
  bool certifies = false;
  bool in_flight = false;
  bool done = false;
  bool cancelled = false;
  std::size_t wake_scheduled_hop = static_cast<std::size_t>(-1);
};

struct Watcher {
  const TimeoutChain* chain = nullptr;
  std::size_t pos = 0;
  /// Rank of the local backup replica of the producer; -1 for a pure
  /// consumer watcher.
  int backup_rank = -1;
  bool elected = false;
  bool sent = false;
  std::size_t scheduled_pos = static_cast<std::size_t>(-1);
};

/// Everything about a run that does not depend on the failure scenario,
/// derived from the schedule exactly once per Simulator. A campaign runs
/// tens of thousands of scenarios against one schedule; rebuilding the
/// per-processor programs (a scan + sort each), reconstructing every static
/// transfer's route from its segments, and re-resolving watcher backup
/// ranks per scenario dominated Run::init. Runs now point at the programs
/// (read-only during execution) and copy the transfer/watcher templates,
/// whose run-state fields start at their defaults.
struct SimPlan {
  std::vector<std::vector<const ScheduledOperation*>> programs;  // [proc]
  std::vector<Transfer> transfers;
  std::vector<Watcher> watchers;
};

std::unique_ptr<const SimPlan> build_plan(const Schedule& schedule,
                                          const TimeoutTable& timeouts) {
  const AlgorithmGraph& graph = *schedule.problem().algorithm;
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  auto plan = std::make_unique<SimPlan>();

  const std::size_t procs = arch.processor_count();
  plan->programs.resize(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    plan->programs[p] = schedule.operations_on(
        ProcessorId{static_cast<ProcessorId::underlying_type>(p)});
  }

  // Static transfers, in schedule order (their creation order). The
  // latest-ending consumer delivery of each dependency certifies the
  // main's end of distribution (see ScheduledComm::liveness).
  std::vector<Time> final_end(graph.dependency_count(), 0);
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active || comm.liveness || comm.segments.empty()) continue;
    final_end[comm.dep.index()] =
        std::max(final_end[comm.dep.index()], comm.segments.back().end);
  }
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active) continue;
    Transfer transfer;
    transfer.dep = comm.dep;
    transfer.sender_rank = comm.sender_rank;
    transfer.from = comm.from;
    transfer.to = comm.to;
    transfer.liveness = comm.liveness;
    transfer.certifies =
        comm.liveness ||
        (!comm.segments.empty() &&
         time_ge(comm.segments.back().end, final_end[comm.dep.index()]));
    transfer.route.hops = schedule.comm_hops(comm);
    for (const CommSegment& segment : comm.segments) {
      transfer.route.links.push_back(segment.link);
      transfer.slots.push_back(segment.start);
    }
    plan->transfers.push_back(std::move(transfer));
  }

  // Watch chains (solution 1 and the hybrid's passive dependencies; the
  // TimeoutTable already excludes actively replicated ones).
  if (schedule.kind() == HeuristicKind::kSolution1 ||
      schedule.kind() == HeuristicKind::kHybrid) {
    for (const TimeoutChain& chain : timeouts.chains()) {
      Watcher watcher;
      watcher.chain = &chain;
      const Dependency& dep = graph.dependency(chain.dep);
      if (const ScheduledOperation* local =
              schedule.replica_on(dep.src, chain.receiver)) {
        watcher.backup_rank = local->rank;
      }
      plan->watchers.push_back(watcher);
    }
  }
  return plan;
}

}  // namespace sim_detail

namespace {

using sim_detail::SimPlan;
using sim_detail::Transfer;
using sim_detail::Watcher;

/// Event kinds, in same-instant processing order: deliveries first (a value
/// arriving exactly at a deadline satisfies the watcher), then completions,
/// then failures (an operation finishing at the failure instant counts),
/// then deadlines.
enum class EventKind {
  kHopDone = 0,
  kOpDone = 1,
  kFailure = 2,
  kLinkFailure = 3,
  kDeadline = 4,
};

struct Event {
  Time time;
  EventKind kind;
  std::size_t seq;    // deterministic FIFO tie-break
  std::size_t index;  // proc / transfer / watcher index, per kind

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return seq > other.seq;
  }
};

class Run {
 public:
  Run(const Schedule& schedule, const RoutingTable& routing,
      const SimPlan& plan, const FailureScenario& scenario)
      : schedule_(schedule),
        routing_(routing),
        plan_(plan),
        graph_(*schedule.problem().algorithm),
        arch_(*schedule.problem().architecture) {
    init(scenario);
  }

  IterationResult execute() {
    advance(0);
    while (!queue_.empty()) {
      // Drain every event of this instant before re-evaluating the system,
      // so that e.g. an operation completing at t and the link freeing at t
      // are both visible when the arbiter picks the next transfer.
      const Time now = queue_.top().time;
      while (!queue_.empty() && queue_.top().time == now) {
        const Event event = queue_.top();
        queue_.pop();
        dispatch(event);
      }
      advance(now);
    }
    return finish();
  }

 private:
  struct Proc {
    bool alive = true;
    /// Static program of this processor, owned by the SimPlan (read-only
    /// during execution; only `next` advances).
    const std::vector<const ScheduledOperation*>* program = nullptr;
    std::size_t next = 0;
    bool busy = false;
    bool abort = false;  // the running operation died with the processor
    std::vector<char> flags;  // flags[q]: believes processor q failed
  };

  struct LinkState {
    bool busy = false;
    bool alive = true;
  };

  void init(const FailureScenario& scenario) {
    const std::size_t procs = arch_.processor_count();
    procs_.resize(procs);
    for (std::size_t p = 0; p < procs; ++p) {
      procs_[p].flags.assign(procs, 0);
      procs_[p].program = &plan_.programs[p];
    }
    links_.resize(arch_.link_count());
    deps_ = graph_.dependency_count();
    has_value_.assign(procs * deps_, 0);
    observed_.assign(procs * deps_, 0);
    certified_.assign(procs * deps_, 0);

    // Transfer and watcher templates start with their run-state fields at
    // the defaults; dynamic (backup) transfers are appended at runtime.
    transfers_ = plan_.transfers;
    watchers_ = plan_.watchers;

    // Failures known since a previous iteration: dead, and flagged by all.
    for (ProcessorId dead : scenario.failed_at_start) {
      procs_[dead.index()].alive = false;
      for (Proc& proc : procs_) {
        proc.flags[dead.index()] = 1;
      }
    }
    // Detection mistakes carried over: flagged by everyone, yet alive.
    for (ProcessorId suspect : scenario.suspected_at_start) {
      for (Proc& proc : procs_) {
        proc.flags[suspect.index()] = 1;
      }
      procs_[suspect.index()].flags[suspect.index()] = 0;
    }
    // Mid-iteration crashes.
    for (const FailureEvent& failure : scenario.events) {
      push(failure.time, EventKind::kFailure, failure.processor.index());
    }
    // Link failures.
    for (LinkId link : scenario.failed_links_at_start) {
      links_[link.index()].alive = false;
    }
    for (const LinkFailureEvent& failure : scenario.link_events) {
      push(failure.time, EventKind::kLinkFailure, failure.link.index());
    }
    // Fail-silent windows: blocked sends must be retried when each window
    // closes, so schedule a generic wake-up at every window end.
    silent_windows_ = scenario.silent_windows;
    for (const SilentWindow& window : silent_windows_) {
      push(window.to, EventKind::kDeadline, 0);
    }
  }

  /// True while `proc`'s communication units are omitting sends
  /// (intermittent fail-silent episode, §6.1 item 3).
  bool is_silent(ProcessorId proc, Time now) const {
    for (const SilentWindow& window : silent_windows_) {
      if (window.processor == proc && time_le(window.from, now) &&
          time_lt(now, window.to)) {
        return true;
      }
    }
    return false;
  }

  void push(Time time, EventKind kind, std::size_t index) {
    queue_.push(Event{time, kind, seq_++, index});
  }

  void record(TraceEvent event) { trace_.record(std::move(event)); }

  ProcessorId pid(std::size_t index) const {
    return ProcessorId{static_cast<ProcessorId::underlying_type>(index)};
  }

  void dispatch(const Event& event) {
    switch (event.kind) {
      case EventKind::kFailure:
        on_failure(event.time, event.index);
        break;
      case EventKind::kOpDone:
        on_op_done(event.time, event.index);
        break;
      case EventKind::kHopDone:
        on_hop_done(event.time, event.index);
        break;
      case EventKind::kLinkFailure:
        on_link_failure(event.time, event.index);
        break;
      case EventKind::kDeadline:
        break;  // advance() re-examines watchers at this instant
    }
  }

  void on_failure(Time now, std::size_t p) {
    Proc& proc = procs_[p];
    if (!proc.alive) return;
    proc.alive = false;
    if (proc.busy) proc.abort = true;
    record({TraceEvent::Kind::kFailure, now, pid(p), {}, {}, -1, {}, {}});
    // In-flight transfers fed by the dead processor are lost; the medium
    // frees (a partial frame is discarded by the receivers).
    for (std::size_t t = 0; t < transfers_.size(); ++t) {
      Transfer& transfer = transfers_[t];
      if (!transfer.in_flight) continue;
      if (transfer.route.hops[transfer.hop].index() != p) continue;
      transfer.in_flight = false;
      transfer.cancelled = true;
      links_[transfer.route.links[transfer.hop].index()].busy = false;
      record({TraceEvent::Kind::kDrop, now, pid(p), transfer.to, {}, -1,
              transfer.dep, transfer.route.links[transfer.hop]});
    }
  }

  /// A communication link fails permanently: the frame in flight is lost
  /// and nothing crosses the medium again (the paper's §8 future work; a
  /// processor failure already silences that processor's units, this models
  /// the medium itself dying).
  void on_link_failure(Time now, std::size_t l) {
    LinkState& link = links_[l];
    if (!link.alive) return;
    link.alive = false;
    link.busy = false;
    const LinkId link_id{static_cast<LinkId::underlying_type>(l)};
    record({TraceEvent::Kind::kFailure, now, {}, {}, {}, -1, {}, link_id});
    for (std::size_t t = 0; t < transfers_.size(); ++t) {
      Transfer& transfer = transfers_[t];
      if (!transfer.in_flight) continue;
      if (transfer.route.links[transfer.hop] != link_id) continue;
      transfer.in_flight = false;
      transfer.cancelled = true;
      record({TraceEvent::Kind::kDrop, now,
              transfer.route.hops[transfer.hop], transfer.to, {}, -1,
              transfer.dep, link_id});
    }
  }

  void on_op_done(Time now, std::size_t p) {
    Proc& proc = procs_[p];
    if (!proc.alive) {
      proc.abort = false;
      return;
    }
    const ScheduledOperation* placement = (*proc.program)[proc.next];
    record({TraceEvent::Kind::kOpEnd, now, pid(p), {}, placement->op,
            placement->rank, {}, {}});
    for (DependencyId out : graph_.out_dependencies(placement->op)) {
      has_value_[p * deps_ + out.index()] = 1;
    }
    proc.busy = false;
    ++proc.next;
  }

  void on_hop_done(Time now, std::size_t t) {
    Transfer& transfer = transfers_[t];
    if (transfer.cancelled || !transfer.in_flight) return;
    transfer.in_flight = false;
    const LinkId link = transfer.route.links[transfer.hop];
    links_[link.index()].busy = false;
    record({TraceEvent::Kind::kTransferEnd, now,
            transfer.route.hops[transfer.hop], transfer.to, {}, -1,
            transfer.dep, link});
    // Every live processor attached to the medium observes the value: a bus
    // delivers it to all endpoints (broadcast), a point-to-point link to the
    // far endpoint. Observing a processor transmit is also proof of life:
    // healthy processors keep scanning the medium and clear a fail flag that
    // turns out to be a detection mistake or an intermittent fail-silent
    // episode (§6.1 item 3).
    const ProcessorId feeding = transfer.route.hops[transfer.hop];
    for (ProcessorId endpoint : arch_.link(link).endpoints) {
      if (!procs_[endpoint.index()].alive) continue;
      has_value_[endpoint.index() * deps_ + transfer.dep.index()] = 1;
      observed_[endpoint.index() * deps_ + transfer.dep.index()] = 1;
      if (transfer.certifies) {
        certified_[endpoint.index() * deps_ + transfer.dep.index()] = 1;
      }
      procs_[endpoint.index()].flags[feeding.index()] = 0;
    }
    ++transfer.hop;
    if (transfer.hop == transfer.route.links.size()) transfer.done = true;
  }

  /// Fixpoint: start everything that can start at `now`.
  void advance(Time now) {
    bool progress = true;
    while (progress) {
      progress = false;
      progress |= progress_watchers(now);
      progress |= start_operations(now);
      progress |= start_transfers(now);
    }
  }

  bool start_operations(Time now) {
    bool progress = false;
    for (std::size_t p = 0; p < procs_.size(); ++p) {
      Proc& proc = procs_[p];
      if (!proc.alive || proc.busy || proc.next >= proc.program->size()) {
        continue;
      }
      const ScheduledOperation* placement = (*proc.program)[proc.next];
      bool ready = true;
      for (DependencyId dep : graph_.precedence_in_ref(placement->op)) {
        if (!has_value_[p * deps_ + dep.index()]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      const Time duration = placement->end - placement->start;
      proc.busy = true;
      record({TraceEvent::Kind::kOpStart, now, pid(p), {}, placement->op,
              placement->rank, {}, {}});
      push(now + duration, EventKind::kOpDone, p);
      progress = true;
    }
    return progress;
  }

  bool start_transfers(Time now) {
    bool progress = false;
    for (std::size_t t = 0; t < transfers_.size(); ++t) {
      Transfer& transfer = transfers_[t];
      if (transfer.done || transfer.cancelled || transfer.in_flight) continue;
      const ProcessorId feeding = transfer.route.hops[transfer.hop];
      if (!procs_[feeding.index()].alive) continue;
      if (is_silent(feeding, now)) continue;  // retried at the window end
      if (!has_value_[feeding.index() * deps_ + transfer.dep.index()]) {
        continue;
      }
      if (!transfer.slots.empty() &&
          time_lt(now, transfer.slots[transfer.hop])) {
        if (transfer.wake_scheduled_hop != transfer.hop) {
          transfer.wake_scheduled_hop = transfer.hop;
          push(transfer.slots[transfer.hop], EventKind::kDeadline, t);
        }
        continue;
      }
      // Runtime-created transfers are pointless once the destination got or
      // observed the value through another path.
      if (transfer.dynamic) {
        const std::vector<char>& dest_seen =
            transfer.liveness ? certified_ : has_value_;
        if (dest_seen[transfer.to.index() * deps_ + transfer.dep.index()]) {
          transfer.cancelled = true;
          record({TraceEvent::Kind::kDrop, now, feeding, transfer.to, {}, -1,
                  transfer.dep, {}});
          progress = true;
          continue;
        }
      }
      LinkState& link = links_[transfer.route.links[transfer.hop].index()];
      if (!link.alive || link.busy) continue;
      link.busy = true;
      transfer.in_flight = true;
      const LinkId link_id = transfer.route.links[transfer.hop];
      record({TraceEvent::Kind::kTransferStart, now, feeding, transfer.to,
              {}, -1, transfer.dep, link_id});
      push(now + schedule_.problem().comm->duration(transfer.dep, link_id),
           EventKind::kHopDone, t);
      progress = true;
    }
    return progress;
  }

  bool progress_watchers(Time now) {
    bool progress = false;
    for (std::size_t w = 0; w < watchers_.size(); ++w) {
      Watcher& watcher = watchers_[w];
      const TimeoutChain& chain = *watcher.chain;
      const std::size_t recv = chain.receiver.index();
      Proc& proc = procs_[recv];
      if (!proc.alive) continue;

      const bool satisfied =
          watcher.backup_rank >= 0
              ? certified_[recv * deps_ + chain.dep.index()] != 0
              : has_value_[recv * deps_ + chain.dep.index()] != 0;
      if (satisfied) continue;

      while (watcher.pos < chain.entries.size()) {
        const TimeoutEntry& entry = chain.entries[watcher.pos];
        if (proc.flags[entry.sender.index()]) {
          // Already known faulty (Figure 12: skip without waiting).
          ++watcher.pos;
          progress = true;
          continue;
        }
        if (time_ge(now, entry.deadline)) {
          proc.flags[entry.sender.index()] = 1;
          record({TraceEvent::Kind::kTimeout, now, chain.receiver,
                  entry.sender, {}, entry.rank, chain.dep, {}});
          ++watcher.pos;
          progress = true;
          continue;
        }
        if (watcher.scheduled_pos != watcher.pos) {
          watcher.scheduled_pos = watcher.pos;
          push(entry.deadline, EventKind::kDeadline, w);
        }
        break;
      }

      // Watch chain exhausted: a backup replica takes over the send
      // (Figure 12's final `if m = i then send`); once it has computed the
      // value itself, it transmits to everyone still waiting.
      if (watcher.pos == chain.entries.size() && watcher.backup_rank >= 0 &&
          !watcher.sent) {
        if (!watcher.elected) {
          watcher.elected = true;
          record({TraceEvent::Kind::kElection, now, chain.receiver, {}, {},
                  watcher.backup_rank, chain.dep, {}});
          progress = true;
        }
        if (has_value_[recv * deps_ + chain.dep.index()]) {
          watcher.sent = true;
          create_backup_sends(now, watcher);
          progress = true;
        }
      }
    }
    return progress;
  }

  /// The elected backup sends the value to every consumer processor that
  /// still needs it and a liveness notification to every later backup
  /// (§6.1: "send the result to the units of successors and remainder
  /// backup processors").
  void create_backup_sends(Time now, const Watcher& watcher) {
    (void)now;
    const TimeoutChain& chain = *watcher.chain;
    const Dependency& dep = graph_.dependency(chain.dep);

    // Figure 12 sends unconditionally: a fail flag can be a detection
    // mistake (late message under contention), so filtering destinations by
    // flags could starve a healthy processor. A transfer to a dead
    // processor merely wastes a slot; cancel-at-start already suppresses
    // transfers whose destination got the value another way.
    auto enqueue = [&](ProcessorId to, bool liveness) {
      if (to == chain.receiver) return;
      Transfer transfer;
      transfer.dep = chain.dep;
      transfer.sender_rank = watcher.backup_rank;
      transfer.from = chain.receiver;
      transfer.to = to;
      transfer.route = routing_.route(chain.receiver, to);
      transfer.dynamic = true;
      transfer.liveness = liveness;
      transfer.certifies = true;
      transfers_.push_back(transfer);
    };

    for (const ScheduledOperation* consumer :
         schedule_.replicas_view(dep.dst)) {
      if (schedule_.replica_on(dep.src, consumer->processor) != nullptr) {
        continue;  // computes the producer locally
      }
      enqueue(consumer->processor, /*liveness=*/false);
    }
    for (const ScheduledOperation* later : schedule_.replicas_view(dep.src)) {
      if (later->rank <= watcher.backup_rank) continue;
      enqueue(later->processor, /*liveness=*/true);
    }
  }

  IterationResult finish() {
    IterationResult result;
    result.all_outputs_produced = true;
    Time response = 0;
    for (const Operation& op : graph_.operations()) {
      if (op.kind != OperationKind::kExtioOut) continue;
      const Time earliest = trace_.earliest_op_end(op.id);
      if (is_infinite(earliest)) {
        result.all_outputs_produced = false;
      } else {
        response = std::max(response, earliest);
      }
    }
    result.response_time =
        result.all_outputs_produced ? response : kInfinite;

    std::vector<char> flagged(procs_.size(), 0);
    for (const Proc& proc : procs_) {
      if (!proc.alive) continue;
      for (std::size_t q = 0; q < procs_.size(); ++q) {
        if (proc.flags[q]) flagged[q] = 1;
      }
    }
    for (std::size_t q = 0; q < procs_.size(); ++q) {
      if (flagged[q]) result.detected_failures.push_back(pid(q));
    }
    result.trace = std::move(trace_);
    return result;
  }

  const Schedule& schedule_;
  const RoutingTable& routing_;
  const SimPlan& plan_;
  const AlgorithmGraph& graph_;
  const ArchitectureGraph& arch_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::size_t seq_ = 0;
  Trace trace_;
  std::vector<Proc> procs_;
  std::vector<LinkState> links_;
  std::vector<Transfer> transfers_;
  std::vector<Watcher> watchers_;
  std::vector<SilentWindow> silent_windows_;
  std::size_t deps_ = 0;          // stride of the [proc][dep] tables below
  std::vector<char> has_value_;   // [proc * deps_ + dep]
  std::vector<char> observed_;    // [proc * deps_ + dep]
  std::vector<char> certified_;   // [proc * deps_ + dep]
};

}  // namespace

Simulator::Simulator(const Schedule& schedule)
    : schedule_(&schedule),
      routing_(*schedule.problem().architecture),
      timeouts_(schedule, routing_),
      plan_(sim_detail::build_plan(schedule, timeouts_)) {}

Simulator::~Simulator() = default;

IterationResult Simulator::run(const FailureScenario& scenario) const {
  FTSCHED_SPAN("sim.run");
  return Run(*schedule_, routing_, *plan_, scenario).execute();
}

}  // namespace ftsched
