// Fail-stop failure scenarios injected into the simulator (paper §5.1:
// accidental, physical, internal, operational, permanent processor failures
// with fail-stop behaviour — the processor halts, volatile state is lost,
// its communication units fall silent).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace ftsched {

struct FailureEvent {
  ProcessorId processor;
  /// Instant the processor halts (within the simulated iteration).
  Time time = 0;

  friend bool operator==(const FailureEvent&, const FailureEvent&) = default;
};

/// A communication link dying mid-iteration (the paper's §8 future work:
/// "new solutions to tolerate also the communication link failures"). The
/// frame in flight is lost and the medium never carries data again.
struct LinkFailureEvent {
  LinkId link;
  Time time = 0;

  friend bool operator==(const LinkFailureEvent&,
                         const LinkFailureEvent&) = default;
};

/// Intermittent fail-silent episode (§6.1 item 3): during [from, to) the
/// processor's communication units transmit nothing, but it keeps computing
/// and receiving. Healthy peers flag it on their watch deadlines; once it
/// resumes sending, the bus-scanning rejoin logic clears the flags.
struct SilentWindow {
  ProcessorId processor;
  Time from = 0;
  Time to = 0;

  friend bool operator==(const SilentWindow&, const SilentWindow&) = default;
};

struct FailureScenario {
  /// Processors that crash mid-iteration.
  std::vector<FailureEvent> events;
  /// Processors already dead — and known dead by every healthy processor —
  /// when the iteration starts (the paper's "subsequent iterations" after a
  /// transient iteration detected the failure, §5.6 criterion 3).
  std::vector<ProcessorId> failed_at_start;
  /// Transient send omissions (intermittent fail-silent behaviour).
  std::vector<SilentWindow> silent_windows;
  /// Links that die mid-iteration / are dead from the start.
  std::vector<LinkFailureEvent> link_events;
  std::vector<LinkId> failed_links_at_start;
  /// Healthy processors wrongly believed dead when the iteration starts
  /// (detection mistakes carried over from a previous iteration): every
  /// other processor pre-sets their fail flag, but they run normally and
  /// can be rehabilitated by the rejoin logic once observed sending.
  std::vector<ProcessorId> suspected_at_start;

  [[nodiscard]] static FailureScenario none() { return {}; }

  [[nodiscard]] static FailureScenario crash(ProcessorId processor,
                                             Time time) {
    FailureScenario scenario;
    scenario.events.push_back(FailureEvent{processor, time});
    return scenario;
  }

  [[nodiscard]] static FailureScenario dead_from_start(
      std::vector<ProcessorId> processors) {
    FailureScenario scenario;
    scenario.failed_at_start = std::move(processors);
    return scenario;
  }

  /// Number of distinct processors genuinely faulted by this scenario
  /// (mid-run crashes plus dead-from-start). Processors only: link faults
  /// are outside the paper's failure hypothesis (§5.1) and are counted
  /// separately by link_failure_count(). Silent windows and wrong
  /// suspicions are not failures — the §6.1-item-3 machinery masks them
  /// for free.
  [[nodiscard]] std::size_t failure_count() const {
    std::vector<ProcessorId> procs = failed_at_start;
    for (const FailureEvent& event : events) procs.push_back(event.processor);
    std::sort(procs.begin(), procs.end());
    procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
    return procs.size();
  }

  /// Number of distinct links killed by this scenario (mid-run deaths plus
  /// dead-from-start).
  [[nodiscard]] std::size_t link_failure_count() const {
    std::vector<LinkId> links = failed_links_at_start;
    for (const LinkFailureEvent& event : link_events) links.push_back(event.link);
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
    return links.size();
  }

  /// Faults of every class: the honest "how much did this scenario inject"
  /// answer the campaign oracle budgets against.
  [[nodiscard]] std::size_t total_fault_count() const {
    return failure_count() + link_failure_count();
  }

  /// Structural (exact, order-sensitive) equality. The mission runner uses
  /// it to skip re-simulating consecutive identical iterations; use
  /// campaign/canonical.hpp to compare scenarios up to ordering.
  friend bool operator==(const FailureScenario&,
                         const FailureScenario&) = default;
};

/// All subsets of `processors` with size in [1, max_failures]; used by the
/// exhaustive fault-tolerance property tests.
[[nodiscard]] std::vector<std::vector<ProcessorId>> failure_subsets(
    std::size_t processors, std::size_t max_failures);

}  // namespace ftsched
