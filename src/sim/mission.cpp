#include "sim/mission.hpp"

#include <algorithm>
#include <cstring>

#include "arch/architecture_graph.hpp"
#include "core/text.hpp"

namespace ftsched {

MissionResult run_mission(const Schedule& schedule, int iterations,
                          const std::vector<MissionFailure>& failures,
                          const std::vector<MissionSilence>& silences) {
  MissionPlan plan;
  plan.iterations = iterations;
  plan.failures = failures;
  plan.silences = silences;
  return run_mission(schedule, plan);
}

MissionResult run_mission(const Schedule& schedule, const MissionPlan& plan) {
  return run_mission(Simulator(schedule), plan);
}

MissionResult run_mission(const Simulator& simulator,
                          const MissionPlan& plan) {
  MissionScratch scratch;
  return run_mission(simulator, plan, scratch);
}

MissionResult run_mission(const Simulator& simulator, const MissionPlan& plan,
                          MissionScratch& x) {
  FTSCHED_REQUIRE(plan.iterations > 0,
                  "a mission needs at least one iteration");

  // The initial knowledge is a set; normalize its presentation (sorted,
  // duplicate-free, suspicion subsumed by known death) so the iteration
  // summaries depend on the fault pattern, not on input ordering — the
  // invariant the campaign's canonical-fingerprint replay cache relies on.
  auto as_set = [](std::vector<ProcessorId>& procs) {
    std::sort(procs.begin(), procs.end());
    procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  };
  std::vector<ProcessorId>& dead = x.dead;  // genuinely dead, any iteration
  dead = plan.dead_at_start;
  as_set(dead);
  std::vector<ProcessorId>& known = x.known;  // dead AND known by survivors
  known = dead;
  std::vector<ProcessorId>& suspected = x.suspected;  // alive but flagged
  suspected = plan.suspected_at_start;
  as_set(suspected);
  std::erase_if(suspected, [&](ProcessorId proc) {
    return std::find(dead.begin(), dead.end(), proc) != dead.end();
  });
  std::vector<LinkId>& dead_links = x.dead_links;
  dead_links = plan.dead_links_at_start;

  MissionResult result;
  result.iterations.reserve(static_cast<std::size_t>(plan.iterations));
  // Once the survivors' knowledge settles (steady state of a
  // failed-at-start-only mission), consecutive iterations face the exact
  // same scenario; the simulation is deterministic, so the previous
  // iteration's result is reused instead of re-simulated.
  x.has_previous = false;
  IterationSummary& cached = x.summary;
  for (int i = 0; i < plan.iterations; ++i) {
    FailureScenario& scenario = x.scenario;
    scenario.events.clear();
    scenario.silent_windows.clear();
    scenario.link_events.clear();
    scenario.failed_at_start = known;
    scenario.suspected_at_start = suspected;
    scenario.failed_links_at_start = dead_links;
    // Dead-but-undetected processors are silent from the very start of this
    // iteration; survivors rediscover them through their watch chains.
    for (ProcessorId proc : dead) {
      if (std::find(known.begin(), known.end(), proc) == known.end()) {
        scenario.events.push_back(FailureEvent{proc, 0});
      }
    }
    for (const MissionFailure& failure : plan.failures) {
      if (failure.iteration == i) scenario.events.push_back(failure.event);
    }
    for (const MissionSilence& silence : plan.silences) {
      if (silence.iteration == i) {
        scenario.silent_windows.push_back(silence.window);
      }
    }
    for (const MissionLinkFailure& failure : plan.link_failures) {
      if (failure.iteration == i) {
        scenario.link_events.push_back(failure.event);
      }
    }

    if (!x.has_previous || !(scenario == x.previous)) {
      // Settled iterations (pure start state, nothing mid-run) recur
      // across missions; serve them from the scratch's memo when possible
      // (see MissionScratch::settled).
      const bool settled = scenario.events.empty() &&
                           scenario.silent_windows.empty() &&
                           scenario.link_events.empty();
      bool simulated = true;
      if (settled) {
        std::string& key = x.settled_key;
        key.clear();
        auto put = [&key](std::int64_t v) {
          char bytes[sizeof v];
          std::memcpy(bytes, &v, sizeof v);
          key.append(bytes, sizeof v);
        };
        put(static_cast<std::int64_t>(scenario.failed_at_start.size()));
        for (ProcessorId p : scenario.failed_at_start) put(p.value());
        put(static_cast<std::int64_t>(scenario.suspected_at_start.size()));
        for (ProcessorId p : scenario.suspected_at_start) put(p.value());
        for (LinkId l : scenario.failed_links_at_start) put(l.value());
        const auto hit = x.settled.find(key);
        if (hit != x.settled.end()) {
          cached = hit->second;
          simulated = false;
        }
      }
      if (simulated) {
        simulator.run_summary(scenario, x.sim, cached);
        if (settled) x.settled.emplace(x.settled_key, cached);
      }
      x.previous = scenario;
      x.has_previous = true;
    }
    const IterationSummary& run = cached;

    MissionIteration summary;
    summary.index = i;
    summary.all_outputs_produced = run.all_outputs_produced;
    summary.response_time = run.response_time;
    summary.timeouts = run.timeouts;
    summary.elections = run.elections;
    summary.transfers = run.transfer_starts;
    summary.silence_deferral = run.silence_deferral;
    summary.op_completions = run.op_completions;
    summary.known_failed = known;
    summary.suspected = suspected;
    result.iterations.push_back(std::move(summary));

    // Update ground truth and knowledge for the next iteration.
    for (const FailureEvent& event : scenario.events) {
      if (std::find(dead.begin(), dead.end(), event.processor) ==
          dead.end()) {
        dead.push_back(event.processor);
      }
    }
    // A link that died stays dead for the rest of the mission.
    for (const LinkFailureEvent& event : scenario.link_events) {
      if (std::find(dead_links.begin(), dead_links.end(), event.link) ==
          dead_links.end()) {
        dead_links.push_back(event.link);
      }
    }
    known.clear();
    suspected.clear();
    for (ProcessorId accused : run.detected_failures) {
      if (std::find(dead.begin(), dead.end(), accused) != dead.end()) {
        known.push_back(accused);
      } else {
        suspected.push_back(accused);
      }
    }
  }
  return result;
}

std::string MissionResult::to_text(const ArchitectureGraph& arch) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"iter", "outputs", "response", "timeouts", "elections",
                  "transfers", "known failed", "suspected"});
  for (const MissionIteration& it : iterations) {
    auto names = [&](const std::vector<ProcessorId>& procs) {
      std::vector<std::string> parts;
      for (ProcessorId proc : procs) parts.push_back(arch.processor(proc).name);
      return parts.empty() ? std::string("-") : join(parts, ",");
    };
    rows.push_back({std::to_string(it.index),
                    it.all_outputs_produced ? "ok" : "LOST",
                    time_to_string(it.response_time),
                    std::to_string(it.timeouts),
                    std::to_string(it.elections),
                    std::to_string(it.transfers), names(it.known_failed),
                    names(it.suspected)});
  }
  return render_table(rows);
}

}  // namespace ftsched
