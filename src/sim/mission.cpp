#include "sim/mission.hpp"

#include <algorithm>
#include <optional>

#include "arch/architecture_graph.hpp"
#include "core/text.hpp"

namespace ftsched {

MissionResult run_mission(const Schedule& schedule, int iterations,
                          const std::vector<MissionFailure>& failures,
                          const std::vector<MissionSilence>& silences) {
  MissionPlan plan;
  plan.iterations = iterations;
  plan.failures = failures;
  plan.silences = silences;
  return run_mission(schedule, plan);
}

MissionResult run_mission(const Schedule& schedule, const MissionPlan& plan) {
  return run_mission(Simulator(schedule), plan);
}

MissionResult run_mission(const Simulator& simulator,
                          const MissionPlan& plan) {
  FTSCHED_REQUIRE(plan.iterations > 0,
                  "a mission needs at least one iteration");

  // The initial knowledge is a set; normalize its presentation (sorted,
  // duplicate-free, suspicion subsumed by known death) so the iteration
  // summaries depend on the fault pattern, not on input ordering — the
  // invariant the campaign's canonical-fingerprint replay cache relies on.
  auto as_set = [](std::vector<ProcessorId> procs) {
    std::sort(procs.begin(), procs.end());
    procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
    return procs;
  };
  std::vector<ProcessorId> dead =
      as_set(plan.dead_at_start);          // genuinely dead, in any iteration
  std::vector<ProcessorId> known = dead;   // dead AND known by the survivors
  std::vector<ProcessorId> suspected =
      as_set(plan.suspected_at_start);     // alive but flagged
  std::erase_if(suspected, [&](ProcessorId proc) {
    return std::find(dead.begin(), dead.end(), proc) != dead.end();
  });
  std::vector<LinkId> dead_links = plan.dead_links_at_start;

  MissionResult result;
  // Once the survivors' knowledge settles (steady state of a
  // failed-at-start-only mission), consecutive iterations face the exact
  // same scenario; the simulation is deterministic, so the previous
  // iteration's result is reused instead of re-simulated.
  std::optional<FailureScenario> previous;
  IterationResult cached;
  for (int i = 0; i < plan.iterations; ++i) {
    FailureScenario scenario;
    scenario.failed_at_start = known;
    scenario.suspected_at_start = suspected;
    scenario.failed_links_at_start = dead_links;
    // Dead-but-undetected processors are silent from the very start of this
    // iteration; survivors rediscover them through their watch chains.
    for (ProcessorId proc : dead) {
      if (std::find(known.begin(), known.end(), proc) == known.end()) {
        scenario.events.push_back(FailureEvent{proc, 0});
      }
    }
    for (const MissionFailure& failure : plan.failures) {
      if (failure.iteration == i) scenario.events.push_back(failure.event);
    }
    for (const MissionSilence& silence : plan.silences) {
      if (silence.iteration == i) {
        scenario.silent_windows.push_back(silence.window);
      }
    }
    for (const MissionLinkFailure& failure : plan.link_failures) {
      if (failure.iteration == i) {
        scenario.link_events.push_back(failure.event);
      }
    }

    if (!previous.has_value() || !(scenario == *previous)) {
      cached = simulator.run(scenario);
      previous = scenario;
    }
    const IterationResult& run = cached;

    MissionIteration summary;
    summary.index = i;
    summary.all_outputs_produced = run.all_outputs_produced;
    summary.response_time = run.response_time;
    summary.timeouts = run.trace.count(TraceEvent::Kind::kTimeout);
    summary.elections = run.trace.count(TraceEvent::Kind::kElection);
    summary.transfers = run.trace.count(TraceEvent::Kind::kTransferStart);
    summary.known_failed = known;
    summary.suspected = suspected;
    result.iterations.push_back(std::move(summary));

    // Update ground truth and knowledge for the next iteration.
    for (const FailureEvent& event : scenario.events) {
      if (std::find(dead.begin(), dead.end(), event.processor) ==
          dead.end()) {
        dead.push_back(event.processor);
      }
    }
    // A link that died stays dead for the rest of the mission.
    for (const LinkFailureEvent& event : scenario.link_events) {
      if (std::find(dead_links.begin(), dead_links.end(), event.link) ==
          dead_links.end()) {
        dead_links.push_back(event.link);
      }
    }
    known.clear();
    suspected.clear();
    for (ProcessorId accused : run.detected_failures) {
      if (std::find(dead.begin(), dead.end(), accused) != dead.end()) {
        known.push_back(accused);
      } else {
        suspected.push_back(accused);
      }
    }
  }
  return result;
}

std::string MissionResult::to_text(const ArchitectureGraph& arch) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"iter", "outputs", "response", "timeouts", "elections",
                  "transfers", "known failed", "suspected"});
  for (const MissionIteration& it : iterations) {
    auto names = [&](const std::vector<ProcessorId>& procs) {
      std::vector<std::string> parts;
      for (ProcessorId proc : procs) parts.push_back(arch.processor(proc).name);
      return parts.empty() ? std::string("-") : join(parts, ",");
    };
    rows.push_back({std::to_string(it.index),
                    it.all_outputs_produced ? "ok" : "LOST",
                    time_to_string(it.response_time),
                    std::to_string(it.timeouts),
                    std::to_string(it.elections),
                    std::to_string(it.transfers), names(it.known_failed),
                    names(it.suspected)});
  }
  return render_table(rows);
}

}  // namespace ftsched
