// Reliability analysis: turns the simulator's masking verdicts into the
// dependability number a safety case needs (§2.3's dependable-systems
// context) — the probability that one iteration still produces all its
// outputs when each processor has failed independently with probability p.
//
// The analysis enumerates failure subsets, asks the simulator which are
// masked (dead-from-start, the pessimistic permanent regime), and sums the
// binomial weights of the masked ones. A K-fault-tolerant schedule masks
// everything up to size K by construction; subsets beyond K may still be
// masked by luck (the failed processors host disjoint replica sets), which
// is why the exact figure can exceed the guaranteed bound.
#pragma once

#include <cstddef>
#include <vector>

#include "core/error.hpp"
#include "sched/schedule.hpp"

namespace ftsched {

struct ReliabilityOptions {
  /// Also simulate subsets larger than K (exact analysis). When false,
  /// those subsets are assumed lost, yielding the guaranteed lower bound
  /// only (cheaper: O(n^K) instead of O(2^n) simulations).
  bool exhaustive_beyond_k = true;
  /// Refuse architectures beyond this size (2^n simulations).
  std::size_t max_processors = 16;
};

struct ReliabilityReport {
  /// P(all outputs produced) with the exhaustive analysis (equals
  /// `lower_bound` when exhaustive_beyond_k is off).
  double iteration_reliability = 0;
  /// Guaranteed bound: only subsets verified masked up to size K count.
  double lower_bound = 0;
  /// masked/total subset counts per subset size (index = size).
  std::vector<std::pair<std::size_t, std::size_t>> masked_by_size;

  [[nodiscard]] std::size_t masked_subsets() const {
    std::size_t count = 0;
    for (const auto& [masked, total] : masked_by_size) count += masked;
    return count;
  }
};

/// Precondition: 0 <= failure_probability <= 1 and the architecture has at
/// most options.max_processors processors.
[[nodiscard]] ReliabilityReport analyze_reliability(
    const Schedule& schedule, double failure_probability,
    ReliabilityOptions options = {});

}  // namespace ftsched
