// Execution trace of one simulated iteration: the ground truth against
// which the fault-tolerance claims are tested, and the data behind the
// transient-iteration figures (18, 23).
#pragma once

#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace ftsched {

struct TraceEvent {
  enum class Kind {
    /// A replica started / finished executing on its processor.
    kOpStart,
    kOpEnd,
    /// One hop of a transfer started / finished on a link.
    kTransferStart,
    kTransferEnd,
    /// A watch deadline expired: `proc` marked `peer`'s unit faulty.
    kTimeout,
    /// A backup replica exhausted its watch chain and took over sending.
    kElection,
    /// A processor halted (fail-stop).
    kFailure,
    /// A transfer was cancelled (sender died / value already delivered).
    kDrop,
  };

  Kind kind;
  Time time = 0;
  ProcessorId proc;   // acting processor (op events, timeout observer, ...)
  ProcessorId peer;   // other party (transfer destination, accused sender)
  OperationId op;     // op events
  int rank = -1;      // replica rank for op/election events
  DependencyId dep;   // transfer/timeout/election events
  LinkId link;        // transfer events

  /// Exact (bitwise on `time`) equality — the fork-equivalence tests compare
  /// whole traces event by event.
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

[[nodiscard]] std::string to_string(TraceEvent::Kind kind);

class Trace {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }

  /// Forgets every event, keeping the storage (scratch reuse across runs).
  void clear() noexcept { events_.clear(); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  [[nodiscard]] std::size_t count(TraceEvent::Kind kind) const;

  /// Completion date of the replica of `op` on `proc`; kInfinite if it never
  /// finished in this iteration.
  [[nodiscard]] Time op_end(OperationId op, ProcessorId proc) const;

  /// Earliest completion of any replica of `op` in this iteration.
  [[nodiscard]] Time earliest_op_end(OperationId op) const;

  /// Latest event time (the iteration's actual span).
  [[nodiscard]] Time end_time() const;

  /// Human-readable listing, one line per event, for diagnostics.
  [[nodiscard]] std::string to_text(
      const class AlgorithmGraph& graph,
      const class ArchitectureGraph& arch) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace ftsched
