// Multi-iteration mission runner: the reactive system executes its schedule
// once per input event, forever (§4.2). This driver chains consecutive
// iterations, carrying the failure knowledge each iteration's survivors
// accumulated into the next one — the transient-then-subsequent life cycle
// of §5.6 criterion 3 — while injecting crashes and fail-silent episodes at
// chosen iterations.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"

namespace ftsched {

/// A crash of `event.processor` at `event.time` within iteration `iteration`.
struct MissionFailure {
  int iteration = 0;
  FailureEvent event;
};

/// A fail-silent episode within one iteration.
struct MissionSilence {
  int iteration = 0;
  SilentWindow window;
};

/// A link dying at `event.time` within iteration `iteration`; it stays dead
/// for the rest of the mission.
struct MissionLinkFailure {
  int iteration = 0;
  LinkFailureEvent event;
};

/// A complete multi-iteration adversarial plan: every fault class the
/// simulator models, placed at chosen iterations, plus the mission's
/// initial knowledge state. This is the unit the fault-injection campaign
/// generates, replays, shrinks, and serializes (io/scenario_format.hpp).
struct MissionPlan {
  int iterations = 1;
  /// Mid-run processor crashes.
  std::vector<MissionFailure> failures;
  /// Intermittent send-omission windows.
  std::vector<MissionSilence> silences;
  /// Link deaths (permanent from their instant on).
  std::vector<MissionLinkFailure> link_failures;
  /// Processors dead — and known dead — before iteration 0.
  std::vector<ProcessorId> dead_at_start;
  /// Links dead before iteration 0.
  std::vector<LinkId> dead_links_at_start;
  /// Healthy processors wrongly flagged faulty before iteration 0.
  std::vector<ProcessorId> suspected_at_start;

  /// Total number of injected events of every class (size of the
  /// shrinker's search space, not a fault count — see
  /// FailureScenario::failure_count for the budget semantics).
  [[nodiscard]] std::size_t event_count() const noexcept {
    return failures.size() + silences.size() + link_failures.size() +
           dead_at_start.size() + dead_links_at_start.size() +
           suspected_at_start.size();
  }
};

struct MissionIteration {
  int index = 0;
  bool all_outputs_produced = false;
  Time response_time = kInfinite;
  std::size_t timeouts = 0;
  std::size_t elections = 0;
  std::size_t transfers = 0;
  /// See IterationResult::silence_deferral: the tight response allowance
  /// this iteration's silent windows earned (0 when none deferred a send).
  Time silence_deferral = 0;
  /// Genuinely dead processors known when the iteration started.
  std::vector<ProcessorId> known_failed;
  /// Healthy processors wrongly suspected when the iteration started.
  std::vector<ProcessorId> suspected;
  /// See IterationResult::op_completions: earliest completion per graph
  /// operation, kInfinite where none — the chain-latency oracle's input.
  std::vector<Time> op_completions;
};

struct MissionResult {
  std::vector<MissionIteration> iterations;

  [[nodiscard]] bool every_iteration_served() const {
    for (const MissionIteration& it : iterations) {
      if (!it.all_outputs_produced) return false;
    }
    return !iterations.empty();
  }

  /// One line per iteration, for examples and diagnostics.
  [[nodiscard]] std::string to_text(
      const class ArchitectureGraph& arch) const;
};

/// Runs `iterations` consecutive iterations of `schedule`. Failures take
/// effect in their iteration and persist; detections propagate: a processor
/// flagged by the survivors at the end of iteration i is treated as known
/// (if genuinely dead) or suspected (if it was a detection mistake) at the
/// start of iteration i+1.
[[nodiscard]] MissionResult run_mission(
    const Schedule& schedule, int iterations,
    const std::vector<MissionFailure>& failures,
    const std::vector<MissionSilence>& silences = {});

/// Reusable buffers for the batched mission path: one per worker amortizes
/// every per-mission allocation (the simulator's run state, the per
/// iteration scenario and its steady-state comparison copy, the knowledge
/// vectors) across a whole chunk of missions. Treat as opaque; contents
/// are reset by run_mission.
struct MissionScratch {
  Simulator::Scratch sim;
  IterationSummary summary;
  FailureScenario scenario;
  FailureScenario previous;
  bool has_previous = false;
  std::vector<ProcessorId> dead;
  std::vector<ProcessorId> known;
  std::vector<ProcessorId> suspected;
  std::vector<LinkId> dead_links;
  /// Settled-iteration memo: iterations whose scenario is a pure start
  /// state (no mid-run events, no silent windows) are keyed by that state
  /// and reused across missions sharing this scratch. Mid-run instants are
  /// continuous draws that essentially never repeat, but the settled
  /// iterations that follow them collapse onto a handful of known-dead
  /// patterns, so a campaign chunk simulates each pattern once. Purely an
  /// optimization: IterationSummary is a function of the scenario, so a
  /// hit returns exactly what the skipped simulation would.
  std::unordered_map<std::string, IterationSummary> settled;
  std::string settled_key;
};

/// Full-plan variant: link failures and a non-empty initial state in
/// addition to crashes and silences. The simulator overload lets callers
/// that replay thousands of plans against one schedule (the campaign
/// runner, the shrinker) reuse one Simulator — construction builds routing
/// and timeout tables, Simulator::run is const and reentrant. The scratch
/// overload additionally reuses one set of run buffers across calls; all
/// overloads produce identical MissionResults (the mission digest is
/// derived through Simulator::run_summary, whose summary equivalence to
/// run() is pinned by tests/sim/summary_equiv_test.cpp).
[[nodiscard]] MissionResult run_mission(const Simulator& simulator,
                                        const MissionPlan& plan,
                                        MissionScratch& scratch);
[[nodiscard]] MissionResult run_mission(const Simulator& simulator,
                                        const MissionPlan& plan);
[[nodiscard]] MissionResult run_mission(const Schedule& schedule,
                                        const MissionPlan& plan);

}  // namespace ftsched
