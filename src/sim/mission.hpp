// Multi-iteration mission runner: the reactive system executes its schedule
// once per input event, forever (§4.2). This driver chains consecutive
// iterations, carrying the failure knowledge each iteration's survivors
// accumulated into the next one — the transient-then-subsequent life cycle
// of §5.6 criterion 3 — while injecting crashes and fail-silent episodes at
// chosen iterations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace ftsched {

/// A crash of `event.processor` at `event.time` within iteration `iteration`.
struct MissionFailure {
  int iteration = 0;
  FailureEvent event;
};

/// A fail-silent episode within one iteration.
struct MissionSilence {
  int iteration = 0;
  SilentWindow window;
};

struct MissionIteration {
  int index = 0;
  bool all_outputs_produced = false;
  Time response_time = kInfinite;
  std::size_t timeouts = 0;
  std::size_t elections = 0;
  std::size_t transfers = 0;
  /// Genuinely dead processors known when the iteration started.
  std::vector<ProcessorId> known_failed;
  /// Healthy processors wrongly suspected when the iteration started.
  std::vector<ProcessorId> suspected;
};

struct MissionResult {
  std::vector<MissionIteration> iterations;

  [[nodiscard]] bool every_iteration_served() const {
    for (const MissionIteration& it : iterations) {
      if (!it.all_outputs_produced) return false;
    }
    return !iterations.empty();
  }

  /// One line per iteration, for examples and diagnostics.
  [[nodiscard]] std::string to_text(
      const class ArchitectureGraph& arch) const;
};

/// Runs `iterations` consecutive iterations of `schedule`. Failures take
/// effect in their iteration and persist; detections propagate: a processor
/// flagged by the survivors at the end of iteration i is treated as known
/// (if genuinely dead) or suspected (if it was a detection mistake) at the
/// start of iteration i+1.
[[nodiscard]] MissionResult run_mission(
    const Schedule& schedule, int iterations,
    const std::vector<MissionFailure>& failures,
    const std::vector<MissionSilence>& silences = {});

}  // namespace ftsched
