// Scheduler-backed event queue for the discrete-event simulator, modelled
// on ns-3's pluggable Scheduler hierarchy: one value-semantic facade over
// two interchangeable implementations — a binary heap (the default, best
// for the small runs a single iteration produces) and a calendar queue
// (bucketed by time over the schedule horizon, best when a run carries
// hundreds of pending events). Both yield the exact same pop sequence:
// events are totally ordered by (time, kind, seq), `seq` being the push
// order, so there are no ties for an implementation to break differently.
// The queue is copyable (Simulator::Branch::fork deep-copies the run
// state) and resettable without releasing storage (per-worker scratch
// reuse across a campaign chunk), and never allocates per event — the
// calendar keeps its events in one flat slot array chained through an
// index-based free list, not in per-bucket containers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/time.hpp"

namespace ftsched {

/// Which event-queue implementation a Simulator run uses. kAuto picks the
/// calendar queue for dense plans (enough expected events over a positive
/// horizon for bucketing to pay off) and the binary heap otherwise.
enum class EventSchedulerKind {
  kAuto,
  kBinaryHeap,
  kCalendar,
};

namespace sim_detail {

/// Event kinds, in same-instant processing order: deliveries first (a value
/// arriving exactly at a deadline satisfies the watcher), then completions,
/// then failures (an operation finishing at the failure instant counts),
/// then deadlines.
enum class EventKind : std::uint8_t {
  kHopDone = 0,
  kOpDone = 1,
  kFailure = 2,
  kLinkFailure = 3,
  kDeadline = 4,
};

struct Event {
  Time time;
  std::uint32_t seq;    // deterministic FIFO tie-break (push order)
  std::uint32_t index;  // proc / transfer / watcher index, per kind
  EventKind kind;
};

/// The total order both implementations serve. `time` is compared exactly
/// (bitwise on doubles, like the original priority_queue comparator): two
/// instants within kTimeEpsilon are distinct queue positions, and the
/// batch-draining loop relies on exact equality to group an instant.
[[nodiscard]] inline bool event_before(const Event& a,
                                       const Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.seq < b.seq;
}

class EventQueue {
 public:
  /// Re-arms the queue for a fresh run: clears any pending events (keeping
  /// the storage), resolves kAuto against the plan's expected event count
  /// and horizon, and sizes the calendar's buckets. Must be called before
  /// the first push of a run.
  void configure(EventSchedulerKind kind, Time horizon,
                 std::size_t expected_events);

  void push(const Event& event);

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// The minimum pending event. Requires !empty(). Non-const: the calendar
  /// locates (and caches) the minimum lazily.
  [[nodiscard]] const Event& top() {
    if (!calendar_) return heap_.front();
    if (!have_min_) find_min();
    return slots_[min_slot_];
  }

  /// Removes the minimum pending event. Requires !empty().
  void pop();

  /// The implementation configure() resolved to (never kAuto).
  [[nodiscard]] EventSchedulerKind scheduler() const noexcept {
    return calendar_ ? EventSchedulerKind::kCalendar
                     : EventSchedulerKind::kBinaryHeap;
  }

  /// Visits every pending event exactly once, in an unspecified,
  /// implementation-dependent order (the heap's array layout / the
  /// calendar's bucket chains). Consumers needing a canonical view — the
  /// state digest — must sort what they collect; both implementations hold
  /// the same multiset, which is all this guarantees.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    if (!calendar_) {
      for (const Event& event : heap_) fn(event);
      return;
    }
    for (std::uint32_t b = 0; b < nbuckets_; ++b) {
      for (std::uint32_t s = head_[b]; s != kNil; s = next_[s]) {
        fn(slots_[s]);
      }
    }
  }

 private:
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  void find_min();

  bool calendar_ = false;
  std::size_t size_ = 0;

  // Binary heap (std::push_heap/pop_heap over one vector).
  std::vector<Event> heap_;

  // Calendar queue: slots_[i] chained through next_[i] into per-bucket
  // singly linked lists; removed slots are recycled through free_. All flat
  // vectors, so copying a paused run copies three arrays, never N buckets.
  std::vector<Event> slots_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> head_;  // [bucket] -> first slot or kNil
  std::uint32_t free_ = kNil;
  std::uint32_t nbuckets_ = 0;
  double inv_width_ = 0;  // buckets per time unit
  Time limit_ = 0;        // times >= limit_ fall into the last bucket
  std::uint32_t cursor_ = 0;  // first possibly non-empty bucket
  // Cached minimum (bucket scan amortization).
  bool have_min_ = false;
  std::uint32_t min_slot_ = kNil;
  std::uint32_t min_prev_ = kNil;
  std::uint32_t min_bucket_ = 0;
};

// push/pop/top are defined here (not in event_queue.cpp) because the
// simulator calls them several times per event; keeping them inlinable
// into the batch-draining loop is a measurable share of campaign
// throughput. configure() and find_min() stay out-of-line.

/// std heap helpers build a max-heap; invert the order for a min-queue.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return event_before(b, a);
  }
};

inline void EventQueue::push(const Event& event) {
  ++size_;
  if (!calendar_) {
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
    return;
  }

  std::uint32_t slot;
  if (free_ != kNil) {
    slot = free_;
    free_ = next_[free_];
    slots_[slot] = event;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(event);
    next_.push_back(kNil);
  }

  std::uint32_t bucket;
  const Time t = event.time;
  if (!(t < limit_)) {
    bucket = nbuckets_ - 1;  // also catches +inf
  } else if (!(t > 0)) {
    bucket = 0;
  } else {
    bucket = std::min(static_cast<std::uint32_t>(t * inv_width_),
                      nbuckets_ - 1);
  }
  next_[slot] = head_[bucket];
  head_[bucket] = slot;
  if (bucket < cursor_) cursor_ = bucket;

  if (have_min_) {
    if (event_before(event, slots_[min_slot_])) {
      // The new event is the minimum; it sits at the head of its bucket.
      min_slot_ = slot;
      min_prev_ = kNil;
      min_bucket_ = bucket;
    } else if (bucket == min_bucket_ && min_prev_ == kNil) {
      // The cached minimum was its bucket's head; the new head now
      // precedes it in the chain.
      min_prev_ = slot;
    }
  }
}

inline void EventQueue::pop() {
  --size_;
  if (!calendar_) {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    heap_.pop_back();
    return;
  }
  if (!have_min_) find_min();
  if (min_prev_ == kNil) {
    head_[min_bucket_] = next_[min_slot_];
  } else {
    next_[min_prev_] = next_[min_slot_];
  }
  next_[min_slot_] = free_;
  free_ = min_slot_;
  have_min_ = false;
}

}  // namespace sim_detail
}  // namespace ftsched
