#include "sim/reliability.hpp"

#include <cmath>

#include "sim/simulator.hpp"

namespace ftsched {

ReliabilityReport analyze_reliability(const Schedule& schedule,
                                      double failure_probability,
                                      ReliabilityOptions options) {
  FTSCHED_REQUIRE(failure_probability >= 0 && failure_probability <= 1,
                  "failure probability must lie in [0, 1]");
  const std::size_t n = schedule.problem().architecture->processor_count();
  FTSCHED_REQUIRE(n <= options.max_processors && n < 64,
                  "architecture too large for exhaustive reliability "
                  "analysis");
  const std::size_t k =
      static_cast<std::size_t>(schedule.failures_tolerated());
  const Simulator simulator(schedule);

  ReliabilityReport report;
  report.masked_by_size.assign(n + 1, {0, 0});

  const double p = failure_probability;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<ProcessorId> subset;
    for (std::size_t bit = 0; bit < n; ++bit) {
      if (mask & (std::size_t{1} << bit)) {
        subset.push_back(
            ProcessorId{static_cast<ProcessorId::underlying_type>(bit)});
      }
    }
    const std::size_t size = subset.size();
    ++report.masked_by_size[size].second;
    if (size > k && !options.exhaustive_beyond_k) continue;

    const bool masked =
        size == 0 ||
        simulator.run(FailureScenario::dead_from_start(subset))
            .all_outputs_produced;
    if (!masked) continue;
    ++report.masked_by_size[size].first;

    const double weight = std::pow(p, static_cast<double>(size)) *
                          std::pow(1 - p, static_cast<double>(n - size));
    report.iteration_reliability += weight;
    if (size <= k) report.lower_bound += weight;
  }
  return report;
}

}  // namespace ftsched
