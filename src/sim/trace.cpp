#include "sim/trace.hpp"

#include <algorithm>

#include "arch/architecture_graph.hpp"
#include "graph/algorithm_graph.hpp"

namespace ftsched {

std::string to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kOpStart:
      return "op-start";
    case TraceEvent::Kind::kOpEnd:
      return "op-end";
    case TraceEvent::Kind::kTransferStart:
      return "transfer-start";
    case TraceEvent::Kind::kTransferEnd:
      return "transfer-end";
    case TraceEvent::Kind::kTimeout:
      return "timeout";
    case TraceEvent::Kind::kElection:
      return "election";
    case TraceEvent::Kind::kFailure:
      return "failure";
    case TraceEvent::Kind::kDrop:
      return "drop";
  }
  return "unknown";
}

std::size_t Trace::count(TraceEvent::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

Time Trace::op_end(OperationId op, ProcessorId proc) const {
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceEvent::Kind::kOpEnd && e.op == op && e.proc == proc) {
      return e.time;
    }
  }
  return kInfinite;
}

Time Trace::earliest_op_end(OperationId op) const {
  Time best = kInfinite;
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceEvent::Kind::kOpEnd && e.op == op) {
      best = std::min(best, e.time);
    }
  }
  return best;
}

Time Trace::end_time() const {
  Time end = 0;
  for (const TraceEvent& e : events_) {
    end = std::max(end, e.time);
  }
  return end;
}

std::string Trace::to_text(const AlgorithmGraph& graph,
                           const ArchitectureGraph& arch) const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += time_to_string(e.time) + "  " + to_string(e.kind);
    if (e.op.valid()) {
      out += "  " + graph.operation(e.op).name;
      if (e.rank >= 0) {
        out += ':';
        out += std::to_string(e.rank);
      }
    }
    if (e.dep.valid()) out += "  " + graph.dependency(e.dep).name;
    if (e.proc.valid()) out += "  on " + arch.processor(e.proc).name;
    if (e.link.valid()) out += "  via " + arch.link(e.link).name;
    if (e.peer.valid()) out += "  peer " + arch.processor(e.peer).name;
    out += '\n';
  }
  return out;
}

}  // namespace ftsched
