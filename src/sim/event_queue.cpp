#include "sim/event_queue.hpp"

namespace ftsched::sim_detail {

namespace {

/// Below this many expected events a heap's O(log n) with tiny n beats the
/// calendar's bucket bookkeeping; above it the calendar's O(1) push and
/// short bucket scans win.
constexpr std::size_t kCalendarThreshold = 64;

}  // namespace

void EventQueue::configure(EventSchedulerKind kind, Time horizon,
                           std::size_t expected_events) {
  if (kind == EventSchedulerKind::kAuto) {
    kind = (expected_events >= kCalendarThreshold && horizon > 0)
               ? EventSchedulerKind::kCalendar
               : EventSchedulerKind::kBinaryHeap;
  }
  calendar_ = kind == EventSchedulerKind::kCalendar && horizon > 0;
  size_ = 0;
  heap_.clear();
  if (!calendar_) return;

  // Aim for ~2 events per bucket across the horizon; events beyond the
  // horizon (late backup sends, injected faults past the makespan) all land
  // in the last bucket, which degrades to a linear scan but stays correct.
  std::uint32_t buckets = 16;
  while (buckets < 1024 && static_cast<std::size_t>(buckets) * 2 <
                               expected_events) {
    buckets *= 2;
  }
  nbuckets_ = buckets;
  limit_ = horizon;
  inv_width_ = static_cast<double>(nbuckets_) / horizon;
  head_.assign(nbuckets_, kNil);
  slots_.clear();
  next_.clear();
  free_ = kNil;
  cursor_ = 0;
  have_min_ = false;
}

void EventQueue::find_min() {
  while (head_[cursor_] == kNil) ++cursor_;  // size_ > 0 guarantees a hit
  std::uint32_t prev = kNil;
  std::uint32_t best = head_[cursor_];
  std::uint32_t best_prev = kNil;
  for (std::uint32_t i = head_[cursor_]; i != kNil;) {
    if (i != best && event_before(slots_[i], slots_[best])) {
      best = i;
      best_prev = prev;
    }
    prev = i;
    i = next_[i];
  }
  min_bucket_ = cursor_;
  min_slot_ = best;
  min_prev_ = best_prev;
  have_min_ = true;
}

}  // namespace ftsched::sim_detail
