// Automatic software/time-redundancy trade-off (§5.3: "a tradeoff between
// these two kinds of redundancy should be found in order to obtain good
// performances ... in both cases").
//
// Solution 1 minimizes the failure-free cost but a failure costs the
// accumulated watch timeouts; solution 2 minimizes the faulty-case response
// but pays replicated transfers every iteration. The hybrid searches the
// middle ground per dependency: starting from all-passive (= solution 1),
// it repeatedly flips to active replication the dependency whose watch
// chain bounds the worst single-failure transient response, as long as the
// failure-free makespan stays within the caller's budget.
#pragma once

#include "core/error.hpp"
#include "sched/heuristics.hpp"
#include "tuning/transient_analysis.hpp"

namespace ftsched {

struct HybridOptions {
  /// Failure-free budget: candidate policies whose makespan exceeds
  /// max_overhead_factor x solution-1's makespan are rejected.
  double max_overhead_factor = 1.15;
  /// Cap on policy-search iterations (each runs the scheduler plus a full
  /// transient analysis).
  int max_flips = 8;
  /// Stop early once the worst transient stretch falls below this.
  double target_stretch = 1.0;
  /// Engine knobs applied to every candidate schedule.
  SchedulerOptions scheduler;
};

struct HybridResult {
  Schedule schedule;
  TransientReport transient;
  /// Dependencies flipped to active replication, in flip order.
  std::vector<DependencyId> flipped;
};

/// Runs the search. Fails exactly when solution 1 itself is infeasible.
[[nodiscard]] Expected<HybridResult> schedule_hybrid(
    const Problem& problem, HybridOptions options = {});

}  // namespace ftsched
