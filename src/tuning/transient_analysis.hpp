// Worst-case transient behaviour of a fault-tolerant schedule (§5.6
// criterion 3, made quantitative): for every single permanent failure,
// sweep the crash over every critical instant of the failure-free run and
// record the worst response time the survivors deliver.
//
// The crash instants that matter are the event dates of the nominal trace
// (a crash strictly between two events behaves like a crash just after the
// earlier one), so sweeping event dates and midpoints is exhaustive for
// single failures up to simulation determinism.
#pragma once

#include <vector>

#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace ftsched {

struct TransientReport {
  /// Worst response over every (processor, crash instant) pair and the
  /// dead-from-start regime; kInfinite if some single failure loses
  /// outputs.
  Time worst_response = 0;
  /// Failure-free response time, for the stretch ratio.
  Time nominal_response = 0;
  /// Per processor: worst response when that processor is the victim.
  std::vector<Time> worst_by_victim;
  /// Victim of the overall worst case.
  ProcessorId worst_victim;
  /// Largest number of timeout expiries observed in one transient run.
  std::size_t worst_timeouts = 0;

  [[nodiscard]] double worst_stretch() const {
    return nominal_response > 0 && !is_infinite(worst_response)
               ? worst_response / nominal_response
               : 0.0;
  }
};

/// Representative crash instants of a run with the given trace: `min_time`,
/// every event date, and the midpoints between consecutive distinct dates,
/// restricted to instants >= min_time and deduplicated up to kTimeEpsilon,
/// sorted ascending. A crash strictly between two events behaves like any
/// other crash in that open interval (nothing changes hands in between), so
/// this finite set covers the continuum of crash times — the quantization
/// argument behind both this analyzer and the exhaustive certifier
/// (campaign/certify.hpp).
[[nodiscard]] std::vector<Time> representative_instants(const Trace& trace,
                                                        Time min_time = 0);

/// Same, with extra critical dates merged in before the midpoints are
/// taken. The certifier passes the static watch-chain deadlines: they do
/// not appear in a failure-free trace, yet a crash on either side of one
/// changes whether a receiver times out.
[[nodiscard]] std::vector<Time> representative_instants(
    const Trace& trace, Time min_time, const std::vector<Time>& extra_dates);

/// Simulates every single-processor failure of `schedule` at every critical
/// instant. The failure-free prefix up to each instant is simulated once and
/// forked per victim (Simulator::Branch), not replayed from scratch.
[[nodiscard]] TransientReport analyze_transient(const Schedule& schedule);

}  // namespace ftsched
