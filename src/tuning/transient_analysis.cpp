#include "tuning/transient_analysis.hpp"

#include <algorithm>

#include "sim/simulator.hpp"

namespace ftsched {

std::vector<Time> representative_instants(const Trace& trace, Time min_time) {
  return representative_instants(trace, min_time, {});
}

std::vector<Time> representative_instants(
    const Trace& trace, Time min_time, const std::vector<Time>& extra_dates) {
  std::vector<Time> dates;
  dates.reserve(trace.events().size() + extra_dates.size() + 1);
  for (const TraceEvent& event : trace.events()) {
    dates.push_back(event.time);
  }
  for (const Time date : extra_dates) {
    if (!is_infinite(date)) dates.push_back(date);
  }
  std::sort(dates.begin(), dates.end());
  dates.erase(std::unique(dates.begin(), dates.end(),
                          [](Time a, Time b) { return time_eq(a, b); }),
              dates.end());

  std::vector<Time> instants{min_time};
  for (std::size_t i = 0; i < dates.size(); ++i) {
    if (time_ge(dates[i], min_time)) instants.push_back(dates[i]);
    if (i + 1 < dates.size()) {
      const Time mid = (dates[i] + dates[i + 1]) / 2;
      if (time_ge(mid, min_time)) instants.push_back(mid);
    }
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end(),
                             [](Time a, Time b) { return time_eq(a, b); }),
                 instants.end());
  return instants;
}

TransientReport analyze_transient(const Schedule& schedule) {
  const Simulator simulator(schedule);
  const IterationResult nominal = simulator.run();
  const std::vector<Time> instants =
      representative_instants(nominal.trace, 0);

  TransientReport report;
  report.nominal_response = nominal.response_time;
  const std::size_t procs =
      schedule.problem().architecture->processor_count();
  report.worst_by_victim.assign(procs, 0);

  std::vector<Time> worst(procs, 0);
  auto consider = [&](std::size_t p, const IterationResult& run) {
    worst[p] = std::max(worst[p], run.response_time);
    report.worst_timeouts =
        std::max(report.worst_timeouts,
                 run.trace.count(TraceEvent::Kind::kTimeout));
  };

  for (std::size_t p = 0; p < procs; ++p) {
    const ProcessorId victim{static_cast<ProcessorId::underlying_type>(p)};
    consider(p, simulator.run(FailureScenario::dead_from_start({victim})));
  }

  // Shared-prefix sweep: one failure-free cursor advanced monotonically;
  // each (victim, instant) branch forks the paused prefix instead of
  // replaying [0, instant) from scratch.
  Simulator::Branch cursor = simulator.begin();
  for (const Time at : instants) {
    simulator.advance_until(cursor, at);
    for (std::size_t p = 0; p < procs; ++p) {
      const ProcessorId victim{static_cast<ProcessorId::underlying_type>(p)};
      Simulator::Branch branch = cursor.fork();
      simulator.inject(branch, FailureEvent{victim, at});
      consider(p, simulator.finish(std::move(branch)));
    }
  }

  for (std::size_t p = 0; p < procs; ++p) {
    const ProcessorId victim{static_cast<ProcessorId::underlying_type>(p)};
    report.worst_by_victim[p] = worst[p];
    if (time_gt(worst[p], report.worst_response) ||
        !report.worst_victim.valid()) {
      report.worst_response = std::max(report.worst_response, worst[p]);
      if (time_eq(report.worst_response, worst[p])) {
        report.worst_victim = victim;
      }
    }
  }
  return report;
}

}  // namespace ftsched
