#include "tuning/transient_analysis.hpp"

#include <algorithm>

#include "sim/simulator.hpp"

namespace ftsched {

TransientReport analyze_transient(const Schedule& schedule) {
  const Simulator simulator(schedule);
  const IterationResult nominal = simulator.run();

  // Critical crash instants: every event date of the failure-free run, the
  // midpoints between consecutive dates (a crash strictly inside an
  // interval), and the start.
  std::vector<Time> instants{0};
  for (const TraceEvent& event : nominal.trace.events()) {
    instants.push_back(event.time);
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end(),
                             [](Time a, Time b) { return time_eq(a, b); }),
                 instants.end());
  const std::size_t distinct = instants.size();
  for (std::size_t i = 0; i + 1 < distinct; ++i) {
    instants.push_back((instants[i] + instants[i + 1]) / 2);
  }

  TransientReport report;
  report.nominal_response = nominal.response_time;
  const std::size_t procs =
      schedule.problem().architecture->processor_count();
  report.worst_by_victim.assign(procs, 0);

  for (std::size_t p = 0; p < procs; ++p) {
    const ProcessorId victim{static_cast<ProcessorId::underlying_type>(p)};
    Time worst = 0;
    auto consider = [&](const IterationResult& run) {
      worst = std::max(worst, run.response_time);
      report.worst_timeouts =
          std::max(report.worst_timeouts,
                   run.trace.count(TraceEvent::Kind::kTimeout));
    };
    consider(simulator.run(FailureScenario::dead_from_start({victim})));
    for (const Time at : instants) {
      consider(simulator.run(FailureScenario::crash(victim, at)));
    }
    report.worst_by_victim[p] = worst;
    if (time_gt(worst, report.worst_response) ||
        !report.worst_victim.valid()) {
      report.worst_response = std::max(report.worst_response, worst);
      if (time_eq(report.worst_response, worst)) {
        report.worst_victim = victim;
      }
    }
  }
  return report;
}

}  // namespace ftsched
