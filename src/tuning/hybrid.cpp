#include "tuning/hybrid.hpp"

#include <algorithm>

#include "arch/routing.hpp"
#include "sched/timeouts.hpp"

namespace ftsched {

namespace {

/// The passive dependency whose watch machinery is the likeliest transient
/// bottleneck: prefer dependencies whose main producer replica sits on the
/// worst victim (their chains actually run when it dies), scored by the
/// latest deadline any receiver would wait out.
DependencyId pick_flip(const Schedule& schedule,
                       const TransientReport& transient,
                       const std::vector<bool>& barred) {
  const AlgorithmGraph& graph = *schedule.problem().algorithm;
  const RoutingTable routing(*schedule.problem().architecture);
  const TimeoutTable timeouts(schedule, routing);

  DependencyId best;
  Time best_score = -kInfinite;
  bool best_on_victim = false;
  for (const Dependency& dep : graph.dependencies()) {
    if (schedule.uses_active_comms(dep.id)) continue;
    if (barred[dep.id.index()]) continue;
    Time score = -kInfinite;
    for (const TimeoutChain& chain : timeouts.chains()) {
      if (chain.dep != dep.id || chain.entries.empty()) continue;
      score = std::max(score, chain.entries.back().deadline);
    }
    if (is_infinite(-score)) continue;  // no chains: nothing to gain
    const ScheduledOperation* main = schedule.main(dep.src);
    const bool on_victim = main != nullptr && transient.worst_victim.valid() &&
                           main->processor == transient.worst_victim;
    // Victim-relevant dependencies dominate; ties by score.
    if (std::make_pair(on_victim, score) >
        std::make_pair(best_on_victim, best_score)) {
      best = dep.id;
      best_score = score;
      best_on_victim = on_victim;
    }
  }
  return best;
}

}  // namespace

Expected<HybridResult> schedule_hybrid(const Problem& problem,
                                       HybridOptions options) {
  FTSCHED_REQUIRE(options.max_overhead_factor >= 1.0,
                  "max_overhead_factor must be >= 1");
  SchedulerOptions scheduler = options.scheduler;
  scheduler.active_comm_deps.assign(problem.algorithm->dependency_count(),
                                    false);

  Expected<Schedule> seed = schedule_hybrid_with_policy(problem, scheduler);
  if (!seed.has_value()) return seed.error();
  const Time budget = seed->makespan() * options.max_overhead_factor;

  HybridResult best{std::move(seed).value(), {}, {}};
  best.transient = analyze_transient(best.schedule);

  std::vector<bool> barred(problem.algorithm->dependency_count(), false);
  std::vector<DependencyId> flipped;
  // Rejected candidates (over budget / no improvement) are barred and do
  // not consume the flip budget; the attempt bound keeps the search linear
  // in the dependency count either way.
  const int max_attempts =
      static_cast<int>(problem.algorithm->dependency_count()) +
      options.max_flips;
  for (int attempt = 0; attempt < max_attempts &&
                        static_cast<int>(flipped.size()) < options.max_flips;
       ++attempt) {
    if (best.transient.worst_stretch() <= options.target_stretch) break;
    const DependencyId candidate =
        pick_flip(best.schedule, best.transient, barred);
    if (!candidate.valid()) break;

    scheduler.active_comm_deps[candidate.index()] = true;
    Expected<Schedule> next = schedule_hybrid_with_policy(problem, scheduler);
    if (!next.has_value() || time_gt(next->makespan(), budget)) {
      // Over budget or infeasible: revert and never try this one again.
      scheduler.active_comm_deps[candidate.index()] = false;
      barred[candidate.index()] = true;
      continue;
    }
    const TransientReport report = analyze_transient(next.value());
    if (time_ge(report.worst_response, best.transient.worst_response)) {
      // No transient improvement: not worth the active transfers.
      scheduler.active_comm_deps[candidate.index()] = false;
      barred[candidate.index()] = true;
      continue;
    }
    flipped.push_back(candidate);
    best.schedule = std::move(next).value();
    best.transient = report;
  }
  best.flipped = std::move(flipped);
  return best;
}

}  // namespace ftsched
