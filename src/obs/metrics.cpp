#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "obs/json_util.hpp"

namespace ftsched::obs {

std::size_t histogram_bucket(const std::vector<double>& bounds, double x) {
  // NaN satisfies no "x <= bound" and goes to the overflow bucket. (An
  // explicit check: lower_bound's partition predicate would put NaN in
  // bucket 0, since bound < NaN is false for every bound.)
  if (std::isnan(x)) return bounds.size();
  // Otherwise the first bound >= x — "le" semantics, so an observation
  // exactly on a boundary belongs to that boundary's bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), x) - bounds.begin());
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    FTSCHED_REQUIRE(bounds_[i] < bounds_[i + 1],
                    "histogram bounds must be strictly ascending");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double x) noexcept {
  counts_[histogram_bucket(bounds_, x)].fetch_add(1,
                                                  std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + x,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void MetricsSnapshot::add_counter(const std::string& name, std::uint64_t n) {
  counters[name] += n;
}

void MetricsSnapshot::set_gauge(const std::string& name, double v) {
  gauges[name] = v;
}

void MetricsSnapshot::observe(const std::string& name,
                              const std::vector<double>& bounds, double x) {
  HistogramSnapshot& hist = histograms[name];
  if (hist.counts.empty()) {
    hist.bounds = bounds;
    hist.counts.assign(bounds.size() + 1, 0);
  }
  hist.counts[histogram_bucket(hist.bounds, x)] += 1;
  hist.total += 1;
  hist.sum += x;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, hist] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, hist);
    if (inserted) continue;
    HistogramSnapshot& into = it->second;
    FTSCHED_REQUIRE(into.bounds == hist.bounds,
                    "cannot merge histograms with different bounds: " + name);
    for (std::size_t i = 0; i < into.counts.size(); ++i) {
      into.counts[i] += hist.counts[i];
    }
    into.total += hist.total;
    into.sum += hist.sum;
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    " + json_string(name) + ": " + json_number(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + json_string(name) + ": " + json_number(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + json_string(name) + ": {\"bounds\": [";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(hist.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(hist.counts[i]);
    }
    out += "], \"total\": " + json_number(hist.total) +
           ", \"sum\": " + json_number(hist.sum) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.bounds = hist->bounds();
    h.counts = hist->counts();
    h.total = hist->total();
    h.sum = hist->sum();
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace ftsched::obs
