// Metrics registry: lock-cheap counters, gauges, and fixed-bucket
// histograms, with deterministic snapshot/merge and a stable JSON export.
//
// Two usage shapes, matching the two kinds of telemetry in ftsched:
//
//  * MetricsRegistry — shared, thread-safe instruments. Lookup by name
//    takes a mutex; the returned reference is stable for the registry's
//    lifetime, so hot paths resolve once and then update with relaxed
//    atomics. The profiling spans (obs/span.hpp) feed per-span-name
//    duration histograms of the global() registry.
//
//  * MetricsSnapshot — a plain value. Every worker of the fault-injection
//    campaign accumulates one privately (no sharing, no atomics) and the
//    runner merges them in chunk-index order, so the merged metrics are a
//    pure function of (schedule, options) — independent of thread count,
//    exactly like the campaign report itself.
//
// Histograms use fixed upper-bound buckets with Prometheus "le" semantics:
// bucket i counts observations x with x <= bounds[i] (first matching
// bucket); an implicit +inf bucket catches the rest. Merging requires
// identical bounds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ftsched::obs {

/// Bucket of `x` in `bounds` (ascending upper bounds): the first i with
/// x <= bounds[i], or bounds.size() for the overflow (+inf) bucket.
/// NaN compares false against everything and lands in the overflow bucket.
[[nodiscard]] std::size_t histogram_bucket(const std::vector<double>& bounds,
                                           double x);

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

class Histogram {
 public:
  /// `bounds` are strictly ascending upper bounds; an implicit +inf
  /// overflow bucket is always appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  /// bounds.size() + 1 entries, last = overflow.
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// A frozen, mergeable copy of a registry's state — and, standalone, the
/// campaign workers' private accumulator (see header comment).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Accumulator interface (single-threaded use).
  void add_counter(const std::string& name, std::uint64_t n = 1);
  void set_gauge(const std::string& name, double v);
  /// Observes into the named histogram, creating it with `bounds` on first
  /// use. Later calls reuse the existing bounds.
  void observe(const std::string& name, const std::vector<double>& bounds,
               double x);

  /// Counters add, gauges keep the maximum, histograms add bucket-wise
  /// (identical bounds required). Merging is commutative and associative,
  /// so any merge order yields the same snapshot.
  void merge(const MetricsSnapshot& other);

  /// Stable JSON: objects keyed by metric name in lexicographic order
  /// (std::map iteration), so two equal snapshots render byte-identically.
  [[nodiscard]] std::string to_json() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

class MetricsRegistry {
 public:
  /// The process-wide registry the span instrumentation feeds.
  [[nodiscard]] static MetricsRegistry& global();

  /// Finds or creates. References stay valid for the registry's lifetime
  /// (metrics are never removed, only reset()).
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// First call fixes the bucket bounds; later calls ignore `bounds`.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     const std::vector<double>& bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Drops every metric (tool start-up, test isolation).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ftsched::obs
