// Chrome trace-event JSON export (the format chrome://tracing and Perfetto
// load): renders the three timelines ftsched produces —
//
//  * a static schedule (sched::Gantt view): one timeline row per processor
//    and per link, complete events for replica executions and per-hop
//    transfer segments;
//  * a simulated iteration (sim::Trace): the same rows, but showing what
//    actually happened — including the timeout / election / failure / drop
//    instants the fault-tolerance argument hinges on;
//  * a profiling session (obs::SpanRecord): one row per worker thread.
//
// Schedule and simulation timestamps come from the paper's abstract time
// units, scaled by kTraceUsPerTimeUnit — fully deterministic, no wall
// clock, so exports golden-test byte-for-byte. Events render in a stable
// order: metadata first, then payload events in insertion order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/time.hpp"
#include "obs/span.hpp"

namespace ftsched {
class AlgorithmGraph;
class ArchitectureGraph;
class Schedule;
class Trace;
}  // namespace ftsched

namespace ftsched::obs {

/// Trace microseconds per paper time unit: 1 unit renders as 1ms, so the
/// paper's single-digit makespans are comfortably zoomable in Perfetto.
inline constexpr std::int64_t kTraceUsPerTimeUnit = 1000;

/// Schedule/simulator date -> trace timestamp. Requires finite `t`.
[[nodiscard]] std::int64_t to_trace_us(Time t);

/// Incremental builder over the trace-event JSON array format.
/// `args` values must be pre-rendered JSON (use json_string/json_number).
class ChromeTraceBuilder {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  void process_name(int pid, const std::string& name);
  void thread_name(int pid, int tid, const std::string& name);

  /// "X" (complete) event covering [ts_us, ts_us + dur_us].
  void complete(int pid, int tid, const std::string& name,
                const std::string& cat, std::int64_t ts_us,
                std::int64_t dur_us, Args args = {});

  /// "i" (instant) event, thread-scoped.
  void instant(int pid, int tid, const std::string& name,
               const std::string& cat, std::int64_t ts_us, Args args = {});

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}
  [[nodiscard]] std::string to_json() const;

 private:
  struct Event {
    char ph = 'X';
    int pid = 0;
    int tid = 0;
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;  // "X" only
    std::string name;
    std::string cat;  // empty for metadata
    Args args;
  };

  std::vector<Event> metadata_;
  std::vector<Event> events_;
};

/// Gantt view of a static schedule: rows P1..Pn then the links; replica
/// executions (args: rank, main) and active transfer segments (args: from,
/// to, sender_rank; liveness sends categorized "liveness"). Passive comms
/// occupy no time and are omitted.
[[nodiscard]] std::string chrome_trace_from_schedule(const Schedule& schedule);

/// Timeline of one simulated iteration. Executions and transfers pair
/// their start/end trace events into complete events; an execution cut
/// short by a crash renders as an instant (cat "op-cut"). Timeouts,
/// elections, failures, and dropped transfers render as instants on the
/// acting resource's row.
[[nodiscard]] std::string chrome_trace_from_sim_trace(
    const Trace& trace, const AlgorithmGraph& graph,
    const ArchitectureGraph& arch);

/// Profiling session: one row per recorded thread; timestamps are
/// nanosecond wall-clock readings rebased to the earliest span.
[[nodiscard]] std::string chrome_trace_from_spans(
    const std::vector<SpanRecord>& spans);

}  // namespace ftsched::obs
