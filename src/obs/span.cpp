#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace ftsched::obs {

namespace {

/// Duration buckets for the per-span-name histograms, microseconds:
/// 1µs .. 1s in decades, matching the spread between one simulator run
/// (tens of µs) and a whole campaign (seconds).
const std::vector<double>& span_bounds_us() {
  static const std::vector<double> bounds = {1,    10,     100,    1000,
                                             10000, 100000, 1000000};
  return bounds;
}

}  // namespace

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

Profiler::ThreadBuffer& Profiler::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(mutex_);
    buffer->index = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Profiler::record(const char* name, std::int64_t start_ns,
                      std::int64_t end_ns) {
  ThreadBuffer& buffer = local_buffer();
  {
    const std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.spans.push_back(SpanRecord{name, buffer.index, start_ns, end_ns});
  }
  MetricsRegistry::global()
      .histogram(std::string("span.") + name, span_bounds_us())
      .observe(static_cast<double>(end_ns - start_ns) / 1000.0);
}

std::vector<SpanRecord> Profiler::drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
    buffer->spans.clear();
  }
  // Buffers are visited in registration order and are chronological
  // within a thread already; make the contract explicit.
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.thread < b.thread;
                   });
  return out;
}

void Profiler::clear() { static_cast<void>(drain()); }

}  // namespace ftsched::obs
