// Low-overhead profiling spans for the scheduler, simulator, and campaign
// hot paths.
//
//   void Engine::commit(...) {
//     FTSCHED_SPAN("sched.commit");
//     ...
//   }
//
// Three cost tiers:
//  * FTSCHED_OBS=OFF (cmake option): FTSCHED_SPAN expands to nothing —
//    zero code in the hot path, the instrumented binary is bit-equivalent
//    to an uninstrumented one.
//  * compiled in, profiler disabled (the default at runtime): one relaxed
//    atomic load per span.
//  * profiler enabled: two steady_clock reads plus an append to a
//    thread-local buffer; on span end the duration also feeds the
//    "span.<name>" histogram of MetricsRegistry::global(), so aggregate
//    timing survives even when the raw span log is discarded.
//
// Span records carry a dense per-profiler thread index (registration
// order), which becomes the Chrome-trace tid — one timeline row per worker
// thread. Buffers outlive their threads, so the campaign can drain spans
// after its pool has joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#ifndef FTSCHED_OBS_ENABLED
#define FTSCHED_OBS_ENABLED 1
#endif

namespace ftsched::obs {

/// Monotonic wall clock, nanoseconds (std::chrono::steady_clock).
[[nodiscard]] std::int64_t now_ns() noexcept;

struct SpanRecord {
  /// Static string — the FTSCHED_SPAN literal; never freed, never copied.
  const char* name = nullptr;
  /// Dense thread index in profiler registration order.
  std::uint32_t thread = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;

  [[nodiscard]] std::int64_t duration_ns() const noexcept {
    return end_ns - start_ns;
  }
};

class Profiler {
 public:
  [[nodiscard]] static Profiler& global();

  /// Off by default; tools (trace_tool profile, campaign_tool --trace-out)
  /// switch it on around the region of interest.
  void enable(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends a finished span to the calling thread's buffer and observes
  /// its duration (microseconds) into the "span.<name>" histogram of the
  /// global metrics registry.
  void record(const char* name, std::int64_t start_ns, std::int64_t end_ns);

  /// All spans recorded so far, grouped by thread index (chronological
  /// within each thread), and clears the buffers. Call after concurrent
  /// recorders have quiesced (e.g. the campaign pool drained).
  [[nodiscard]] std::vector<SpanRecord> drain();

  /// Drops recorded spans without returning them.
  void clear();

 private:
  // Only the process-wide instance exists: the thread-local buffer handle
  // inside local_buffer() is necessarily per-process, not per-instance.
  Profiler() = default;

  struct ThreadBuffer {
    std::mutex mutex;
    std::uint32_t index = 0;
    std::vector<SpanRecord> spans;
  };

  [[nodiscard]] ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::mutex mutex_;
  /// Shared ownership with each thread's thread_local handle: buffers of
  /// exited threads stay drainable.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: captures the clock on construction if the global profiler is
/// enabled, records on destruction. `name` must be a static string.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (Profiler::global().enabled()) {
      name_ = name;
      start_ns_ = now_ns();
    }
  }

  ~ScopedSpan() {
    if (name_ != nullptr) Profiler::global().record(name_, start_ns_, now_ns());
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace ftsched::obs

#define FTSCHED_OBS_CONCAT_INNER(a, b) a##b
#define FTSCHED_OBS_CONCAT(a, b) FTSCHED_OBS_CONCAT_INNER(a, b)

#if FTSCHED_OBS_ENABLED
/// Times the enclosing scope under `name` (a string literal).
#define FTSCHED_SPAN(name)                                              \
  ::ftsched::obs::ScopedSpan FTSCHED_OBS_CONCAT(ftsched_obs_span_,      \
                                                __LINE__)(name)
#else
#define FTSCHED_SPAN(name) static_cast<void>(0)
#endif
