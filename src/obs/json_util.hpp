// Tiny JSON rendering helpers shared by every observability exporter
// (metrics JSON, Chrome trace-event JSON, bench result files). Rendering
// only — ftsched emits JSON for external tools (Perfetto, jq, plotting
// scripts) but never parses it back.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ftsched::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters are \u-escaped so any byte sequence the
/// domain produces (operation names come from user input files) stays
/// valid JSON.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number: integral values print without a
/// fraction ("3" not "3.000000"), everything else with enough digits to
/// be stable across exports of the same value. JSON has no infinity/NaN;
/// those render as null (callers that care filter them out first).
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

[[nodiscard]] inline std::string json_number(std::uint64_t v) {
  return std::to_string(v);
}

[[nodiscard]] inline std::string json_number(std::int64_t v) {
  return std::to_string(v);
}

/// A quoted, escaped JSON string literal.
[[nodiscard]] inline std::string json_string(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

}  // namespace ftsched::obs
