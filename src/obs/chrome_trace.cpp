#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "arch/architecture_graph.hpp"
#include "core/error.hpp"
#include "graph/algorithm_graph.hpp"
#include "obs/json_util.hpp"
#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace ftsched::obs {

std::int64_t to_trace_us(Time t) {
  FTSCHED_REQUIRE(!is_infinite(t), "cannot export an infinite date");
  return static_cast<std::int64_t>(
      std::llround(t * static_cast<double>(kTraceUsPerTimeUnit)));
}

void ChromeTraceBuilder::process_name(int pid, const std::string& name) {
  Event event;
  event.ph = 'M';
  event.pid = pid;
  event.tid = -1;
  event.name = "process_name";
  event.args = {{"name", json_string(name)}};
  metadata_.push_back(std::move(event));
}

void ChromeTraceBuilder::thread_name(int pid, int tid,
                                     const std::string& name) {
  Event event;
  event.ph = 'M';
  event.pid = pid;
  event.tid = tid;
  event.name = "thread_name";
  event.args = {{"name", json_string(name)}};
  metadata_.push_back(std::move(event));
}

void ChromeTraceBuilder::complete(int pid, int tid, const std::string& name,
                                  const std::string& cat, std::int64_t ts_us,
                                  std::int64_t dur_us, Args args) {
  Event event;
  event.ph = 'X';
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.name = name;
  event.cat = cat;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void ChromeTraceBuilder::instant(int pid, int tid, const std::string& name,
                                 const std::string& cat, std::int64_t ts_us,
                                 Args args) {
  Event event;
  event.ph = 'i';
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_us;
  event.name = name;
  event.cat = cat;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

std::string ChromeTraceBuilder::to_json() const {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  auto render = [&](const Event& event) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"ph\": \"";
    out += event.ph;
    out += "\", \"pid\": " + std::to_string(event.pid);
    if (event.tid >= 0) out += ", \"tid\": " + std::to_string(event.tid);
    if (event.ph != 'M') {
      out += ", \"ts\": " + std::to_string(event.ts_us);
      if (event.ph == 'X') {
        out += ", \"dur\": " + std::to_string(event.dur_us);
      }
      if (event.ph == 'i') out += ", \"s\": \"t\"";
    }
    out += ", \"name\": " + json_string(event.name);
    if (!event.cat.empty()) out += ", \"cat\": " + json_string(event.cat);
    if (!event.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_string(event.args[i].first) + ": " +
               event.args[i].second;
      }
      out += "}";
    }
    out += "}";
  };
  for (const Event& event : metadata_) render(event);
  for (const Event& event : events_) render(event);
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

namespace {

/// Shared row layout of the schedule and simulation views: tid 0..P-1 are
/// the processors, P..P+L-1 the links, named after the architecture.
void name_resource_rows(ChromeTraceBuilder& builder,
                        const ArchitectureGraph& arch) {
  for (const Processor& proc : arch.processors()) {
    builder.thread_name(0, static_cast<int>(proc.id.index()), proc.name);
  }
  for (const Link& link : arch.links()) {
    builder.thread_name(
        0, static_cast<int>(arch.processor_count() + link.id.index()),
        link.name);
  }
}

int proc_row(ProcessorId proc) { return static_cast<int>(proc.index()); }

int link_row(const ArchitectureGraph& arch, LinkId link) {
  return static_cast<int>(arch.processor_count() + link.index());
}

}  // namespace

std::string chrome_trace_from_schedule(const Schedule& schedule) {
  const AlgorithmGraph& graph = *schedule.problem().algorithm;
  const ArchitectureGraph& arch = *schedule.problem().architecture;

  ChromeTraceBuilder builder;
  builder.process_name(0, "schedule " + to_string(schedule.kind()) + " K=" +
                              std::to_string(schedule.failures_tolerated()));
  name_resource_rows(builder, arch);

  for (const ScheduledOperation& placement : schedule.operations()) {
    builder.complete(
        0, proc_row(placement.processor), graph.operation(placement.op).name,
        "op", to_trace_us(placement.start),
        to_trace_us(placement.end) - to_trace_us(placement.start),
        {{"rank", json_number(static_cast<std::int64_t>(placement.rank))},
         {"main", placement.is_main() ? "true" : "false"}});
  }
  for (const ScheduledComm& comm : schedule.comms()) {
    // Passive comms hold an election position but occupy no link time in
    // the failure-free run this view renders.
    if (!comm.active) continue;
    for (const CommSegment& segment : comm.segments) {
      builder.complete(
          0, link_row(arch, segment.link), graph.dependency(comm.dep).name,
          comm.liveness ? "liveness" : "comm", to_trace_us(segment.start),
          to_trace_us(segment.end) - to_trace_us(segment.start),
          {{"from", json_string(arch.processor(comm.from).name)},
           {"to", json_string(arch.processor(comm.to).name)},
           {"sender_rank",
            json_number(static_cast<std::int64_t>(comm.sender_rank))}});
    }
  }
  return builder.to_json();
}

std::string chrome_trace_from_sim_trace(const Trace& trace,
                                        const AlgorithmGraph& graph,
                                        const ArchitectureGraph& arch) {
  ChromeTraceBuilder builder;
  builder.process_name(0, "simulation");
  name_resource_rows(builder, arch);

  struct OpenOp {
    Time start = 0;
    int rank = -1;
  };
  // One replica of an operation per processor, so (op, proc) identifies an
  // execution; transfers of one dependency can cross one link repeatedly
  // (backup resends), but a link serves one frame at a time, so starts and
  // ends of (dep, link) pair FIFO.
  std::map<std::pair<std::size_t, std::size_t>, OpenOp> open_ops;
  std::map<std::pair<std::size_t, std::size_t>, std::deque<Time>>
      open_transfers;

  for (const TraceEvent& event : trace.events()) {
    switch (event.kind) {
      case TraceEvent::Kind::kOpStart:
        open_ops[{event.op.index(), event.proc.index()}] =
            OpenOp{event.time, event.rank};
        break;
      case TraceEvent::Kind::kOpEnd: {
        const auto key = std::make_pair(event.op.index(), event.proc.index());
        const auto it = open_ops.find(key);
        if (it == open_ops.end()) break;
        builder.complete(
            0, proc_row(event.proc), graph.operation(event.op).name, "op",
            to_trace_us(it->second.start),
            to_trace_us(event.time) - to_trace_us(it->second.start),
            {{"rank",
              json_number(static_cast<std::int64_t>(it->second.rank))}});
        open_ops.erase(it);
        break;
      }
      case TraceEvent::Kind::kTransferStart:
        open_transfers[{event.dep.index(), event.link.index()}].push_back(
            event.time);
        break;
      case TraceEvent::Kind::kTransferEnd: {
        const auto key =
            std::make_pair(event.dep.index(), event.link.index());
        auto& queue = open_transfers[key];
        if (queue.empty()) break;
        const Time start = queue.front();
        queue.pop_front();
        builder.complete(
            0, link_row(arch, event.link), graph.dependency(event.dep).name,
            "transfer", to_trace_us(start),
            to_trace_us(event.time) - to_trace_us(start),
            {{"to", json_string(arch.processor(event.peer).name)}});
        break;
      }
      case TraceEvent::Kind::kTimeout:
        builder.instant(
            0, proc_row(event.proc), "timeout", "timeout",
            to_trace_us(event.time),
            {{"dep", json_string(graph.dependency(event.dep).name)},
             {"accused", json_string(arch.processor(event.peer).name)}});
        break;
      case TraceEvent::Kind::kElection:
        builder.instant(
            0, proc_row(event.proc), "election", "election",
            to_trace_us(event.time),
            {{"dep", json_string(graph.dependency(event.dep).name)},
             {"rank", json_number(static_cast<std::int64_t>(event.rank))}});
        break;
      case TraceEvent::Kind::kFailure:
        builder.instant(0, proc_row(event.proc), "failure", "failure",
                        to_trace_us(event.time));
        break;
      case TraceEvent::Kind::kDrop: {
        const int row = event.link.valid() ? link_row(arch, event.link)
                                           : proc_row(event.proc);
        ChromeTraceBuilder::Args args;
        if (event.dep.valid()) {
          args.push_back(
              {"dep", json_string(graph.dependency(event.dep).name)});
        }
        builder.instant(0, row, "drop", "drop", to_trace_us(event.time),
                        std::move(args));
        break;
      }
    }
  }

  // Executions cut short by a crash: the start is real information (the
  // replica was running when its processor died) even without an end.
  for (const auto& [key, open] : open_ops) {
    builder.instant(
        0, static_cast<int>(key.second),
        graph.operation(OperationId(static_cast<std::int32_t>(key.first)))
            .name,
        "op-cut", to_trace_us(open.start),
        {{"rank", json_number(static_cast<std::int64_t>(open.rank))}});
  }
  for (const auto& [key, starts] : open_transfers) {
    for (const Time start : starts) {
      builder.instant(
          0,
          link_row(arch, LinkId(static_cast<std::int32_t>(key.second))),
          graph.dependency(DependencyId(static_cast<std::int32_t>(key.first)))
              .name,
          "transfer-cut", to_trace_us(start));
    }
  }
  return builder.to_json();
}

std::string chrome_trace_from_spans(const std::vector<SpanRecord>& spans) {
  ChromeTraceBuilder builder;
  builder.process_name(0, "profile");
  std::int64_t base_ns = 0;
  bool have_base = false;
  std::uint32_t max_thread = 0;
  for (const SpanRecord& span : spans) {
    if (!have_base || span.start_ns < base_ns) base_ns = span.start_ns;
    have_base = true;
    max_thread = std::max(max_thread, span.thread);
  }
  for (std::uint32_t t = 0; have_base && t <= max_thread; ++t) {
    builder.thread_name(0, static_cast<int>(t),
                        "thread " + std::to_string(t));
  }
  for (const SpanRecord& span : spans) {
    builder.complete(0, static_cast<int>(span.thread), span.name, "span",
                     (span.start_ns - base_ns) / 1000,
                     span.duration_ns() / 1000);
  }
  return builder.to_json();
}

}  // namespace ftsched::obs
