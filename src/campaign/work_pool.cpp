#include "campaign/work_pool.hpp"

#include <utility>

namespace ftsched::campaign {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

WorkPool::WorkPool(unsigned threads) {
  const unsigned count = resolve_threads(threads);
  slots_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkPool::~WorkPool() {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkPool::submit(std::function<void()> task) {
  std::size_t slot;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++pending_;
    slot = next_slot_;
    next_slot_ = (next_slot_ + 1) % slots_.size();
  }
  {
    const std::lock_guard<std::mutex> lock(slots_[slot]->mutex);
    slots_[slot]->tasks.push_back(std::move(task));
  }
  {
    // The queued_ increment must happen under state_mutex_ (after the task
    // is visible in its deque) or a worker could check the wait predicate,
    // miss the count, and sleep through the notify.
    const std::lock_guard<std::mutex> lock(state_mutex_);
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  work_ready_.notify_one();
}

std::function<void()> WorkPool::take(std::size_t self) {
  // Own deque first, back (most recently dealt, cache-warm)...
  {
    Slot& mine = *slots_[self];
    const std::lock_guard<std::mutex> lock(mine.mutex);
    if (!mine.tasks.empty()) {
      std::function<void()> task = std::move(mine.tasks.back());
      mine.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // ...then steal from the front of the other deques, oldest first.
  for (std::size_t step = 1; step < slots_.size(); ++step) {
    Slot& victim = *slots_[(self + step) % slots_.size()];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void WorkPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task = take(self);
    if (!task) {
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (stopping_) return;
      // Sleep until a task is queued somewhere or the pool shuts down. A
      // stale positive queued_ (another worker grabbed the task between
      // our take() and this check) just loops through one more empty
      // take(); a sleep with queued_ == 0 is safe because submit() bumps
      // the count under this same mutex before notifying.
      work_ready_.wait(lock, [this] {
        return stopping_ ||
               queued_.load(std::memory_order_relaxed) > 0;
      });
      if (stopping_) return;
      continue;
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

void WorkPool::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exception_ptr();
    std::swap(error, first_error_);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace ftsched::campaign
