#include "campaign/canonical.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace ftsched::campaign {

namespace {

template <class T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool contains(const std::vector<ProcessorId>& v, ProcessorId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

/// Serialization primitives: fixed-width little-endian-independent byte
/// dumps (we only compare fingerprints produced by the same process, so
/// native byte order is fine; doubles are dumped by bit pattern, making
/// the key exact, not epsilon-fuzzy).
void put_i64(std::string& out, std::int64_t v) {
  char bytes[sizeof v];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof v);
}

void put_time(std::string& out, Time t) {
  static_assert(sizeof(Time) == sizeof(std::int64_t));
  std::int64_t bits;
  std::memcpy(&bits, &t, sizeof bits);
  put_i64(out, bits);
}

/// canonical_plan into scratch.plan, reusing every list's storage.
void canonicalize(const MissionPlan& plan, CanonicalScratch& scratch) {
  MissionPlan& out = scratch.plan;
  out.iterations = plan.iterations;
  out.failures.clear();
  out.link_failures.clear();

  out.dead_at_start = plan.dead_at_start;
  sort_unique(out.dead_at_start);
  out.dead_links_at_start = plan.dead_links_at_start;
  sort_unique(out.dead_links_at_start);

  out.suspected_at_start = plan.suspected_at_start;
  sort_unique(out.suspected_at_start);
  std::erase_if(out.suspected_at_start, [&](ProcessorId p) {
    return contains(out.dead_at_start, p);
  });

  // Crashes: earliest per processor; processors dead at start never crash.
  std::vector<MissionFailure>& crashes = scratch.crashes;
  crashes = plan.failures;
  std::sort(crashes.begin(), crashes.end(),
            [](const MissionFailure& a, const MissionFailure& b) {
              if (a.iteration != b.iteration) return a.iteration < b.iteration;
              if (a.event.time != b.event.time) {
                return a.event.time < b.event.time;
              }
              return a.event.processor < b.event.processor;
            });
  for (const MissionFailure& crash : crashes) {
    if (contains(out.dead_at_start, crash.event.processor)) continue;
    const bool repeat = std::any_of(
        out.failures.begin(), out.failures.end(),
        [&](const MissionFailure& kept) {
          return kept.event.processor == crash.event.processor;
        });
    if (!repeat) out.failures.push_back(crash);
  }

  // Link deaths: earliest per link; links dead at start never die again.
  std::vector<MissionLinkFailure>& link_deaths = scratch.link_deaths;
  link_deaths = plan.link_failures;
  std::sort(link_deaths.begin(), link_deaths.end(),
            [](const MissionLinkFailure& a, const MissionLinkFailure& b) {
              if (a.iteration != b.iteration) return a.iteration < b.iteration;
              if (a.event.time != b.event.time) {
                return a.event.time < b.event.time;
              }
              return a.event.link < b.event.link;
            });
  for (const MissionLinkFailure& death : link_deaths) {
    if (std::find(out.dead_links_at_start.begin(),
                  out.dead_links_at_start.end(),
                  death.event.link) != out.dead_links_at_start.end()) {
      continue;
    }
    const bool repeat = std::any_of(
        out.link_failures.begin(), out.link_failures.end(),
        [&](const MissionLinkFailure& kept) {
          return kept.event.link == death.event.link;
        });
    if (!repeat) out.link_failures.push_back(death);
  }

  // Silences: drop inert ones, sort, drop exact duplicates. A window on a
  // processor whose (earliest) crash strictly precedes the opening edge in
  // mission order is as inert as one on a dead-at-start processor: the
  // event queue pops the exactly-earlier crash first, is_silent is only
  // consulted for a live feeding processor, and the closing-edge wake-up
  // is a no-op kDeadline. Same-instant crashes are kept — the crash
  // dispatches after the instant's send attempts, which the window blocks.
  out.silences = plan.silences;
  std::erase_if(out.silences, [&](const MissionSilence& s) {
    if (s.window.to <= s.window.from ||
        contains(out.dead_at_start, s.window.processor)) {
      return true;
    }
    return std::any_of(out.failures.begin(), out.failures.end(),
                       [&](const MissionFailure& crash) {
                         if (crash.event.processor != s.window.processor) {
                           return false;
                         }
                         return crash.iteration < s.iteration ||
                                (crash.iteration == s.iteration &&
                                 crash.event.time < s.window.from);
                       });
  });
  std::sort(out.silences.begin(), out.silences.end(),
            [](const MissionSilence& a, const MissionSilence& b) {
              if (a.iteration != b.iteration) return a.iteration < b.iteration;
              if (a.window.processor != b.window.processor) {
                return a.window.processor < b.window.processor;
              }
              if (a.window.from != b.window.from) {
                return a.window.from < b.window.from;
              }
              return a.window.to < b.window.to;
            });
  out.silences.erase(
      std::unique(out.silences.begin(), out.silences.end(),
                  [](const MissionSilence& a, const MissionSilence& b) {
                    return a.iteration == b.iteration &&
                           a.window == b.window;
                  }),
      out.silences.end());
}

}  // namespace

MissionPlan canonical_plan(const MissionPlan& plan) {
  CanonicalScratch scratch;
  canonicalize(plan, scratch);
  return std::move(scratch.plan);
}

void canonical_fingerprint_into(const MissionPlan& plan,
                                CanonicalScratch& scratch, std::string& out) {
  canonicalize(plan, scratch);
  const MissionPlan& c = scratch.plan;
  out.clear();
  out.reserve(64 + 16 * c.event_count());
  put_i64(out, c.iterations);
  put_i64(out, static_cast<std::int64_t>(c.dead_at_start.size()));
  for (ProcessorId p : c.dead_at_start) put_i64(out, p.value());
  put_i64(out, static_cast<std::int64_t>(c.dead_links_at_start.size()));
  for (LinkId l : c.dead_links_at_start) put_i64(out, l.value());
  put_i64(out, static_cast<std::int64_t>(c.suspected_at_start.size()));
  for (ProcessorId p : c.suspected_at_start) put_i64(out, p.value());
  put_i64(out, static_cast<std::int64_t>(c.failures.size()));
  for (const MissionFailure& f : c.failures) {
    put_i64(out, f.iteration);
    put_i64(out, f.event.processor.value());
    put_time(out, f.event.time);
  }
  put_i64(out, static_cast<std::int64_t>(c.link_failures.size()));
  for (const MissionLinkFailure& f : c.link_failures) {
    put_i64(out, f.iteration);
    put_i64(out, f.event.link.value());
    put_time(out, f.event.time);
  }
  put_i64(out, static_cast<std::int64_t>(c.silences.size()));
  for (const MissionSilence& s : c.silences) {
    put_i64(out, s.iteration);
    put_i64(out, s.window.processor.value());
    put_time(out, s.window.from);
    put_time(out, s.window.to);
  }
}

std::string canonical_fingerprint(const MissionPlan& plan) {
  CanonicalScratch scratch;
  std::string out;
  canonical_fingerprint_into(plan, scratch, out);
  return out;
}

std::uint64_t plan_key(const MissionPlan& plan) {
  const std::string bytes = canonical_fingerprint(plan);
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV-1a prime
  }
  return hash;
}

}  // namespace ftsched::campaign
