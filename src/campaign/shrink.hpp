// Counterexample shrinking: delta-debugging minimization of a violating
// MissionPlan (Zeller/Hildebrandt's ddmin over the plan's event list,
// followed by domain-specific canonicalization passes), re-simulating at
// every step, until the plan is 1-minimal — removing any single remaining
// event makes the violation disappear. A 40-event random cascade shrinks
// to the two lines that actually matter, ready to be serialized
// (io/scenario_format.hpp) and checked into tests/ as a permanent
// regression.
//
// Passes, in order:
//  1. ddmin over all injected events (crashes, dead-at-start, silences,
//     link faults, suspicions);
//  2. mission truncation to the first violating iteration;
//  3. crash simplification: mid-run crashes become dead-at-start when the
//     violation survives (the settled regime is the simpler reproducer);
//  4. crash-instant snapping to the schedule's Gantt boundaries — replica
//     start/finish dates on the crashed processor — preferring the
//     earliest still-failing instant;
//  5. silent-window narrowing by binary bisection of each edge;
//  6. a final singles sweep re-establishing 1-minimality after the
//     rewrites (a snapped crash can subsume another event).
// Every pass is deterministic, so a shrunk reproducer is stable across
// runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/oracle.hpp"
#include "sim/simulator.hpp"

namespace ftsched::campaign {

struct ShrinkOptions {
  /// Cap on mission simulations spent shrinking; 0 = unbounded. When the
  /// cap is hit mid-pass, no further variants are probed and the best
  /// verified-failing plan found so far is returned with budget_exhausted
  /// set — every intermediate plan the shrinker commits to has itself been
  /// judged failing, so the result is a valid (just possibly non-minimal)
  /// reproducer. The precondition judge and the final violation re-judge
  /// are counted against (and may exceed by one) the cap.
  std::size_t max_simulations = 0;
};

struct ShrinkResult {
  /// The minimized plan; still violating, 1-minimal w.r.t. event removal
  /// unless budget_exhausted is set (then merely best-so-far).
  MissionPlan plan;
  /// Oracle violations of the minimized plan.
  std::vector<std::string> violations;
  std::size_t initial_events = 0;
  std::size_t final_events = 0;
  /// Mission simulations spent shrinking.
  std::size_t simulations = 0;
  /// True when ShrinkOptions::max_simulations stopped the minimization
  /// before the passes converged.
  bool budget_exhausted = false;
};

/// Minimizes `plan`. Precondition: the oracle rejects `plan` (judge over a
/// fresh run_mission is not ok); throws std::invalid_argument otherwise.
/// `simulator` must execute the same schedule the oracle judges.
[[nodiscard]] ShrinkResult shrink(const Simulator& simulator,
                                  const Oracle& oracle, MissionPlan plan,
                                  const ShrinkOptions& options);
[[nodiscard]] ShrinkResult shrink(const Simulator& simulator,
                                  const Oracle& oracle, MissionPlan plan);

}  // namespace ftsched::campaign
