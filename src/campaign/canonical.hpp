// Canonicalization of mission plans up to effective failure behaviour.
//
// Many syntactically different plans drive the simulator identically: fault
// lists in a different order, a crash of a processor that is already dead at
// start, a second crash of the same processor, a fail-silent window of zero
// length or on a dead processor, a dead processor redundantly listed as
// suspected. canonical_plan() rewrites a plan into a normal form such that
// two plans with equal normal forms produce equal MissionResult summaries
// (same per-iteration outputs/response/counters — trace event ORDER within
// one instant may differ, which no summary observes), and
// canonical_fingerprint() serializes that normal form into the exact string
// key the campaign runner uses to count unique coverage and skip redundant
// replays.
//
// Soundness argument, per rewrite:
//  * sorting: scenario event lists only affect the simulator through
//    same-instant event batches, whose per-kind handlers are commutative
//    (each crash cancels its own processor's transfers; window lookup and
//    start-state application are set-like);
//  * dropping a crash of a processor dead at start, or any crash after the
//    processor's earliest one: on_failure of a dead processor is a no-op —
//    only the earliest instant matters;
//  * dropping windows with to <= from: is_silent never matches them, and
//    the extra wake-up they schedule lands on an already-reached fixpoint;
//  * dropping silences of dead-at-start processors — or of processors
//    whose earliest crash strictly precedes the window's opening edge in
//    mission order: is_silent is only consulted for a live feeding
//    processor, and the dead processor never reaches one;
//  * dropping a dead-at-start processor from suspected_at_start: the
//    suspicion flags it would preset are a subset of those the death
//    presets, and its own flag row dies with it (finish() and every read
//    skip dead processors' rows).
#pragma once

#include <cstdint>
#include <string>

#include "sim/mission.hpp"

namespace ftsched::campaign {

/// The normal form described above: per-class lists sorted, exact
/// duplicates and behaviourally inert entries removed.
[[nodiscard]] MissionPlan canonical_plan(const MissionPlan& plan);

/// Exact byte serialization of `canonical_plan(plan)` — equal fingerprints
/// iff equal normal forms, so using it as a cache/uniqueness key can never
/// alias two effectively different scenarios.
[[nodiscard]] std::string canonical_fingerprint(const MissionPlan& plan);

/// Reusable buffers for the batched fingerprint path: the campaign runner
/// canonicalizes thousands of plans per chunk, and one scratch per worker
/// amortizes the normal form's list copies. Treat as opaque.
struct CanonicalScratch {
  MissionPlan plan;
  std::vector<MissionFailure> crashes;
  std::vector<MissionLinkFailure> link_deaths;
};

/// canonical_fingerprint into a caller-owned string (cleared first),
/// reusing `scratch`; byte-identical to canonical_fingerprint(plan).
void canonical_fingerprint_into(const MissionPlan& plan,
                                CanonicalScratch& scratch, std::string& out);

/// FNV-1a 64-bit hash of canonical_fingerprint(plan), for callers that
/// want a compact key and can tolerate (negligible) collisions.
[[nodiscard]] std::uint64_t plan_key(const MissionPlan& plan);

}  // namespace ftsched::campaign
