// Seeded adversarial scenario sampler — the random half of the
// fault-injection campaign (DESIGN.md §7). Following Goemans/Lynch/Saias'
// framing of fault tolerance as a game against an adversary who picks the
// worst failure pattern, the generator plays a randomized adversary: it
// draws multi-iteration MissionPlans mixing every fault class the
// simulator models — mid-run crashes with jittered instants, processors
// dead from mission start, fail-silent windows, link deaths, and
// carried-over detection mistakes — both inside the schedule's tolerated
// budget (where the oracle demands masking) and deliberately beyond it
// (where losing outputs is the expected observation).
//
// Determinism contract: scenario(i) is a pure function of
// (spec, campaign seed, i). Same seed + same spec => byte-identical
// scenario stream, on any platform — the sampler uses its own bounded-draw
// helpers instead of std::uniform_*_distribution, whose outputs are
// implementation-defined. Random access is what lets the parallel runner
// fan indices across threads with no shared RNG state and lets the
// shrinker replay a single index in isolation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sched/schedule.hpp"
#include "sim/mission.hpp"

namespace ftsched::campaign {

struct CampaignSpec {
  /// Fault budget of within-contract scenarios: max distinct processor
  /// faults drawn per scenario. -1 derives the schedule's tolerated K.
  int max_processor_failures = -1;
  /// Fraction of scenarios that deliberately exceed the budget, by
  /// 1..over_budget_extra extra processor faults (expected-failure
  /// testing: the oracle only requires that such runs terminate sanely).
  double over_budget_fraction = 0.0;
  int over_budget_extra = 1;
  /// Probability that an injected processor fault is dead-from-start
  /// (the paper's settled "subsequent iteration" regime) rather than a
  /// mid-run crash (the "transient iteration" regime).
  double dead_at_start_probability = 0.35;
  /// Per-scenario probability of one fail-silent window on a healthy
  /// processor (§6.1 item 3 — masked for free, outside the fault budget).
  double silence_probability = 0.0;
  /// Per-scenario probability of one wrongly suspected healthy processor
  /// at mission start (detection-mistake carryover).
  double suspect_probability = 0.0;
  /// Per-scenario probability of one link fault (outside the paper's
  /// failure hypothesis: scenarios with link faults are never
  /// within-contract).
  double link_failure_probability = 0.0;
  /// Mission length range, drawn uniformly in [min_iterations,
  /// max_iterations].
  int min_iterations = 1;
  int max_iterations = 1;
  /// Crash instants are drawn from [0, horizon_factor * makespan) of the
  /// iteration they strike — past-makespan instants probe the idle tail.
  double horizon_factor = 1.25;
};

struct CampaignScenario {
  std::size_t index = 0;
  /// Derived per-scenario stream seed (mix of campaign seed and index).
  std::uint64_t seed = 0;
  MissionPlan plan;
};

/// SplitMix64-style avalanche of (campaign seed, scenario index) into the
/// per-scenario stream seed. Public so tests can pin the derivation.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index);

/// Reusable draw buffers for the batched sampling path (scenario_into):
/// one per worker amortizes the sampler's temporary allocations across a
/// whole chunk of scenarios. Treat as opaque.
struct ScenarioScratch {
  std::vector<std::size_t> victims;
  std::vector<std::size_t> pool;
};

/// Closing edge substituted when a silent-window draw degenerates to zero
/// length (both edges drew the same instant): widen by a sliver of the
/// horizon, clamped so the repaired window never escapes [0, horizon] —
/// every non-degenerate draw lies inside it, and a past-horizon edge would
/// be unreproducible by re-drawing. Public because the repair only fires
/// on a draw collision, which sampled tests cannot reach; consumes no RNG
/// draws, so seeded corpora reproduce unchanged.
[[nodiscard]] Time repaired_window_end(Time from, Time horizon);

class ScenarioGenerator {
 public:
  /// The schedule must outlive the generator. Spec fields are clamped to
  /// sane ranges (probabilities into [0,1], iterations >= 1, budget into
  /// [0, processor_count - 1]).
  ScenarioGenerator(const Schedule& schedule, CampaignSpec spec,
                    std::uint64_t seed);

  /// The index-th scenario of the stream. Pure: any index, any order, any
  /// thread, same result.
  [[nodiscard]] CampaignScenario scenario(std::size_t index) const;

  /// Batched variant: builds the index-th scenario into `out`, reusing
  /// `out`'s plan vectors and `scratch`'s draw buffers. Produces exactly
  /// scenario(index) — the campaign runner's hot path.
  void scenario_into(std::size_t index, CampaignScenario& out,
                     ScenarioScratch& scratch) const;

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Resolved within-contract fault budget (spec or schedule K).
  [[nodiscard]] int budget() const noexcept { return budget_; }
  /// Resolved crash-instant horizon (horizon_factor * makespan).
  [[nodiscard]] Time horizon() const noexcept { return horizon_; }

 private:
  const Schedule* schedule_;
  CampaignSpec spec_;
  std::uint64_t seed_ = 0;
  int budget_ = 0;
  Time horizon_ = 0;
};

}  // namespace ftsched::campaign
