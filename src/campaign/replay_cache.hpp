// Shared cross-chunk replay cache for the campaign runner.
//
// A MissionResult is a pure function of a plan's canonical fault pattern
// (campaign/canonical.hpp), so once ANY chunk has simulated a pattern,
// every later scenario with the same fingerprint — in the same chunk or a
// different one, on any thread — can reuse the result instead of
// re-simulating. Reuse is invisible in the report: a hit yields the exact
// MissionResult a fresh simulation would, so every reported field stays a
// pure function of (schedule, options) whether a given lookup hits or
// misses. That freedom is what lets the cache be best-effort: fixed
// capacity, inserts dropped when a probe window is full, no eviction —
// a miss only costs the simulation the uncached runner would have done
// anyway.
//
// Layout: the fingerprint's hash picks one of kShards independent
// fixed-size open-addressing tables. Slots publish through an atomic tag
// (0 = empty, 1 = write in progress, else the key's hash mark): an
// inserter claims an empty slot by CAS, writes the key string and the
// result pointer, then release-stores the mark; readers acquire-load the
// tag, verify the full key (hash collisions just probe on), and copy the
// shared_ptr — no locks on either path, safe under TSan because the
// payload is written before the release store and never mutated after.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/mission.hpp"

namespace ftsched::campaign {

/// FNV-1a 64-bit over the fingerprint bytes — same function as
/// canonical.hpp's plan_key, exposed so the runner hashes the fingerprint
/// it already built instead of re-canonicalizing.
[[nodiscard]] inline std::uint64_t fingerprint_hash(
    const std::string& bytes) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV-1a prime
  }
  return hash;
}

class ReplayCache {
 public:
  /// Capacity is sized for `expected_keys` distinct fingerprints (rounded
  /// up to a power of two per shard, at least one slot each); the table
  /// never grows, extra inserts are dropped.
  explicit ReplayCache(std::size_t expected_keys);

  ReplayCache(const ReplayCache&) = delete;
  ReplayCache& operator=(const ReplayCache&) = delete;

  /// The cached result for `key` (whose fingerprint_hash is `hash`), or
  /// null. Lock-free. Returns a raw pointer, not a shared_ptr copy:
  /// published slots are never overwritten or evicted, so the result
  /// outlives the cache's every reader and a hit costs no refcount
  /// round-trip.
  [[nodiscard]] const MissionResult* find(std::uint64_t hash,
                                          const std::string& key) const;

  /// Publishes `result` under `key`; silently dropped when the probe
  /// window is full or another thread is publishing the same key.
  void insert(std::uint64_t hash, const std::string& key,
              std::shared_ptr<const MissionResult> result);

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kProbeWindow = 8;
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kBusy = 1;

  /// The slot's published tag for a key hash: never kEmpty/kBusy.
  [[nodiscard]] static std::uint64_t mark(std::uint64_t hash) noexcept {
    return hash | 2;
  }

  struct Slot {
    std::atomic<std::uint64_t> tag{kEmpty};
    std::string key;
    std::shared_ptr<const MissionResult> result;
  };

  struct Shard {
    std::vector<Slot> slots;
    std::size_t mask = 0;
  };

  [[nodiscard]] const Shard& shard_for(std::uint64_t hash) const noexcept {
    return shards_[(hash >> 56) & (kShards - 1)];
  }
  [[nodiscard]] Shard& shard_for(std::uint64_t hash) noexcept {
    return shards_[(hash >> 56) & (kShards - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace ftsched::campaign
