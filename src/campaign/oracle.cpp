#include "campaign/oracle.hpp"

#include <algorithm>
#include <utility>

#include "arch/routing.hpp"
#include "core/error.hpp"
#include "graph/algorithm_graph.hpp"
#include "sched/timeouts.hpp"
#include "sched/validate.hpp"

namespace ftsched::campaign {

namespace {

// Fault sets are a handful of entries, so counting distinct values with a
// quadratic scan over a logical concatenation of the two source vectors
// beats materializing, sorting, and uniquing a heap-allocated copy — this
// runs once per scenario on the campaign hot path.
template <typename Value>
std::size_t distinct_count(Value value_at, std::size_t n) {
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j) {
      seen = value_at(j) == value_at(i);
    }
    if (!seen) ++distinct;
  }
  return distinct;
}

}  // namespace

std::size_t plan_processor_faults(const MissionPlan& plan) {
  const std::size_t starts = plan.dead_at_start.size();
  return distinct_count(
      [&](std::size_t i) {
        return i < starts ? plan.dead_at_start[i].value()
                          : plan.failures[i - starts].event.processor.value();
      },
      starts + plan.failures.size());
}

std::size_t plan_link_faults(const MissionPlan& plan) {
  const std::size_t starts = plan.dead_links_at_start.size();
  return distinct_count(
      [&](std::size_t i) {
        return i < starts ? plan.dead_links_at_start[i].value()
                          : plan.link_failures[i - starts].event.link.value();
      },
      starts + plan.link_failures.size());
}

Time static_response_bound(const Schedule& schedule) {
  const Problem& problem = schedule.problem();
  const RoutingTable routing(*problem.architecture);
  const TimeoutTable timeouts(schedule, routing);

  Time last_trigger = schedule.makespan();
  for (const TimeoutChain& chain : timeouts.chains()) {
    for (const TimeoutEntry& entry : chain.entries) {
      if (!is_infinite(entry.deadline)) {
        last_trigger = std::max(last_trigger, entry.deadline);
      }
    }
  }

  Time tail = 0;
  for (const Operation& op : problem.algorithm->operations()) {
    Time worst = 0;
    for (const Processor& proc : problem.architecture->processors()) {
      const Time wcet = problem.exec->duration(op.id, proc.id);
      if (!is_infinite(wcet)) worst = std::max(worst, wcet);
    }
    tail += worst;
  }
  for (const Dependency& dep : problem.algorithm->dependencies()) {
    for (const Link& link : problem.architecture->links()) {
      const Time cost = problem.comm->duration(dep.id, link.id);
      if (!is_infinite(cost)) tail += cost;
    }
  }
  return last_trigger + tail;
}

std::vector<LatencyProbe> resolve_latency_constraints(
    const Schedule& schedule,
    const std::vector<LatencyConstraint>& constraints) {
  const AlgorithmGraph& graph = *schedule.problem().algorithm;
  std::vector<LatencyProbe> probes;
  probes.reserve(constraints.size());
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const LatencyConstraint& c = constraints[i];
    FTSCHED_REQUIRE(!c.name.empty(),
                    "latency constraint #" + std::to_string(i) +
                        " has an empty name");
    for (std::size_t j = 0; j < i; ++j) {
      FTSCHED_REQUIRE(constraints[j].name != c.name,
                      "duplicate latency constraint name \"" + c.name +
                          "\"");
    }
    FTSCHED_REQUIRE(!is_infinite(c.bound) && time_gt(c.bound, 0),
                    "latency constraint \"" + c.name +
                        "\" needs a finite, strictly positive bound");
    auto resolve = [&](const char* role, const std::string& op_name) {
      const OperationId op = graph.find_operation(op_name);
      FTSCHED_REQUIRE(op.valid(), "latency constraint \"" + c.name +
                                      "\": " + std::string(role) +
                                      " operation \"" + op_name +
                                      "\" is not in the graph");
      FTSCHED_REQUIRE(!schedule.replicas(op).empty(),
                      "latency constraint \"" + c.name + "\": " +
                          std::string(role) + " operation \"" + op_name +
                          "\" has no scheduled replica");
      return static_cast<std::uint32_t>(op.index());
    };
    LatencyProbe probe;
    probe.source = resolve("source", c.source_op);
    probe.sink = resolve("sink", c.sink_op);
    probes.push_back(probe);
  }
  return probes;
}

Time chain_latency(const std::vector<Time>& op_completions,
                   const LatencyProbe& probe) {
  const Time sink = probe.sink < op_completions.size()
                        ? op_completions[probe.sink]
                        : kInfinite;
  if (is_infinite(sink)) return kInfinite;
  const Time source = probe.source < op_completions.size()
                          ? op_completions[probe.source]
                          : kInfinite;
  // A chain whose source never ran is anchored at mission start: the sink
  // was served without the source, so the whole elapsed time counts.
  return is_infinite(source) ? sink : sink - source;
}

Oracle::Oracle(const Schedule& schedule, OracleSpec spec)
    : schedule_(&schedule), spec_(std::move(spec)) {
  claimed_ = spec_.claimed_tolerance >= 0 ? spec_.claimed_tolerance
                                          : schedule.failures_tolerated();
  claimed_links_ = std::max(spec_.claimed_link_tolerance, 0);
  bound_ = is_infinite(spec_.response_bound)
               ? static_response_bound(schedule)
               : spec_.response_bound;
  probes_ = resolve_latency_constraints(schedule, spec_.latency_constraints);
  static_violations_ = validate(schedule);
  for (std::string& issue : static_violations_) {
    issue.insert(0, "static validator: ");
  }
}

Verdict Oracle::judge(const MissionPlan& plan,
                      const MissionResult& result) const {
  Verdict verdict;
  const std::size_t proc_faults = plan_processor_faults(plan);
  const std::size_t link_faults = plan_link_faults(plan);
  verdict.within_contract =
      proc_faults <= static_cast<std::size_t>(claimed_) &&
      link_faults <= static_cast<std::size_t>(claimed_links_);

  auto violation = [&](int iteration, std::string message) {
    if (verdict.first_violation_iteration < 0) {
      verdict.first_violation_iteration = iteration;
    }
    verdict.violations.push_back(std::move(message));
  };

  if (result.iterations.size() !=
      static_cast<std::size_t>(plan.iterations)) {
    violation(0, "harness: mission produced " +
                     std::to_string(result.iterations.size()) +
                     " iteration records for a " +
                     std::to_string(plan.iterations) + "-iteration plan");
    return verdict;
  }

  // A silence aimed at an iteration the mission never runs is a malformed
  // plan, not a benign no-op: silently dropping it would judge the plan as
  // if the window had been injected. Flag it like the harness mismatch
  // above (and like over-budget plans, carry no masking promise past it).
  for (const MissionSilence& silence : plan.silences) {
    if (silence.iteration < 0 || silence.iteration >= plan.iterations) {
      violation(0, "harness: silence on a plan with " +
                       std::to_string(plan.iterations) +
                       " iteration(s) targets iteration " +
                       std::to_string(silence.iteration));
      return verdict;
    }
    // A zero-length (or inverted) window blocks nothing — the simulator
    // rejects it outright — so a plan carrying one is malformed the same
    // way: flag it instead of judging the plan as if a window had been
    // injected. time_le makes sub-epsilon windows malformed too; the
    // shrinker's bisection never commits one.
    if (time_le(silence.window.to, silence.window.from)) {
      violation(0, "harness: silence window [" +
                       time_to_string(silence.window.from) + ", " +
                       time_to_string(silence.window.to) +
                       ") on iteration " + std::to_string(silence.iteration) +
                       " has no positive length");
      return verdict;
    }
  }

  for (const MissionIteration& iteration : result.iterations) {
    if (!iteration.all_outputs_produced) verdict.outputs_lost = true;
  }
  if (!verdict.within_contract) {
    // Over-budget (or link-faulted) missions carry no masking promise;
    // losing outputs there is the expected observation, not a violation.
    return verdict;
  }

  // A fail-silent window defers blocked sends to its closing edge: a send
  // blocked at instant b resumes at `to`, so the worst stretch a window
  // actually forced is `to - b` for the earliest attempt it blocked — the
  // simulator reports that as the iteration's silence_deferral (§6.1 item 3
  // masks the window, it does not hide the delay). This is the tight
  // per-window bound: at most the window's length (the historical uniform
  // allowance, granted even to windows that blocked nothing), and 0 for a
  // window no send ever ran into, so every verdict is at least as strict
  // as under the length rule.
  for (const MissionIteration& iteration : result.iterations) {
    if (!iteration.all_outputs_produced) {
      violation(iteration.index,
                "iteration " + std::to_string(iteration.index) +
                    ": outputs lost under " + std::to_string(proc_faults) +
                    " faults (<= claimed K=" + std::to_string(claimed_) +
                    ")");
      continue;
    }
    const Time allowed = bound_ + iteration.silence_deferral;
    if (spec_.check_response && time_gt(iteration.response_time, allowed)) {
      verdict.response_exceeded = true;
      violation(iteration.index,
                "iteration " + std::to_string(iteration.index) +
                    ": response " + time_to_string(iteration.response_time) +
                    " exceeds static bound " + time_to_string(allowed));
    }
    if (probes_.empty()) continue;
    // Chain constraints need the per-op completion table; a mission result
    // without one came from an out-of-date harness, which is a malformed
    // input like the iteration-count mismatch above, not a latency verdict.
    if (iteration.op_completions.empty()) {
      violation(iteration.index,
                "harness: iteration " + std::to_string(iteration.index) +
                    " carries no operation completions for the latency "
                    "constraints");
      continue;
    }
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      const LatencyConstraint& c = spec_.latency_constraints[i];
      const Time latency = chain_latency(iteration.op_completions, probes_[i]);
      const Time chain_allowed = c.bound + iteration.silence_deferral;
      if (!time_gt(latency, chain_allowed)) continue;
      verdict.latency_exceeded = true;
      if (std::find(verdict.violated_constraints.begin(),
                    verdict.violated_constraints.end(),
                    c.name) == verdict.violated_constraints.end()) {
        verdict.violated_constraints.push_back(c.name);
      }
      violation(iteration.index,
                "iteration " + std::to_string(iteration.index) + ": chain \"" +
                    c.name + "\" (" + c.source_op + " -> " + c.sink_op +
                    ") latency " + time_to_string(latency) +
                    " exceeds bound " + time_to_string(chain_allowed));
    }
  }
  return verdict;
}

}  // namespace ftsched::campaign
