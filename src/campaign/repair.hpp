// Counterexample-guided repair: the loop that closes the synthesize →
// refute → repair game (CEGIS with the exhaustive certifier as the
// adversary). Given a problem and a heuristic whose schedule the certifier
// refutes, each round:
//
//  1. certifies the current schedule over the full budgeted fault model
//     (campaign/certify.hpp) with a shared replay cache, so re-certifying
//     an unchanged schedule reuses previously simulated leaves;
//  2. shrinks the first counterexample to a 1-minimal reproducer
//     (campaign/shrink.hpp, budgeted) and banks it — every banked
//     reproducer must stay fixed by all later moves;
//  3. localizes the violated output: re-simulates the reproducer's final
//     iteration and walks the output's precedence ancestry on each
//     surviving candidate host, down to the ROOT BLOCKER — the deepest
//     ancestor whose value never reached that host (no replica completed
//     there, no transfer delivered there);
//  4. proposes targeted moves against the root blocker, expressed as
//     scheduling constraints (sched/options.hpp SchedulingConstraints) so
//     the ordinary deterministic list scheduler replays them:
//       * re-route a replicated send off a dead link (ForbidLink), only
//         when an avoiding route exists;
//       * widen a timeout/election chain into actively replicated
//         transfers (hybrid active_comm_deps) when the blocker's value
//         travels a passive solution-1 chain;
//       * re-place a replica of the blocker onto the starved surviving
//         host (Pin);
//       * evict the blocker's replicas from the processors the
//         counterexample kills (Forbid);
//  5. accepts the first move whose re-scheduled result is new (by
//     schedule_hash — revisits are cycles, rejected) and fixes EVERY
//     banked reproducer under the mission oracle; certification of the
//     accepted schedule starts the next round.
//
// The loop ends certified (the final certificate is then replayed through
// the warm cache — the confirmation sweep — proving the verdict is
// reproducible from cached leaves and measuring the reuse fraction), or
// refuted with the final shrunk counterexample when the move set or the
// round budget is exhausted. Every artifact (moves, certificates, shrunk
// plans, reuse counters) is deterministic: the repair log is byte-identical
// for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "campaign/certify.hpp"
#include "campaign/shrink.hpp"
#include "obs/metrics.hpp"
#include "sched/heuristics.hpp"

namespace ftsched::campaign {

struct RepairSpec {
  /// Budgets and options of each round's certification sweep. The cache
  /// pointer is ignored — repair always threads its own shared cache.
  CertifySpec certify;
  /// Accepted-move budget: at most this many repair rounds after the
  /// initial certification.
  int max_rounds = 32;
  /// Candidate moves screened per round before giving up.
  std::size_t max_candidates = 24;
  /// ShrinkOptions::max_simulations for each round's counterexample
  /// minimization (0 = unbounded).
  std::size_t shrink_budget = 4000;
  /// Base scheduler options; accepted moves append to its constraints /
  /// active_comm_deps.
  SchedulerOptions scheduler;
};

/// One targeted repair move, in the vocabulary of SchedulingConstraints.
struct RepairMove {
  enum class Kind {
    /// Pin a replica of `op` onto `proc` (the starved surviving host).
    kPinReplica,
    /// Forbid placing `op` on `proc` (a processor the counterexample
    /// kills), pushing a replica elsewhere.
    kForbidPlacement,
    /// Route `dep`'s transfers off `link` (a link the counterexample
    /// kills); proposed only when an avoiding route exists.
    kForbidRoute,
    /// Replace `dep`'s passive timeout/election chain with actively
    /// replicated transfers (switches the heuristic to the hybrid).
    kActivateComm,
    /// Make `proc` self-sufficient for the violated outputs: pin their
    /// whole precedence ancestry (`ops`) onto it. The compound move for
    /// counterexamples that sever ALL communication (e.g. a dead bus) —
    /// no single re-placement can fix those, only a full local chain.
    kPinChain,
  };
  Kind kind = Kind::kPinReplica;
  OperationId op;    // kPinReplica / kForbidPlacement
  ProcessorId proc;  // kPinReplica / kForbidPlacement / kPinChain
  DependencyId dep;  // kForbidRoute / kActivateComm
  LinkId link;       // kForbidRoute
  std::vector<OperationId> ops;  // kPinChain: all ops pinned onto proc
};

[[nodiscard]] std::string to_string(RepairMove::Kind kind);

/// One round of the repair loop: the move that produced this round's
/// schedule (absent for round 0) and what certifying it found.
struct RepairRound {
  int round = 0;
  bool has_move = false;
  RepairMove move;
  /// Candidates re-scheduled and screened before this round's move was
  /// accepted (counted on the round the move produced).
  std::size_t candidates_tried = 0;
  /// Candidates that survived the screen (schedulable, unvisited, fix the
  /// whole bank) — the pool the makespan ordering chose from.
  std::size_t candidates_surviving = 0;
  std::uint64_t schedule_key = 0;
  /// Makespan of this round's schedule (the repair cost the move ordering
  /// minimizes).
  Time makespan = 0;
  bool certified = false;
  std::size_t branches = 0;
  std::size_t total_counterexamples = 0;
  /// Replay-cache accounting of this round's sweep (see CertifyReport).
  std::size_t leaves_reused = 0;
  std::size_t leaves_fresh = 0;
  std::size_t events_simulated = 0;
  /// The round's shrunk counterexample (empty plan when certified).
  MissionPlan counterexample;
  std::size_t shrink_simulations = 0;
  bool shrink_budget_exhausted = false;
};

struct RepairReport {
  /// True when some round's schedule certified over the full budgets.
  bool certified = false;
  /// Heuristic of the final schedule (kActivateComm moves switch a
  /// solution-1 start to the hybrid).
  HeuristicKind kind = HeuristicKind::kSolution1;
  /// Accumulated constraints / comm policy reproducing the final schedule
  /// through the ordinary scheduler entry points.
  SchedulingConstraints constraints;
  std::vector<bool> active_comm_deps;
  /// The final schedule itself (absent only when even the initial
  /// scheduling failed).
  std::optional<Schedule> schedule;
  std::vector<RepairRound> rounds;
  /// Certification of the final schedule (last round's sweep).
  std::optional<CertifyReport> certificate;
  /// The confirmation sweep: the final certificate replayed through the
  /// warm cache. Same verdict, leaves_reused > 0 — the incremental
  /// re-certification evidence.
  std::optional<CertifyReport> confirmation;
  /// Replay-cache population after the loop.
  std::size_t cache_entries = 0;
  /// Set when the loop stopped without a certificate.
  bool moves_exhausted = false;
  bool rounds_exhausted = false;
  /// Human-readable reason when !certified.
  std::string failure;
  /// repair.* counters (rounds, moves, cache reuse), deterministic.
  obs::MetricsSnapshot metrics;

  [[nodiscard]] std::string to_text(const AlgorithmGraph& graph,
                                    const ArchitectureGraph& arch) const;
  /// Machine-readable repair log: every move with its re-certification
  /// verdict. Deliberately excludes wall-clock and thread-count fields —
  /// byte-identical for any thread count.
  [[nodiscard]] std::string to_json(const AlgorithmGraph& graph,
                                    const ArchitectureGraph& arch) const;
};

/// Cost-aware move ordering: index of the surviving candidate the round
/// accepts — the lowest repaired makespan, ties broken by the earliest
/// proposal (the deterministic move-proposal order), so a cheaper repair
/// is never passed over for an earlier-proposed costlier one. Requires a
/// non-empty list.
[[nodiscard]] std::size_t preferred_candidate(
    const std::vector<Time>& makespans);

/// Runs the repair loop on `problem` starting from `kind`'s schedule.
/// Deterministic: the report is a pure function of (problem, kind, spec).
[[nodiscard]] RepairReport repair(const Problem& problem, HeuristicKind kind,
                                  const RepairSpec& spec = {});

}  // namespace ftsched::campaign
