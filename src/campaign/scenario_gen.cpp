#include "campaign/scenario_gen.hpp"

#include <algorithm>

#include "arch/architecture_graph.hpp"
#include "core/error.hpp"
#include "core/mt64.hpp"

namespace ftsched::campaign {

namespace {

/// Unbiased-enough bounded draw with a platform-independent mapping
/// (multiply-shift, Lemire); std::uniform_int_distribution is
/// implementation-defined and would break the cross-platform determinism
/// contract.
std::uint64_t draw_below(LazyMt64& rng, std::uint64_t bound) {
  if (bound <= 1) return 0;
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(rng()) * bound;
  return static_cast<std::uint64_t>(wide >> 64);
}

/// Uniform in [0, 1) with 53 significant bits.
double draw_unit(LazyMt64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

bool draw_chance(LazyMt64& rng, double probability) {
  return draw_unit(rng) < probability;
}

/// First `count` entries of a deterministic Fisher-Yates shuffle of
/// 0..size-1 — a uniform random subset in random order, built in `out`
/// (storage reused across calls).
void draw_subset(LazyMt64& rng, std::size_t size, std::size_t count,
                 std::vector<std::size_t>& out) {
  out.resize(size);
  for (std::size_t i = 0; i < size; ++i) out[i] = i;
  count = std::min(count, size);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + draw_below(rng, size - i);
    std::swap(out[i], out[j]);
  }
  out.resize(count);
}

double clamp_probability(double p) { return std::clamp(p, 0.0, 1.0); }

}  // namespace

Time repaired_window_end(Time from, Time horizon) {
  return std::min(from + horizon / 16, horizon);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  // SplitMix64 finalizer over the combined state; full avalanche, so
  // consecutive indices yield unrelated mt19937_64 streams.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ScenarioGenerator::ScenarioGenerator(const Schedule& schedule,
                                     CampaignSpec spec, std::uint64_t seed)
    : schedule_(&schedule), spec_(spec), seed_(seed) {
  const std::size_t procs =
      schedule.problem().architecture->processor_count();
  FTSCHED_REQUIRE(procs > 0, "campaign needs at least one processor");

  spec_.over_budget_fraction = clamp_probability(spec_.over_budget_fraction);
  spec_.dead_at_start_probability =
      clamp_probability(spec_.dead_at_start_probability);
  spec_.silence_probability = clamp_probability(spec_.silence_probability);
  spec_.suspect_probability = clamp_probability(spec_.suspect_probability);
  spec_.link_failure_probability =
      clamp_probability(spec_.link_failure_probability);
  spec_.min_iterations = std::max(spec_.min_iterations, 1);
  spec_.max_iterations = std::max(spec_.max_iterations, spec_.min_iterations);
  spec_.over_budget_extra = std::max(spec_.over_budget_extra, 1);
  spec_.horizon_factor = std::max(spec_.horizon_factor, 0.0);

  budget_ = spec_.max_processor_failures >= 0
                ? spec_.max_processor_failures
                : schedule.failures_tolerated();
  // Killing every processor proves nothing; keep one survivor.
  budget_ = std::min(budget_, static_cast<int>(procs) - 1);
  budget_ = std::max(budget_, 0);

  horizon_ = spec_.horizon_factor * schedule.makespan();
  if (horizon_ <= 0) horizon_ = schedule.makespan();
}

CampaignScenario ScenarioGenerator::scenario(std::size_t index) const {
  CampaignScenario out;
  ScenarioScratch scratch;
  scenario_into(index, out, scratch);
  return out;
}

void ScenarioGenerator::scenario_into(std::size_t index, CampaignScenario& out,
                                      ScenarioScratch& scratch) const {
  const ArchitectureGraph& arch = *schedule_->problem().architecture;
  const std::size_t procs = arch.processor_count();

  out.index = index;
  out.seed = mix_seed(seed_, index);
  // The sampler draws ~10-20 words per scenario from a freshly seeded
  // engine; LazyMt64 produces the exact std::mt19937_64 stream while only
  // seeding the state prefix those draws reach.
  LazyMt64 rng(out.seed);

  MissionPlan& plan = out.plan;
  plan.failures.clear();
  plan.silences.clear();
  plan.link_failures.clear();
  plan.dead_at_start.clear();
  plan.dead_links_at_start.clear();
  plan.suspected_at_start.clear();
  plan.iterations =
      spec_.min_iterations +
      static_cast<int>(draw_below(
          rng, static_cast<std::uint64_t>(spec_.max_iterations -
                                          spec_.min_iterations + 1)));
  auto draw_iteration = [&] {
    return static_cast<int>(
        draw_below(rng, static_cast<std::uint64_t>(plan.iterations)));
  };
  auto draw_instant = [&] { return draw_unit(rng) * horizon_; };

  // Processor faults: a distinct victim set of the drawn size, each victim
  // either settled dead-from-start or crashing at a jittered instant of a
  // random iteration.
  int faults = static_cast<int>(
      draw_below(rng, static_cast<std::uint64_t>(budget_) + 1));
  if (draw_chance(rng, spec_.over_budget_fraction)) {
    faults = budget_ + 1 +
             static_cast<int>(draw_below(
                 rng, static_cast<std::uint64_t>(spec_.over_budget_extra)));
    faults = std::min(faults, static_cast<int>(procs) - 1);
  }
  std::vector<std::size_t>& victims = scratch.victims;
  draw_subset(rng, procs, static_cast<std::size_t>(faults), victims);
  for (const std::size_t victim : victims) {
    const ProcessorId proc(static_cast<ProcessorId::underlying_type>(victim));
    if (draw_chance(rng, spec_.dead_at_start_probability)) {
      plan.dead_at_start.push_back(proc);
    } else {
      plan.failures.push_back(
          MissionFailure{draw_iteration(), FailureEvent{proc, draw_instant()}});
    }
  }

  // One fail-silent window on a processor that is not genuinely faulted —
  // silencing a corpse adds nothing.
  if (draw_chance(rng, spec_.silence_probability) &&
      victims.size() < procs) {
    std::size_t healthy = draw_below(rng, procs - victims.size());
    std::vector<std::size_t>& alive = scratch.pool;
    alive.clear();
    for (std::size_t p = 0; p < procs; ++p) {
      if (std::find(victims.begin(), victims.end(), p) == victims.end()) {
        alive.push_back(p);
      }
    }
    const ProcessorId proc(
        static_cast<ProcessorId::underlying_type>(alive[healthy]));
    Time from = draw_instant();
    Time to = draw_instant();
    if (to < from) std::swap(from, to);
    if (time_eq(from, to)) to = repaired_window_end(from, horizon_);
    plan.silences.push_back(
        MissionSilence{draw_iteration(), SilentWindow{proc, from, to}});
  }

  // One carried-over detection mistake: a processor not dead at mission
  // start that everyone wrongly flags.
  if (draw_chance(rng, spec_.suspect_probability)) {
    std::vector<std::size_t>& candidates = scratch.pool;
    candidates.clear();
    for (std::size_t p = 0; p < procs; ++p) {
      const ProcessorId proc(static_cast<ProcessorId::underlying_type>(p));
      if (std::find(plan.dead_at_start.begin(), plan.dead_at_start.end(),
                    proc) == plan.dead_at_start.end()) {
        candidates.push_back(p);
      }
    }
    if (!candidates.empty()) {
      plan.suspected_at_start.push_back(
          ProcessorId(static_cast<ProcessorId::underlying_type>(
              candidates[draw_below(rng, candidates.size())])));
    }
  }

  // One link fault (always outside the paper's contract).
  if (arch.link_count() > 0 &&
      draw_chance(rng, spec_.link_failure_probability)) {
    const LinkId link(static_cast<LinkId::underlying_type>(
        draw_below(rng, arch.link_count())));
    if (draw_chance(rng, spec_.dead_at_start_probability)) {
      plan.dead_links_at_start.push_back(link);
    } else {
      plan.link_failures.push_back(MissionLinkFailure{
          draw_iteration(), LinkFailureEvent{link, draw_instant()}});
    }
  }
}

}  // namespace ftsched::campaign
