#include "campaign/replay_cache.hpp"

#include <utility>

namespace ftsched::campaign {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ReplayCache::ReplayCache(std::size_t expected_keys) : shards_(kShards) {
  // 2x headroom over the expected distinct keys keeps open-addressing
  // probe windows short near the end of a campaign.
  const std::size_t per_shard =
      next_pow2(std::max<std::size_t>(2 * expected_keys / kShards, 1));
  for (Shard& shard : shards_) {
    shard.slots = std::vector<Slot>(per_shard);
    shard.mask = per_shard - 1;
  }
}

const MissionResult* ReplayCache::find(std::uint64_t hash,
                                       const std::string& key) const {
  const Shard& shard = shard_for(hash);
  const std::uint64_t want = mark(hash);
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    const Slot& slot = shard.slots[(hash + probe) & shard.mask];
    const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    // An empty slot ends the probe chain: inserts claim the first empty
    // slot in this same probe order, so the key cannot live further on.
    if (tag == kEmpty) return nullptr;
    if (tag == want && slot.key == key) return slot.result.get();
  }
  return nullptr;
}

void ReplayCache::insert(std::uint64_t hash, const std::string& key,
                         std::shared_ptr<const MissionResult> result) {
  Shard& shard = shard_for(hash);
  const std::uint64_t want = mark(hash);
  for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
    Slot& slot = shard.slots[(hash + probe) & shard.mask];
    std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == want && slot.key == key) return;  // already published
    if (tag != kEmpty) continue;
    if (!slot.tag.compare_exchange_strong(tag, kBusy,
                                          std::memory_order_acq_rel)) {
      // Lost the claim race; if the winner published our key we are done,
      // otherwise keep probing.
      if (tag == want && slot.key == key) return;
      continue;
    }
    slot.key = key;
    slot.result = std::move(result);
    slot.tag.store(want, std::memory_order_release);
    return;
  }
  // Probe window full: drop. A future lookup re-simulates and gets the
  // identical result.
}

}  // namespace ftsched::campaign
