// Minimal work-stealing thread pool — the first threading in the
// codebase, introduced for the fault-injection campaign: scenario batches
// are embarrassingly parallel (Simulator::run is const and reentrant), but
// their costs are wildly uneven (a 1-iteration failure-free plan vs an
// 8-iteration cascade with link deaths), so idle workers steal from busy
// ones instead of waiting at a static partition.
//
// Design: each worker owns a deque; submit() deals tasks round-robin;
// a worker pops from the back of its own deque (LIFO, cache-warm) and
// steals from the front of a victim's (FIFO, oldest first). One mutex per
// deque — contention is negligible because campaign tasks are chunky
// (hundreds of simulator runs each), and the simplicity keeps the pool
// obviously correct under TSan.
//
// The pool is single-session: submit tasks, then wait(); wait() rethrows
// the first task exception. Destruction joins all workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ftsched::campaign {

/// Worker threads to use for `requested`: 0 resolves to the hardware
/// concurrency (at least 1).
[[nodiscard]] unsigned resolve_threads(unsigned requested);

class WorkPool {
 public:
  /// Spawns resolve_threads(threads) workers, idle until tasks arrive.
  explicit WorkPool(unsigned threads);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `task` on the next worker's deque (round-robin).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception a task threw (if any). The pool is reusable after.
  void wait();

 private:
  struct Slot {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] std::function<void()> take(std::size_t self);

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;

  std::mutex state_mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;   // submitted, not yet finished
  /// Tasks sitting in some deque, not yet taken. Incremented under
  /// state_mutex_ (the condition-variable handshake needs that), read by
  /// the idle-worker wait predicate, decremented by take() — so an idle
  /// worker's wakeup check is one atomic load instead of locking every
  /// deque mutex in turn, which serialized the workers of large pools
  /// exactly when tasks were being dealt.
  std::atomic<std::size_t> queued_{0};
  std::size_t next_slot_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ftsched::campaign
