// The (K, L, S) certification frontier: a capability map of one schedule.
//
// PR 9 made exhaustive certification cheap enough that a single budget
// point is no longer the interesting question — the frontier sweep walks
// the whole (processor-fault, link-death, silent-window) budget lattice
// outward from (0, 0, 0) and reports the maximal certifiable surface: the
// set of budget points the schedule provably masks, the first refuting
// counterexample at each boundary point just beyond it, and the static
// Goemans–Lynch–Saias-style upper bound the surface can be compared
// against (PAPERS.md: *Number of faults a system can withstand without
// repairs*).
//
// Two structural facts keep the walk affordable and deterministic:
//  * Refutation is monotone on the lattice. A counterexample found within
//    budgets (k, l, s) is a valid fault pattern for every (k', l', s') >=
//    (k, l, s) componentwise, so a refuted point refutes its whole upper
//    cone — dominated points are marked `implied` and never explored. The
//    walk visits points in ascending total budget (ties in lexicographic
//    (k, l, s) order), so every potential dominator is decided first.
//  * Subtree memo entries are keyed by REMAINING budgets (certify.hpp), not
//    the top-level caps, so one caller-owned CertifyMemo is sound across
//    every lattice point of one sweep: the (2, 0, 0) point replays subtrees
//    the (1, 0, 0) point recorded. Memo replay reproduces a subtree's exact
//    contribution, so the report is byte-identical with the memo shared,
//    private, or (prune off) absent — and across any thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/certify.hpp"
#include "campaign/oracle.hpp"
#include "sched/schedule.hpp"

namespace ftsched::campaign {

struct FrontierSpec {
  /// Inclusive caps of the lattice walked: every (k, l, s) with
  /// 0 <= k <= max_failures, 0 <= l <= max_link_failures,
  /// 0 <= s <= max_silences. The defaults keep the walk small enough for
  /// CI on the paper workloads; -1 for max_failures derives the schedule's
  /// own failures_tolerated() + 1 (one row past the design point, so the
  /// boundary is visible).
  int max_failures = -1;
  int max_link_failures = 1;
  int max_silences = 1;
  /// Response envelope each point is certified against; kInfinite = output
  /// survival only (certify.hpp semantics).
  Time response_bound = kInfinite;
  /// Named chain constraints, applied at every lattice point.
  std::vector<LatencyConstraint> latency_constraints = {};
  /// Worker threads per certification; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Subtree memoization + slack cuts, and the cross-point memo sharing
  /// described above. The report is byte-identical either way.
  bool prune = true;
  bool dedup = true;
  /// Counterexample detail cap per certification; the frontier keeps only
  /// the first refuting branch per point, but the cap is forwarded so the
  /// underlying certificates (and the shared memo) stay well-formed.
  std::size_t max_counterexamples = 1;
};

/// One lattice point's verdict. Exactly one of three shapes:
///  * certified           — explored, no counterexample;
///  * refuted, explored   — branches/counterexamples/first_counterexample
///                          carry the evidence;
///  * refuted, implied    — dominated by an explored refuted point; counts
///                          are zero and first_counterexample is empty.
struct FrontierPoint {
  int max_failures = 0;
  int max_link_failures = 0;
  int max_silences = 0;
  bool certified = false;
  /// True when the refutation was implied by lattice monotonicity (the
  /// point was never explored).
  bool implied = false;
  std::size_t branches = 0;
  std::size_t total_counterexamples = 0;
  Time worst_response = 0;
  /// Per spec constraint (spec order); empty without constraints or for
  /// implied points.
  std::vector<Time> worst_chain_latency = {};
  /// The first counterexample of the point's certification, exploration
  /// order — deterministic for any thread count. Meaningful only when
  /// refuted and explored.
  CertifyBranch first_counterexample = {};
};

/// Static upper bounds on the maskable budgets, in the spirit of
/// Goemans–Lynch–Saias: what the placement's redundancy could possibly
/// withstand, before any timing argument.
struct GlsBounds {
  /// min over extio outputs of (distinct replica hosts - 1): crashing every
  /// host of the weakest output loses it, whatever the timing. Capped at
  /// processor_count - 1.
  int k_bound = 0;
  /// Upper bound on tolerable link deaths at K = 0. When some extio output
  /// is not locally completable (no processor hosts a replica chain that
  /// feeds it without crossing a link), killing the distinct links incident
  /// to that output's replica hosts starves it: l_bound is the minimum such
  /// incident-link count minus 1. When every output IS locally completable
  /// the placement needs no link at all and l_bound is meaningless —
  /// l_unbounded is set and l_bound holds the total link count.
  int l_bound = 0;
  bool l_unbounded = false;
  // Silent windows have no static ceiling: they never lose an output, and
  // the response allowance widens by the measured deferral — reported as
  // null in the frontier JSON.
};

[[nodiscard]] GlsBounds gls_bounds(const Schedule& schedule);

struct FrontierReport {
  /// The caps actually walked (spec caps after resolving max_failures=-1).
  int max_failures = 0;
  int max_link_failures = 0;
  int max_silences = 0;
  Time response_bound = kInfinite;
  std::vector<LatencyConstraint> latency_constraints;
  GlsBounds gls;
  /// Every lattice point, ascending total budget then lexicographic
  /// (k, l, s) — the exploration order, and a pure function of
  /// (schedule, spec).
  std::vector<FrontierPoint> points;
  /// The maximal certifiable surface: certified points not componentwise
  /// dominated by another certified point, lexicographic order.
  std::vector<FrontierPoint> surface;
  std::size_t points_explored = 0;
  std::size_t points_implied = 0;

  /// Deterministic machine-readable report: byte-identical across thread
  /// counts and prune on/off (the CI frontier-smoke diff).
  [[nodiscard]] std::string to_json(const ArchitectureGraph& arch) const;
  /// Human-readable lattice summary.
  [[nodiscard]] std::string to_text(const ArchitectureGraph& arch) const;
};

/// Walks the budget lattice and certifies every non-implied point.
/// Deterministic: the report is a pure function of (schedule, spec).
/// Malformed latency constraints throw std::invalid_argument, like every
/// other certifier entry point.
[[nodiscard]] FrontierReport frontier_sweep(const Schedule& schedule,
                                            const FrontierSpec& spec = {});

/// Two named chain constraints over the paper's worked example graph
/// (workload::paper_example1/2): the A -> E compute spine and the I -> O
/// whole mission. Bounds are loose enough that both published solutions
/// satisfy them under their design budgets — tighten a bound to
/// manufacture a labeled refutation (the CI multi-constraint smoke).
[[nodiscard]] std::vector<LatencyConstraint> paper_chain_constraints();

}  // namespace ftsched::campaign
