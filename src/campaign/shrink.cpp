#include "campaign/shrink.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace ftsched::campaign {

namespace {

/// One injected event, flattened so ddmin can treat every fault class
/// uniformly.
struct PlanEvent {
  enum class Kind {
    kDeadAtStart,
    kCrash,
    kSilence,
    kLinkDeadAtStart,
    kLinkCrash,
    kSuspect,
  };
  Kind kind = Kind::kCrash;
  ProcessorId proc;
  LinkId link;
  int iteration = 0;
  Time time = 0;
  SilentWindow window;
};

std::vector<PlanEvent> flatten(const MissionPlan& plan) {
  std::vector<PlanEvent> events;
  for (const ProcessorId proc : plan.dead_at_start) {
    PlanEvent event;
    event.kind = PlanEvent::Kind::kDeadAtStart;
    event.proc = proc;
    events.push_back(event);
  }
  for (const MissionFailure& failure : plan.failures) {
    PlanEvent event;
    event.kind = PlanEvent::Kind::kCrash;
    event.proc = failure.event.processor;
    event.iteration = failure.iteration;
    event.time = failure.event.time;
    events.push_back(event);
  }
  for (const MissionSilence& silence : plan.silences) {
    PlanEvent event;
    event.kind = PlanEvent::Kind::kSilence;
    event.iteration = silence.iteration;
    event.window = silence.window;
    events.push_back(event);
  }
  for (const LinkId link : plan.dead_links_at_start) {
    PlanEvent event;
    event.kind = PlanEvent::Kind::kLinkDeadAtStart;
    event.link = link;
    events.push_back(event);
  }
  for (const MissionLinkFailure& failure : plan.link_failures) {
    PlanEvent event;
    event.kind = PlanEvent::Kind::kLinkCrash;
    event.link = failure.event.link;
    event.iteration = failure.iteration;
    event.time = failure.event.time;
    events.push_back(event);
  }
  for (const ProcessorId proc : plan.suspected_at_start) {
    PlanEvent event;
    event.kind = PlanEvent::Kind::kSuspect;
    event.proc = proc;
    events.push_back(event);
  }
  return events;
}

MissionPlan rebuild(int iterations, const std::vector<PlanEvent>& events) {
  MissionPlan plan;
  plan.iterations = iterations;
  for (const PlanEvent& event : events) {
    switch (event.kind) {
      case PlanEvent::Kind::kDeadAtStart:
        plan.dead_at_start.push_back(event.proc);
        break;
      case PlanEvent::Kind::kCrash:
        plan.failures.push_back(MissionFailure{
            event.iteration, FailureEvent{event.proc, event.time}});
        break;
      case PlanEvent::Kind::kSilence:
        plan.silences.push_back(MissionSilence{event.iteration, event.window});
        break;
      case PlanEvent::Kind::kLinkDeadAtStart:
        plan.dead_links_at_start.push_back(event.link);
        break;
      case PlanEvent::Kind::kLinkCrash:
        plan.link_failures.push_back(MissionLinkFailure{
            event.iteration, LinkFailureEvent{event.link, event.time}});
        break;
      case PlanEvent::Kind::kSuspect:
        plan.suspected_at_start.push_back(event.proc);
        break;
    }
  }
  return plan;
}

class Shrinker {
 public:
  Shrinker(const Simulator& simulator, const Oracle& oracle,
           const ShrinkOptions& options)
      : simulator_(&simulator), oracle_(&oracle), options_(options) {}

  ShrinkResult run(MissionPlan plan) {
    ShrinkResult result;
    result.initial_events = plan.event_count();
    iterations_ = plan.iterations;
    events_ = flatten(plan);

    Verdict verdict = judge(rebuild(iterations_, events_));
    result.simulations = simulations_;
    FTSCHED_REQUIRE(!verdict.ok(),
                    "shrink needs a violating plan to minimize");

    ddmin();
    truncate_iterations();
    simplify_crashes();
    snap_crash_instants();
    narrow_silences();
    // Rewrites can subsume other events; re-establish 1-minimality.
    while (drop_singles()) {
    }

    result.plan = rebuild(iterations_, events_);
    result.violations = judge(result.plan).violations;
    result.final_events = events_.size();
    result.simulations = simulations_;
    result.budget_exhausted = exhausted_;
    return result;
  }

 private:
  Verdict judge(const MissionPlan& plan) {
    ++simulations_;
    return oracle_->judge(plan, run_mission(*simulator_, plan));
  }

  [[nodiscard]] bool budget_left() const {
    return options_.max_simulations == 0 ||
           simulations_ < options_.max_simulations;
  }

  /// Probes one variant against the budget: out of budget, the variant is
  /// conservatively reported as passing, so every pass keeps the current
  /// (verified-failing) event list and winds down without further
  /// simulations.
  bool fails(const std::vector<PlanEvent>& events, int iterations) {
    if (!budget_left()) {
      exhausted_ = true;
      return false;
    }
    return !judge(rebuild(iterations, events)).ok();
  }

  /// Zeller/Hildebrandt ddmin, complement tests: carve the event list into
  /// n chunks and keep any complement that still fails, refining
  /// granularity until single events.
  void ddmin() {
    std::size_t n = 2;
    while (events_.size() >= 2) {
      const std::size_t size = events_.size();
      n = std::min(n, size);
      bool reduced = false;
      for (std::size_t c = 0; c < n; ++c) {
        const std::size_t begin = c * size / n;
        const std::size_t end = (c + 1) * size / n;
        if (begin == end) continue;
        std::vector<PlanEvent> complement;
        complement.reserve(size - (end - begin));
        for (std::size_t i = 0; i < size; ++i) {
          if (i < begin || i >= end) complement.push_back(events_[i]);
        }
        if (fails(complement, iterations_)) {
          events_ = std::move(complement);
          n = std::max<std::size_t>(n - 1, 2);
          reduced = true;
          break;
        }
      }
      if (!reduced) {
        if (n >= size) break;
        n = std::min(n * 2, size);
      }
    }
  }

  /// One sweep trying to drop each single event; true if anything dropped.
  bool drop_singles() {
    bool dropped = false;
    for (std::size_t i = 0; i < events_.size();) {
      std::vector<PlanEvent> without = events_;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(without, iterations_)) {
        events_ = std::move(without);
        dropped = true;
      } else {
        ++i;
      }
    }
    return dropped;
  }

  /// Cut the mission right after the first violating iteration, dropping
  /// the events of the amputated tail.
  void truncate_iterations() {
    if (!budget_left()) {
      exhausted_ = true;
      return;
    }
    const Verdict verdict = judge(rebuild(iterations_, events_));
    const int cut = verdict.first_violation_iteration + 1;
    if (verdict.first_violation_iteration < 0 || cut >= iterations_) return;
    std::vector<PlanEvent> kept;
    for (const PlanEvent& event : events_) {
      if (event.iteration < cut) kept.push_back(event);
    }
    if (fails(kept, cut)) {
      iterations_ = cut;
      events_ = std::move(kept);
    }
  }

  /// A settled dead-from-start processor is a simpler reproducer than a
  /// mid-run crash; convert where the violation survives.
  void simplify_crashes() {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].kind != PlanEvent::Kind::kCrash) continue;
      std::vector<PlanEvent> variant = events_;
      variant[i].kind = PlanEvent::Kind::kDeadAtStart;
      variant[i].iteration = 0;
      variant[i].time = 0;
      if (fails(variant, iterations_)) events_ = std::move(variant);
    }
  }

  /// Snap each remaining crash instant to a Gantt boundary of the crashed
  /// processor (replica start/finish dates), earliest failing first — the
  /// boundaries are exactly where the simulator's behaviour can change.
  void snap_crash_instants() {
    const Schedule& schedule = simulator_->schedule();
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].kind != PlanEvent::Kind::kCrash) continue;
      std::vector<Time> candidates{0};
      for (const ScheduledOperation* placement :
           schedule.operations_on(events_[i].proc)) {
        candidates.push_back(placement->start);
        candidates.push_back(placement->end);
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                   [](Time a, Time b) {
                                     return time_eq(a, b);
                                   }),
                       candidates.end());
      for (const Time candidate : candidates) {
        if (time_ge(candidate, events_[i].time)) break;
        std::vector<PlanEvent> variant = events_;
        variant[i].time = candidate;
        if (fails(variant, iterations_)) {
          events_ = std::move(variant);
          break;
        }
      }
    }
  }

  /// Bisect each silent window's edges inward while the violation holds.
  void narrow_silences() {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].kind != PlanEvent::Kind::kSilence) continue;
      for (int round = 0; round < 16; ++round) {
        const SilentWindow window = events_[i].window;
        const Time mid = (window.from + window.to) / 2;
        // Stop before a half becomes epsilon-zero: the oracle flags
        // no-positive-length windows as malformed plans, so the bisection
        // must never probe (let alone commit) one.
        if (time_le(window.to - mid, 0) || time_le(mid - window.from, 0)) {
          break;
        }
        std::vector<PlanEvent> variant = events_;
        variant[i].window.from = mid;
        if (fails(variant, iterations_)) {
          events_ = std::move(variant);
          continue;
        }
        variant = events_;
        variant[i].window.to = mid;
        if (fails(variant, iterations_)) {
          events_ = std::move(variant);
          continue;
        }
        break;
      }
    }
  }

  const Simulator* simulator_;
  const Oracle* oracle_;
  ShrinkOptions options_;
  int iterations_ = 1;
  std::vector<PlanEvent> events_;
  std::size_t simulations_ = 0;
  bool exhausted_ = false;
};

}  // namespace

ShrinkResult shrink(const Simulator& simulator, const Oracle& oracle,
                    MissionPlan plan, const ShrinkOptions& options) {
  return Shrinker(simulator, oracle, options).run(std::move(plan));
}

ShrinkResult shrink(const Simulator& simulator, const Oracle& oracle,
                    MissionPlan plan) {
  return shrink(simulator, oracle, std::move(plan), ShrinkOptions{});
}

}  // namespace ftsched::campaign
