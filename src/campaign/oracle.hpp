// The campaign's correctness oracle: judges one simulated mission against
// the paper's headline contract (§5.6) — a schedule built for K failures
// serves every extio output in every iteration under ANY combination of at
// most K fail-stop processor failures — plus a static response-time
// envelope and harness sanity checks.
//
// The claimed tolerance is separable from the schedule's own K on purpose:
// attacking a K=0 baseline under a claim of K=1 is how the campaign (and
// its tests) prove the oracle has teeth — the schedule is honestly
// under-replicated for the claim, so the runner must find, and the
// shrinker must minimize, a violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "sim/mission.hpp"

namespace ftsched::campaign {

/// Distinct processors genuinely faulted by `plan` (crashes + dead at
/// start; silences and wrong suspicions are not failures, §6.1 item 3).
[[nodiscard]] std::size_t plan_processor_faults(const MissionPlan& plan);

/// Distinct links killed by `plan` (always outside the paper's §5.1
/// failure hypothesis).
[[nodiscard]] std::size_t plan_link_faults(const MissionPlan& plan);

/// Conservative static envelope on any within-contract iteration's
/// response time. Two pieces:
///  * the last statically triggered instant — the failure-free makespan or
///    the worst watch-chain deadline of the timeout table, whichever is
///    later (nothing in the simulator fires later than these except as a
///    data-driven consequence);
///  * a serial tail — after that instant progress is purely data-driven,
///    and in the worst case every replica executes once more in sequence
///    and every value crosses every link once.
/// Loose by design: its job is to catch runaway recoveries and hangs, not
/// to re-derive the paper's tight per-solution bounds.
[[nodiscard]] Time static_response_bound(const Schedule& schedule);

/// One named end-to-end latency constraint over a dependence chain
/// (PAPERS.md: Kermia, *Schedulability Analysis under Dependence and
/// Several Latency Constraints*): the earliest completion of `sink_op`
/// must follow the earliest completion of `source_op` by at most `bound`
/// (widened per iteration by the measured silence deferral, like the
/// whole-mission response envelope). The scalar response_bound stays the
/// degenerate whole-mission chain — mission start to the last extio
/// output — so specs without constraints are judged exactly as before.
struct LatencyConstraint {
  /// Unique label; appears in violations, certificates, and stream records.
  std::string name;
  /// Operation names resolved against the schedule's algorithm graph.
  std::string source_op;
  std::string sink_op;
  /// Finite, strictly positive envelope for the chain.
  Time bound = kInfinite;
};

/// A constraint resolved to graph indices (into IterationResult /
/// MissionIteration op_completions).
struct LatencyProbe {
  std::uint32_t source = 0;
  std::uint32_t sink = 0;
};

/// Validates `constraints` against `schedule` and resolves each to a
/// LatencyProbe. Malformed specs — empty or duplicate names, an endpoint
/// absent from the algorithm graph, a non-finite / non-positive / inverted
/// bound, an endpoint with no scheduled replica — throw
/// std::invalid_argument naming the offending constraint. Every certifier
/// entry point (Oracle construction, certify, certify_shard, the frontier
/// sweep, certifyd submits) funnels through this resolver.
[[nodiscard]] std::vector<LatencyProbe> resolve_latency_constraints(
    const Schedule& schedule,
    const std::vector<LatencyConstraint>& constraints);

/// Latency of one resolved chain given a run's per-op earliest completions:
/// completion(sink) - completion(source); a never-completed sink yields
/// kInfinite (the chain was not served), a never-completed source anchors
/// the chain at mission start (time 0).
[[nodiscard]] Time chain_latency(const std::vector<Time>& op_completions,
                                 const LatencyProbe& probe);

struct OracleSpec {
  /// Fault budget the schedule is claimed to mask; -1 derives the
  /// schedule's own failures_tolerated().
  int claimed_tolerance = -1;
  /// Link-fault budget the schedule is claimed to mask. Link faults sit
  /// outside the paper's §5.1 failure hypothesis, so they are budgeted
  /// separately from the processor K (FailureScenario::total_fault_count
  /// semantics); the default 0 keeps any link fault outside the contract.
  int claimed_link_tolerance = 0;
  /// Response envelope for within-contract iterations; kInfinite derives
  /// static_response_bound(schedule).
  Time response_bound = kInfinite;
  bool check_response = true;
  /// Named chain constraints, all checked simultaneously on every
  /// within-contract iteration. Empty (the default) preserves the
  /// single-envelope oracle byte for byte.
  std::vector<LatencyConstraint> latency_constraints = {};
};

/// The oracle's judgement of one mission.
struct Verdict {
  /// True when the plan stays inside the claimed budgets: distinct
  /// processor faults <= claimed tolerance and distinct link faults <=
  /// claimed link tolerance (default 0: any link fault voids the contract).
  bool within_contract = false;
  /// Some iteration lost an extio output.
  bool outputs_lost = false;
  /// Some within-contract iteration exceeded the response envelope.
  bool response_exceeded = false;
  /// Some within-contract iteration exceeded a named chain constraint.
  bool latency_exceeded = false;
  /// First iteration a violation was observed in; -1 when none.
  int first_violation_iteration = -1;
  /// Names of the latency constraints violated, first-violation order,
  /// each listed once. Empty for scalar-only (or clean) verdicts.
  std::vector<std::string> violated_constraints;
  /// Human-readable violations; empty == the mission satisfied the oracle.
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

class Oracle {
 public:
  /// The schedule must outlive the oracle. Resolves spec defaults and runs
  /// the static validator once — a structurally broken schedule poisons
  /// every scenario, so validator issues surface through
  /// static_violations(), not per judgement.
  Oracle(const Schedule& schedule, OracleSpec spec = {});

  /// Judges `result` (produced by run_mission over `plan`) against the
  /// contract. Within-contract missions must serve every iteration within
  /// the response envelope; every mission, contract or not, must produce
  /// exactly plan.iterations iteration records (harness sanity).
  [[nodiscard]] Verdict judge(const MissionPlan& plan,
                              const MissionResult& result) const;

  /// Schedule-level validator issues, found once at construction.
  [[nodiscard]] const std::vector<std::string>& static_violations()
      const noexcept {
    return static_violations_;
  }

  [[nodiscard]] int claimed_tolerance() const noexcept { return claimed_; }
  [[nodiscard]] int claimed_link_tolerance() const noexcept {
    return claimed_links_;
  }
  [[nodiscard]] Time response_bound() const noexcept { return bound_; }
  /// The spec's chain constraints (resolved at construction; empty when
  /// none were given).
  [[nodiscard]] const std::vector<LatencyConstraint>& latency_constraints()
      const noexcept {
    return spec_.latency_constraints;
  }

 private:
  const Schedule* schedule_;
  OracleSpec spec_;
  int claimed_ = 0;
  int claimed_links_ = 0;
  Time bound_ = kInfinite;
  std::vector<LatencyProbe> probes_;
  std::vector<std::string> static_violations_;
};

}  // namespace ftsched::campaign
