// Exhaustive K-failure certification of a static schedule — the move from
// sampling (campaign/runner.hpp) to analysis: instead of drawing random
// scenarios, enumerate EVERY way at most K fail-stop processor failures can
// strike one iteration and simulate each representative branch, emitting a
// machine-readable certificate ("all C(P,<=K) x representative-time
// branches served every output") or concrete counterexamples ready for the
// ddmin shrinker.
//
// Branch tree. A node is a set of failures ordered canonically: first a
// dead-at-start subset D (the settled regime of a previous detection,
// paper §5.6), then mid-run crashes at nondecreasing instants (ties broken
// by ascending processor id, so each unordered failure set is explored
// exactly once). Each node's failure-free completion ("leaf run") is
// simulated; if the budget allows another crash, candidate instants for
// every still-alive victim are derived FROM THAT LEAF'S OWN TRACE and the
// subtree recurses.
//
// Time quantization. A crash's effect is determined by which events
// precede it, so only instants separated by an event can behave
// differently: the leaf trace's event dates, the midpoints between
// consecutive dates (one sample per open interval), and the static
// watch-chain deadlines (absent from a failure-free trace, yet crossing
// one flips a receiver's timeout decision) are exhaustive for the
// branch's continuum of crash times — transient_analysis's argument,
// applied recursively. One caveat is inherited from the event-dated model:
// within an open interval where the victim feeds an in-flight hop, the
// crash instant shifts the link-free time continuously; outcomes at the
// samples bound, but do not enumerate, that continuum (see
// DESIGN.md).
//
// Per-victim dedup. Candidate instant c is merged into the previously kept
// instant k0 for victim p when crashing p at c is provably identical to
// crashing p at k0: nothing p did in (k0, c] is externally visible — no
// p-fed transfer started or completed (leaf-trace kTransferStart /
// kTransferEnd with proc == p), no replica completed on p (kOpEnd), and c
// does not lie strictly inside an in-flight window of a p-fed hop (where
// the crash instant IS the link-release instant). Dedup is exact pruning,
// not sampling: disable it with CertifySpec::dedup = false to get the
// naive enumerator the bench uses as its from-scratch baseline.
//
// Sharing. Branches are never replayed from t=0: the engine forks the
// paused parent prefix (Simulator::Branch) at each candidate instant, so
// the cost of a node is its suffix, not its depth. Tasks — one per
// (dead-at-start subset, first crash victim) — fan across the WorkPool and
// merge in task-index order, making the report a pure function of
// (schedule, spec), bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/schedule.hpp"
#include "sim/mission.hpp"

namespace ftsched::campaign {

struct CertifySpec {
  /// Failure budget to certify; -1 derives the schedule's own
  /// failures_tolerated().
  int max_failures = -1;
  /// Response envelope every branch must meet; kInfinite disables the
  /// response check (the certificate is then about output survival only).
  Time response_bound = kInfinite;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Counterexamples kept with full detail (all are counted).
  std::size_t max_counterexamples = 16;
  /// Exact-equivalence pruning of candidate crash instants (see header).
  /// Off = the naive enumerator: every representative instant simulated.
  bool dedup = true;
  /// Record every certified branch's failure pattern in
  /// CertifyReport::branches_list — the bench replays that list from
  /// scratch as its baseline. Off by default (memory).
  bool collect_branches = false;
};

/// One branch of the failure tree: the complete failure pattern of one
/// certified (or violating) scenario.
struct CertifyBranch {
  std::vector<ProcessorId> dead_at_start;
  /// Mid-run crashes, nondecreasing (time, processor id).
  std::vector<FailureEvent> crashes;
  bool outputs_lost = false;
  Time response_time = kInfinite;
};

/// The branch as a single-iteration mission plan (shrinker / io input).
[[nodiscard]] MissionPlan counterexample_plan(const CertifyBranch& branch);

struct CertifyReport {
  /// True iff no branch lost an output or exceeded the response bound.
  bool certified = false;
  int max_failures = 0;
  Time response_bound = kInfinite;
  /// Dead-at-start subsets enumerated (all sizes 0..K, the empty set
  /// included).
  std::size_t subsets = 0;
  /// Failure branches certified — leaves of the explored tree; with dedup
  /// off this is the full representative enumeration.
  std::size_t branches = 0;
  /// Branch forks performed (the work the prefix sharing buys).
  std::size_t forks = 0;
  /// Candidate (victim, instant) pairs simulated / pruned as provably
  /// equivalent to a kept neighbour.
  std::size_t instants_kept = 0;
  std::size_t instants_merged = 0;
  /// Violating branches, exploration order; detail capped at
  /// spec.max_counterexamples, every one counted.
  std::vector<CertifyBranch> counterexamples;
  std::size_t total_counterexamples = 0;
  /// Worst response over branches that produced all outputs.
  Time worst_response = 0;
  /// Every certified branch (only when spec.collect_branches).
  std::vector<CertifyBranch> branches_list;
  /// certify.* counters (branches, forks, instants, counterexamples),
  /// merged deterministically like the campaign runner's metrics.
  obs::MetricsSnapshot metrics;
  unsigned threads_used = 1;
  double elapsed_seconds = 0;

  [[nodiscard]] double branches_per_second() const {
    return elapsed_seconds > 0
               ? static_cast<double>(branches) / elapsed_seconds
               : 0.0;
  }

  /// Human-readable certificate / refutation summary.
  [[nodiscard]] std::string to_text(const ArchitectureGraph& arch) const;

  /// Machine-readable certificate (stable field order; counterexamples
  /// included up to the recorded cap).
  [[nodiscard]] std::string to_json(const ArchitectureGraph& arch) const;
};

/// Certifies `schedule` against every failure pattern of size <=
/// spec.max_failures. Deterministic: the report is a pure function of
/// (schedule, spec), independent of thread count.
[[nodiscard]] CertifyReport certify(const Schedule& schedule,
                                    const CertifySpec& spec = {});

}  // namespace ftsched::campaign
