// Exhaustive certification of a static schedule over the WHOLE implemented
// fault model — the move from sampling (campaign/runner.hpp) to analysis:
// instead of drawing random scenarios, enumerate EVERY way a budgeted fault
// pattern can strike one iteration and simulate each representative branch,
// emitting a machine-readable certificate or concrete counterexamples ready
// for the ddmin shrinker.
//
// Fault model. Three budgeted classes:
//  * processor crashes (the paper's §5.1 fail-stop hypothesis): a
//    dead-at-start subset D plus mid-run crashes, at most K distinct
//    victims in total;
//  * link deaths (§8 future work, outside the §5.1 contract and therefore
//    budgeted separately, FailureScenario::total_fault_count semantics): a
//    dead-at-start subset DL plus mid-run link deaths, at most L distinct
//    links;
//  * fail-silent windows (§6.1 item 3): at most S windows [from, to), each
//    blocking the victim's sends while it keeps computing and receiving.
//
// Branch tree. A node is a set of faults ordered canonically: the
// dead-at-start subsets first, then mid-run faults at nondecreasing
// instants, same-instant ties broken by the typed key (class, id) with
// crashes before link deaths before silence openings — same-instant
// injections commute, so each unordered fault set is explored exactly
// once. Each node's fault-free completion ("leaf run") is simulated; if
// some budget allows another fault, candidate instants for every
// still-alive victim of that class are derived FROM THAT LEAF'S OWN TRACE
// and the subtree recurses.
//
// Time quantization. A fault's effect is determined by which events
// precede it, so only instants separated by an event can behave
// differently: the leaf trace's event dates, the midpoints between
// consecutive dates (one sample per open interval), and the static
// watch-chain deadlines (absent from a failure-free trace, yet crossing
// one flips a receiver's timeout decision) are exhaustive for the
// branch's continuum of fault times — transient_analysis's argument,
// applied recursively. A silent window's closing edge additionally gets
// one past-the-end candidate (silent for the rest of the iteration). Two
// caveats are inherited from the event-dated model: within an open
// interval where the victim feeds an in-flight hop, the crash instant
// shifts the link-free time continuously; and a window's closing edge is
// where blocked sends resume, so it shifts downstream behaviour
// continuously. Outcomes at the samples bound, but do not enumerate,
// those continua (see DESIGN.md).
//
// Per-victim dedup. Candidate instant c is merged into the previously kept
// instant k0 for a victim when the fault at c is provably identical to the
// fault at k0:
//  * crash of processor p — nothing p did in (k0, c] is externally visible
//    (no p-fed transfer started or completed, no replica completed on p)
//    and c is not strictly inside an in-flight window of a p-fed hop
//    (where the crash instant IS the link-release instant);
//  * death of link l — no transfer started or completed on l in (k0, c]
//    (the in-flight-window condition is kept too, conservatively);
//  * window opening on p — p starts no send in [k0, c), the opening edge
//    being inclusive; and a whole window that blocks none of p's sends is
//    exactly the parent leaf, so it is pruned outright.
// Dedup is exact pruning, not sampling: disable it with
// CertifySpec::dedup = false to get the naive enumerator the bench uses as
// its from-scratch baseline.
//
// Response accounting. A branch with silent windows widens its response
// envelope by the leaf run's measured silence deferral — the same tight
// allowance the campaign oracle grants: a send blocked at instant b
// resumes at the window's closing edge `to`, so the worst stretch a
// window actually forced is `to - b` for the earliest attempt it blocked
// (at most the window's own length, and 0 for a window that blocked
// nothing).
//
// Pruning (CertifySpec::prune). Two verdict-exact cuts on top of dedup:
//  * subtree memoization — before exploring a child subtree, the child's
//    simulator state digest (Simulator::branch_digest, canonical under
//    victim relabeling within architecture automorphism classes) plus its
//    remaining budgets are looked up in a sweep-wide CertifyMemo; a hit
//    replays the recorded subtree's exact contribution (branch/fork/event
//    counts, worst response, counterexample suffixes) instead of
//    re-simulating it;
//  * slack cuts — a silence closing-edge candidate whose blocked send
//    provably cannot make the response on time (the send's static critical
//    tail already overshoots the bound plus any earnable allowance) is
//    counted as a late branch without simulating it, once the
//    counterexample detail cap is full.
// Both preserve certificates byte for byte: --prune=on output is
// CI-diffed against --prune=off.
//
// Sharing. Branches are never replayed from t=0: the engine forks the
// paused parent prefix (Simulator::Branch) at each candidate instant, so
// the cost of a node is its suffix, not its depth. Tasks — one per
// (dead subsets, first fault victim) — fan across the WorkPool and merge
// in task-index order, making the report a pure function of
// (schedule, spec), bit-identical for any thread count.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/oracle.hpp"
#include "obs/metrics.hpp"
#include "sched/schedule.hpp"
#include "sim/mission.hpp"

namespace ftsched::campaign {

/// Sharded concurrent map with atomically published, never-overwritten
/// slots — the tag-publish design the campaign's ReplayCache introduced,
/// generalized over the stored value. Keys are two caller-mixed 64-bit
/// words. The key hash picks one of kShards independent shards, each a
/// fixed open-addressing table of atomically published slots (tag CAS to
/// claim, release-store to publish) plus a mutex-guarded overflow map. The
/// fast path — the common case when the table is sized for the workload —
/// takes no lock in either direction. An insert is NEVER dropped: a full
/// probe window falls back to the overflow map, because a silently dropped
/// entry would make reuse counters depend on probe-window luck instead of
/// being a pure function of the lookup/insert sequence. First insert of a
/// key wins (like unordered_map::emplace); thread-safe for concurrent
/// lookups and inserts.
template <typename Value, std::size_t SlotsPerShard = 1024>
class TagPublishCache {
 public:
  TagPublishCache() = default;
  TagPublishCache(const TagPublishCache&) = delete;
  TagPublishCache& operator=(const TagPublishCache&) = delete;

  [[nodiscard]] std::optional<Value> lookup(std::uint64_t key1,
                                            std::uint64_t key2) const {
    const std::uint64_t hash = mix(key1, key2);
    const Shard& shard = shards_[shard_index(hash)];
    const std::uint64_t want = mark(hash);
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      const Slot& slot = shard.slots[(hash + probe) & kSlotMask];
      const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
      if (tag == kEmpty) {
        // Published slots never empty out, so an insert of this key would
        // have claimed this or an earlier slot — and it only overflows
        // when the whole window is full, which this empty slot refutes.
        return std::nullopt;
      }
      if (tag == want && slot.key1 == key1 && slot.key2 == key2) {
        return slot.value;
      }
    }
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.overflow.find(Key{key1, key2});
    if (it == shard.overflow.end()) return std::nullopt;
    return it->second;
  }

  void insert(std::uint64_t key1, std::uint64_t key2, const Value& value) {
    const std::uint64_t hash = mix(key1, key2);
    Shard& shard = shards_[shard_index(hash)];
    const std::uint64_t want = mark(hash);
    for (std::size_t probe = 0; probe < kProbeWindow; ++probe) {
      Slot& slot = shard.slots[(hash + probe) & kSlotMask];
      std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
      if (tag == want && slot.key1 == key1 && slot.key2 == key2) {
        return;  // first insert wins, like unordered_map::emplace
      }
      if (tag != kEmpty) continue;
      if (!slot.tag.compare_exchange_strong(tag, kBusy,
                                            std::memory_order_acq_rel)) {
        if (tag == want && slot.key1 == key1 && slot.key2 == key2) {
          return;
        }
        continue;  // lost the claim to a different key; keep probing
      }
      slot.key1 = key1;
      slot.key2 = key2;
      slot.value = value;
      slot.tag.store(want, std::memory_order_release);
      count_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Window full: never drop — spill to the shard's overflow map.
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.overflow.emplace(Key{key1, key2}, value).second) {
      count_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Number of distinct keys ever inserted.
  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  static_assert((SlotsPerShard & (SlotsPerShard - 1)) == 0,
                "SlotsPerShard must be a power of two");
  static constexpr std::size_t kSlotMask = SlotsPerShard - 1;
  static constexpr std::size_t kProbeWindow = 8;
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kBusy = 1;

  struct Key {
    std::uint64_t key1 = 0;
    std::uint64_t key2 = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return static_cast<std::size_t>(mix(key.key1, key.key2));
    }
  };

  [[nodiscard]] static std::uint64_t mix(std::uint64_t key1,
                                         std::uint64_t key2) noexcept {
    std::uint64_t x = key2 + 0x9e3779b97f4a7c15ULL + (key1 << 6) +
                      (key1 >> 2);
    x ^= key1;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }
  /// The slot's published tag for a key hash: never kEmpty/kBusy.
  [[nodiscard]] static std::uint64_t mark(std::uint64_t hash) noexcept {
    return hash | 2;
  }
  [[nodiscard]] static std::size_t shard_index(std::uint64_t hash) noexcept {
    return (hash >> 56) & (kShards - 1);
  }

  struct Slot {
    std::atomic<std::uint64_t> tag{kEmpty};
    std::uint64_t key1 = 0;
    std::uint64_t key2 = 0;
    Value value;
  };

  struct Shard {
    std::vector<Slot> slots{SlotsPerShard};
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, KeyHash> overflow;
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> count_{0};
};

/// The cached outcome of one budget-exhausted leaf simulation: everything
/// record_leaf needs to reproduce the leaf's verdict without re-running it.
struct CertifyLeafOutcome {
  bool outputs_lost = false;
  Time response_time = kInfinite;
  /// IterationResult::silence_deferral of the leaf run — the tight
  /// response allowance its silent windows earned. Cached alongside the
  /// response so a cache-served leaf judges lateness exactly like the
  /// simulated one.
  Time silence_deferral = 0;
};

/// Replay cache for incremental re-certification: the outcome of every
/// budget-exhausted leaf, keyed by (schedule_hash, plan_key of the leaf's
/// canonical fault pattern). The repair loop re-certifies a schedule after
/// each move; leaves whose fault pattern was already simulated against the
/// SAME schedule bytes are served from here without forking or finishing a
/// simulator branch (interior nodes are always re-simulated — their traces
/// seed the child instants). Thread-safe; reuse counts are thread-count
/// deterministic because the canonical enumeration visits each unordered
/// fault set exactly once per sweep, so a lookup can never race a
/// same-sweep insertion of its own key.
class CertifyCache : public TagPublishCache<CertifyLeafOutcome> {
 public:
  using Entry = CertifyLeafOutcome;
};

/// One counterexample suffix stored in a memo entry: the faults the
/// memoized subtree added BELOW its root, plus the leaf verdict. A replayer
/// grafts the suffix onto its own fault stacks (which spell the same
/// simulator state, by digest) to materialize a full CertifyBranch.
struct CertifyMemoCex {
  std::vector<FailureEvent> crashes;
  std::vector<LinkFailureEvent> link_crashes;
  std::vector<SilentWindow> silences;
  bool outputs_lost = false;
  Time response_time = kInfinite;
};

/// Everything a memoized subtree contributes to its enclosing report: pure
/// deltas (counts, worst response, counterexample suffixes) relative to the
/// subtree root, valid for ANY branch reaching a state with the same digest
/// and the same remaining budgets. See DESIGN.md ("Pruned certification")
/// for the soundness argument, including why `last_*`/`same_instant` guard
/// the same-instant canonical-order filter and why relabeled hits are
/// restricted.
struct CertifyMemoEntry {
  std::size_t branches = 0;
  std::size_t forks = 0;
  std::size_t events_simulated = 0;
  std::size_t instants_kept = 0;
  std::size_t instants_merged = 0;
  std::size_t total_counterexamples = 0;
  /// Max response over the subtree's on-time, output-complete leaves.
  Time worst_response = 0;
  /// The recorder's root fault key (class, id) — the `last` same-instant
  /// tie-break context the subtree was explored under.
  std::uint8_t last_cls = 0;
  std::int64_t last_id = -1;
  /// True when canonical victim relabeling moved a processor in the
  /// recorder's root digest.
  bool relabeled = false;
  /// True when the subtree root's candidate list contained an instant
  /// time-equal to its own injection instant — the one case where the
  /// same-instant sibling filter makes the subtree depend on `last`.
  bool same_instant = false;
  /// Counterexample suffixes, exploration order, capped at the recording
  /// spec's max_counterexamples (total_counterexamples counts all).
  std::vector<CertifyMemoCex> counterexamples;
#ifdef FTSCHED_MEMO_AUDIT
  /// Audit builds only: the recorder's fault stacks, for diagnosing a
  /// digest collision when a replayed entry disagrees with fresh
  /// exploration.
  std::string audit_origin;
#endif
};

/// Subtree memo table for one certification sweep: keyed by
/// (state digest, remaining budgets ⊕ subtree-root instant), shared across
/// the sweep's tasks and threads. 4096 slots per shard — deep-budget
/// sweeps touch far more distinct states than leaf patterns.
using CertifyMemo = TagPublishCache<CertifyMemoEntry, 4096>;

struct CertifySpec {
  /// Processor-failure budget to certify; -1 derives the schedule's own
  /// failures_tolerated().
  int max_failures = -1;
  /// Link-death budget (dead-at-start + mid-run, distinct links). Link
  /// faults sit outside the paper's §5.1 contract, so they are budgeted
  /// separately from the processor K; 0 (the default) keeps the sweep
  /// processor-only.
  int max_link_failures = 0;
  /// Fail-silent window budget: at most this many windows per branch.
  int max_silences = 0;
  /// Response envelope every branch must meet (widened per branch by the
  /// leaf run's measured silence deferral — see the header comment);
  /// kInfinite disables the response check (the certificate is then about
  /// output survival only — silent windows alone can never lose an output,
  /// only stretch the response).
  Time response_bound = kInfinite;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Counterexamples kept with full detail (all are counted).
  std::size_t max_counterexamples = 16;
  /// Exact-equivalence pruning of candidate fault instants (see header).
  /// Off = the naive enumerator: every representative instant simulated.
  bool dedup = true;
  /// Record every certified branch's failure pattern in
  /// CertifyReport::branches_list — the bench replays that list from
  /// scratch as its baseline. Off by default (memory).
  bool collect_branches = false;
  /// Subtree memoization + slack cuts (see the header comment). Verdict-
  /// exact and certificate-byte-exact, so on by default; the naive-bench
  /// and A/B paths turn it off. Silently disabled when it cannot apply:
  /// with collect_branches (the memo stores counterexample suffixes only,
  /// not certified-branch lists), with a replay cache (the cache's
  /// leaves_reused accounting assumes every leaf is individually visited),
  /// or with latency constraints (memo entries carry no per-chain data).
  bool prune = true;
  /// Replay cache for incremental re-certification (null = off). Owned by
  /// the caller and shared across sweeps: budget-exhausted leaves (and the
  /// dead-at-start-only root leaves) whose (schedule, fault pattern) pair
  /// was already simulated are served from it without forking. The verdict
  /// is unchanged — only CertifyReport::forks / leaves_* / events_simulated
  /// reflect the saved work. A COLD cache changes nothing at all: every
  /// lookup misses and the report is byte-identical to cache-off.
  CertifyCache* cache = nullptr;
  /// Named end-to-end chain constraints (see campaign/oracle.hpp), checked
  /// on every branch alongside the scalar response envelope: a branch whose
  /// leaf run violates any chain is a counterexample naming the violated
  /// constraints. Validated and resolved once per sweep through
  /// resolve_latency_constraints — malformed specs throw
  /// std::invalid_argument, like every other certifier entry point.
  /// Non-empty constraints gate the subtree memo AND the replay cache off:
  /// their entries carry only the scalar leaf verdict, not the per-op
  /// completion table the chains are judged from. Empty (the default)
  /// keeps the certificate byte-identical to the scalar certifier.
  std::vector<LatencyConstraint> latency_constraints = {};
  /// Caller-owned subtree memo shared ACROSS sweeps (null = the sweep owns
  /// a private one). Sound whenever schedule, response_bound, dedup, and
  /// max_counterexamples stay fixed between the sweeps sharing it: entries
  /// are keyed by (state digest, remaining budgets ⊕ subtree-root instant),
  /// which is independent of the top-level budget caps — the frontier walk
  /// reuses one memo across every (K, L, S) lattice point this way.
  /// Ignored whenever pruning is (or is gated) off.
  CertifyMemo* memo = nullptr;
};

/// One branch of the fault tree: the complete fault pattern of one
/// certified (or violating) scenario.
struct CertifyBranch {
  std::vector<ProcessorId> dead_at_start;
  std::vector<LinkId> dead_links_at_start;
  /// Mid-run crashes, nondecreasing (time, processor id).
  std::vector<FailureEvent> crashes;
  /// Mid-run link deaths, nondecreasing (time, link id).
  std::vector<LinkFailureEvent> link_crashes;
  /// Fail-silent windows, nondecreasing (opening edge, processor id).
  std::vector<SilentWindow> silences;
  bool outputs_lost = false;
  Time response_time = kInfinite;
  /// Names of the chain constraints this branch's leaf run violated, spec
  /// order. Empty for certified branches, scalar-only violations, and any
  /// sweep without latency constraints.
  std::vector<std::string> violated_constraints;
};

/// The branch as a single-iteration mission plan (shrinker / io input).
[[nodiscard]] MissionPlan counterexample_plan(const CertifyBranch& branch);

/// The branch rendered exactly as CertifyReport::to_json renders its
/// counterexamples (names via `arch`, stable field order) — shared with the
/// frontier report so a boundary point's refuting branch prints the same
/// bytes in either artifact.
[[nodiscard]] std::string certify_branch_json(const CertifyBranch& branch,
                                              const ArchitectureGraph& arch);

struct CertifyReport {
  /// True iff no branch lost an output, exceeded the response bound, or
  /// violated a chain constraint.
  bool certified = false;
  int max_failures = 0;
  int max_link_failures = 0;
  int max_silences = 0;
  Time response_bound = kInfinite;
  /// Dead-at-start processor subsets enumerated (all sizes 0..K, the
  /// empty set included).
  std::size_t subsets = 0;
  /// Dead-at-start link subsets enumerated (all sizes 0..L; 1 when the
  /// link budget is 0 — just the empty set). Every (processor, link)
  /// subset pair is explored.
  std::size_t link_subsets = 0;
  /// Fault branches certified — leaves of the explored tree; with dedup
  /// off this is the full representative enumeration.
  std::size_t branches = 0;
  /// Branch forks performed (the work the prefix sharing buys).
  std::size_t forks = 0;
  /// Leaves served from spec.cache without simulation / leaves actually
  /// simulated (leaves_fresh + leaves_reused == branches). Thread-count
  /// deterministic (see CertifyCache); zero reused when cache is null or
  /// cold.
  std::size_t leaves_reused = 0;
  std::size_t leaves_fresh = 0;
  /// Events dispatched by the certified leaves' own suffix runs — the
  /// marginal simulation work after prefix sharing and cache reuse
  /// (IterationResult::events_executed summed over simulated leaves).
  std::size_t events_simulated = 0;
  /// Candidate (victim, instant) pairs simulated / pruned as provably
  /// equivalent to a kept neighbour (silent windows count one pair per
  /// kept [from, to) combination).
  std::size_t instants_kept = 0;
  std::size_t instants_merged = 0;
  /// True when spec.prune was in effect for this sweep.
  bool prune = false;
  /// Pruning telemetry: memo probes / hits, branches served by memo replay
  /// instead of simulation, and silence closing edges condemned by the
  /// slack cut. Unlike every other counter these are NOT thread-count
  /// deterministic — which task publishes a shared memo entry first is a
  /// race — so they stay out of report.metrics and to_json (both pinned
  /// byte-identical across thread counts); to_text prints them only on the
  /// single-threaded diagnostics path.
  std::size_t memo_probes = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_branches_replayed = 0;
  std::size_t slack_cuts = 0;
  /// Violating branches, exploration order; detail capped at
  /// spec.max_counterexamples, every one counted.
  std::vector<CertifyBranch> counterexamples;
  std::size_t total_counterexamples = 0;
  /// Worst response over branches that produced all outputs.
  Time worst_response = 0;
  /// The spec's chain constraints (empty = scalar-only certificate; the
  /// to_json/to_text constraint blocks are emitted only when non-empty, so
  /// scalar certificates stay byte-identical).
  std::vector<LatencyConstraint> latency_constraints;
  /// Per constraint, spec order: worst chain latency over branches that
  /// produced all outputs and met THAT constraint — the certified chain
  /// envelope, mirroring worst_response's same-dimension accounting.
  std::vector<Time> worst_chain_latency;
  /// Every certified branch (only when spec.collect_branches).
  std::vector<CertifyBranch> branches_list;
  /// certify.* counters (branches, forks, instants, counterexamples),
  /// merged deterministically like the campaign runner's metrics.
  obs::MetricsSnapshot metrics;
  unsigned threads_used = 1;
  double elapsed_seconds = 0;

  [[nodiscard]] double branches_per_second() const {
    return elapsed_seconds > 0
               ? static_cast<double>(branches) / elapsed_seconds
               : 0.0;
  }

  /// Human-readable certificate / refutation summary.
  [[nodiscard]] std::string to_text(const ArchitectureGraph& arch) const;

  /// Machine-readable certificate (stable field order; counterexamples
  /// included up to the recorded cap).
  [[nodiscard]] std::string to_json(const ArchitectureGraph& arch) const;
};

/// Certifies `schedule` against every fault pattern within the budgets of
/// `spec` (<= max_failures processor faults, <= max_link_failures link
/// deaths, <= max_silences fail-silent windows). Deterministic: the report
/// is a pure function of (schedule, spec), independent of thread count.
[[nodiscard]] CertifyReport certify(const Schedule& schedule,
                                    const CertifySpec& spec = {});

// ---------------------------------------------------------------------------
// Sharded execution (certification as a service, src/service).
//
// The sweep's task fan-out — one task per (dead processor subset, dead link
// subset, typed first victim) — is a deterministic, globally indexed list,
// so N workers on N machines can split it by task index and a merge of
// their per-task partials in ascending task order reproduces the
// single-process certificate byte for byte.

/// Deterministic task-range assignment: shard i of n owns every task t
/// with t % shard_count == shard_index.
struct CertifyShardSpec {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  [[nodiscard]] bool owns(std::size_t task_index) const {
    return task_index % shard_count == shard_index;
  }
};

/// The resolved shape of one sweep — identical on every shard because it is
/// a pure function of (schedule, spec): budgets clamped, subsets counted,
/// tasks enumerated.
struct CertifySweep {
  int max_failures = 0;
  int max_link_failures = 0;
  int max_silences = 0;
  Time response_bound = kInfinite;
  std::size_t subsets = 0;
  std::size_t link_subsets = 0;
  /// Global task count; shard task indices are 0..tasks-1.
  std::size_t tasks = 0;
};

[[nodiscard]] CertifySweep certify_sweep(const Schedule& schedule,
                                         const CertifySpec& spec);

/// One task's contribution to the certificate. Counterexample detail is
/// capped at spec.max_counterexamples per task (every one is counted in
/// total_counterexamples) — exactly the prefix a task-order merge keeps,
/// so the per-task cap never loses a record the merged certificate needs.
struct CertifyTaskPartial {
  std::size_t task_index = 0;
  std::size_t branches = 0;
  std::size_t forks = 0;
  std::size_t leaves_reused = 0;
  std::size_t events_simulated = 0;
  std::size_t instants_kept = 0;
  std::size_t instants_merged = 0;
  std::size_t total_counterexamples = 0;
  Time worst_response = 0;
  /// Per spec constraint: worst satisfied chain latency (sized like the
  /// spec's latency_constraints; empty for scalar sweeps).
  std::vector<Time> worst_chain_latency;
  /// Pruning telemetry (not thread-count deterministic; see CertifyReport).
  std::size_t memo_probes = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_branches_replayed = 0;
  std::size_t slack_cuts = 0;
  std::vector<CertifyBranch> counterexamples;
  /// Certified branches (spec.collect_branches only; never streamed).
  std::vector<CertifyBranch> collected;
};

/// Folds task partials — presented in ascending task-index order, each
/// task exactly once — into the final report. Memory is O(max_
/// counterexamples), independent of branch count, which is the streaming
/// path's bounded-memory guarantee. certify() itself merges through this
/// class, so any complete shard split merges byte-identically to the
/// single-process certificate.
class CertifyMerger {
 public:
  CertifyMerger(const CertifySweep& sweep, const CertifySpec& spec);

  /// Requires partial.task_index strictly greater than the previous add's.
  void add(CertifyTaskPartial&& partial);

  /// Finalizes verdict, derived counters, and certify.* metrics. The
  /// merger is spent afterwards.
  [[nodiscard]] CertifyReport finish();

 private:
  std::size_t max_counterexamples_;
  bool collect_branches_;
  bool any_added_ = false;
  std::size_t last_index_ = 0;
  CertifyReport report_;
};

/// Runs the shard's slice of the sweep and hands each finished task's
/// partial to `emit` in ascending global task-index order (emit is never
/// called concurrently). `cancelled`, when provided, is polled between
/// tasks: once it returns true, remaining tasks are abandoned and the
/// function returns false (the per-request deadline hook of the certifyd
/// server); a null/false-forever hook always returns true. Deterministic
/// for any thread count, like certify().
bool certify_shard(const Schedule& schedule, const CertifySpec& spec,
                   const CertifyShardSpec& shard,
                   const std::function<void(CertifyTaskPartial&&)>& emit,
                   const std::function<bool()>& cancelled = {});

}  // namespace ftsched::campaign
