// Parallel fault-injection campaign runner: fans N generated scenarios
// across a work-stealing thread pool, judges every mission with the
// oracle, and aggregates a report with scenario-space coverage counters.
//
// Determinism contract: the report is a pure function of
// (schedule, options) — independent of thread count and scheduling order.
// Scenarios are drawn by random access (ScenarioGenerator::scenario(i) is
// pure), every chunk writes its partial into a preassigned slot, and the
// partials are merged in index order after the pool drains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/oracle.hpp"
#include "campaign/scenario_gen.hpp"
#include "obs/metrics.hpp"

namespace ftsched::campaign {

struct CampaignOptions {
  std::size_t scenarios = 1000;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  std::uint64_t seed = 0;
  CampaignSpec spec;
  OracleSpec oracle;
  /// Violating plans kept with full detail in the report (every violation
  /// is still counted; past the cap only index/seed survive — any index
  /// can be regenerated from the seed).
  std::size_t max_recorded_violations = 32;
};

/// Crash-instant histogram resolution over [0, horizon).
inline constexpr std::size_t kCrashTimeBuckets = 10;

/// Which corners of the scenario space the campaign actually hit.
struct CampaignCoverage {
  /// Per processor: scenarios that faulted it (crash or dead at start).
  std::vector<std::size_t> processor_faults;
  /// Per link: scenarios that killed it.
  std::vector<std::size_t> link_faults;
  /// Mid-run crash instants, bucketed over [0, horizon).
  std::vector<std::size_t> crash_time_buckets;
  std::size_t dead_at_start_events = 0;
  std::size_t crash_events = 0;
  std::size_t silence_events = 0;
  std::size_t suspect_events = 0;
  std::size_t multi_iteration_missions = 0;

  void merge(const CampaignCoverage& other);
};

struct CampaignViolation {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  /// The violating plan; empty (default) past max_recorded_violations.
  MissionPlan plan;
  std::vector<std::string> details;
};

struct CampaignReport {
  std::size_t scenarios_run = 0;
  /// Scenarios inside the claimed fault budget — the ones the oracle
  /// holds to the masking contract.
  std::size_t within_contract = 0;
  /// Over-budget / link-faulted scenarios that lost outputs: the expected
  /// observation, evidence the campaign's attacks have teeth.
  std::size_t expected_losses = 0;
  /// Oracle violations, ascending scenario index. Empty == the schedule
  /// survived the campaign.
  std::vector<CampaignViolation> violations;
  std::size_t total_violations = 0;
  /// Distinct canonical fault patterns among the generated scenarios
  /// (campaign/canonical.hpp): the campaign's real coverage, as opposed to
  /// its raw draw count. Counted over exact canonical fingerprints, so it
  /// is thread-count independent like every other field.
  std::size_t unique_scenarios = 0;
  /// Draws whose canonical pattern had already been generated.
  std::size_t duplicate_scenarios = 0;
  /// Duplicate draws inside one chunk (canonical fingerprint already seen
  /// by the same chunk) — the replays the original per-chunk cache
  /// skipped. The count depends on the fixed chunk partition, not on the
  /// thread count. The shared cross-chunk replay cache typically skips
  /// MORE simulations than this; its exact hit count depends on cross-
  /// chunk timing and is therefore not reported (a hit returns the exact
  /// result a fresh simulation would, so no reported field can see it).
  std::size_t cached_replays = 0;
  CampaignCoverage coverage;
  /// Domain metrics of the whole campaign (verdict counters, injected
  /// faults per class, per-iteration timeout/election/transfer counts,
  /// response-time-vs-bound histogram). Accumulated per worker chunk and
  /// merged in index order, so — like every other report field — it is a
  /// pure function of (schedule, options), bit-identical for any thread
  /// count. Deliberately excludes wall-clock data (that lives in
  /// elapsed_seconds and the profiling spans). Export with
  /// metrics.to_json() / campaign_tool --metrics-out.
  obs::MetricsSnapshot metrics;
  /// Resolved oracle envelope, for the report header.
  int claimed_tolerance = 0;
  Time response_bound = 0;
  Time horizon = 0;
  unsigned threads_used = 1;
  double elapsed_seconds = 0;

  [[nodiscard]] double scenarios_per_second() const {
    return elapsed_seconds > 0
               ? static_cast<double>(scenarios_run) / elapsed_seconds
               : 0.0;
  }

  /// Human-readable summary: verdict, throughput, coverage tables.
  [[nodiscard]] std::string to_text(const ArchitectureGraph& arch) const;
};

/// Runs the campaign. Throws nothing campaign-specific; propagates the
/// first worker exception (none expected — simulator runs are total).
[[nodiscard]] CampaignReport run_campaign(const Schedule& schedule,
                                          const CampaignOptions& options);

}  // namespace ftsched::campaign
