#include "campaign/frontier.hpp"

#include <algorithm>
#include <utility>

#include "graph/algorithm_graph.hpp"
#include "obs/json_util.hpp"

namespace ftsched::campaign {

namespace {

bool lex_less(const FrontierPoint& a, const FrontierPoint& b) {
  if (a.max_failures != b.max_failures) {
    return a.max_failures < b.max_failures;
  }
  if (a.max_link_failures != b.max_link_failures) {
    return a.max_link_failures < b.max_link_failures;
  }
  return a.max_silences < b.max_silences;
}

std::string point_coords(const FrontierPoint& point) {
  return "(" + std::to_string(point.max_failures) + ", " +
         std::to_string(point.max_link_failures) + ", " +
         std::to_string(point.max_silences) + ")";
}

}  // namespace

GlsBounds gls_bounds(const Schedule& schedule) {
  const Problem& problem = schedule.problem();
  const AlgorithmGraph& graph = *problem.algorithm;
  const ArchitectureGraph& arch = *problem.architecture;
  const std::size_t procs = arch.processor_count();
  const std::size_t ops = graph.operation_count();
  GlsBounds bounds;

  // K: the weakest output's replica spread. Crashing every host of one
  // extio output loses it regardless of timing, so no schedule masks more
  // than (distinct hosts - 1) crashes.
  int k = static_cast<int>(procs) - 1;
  std::vector<bool> host(procs, false);
  for (const Operation& op : graph.operations()) {
    if (op.kind != OperationKind::kExtioOut) continue;
    std::fill(host.begin(), host.end(), false);
    int hosts = 0;
    for (const ScheduledOperation* replica : schedule.replicas_view(op.id)) {
      const std::size_t p = static_cast<std::size_t>(
          replica->processor.index());
      if (!host[p]) {
        host[p] = true;
        ++hosts;
      }
    }
    k = std::min(k, hosts - 1);
  }
  bounds.k_bound = std::max(k, 0);

  // L: fixpoint of locally-completable (operation, processor) pairs — a
  // replica of op on p whose every precedence predecessor is itself locally
  // completable on p needs no link. Precedence is acyclic, so one pass in
  // topological order settles it.
  std::vector<std::vector<bool>> local(ops, std::vector<bool>(procs, false));
  for (const OperationId op : graph.topological_order()) {
    const std::vector<OperationId> preds = graph.predecessors(op);
    for (const ScheduledOperation* replica : schedule.replicas_view(op)) {
      const std::size_t p = static_cast<std::size_t>(
          replica->processor.index());
      bool ok = true;
      for (const OperationId pred : preds) {
        if (!local[pred.index()][p]) {
          ok = false;
          break;
        }
      }
      if (ok) local[op.index()][p] = true;
    }
  }

  int l = -1;
  std::vector<bool> incident(arch.link_count(), false);
  for (const Operation& op : graph.operations()) {
    if (op.kind != OperationKind::kExtioOut) continue;
    bool completable = false;
    for (std::size_t p = 0; p < procs && !completable; ++p) {
      completable = local[op.id.index()][p];
    }
    if (completable) continue;
    // Every host of this output needs at least one inbound transfer, and
    // any such transfer uses a link incident to the host: killing the
    // union of the hosts' incident links starves the output.
    std::fill(incident.begin(), incident.end(), false);
    int distinct = 0;
    for (const ScheduledOperation* replica : schedule.replicas_view(op.id)) {
      for (const LinkId link : arch.links_of(replica->processor)) {
        const std::size_t i = static_cast<std::size_t>(link.index());
        if (!incident[i]) {
          incident[i] = true;
          ++distinct;
        }
      }
    }
    const int cut = std::max(distinct - 1, 0);
    l = l < 0 ? cut : std::min(l, cut);
  }
  if (l < 0) {
    bounds.l_unbounded = true;
    bounds.l_bound = static_cast<int>(arch.link_count());
  } else {
    bounds.l_bound = l;
  }
  return bounds;
}

FrontierReport frontier_sweep(const Schedule& schedule,
                              const FrontierSpec& spec) {
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  // Validate constraints once up front: a malformed spec should throw
  // before any lattice point is explored, not at the first certification.
  (void)resolve_latency_constraints(schedule, spec.latency_constraints);

  FrontierReport report;
  const int derived = spec.max_failures >= 0
                          ? spec.max_failures
                          : schedule.failures_tolerated() + 1;
  // Clamp to the budgets certify itself resolves to, so every lattice
  // point is a genuinely distinct sweep.
  report.max_failures = std::clamp(
      derived, 0, static_cast<int>(arch.processor_count()) - 1);
  report.max_link_failures = std::clamp(
      spec.max_link_failures, 0, static_cast<int>(arch.link_count()));
  report.max_silences = std::max(spec.max_silences, 0);
  report.response_bound = spec.response_bound;
  report.latency_constraints = spec.latency_constraints;
  report.gls = gls_bounds(schedule);

  // One memo for the whole walk: entries are keyed by remaining budgets,
  // independent of the top-level caps, so points share each other's
  // subtrees (certify.hpp, CertifySpec::memo).
  CertifyMemo memo;
  struct Budgets {
    int k = 0;
    int l = 0;
    int s = 0;
  };
  std::vector<Budgets> refuted;

  const int total_cap =
      report.max_failures + report.max_link_failures + report.max_silences;
  for (int total = 0; total <= total_cap; ++total) {
    for (int k = 0; k <= std::min(total, report.max_failures); ++k) {
      for (int l = 0; l <= std::min(total - k, report.max_link_failures);
           ++l) {
        const int s = total - k - l;
        if (s > report.max_silences) continue;

        FrontierPoint point;
        point.max_failures = k;
        point.max_link_failures = l;
        point.max_silences = s;

        const bool implied = std::any_of(
            refuted.begin(), refuted.end(), [&](const Budgets& r) {
              return r.k <= k && r.l <= l && r.s <= s;
            });
        if (implied) {
          point.implied = true;
          ++report.points_implied;
        } else {
          CertifySpec cspec;
          cspec.max_failures = k;
          cspec.max_link_failures = l;
          cspec.max_silences = s;
          cspec.response_bound = spec.response_bound;
          cspec.threads = spec.threads;
          // At least one detailed counterexample, so a refuted point
          // always carries its first refuting branch.
          cspec.max_counterexamples =
              std::max<std::size_t>(spec.max_counterexamples, 1);
          cspec.dedup = spec.dedup;
          cspec.prune = spec.prune;
          cspec.latency_constraints = spec.latency_constraints;
          cspec.memo = &memo;
          CertifyReport certificate = certify(schedule, cspec);
          point.certified = certificate.certified;
          point.branches = certificate.branches;
          point.total_counterexamples = certificate.total_counterexamples;
          point.worst_response = certificate.worst_response;
          point.worst_chain_latency =
              std::move(certificate.worst_chain_latency);
          if (!certificate.certified &&
              !certificate.counterexamples.empty()) {
            point.first_counterexample =
                std::move(certificate.counterexamples.front());
          }
          ++report.points_explored;
        }
        const bool point_refuted = !point.certified && !point.implied;
        report.points.push_back(std::move(point));
        if (point_refuted) refuted.push_back(Budgets{k, l, s});
      }
    }
  }

  for (const FrontierPoint& point : report.points) {
    if (!point.certified) continue;
    const bool dominated = std::any_of(
        report.points.begin(), report.points.end(),
        [&](const FrontierPoint& other) {
          return other.certified && &other != &point &&
                 point.max_failures <= other.max_failures &&
                 point.max_link_failures <= other.max_link_failures &&
                 point.max_silences <= other.max_silences;
        });
    if (!dominated) report.surface.push_back(point);
  }
  std::sort(report.surface.begin(), report.surface.end(), lex_less);
  return report;
}

std::vector<LatencyConstraint> paper_chain_constraints() {
  // Bounds cross-checked against the worked examples' published timings:
  // solution 1's worst certified A -> E latency under K=1 stays below 8
  // and the whole mission below 13 for both solutions (EXPERIMENTS.md).
  std::vector<LatencyConstraint> constraints;
  constraints.push_back(LatencyConstraint{"spine", "A", "E", 8});
  constraints.push_back(LatencyConstraint{"mission", "I", "O", 13});
  return constraints;
}

std::string FrontierReport::to_json(const ArchitectureGraph& arch) const {
  using obs::json_number;
  using obs::json_string;
  std::string out = "{\n  \"frontier\": {\n";
  out += "    \"max_failures\": " + std::to_string(max_failures) + ",\n";
  out += "    \"max_link_failures\": " + std::to_string(max_link_failures) +
         ",\n";
  out += "    \"max_silences\": " + std::to_string(max_silences) + ",\n";
  out += "    \"response_bound\": " + json_number(response_bound) + ",\n";
  if (!latency_constraints.empty()) {
    out += "    \"latency_constraints\": [\n";
    for (std::size_t i = 0; i < latency_constraints.size(); ++i) {
      const LatencyConstraint& c = latency_constraints[i];
      out += "      {\"name\": " + json_string(c.name) +
             ", \"source\": " + json_string(c.source_op) +
             ", \"sink\": " + json_string(c.sink_op) +
             ", \"bound\": " + json_number(c.bound) + "}";
      out += i + 1 < latency_constraints.size() ? ",\n" : "\n";
    }
    out += "    ],\n";
  }
  out += "    \"gls_bounds\": {\"k_bound\": " + std::to_string(gls.k_bound) +
         ", \"l_bound\": " +
         (gls.l_unbounded ? std::string("null")
                          : std::to_string(gls.l_bound)) +
         ", \"s_bound\": null},\n";
  out += "    \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FrontierPoint& point = points[i];
    out += "      {\"k\": " + std::to_string(point.max_failures) +
           ", \"l\": " + std::to_string(point.max_link_failures) +
           ", \"s\": " + std::to_string(point.max_silences) +
           ", \"certified\": ";
    out += point.certified ? "true" : "false";
    if (point.implied) {
      out += ", \"implied\": true";
    } else {
      out += ", \"branches\": " + std::to_string(point.branches);
      out += ", \"counterexamples\": " +
             std::to_string(point.total_counterexamples);
      out += ", \"worst_response\": " + json_number(point.worst_response);
      if (!point.worst_chain_latency.empty()) {
        out += ", \"worst_chain_latency\": [";
        for (std::size_t c = 0; c < point.worst_chain_latency.size(); ++c) {
          if (c > 0) out += ", ";
          out += json_number(point.worst_chain_latency[c]);
        }
        out += "]";
      }
      if (!point.certified) {
        out += ", \"first_counterexample\": " +
               certify_branch_json(point.first_counterexample, arch);
      }
    }
    out += "}";
    out += i + 1 < points.size() ? ",\n" : "\n";
  }
  out += "    ],\n";
  out += "    \"surface\": [";
  for (std::size_t i = 0; i < surface.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"k\": " + std::to_string(surface[i].max_failures) +
           ", \"l\": " + std::to_string(surface[i].max_link_failures) +
           ", \"s\": " + std::to_string(surface[i].max_silences) + "}";
  }
  out += "],\n";
  out += "    \"points_explored\": " + std::to_string(points_explored) +
         ",\n";
  out += "    \"points_implied\": " + std::to_string(points_implied) + "\n";
  out += "  }\n}\n";
  return out;
}

std::string FrontierReport::to_text(const ArchitectureGraph& arch) const {
  (void)arch;
  std::string out;
  out += "frontier: K<=" + std::to_string(max_failures) + ", L<=" +
         std::to_string(max_link_failures) + ", S<=" +
         std::to_string(max_silences) + " — " +
         std::to_string(points.size()) + " lattice points, " +
         std::to_string(points_explored) + " explored, " +
         std::to_string(points_implied) + " implied refuted\n";
  out += "gls:      K <= " + std::to_string(gls.k_bound) + ", L <= " +
         (gls.l_unbounded ? std::string("unbounded (no link needed)")
                          : std::to_string(gls.l_bound)) +
         ", S unbounded (no static ceiling)\n";
  for (const LatencyConstraint& c : latency_constraints) {
    out += "chain:    \"" + c.name + "\" (" + c.source_op + " -> " +
           c.sink_op + ") bound " + time_to_string(c.bound) + "\n";
  }
  out += "surface: ";
  if (surface.empty()) {
    out += " none — even (0, 0, 0) is refuted";
  }
  for (const FrontierPoint& point : surface) {
    out += ' ';
    out += point_coords(point);
  }
  out += "\n";
  for (const FrontierPoint& point : points) {
    out += "point " + point_coords(point) + ": ";
    if (point.certified) {
      out += "CERTIFIED, " + std::to_string(point.branches) +
             " branches, worst response " +
             time_to_string(point.worst_response);
    } else if (point.implied) {
      out += "refuted (implied by a dominated point)";
    } else {
      out += "REFUTED, " + std::to_string(point.total_counterexamples) +
             " counterexamples over " + std::to_string(point.branches) +
             " branches";
      if (!point.first_counterexample.violated_constraints.empty()) {
        out += "; violates chain";
        const auto& names = point.first_counterexample.violated_constraints;
        for (std::size_t i = 0; i < names.size(); ++i) {
          out += i > 0 ? ", " : " ";
          out += '"';
          out += names[i];
          out += '"';
        }
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ftsched::campaign
