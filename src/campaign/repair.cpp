#include "campaign/repair.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "arch/architecture_graph.hpp"
#include "arch/routing.hpp"
#include "campaign/oracle.hpp"
#include "graph/algorithm_graph.hpp"
#include "obs/json_util.hpp"
#include "obs/span.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"

namespace ftsched::campaign {

namespace {

/// The last iteration of `plan` as a single-iteration scenario: crashes and
/// link deaths of earlier iterations have settled (the survivors know them,
/// the paper's subsequent-iteration regime), so they become dead-at-start;
/// only the final iteration's own faults stay mid-run.
FailureScenario final_iteration_scenario(const MissionPlan& plan) {
  const int last = plan.iterations - 1;
  FailureScenario scen;
  scen.failed_at_start = plan.dead_at_start;
  scen.failed_links_at_start = plan.dead_links_at_start;
  scen.suspected_at_start = plan.suspected_at_start;
  for (const MissionFailure& failure : plan.failures) {
    if (failure.iteration < last) {
      scen.failed_at_start.push_back(failure.event.processor);
    } else {
      scen.events.push_back(failure.event);
    }
  }
  for (const MissionLinkFailure& failure : plan.link_failures) {
    if (failure.iteration < last) {
      scen.failed_links_at_start.push_back(failure.event.link);
    } else {
      scen.link_events.push_back(failure.event);
    }
  }
  for (const MissionSilence& silence : plan.silences) {
    if (silence.iteration == last) {
      scen.silent_windows.push_back(silence.window);
    }
  }
  std::sort(scen.failed_at_start.begin(), scen.failed_at_start.end());
  scen.failed_at_start.erase(
      std::unique(scen.failed_at_start.begin(), scen.failed_at_start.end()),
      scen.failed_at_start.end());
  std::sort(scen.failed_links_at_start.begin(),
            scen.failed_links_at_start.end());
  scen.failed_links_at_start.erase(
      std::unique(scen.failed_links_at_start.begin(),
                  scen.failed_links_at_start.end()),
      scen.failed_links_at_start.end());
  return scen;
}

/// Localization of a counterexample: simulate its final iteration once and
/// answer which output was lost, which surviving host should have served
/// it, and which ancestor's value never reached that host.
class Localizer {
 public:
  Localizer(const Problem& problem, const Schedule& sched,
            const FailureScenario& scen)
      : problem_(&problem), sched_(&sched) {
    const Simulator sim(sched);
    leaf_ = sim.run(scen);
    dead_.assign(problem.architecture->processor_count(), false);
    for (const ProcessorId p : scen.failed_at_start) dead_[p.index()] = true;
    for (const FailureEvent& e : scen.events) dead_[e.processor.index()] = true;
    dead_links_.assign(problem.architecture->link_count(), false);
    for (const LinkId l : scen.failed_links_at_start) {
      dead_links_[l.index()] = true;
    }
    for (const LinkFailureEvent& e : scen.link_events) {
      dead_links_[e.link.index()] = true;
    }
  }

  [[nodiscard]] bool proc_dead(ProcessorId p) const {
    return dead_[p.index()];
  }

  [[nodiscard]] std::vector<LinkId> dead_link_ids() const {
    std::vector<LinkId> out;
    for (std::size_t l = 0; l < dead_links_.size(); ++l) {
      if (dead_links_[l]) {
        out.push_back(LinkId{static_cast<LinkId::underlying_type>(l)});
      }
    }
    return out;
  }

  /// Extio outputs no surviving processor completed.
  [[nodiscard]] std::vector<OperationId> lost_outputs() const {
    std::vector<OperationId> out;
    for (const Operation& op : problem_->algorithm->operations()) {
      if (op.kind != OperationKind::kExtioOut) continue;
      bool produced = false;
      for (std::size_t p = 0; p < dead_.size(); ++p) {
        if (dead_[p]) continue;
        const ProcessorId proc{static_cast<ProcessorId::underlying_type>(p)};
        if (!is_infinite(leaf_.trace.op_end(op.id, proc))) {
          produced = true;
          break;
        }
      }
      if (!produced) out.push_back(op.id);
    }
    return out;
  }

  /// Surviving hosts that could serve `outputs`, most promising first:
  /// hosts able to execute the outputs' WHOLE precedence ancestry (they
  /// can be made self-sufficient by pins alone) before partially capable
  /// ones, ascending id within a class.
  [[nodiscard]] std::vector<ProcessorId> candidate_hosts(
      const std::vector<OperationId>& outputs) const {
    const std::vector<OperationId> chain = ancestry(outputs);
    std::vector<std::pair<int, ProcessorId>> ranked;
    for (std::size_t p = 0; p < dead_.size(); ++p) {
      if (dead_[p]) continue;
      const ProcessorId proc{static_cast<ProcessorId::underlying_type>(p)};
      bool capable = true;
      for (const OperationId op : chain) {
        if (!problem_->exec->allowed(op, proc)) {
          capable = false;
          break;
        }
      }
      ranked.emplace_back(capable ? 0 : 1, proc);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<ProcessorId> out;
    out.reserve(ranked.size());
    for (const auto& [rank, proc] : ranked) out.push_back(proc);
    return out;
  }

  /// The outputs' whole precedence ancestry (including themselves) — the
  /// pin set that makes a host self-sufficient for them. The FULL closure,
  /// not just the trace's missing values: re-scheduling shifts placements,
  /// so an op whose value incidentally reached the host in the failing run
  /// may migrate away and re-break the chain. Ascending id, deterministic.
  [[nodiscard]] std::vector<OperationId> full_chain(
      const std::vector<OperationId>& outputs) const {
    std::vector<OperationId> chain = ancestry(outputs);
    std::sort(chain.begin(), chain.end());
    return chain;
  }

  /// True when `op`'s value was available on `p` during the reproduced
  /// iteration: a replica completed there, or a transfer of one of `op`'s
  /// out-dependencies was delivered there.
  [[nodiscard]] bool value_at(OperationId op, ProcessorId p) const {
    if (!is_infinite(leaf_.trace.op_end(op, p))) return true;
    for (const TraceEvent& event : leaf_.trace.events()) {
      if (event.kind != TraceEvent::Kind::kTransferEnd || event.peer != p ||
          !event.dep.valid()) {
        continue;
      }
      if (problem_->algorithm->dependency(event.dep).src == op) return true;
    }
    return false;
  }

  /// The whole precedence ancestry of one chain sink (including itself),
  /// BFS order from the sink — the op set a violated latency constraint is
  /// localized to.
  [[nodiscard]] std::vector<OperationId> chain_ancestry(
      OperationId sink) const {
    return ancestry({sink});
  }

  /// The deepest ancestor of `op` whose value never reached `p`: descend
  /// through missing-value ancestors that DO have a replica on p (they were
  /// starved, not absent) until an ancestor with no replica on p (the
  /// placement gap) or with all inputs present (the victim itself — its
  /// crash or silence consumed the value). Invalid id when `op`'s value is
  /// already on p.
  [[nodiscard]] OperationId root_blocker(OperationId op,
                                         ProcessorId p) const {
    std::vector<char> visited(problem_->algorithm->operation_count(), 0);
    return blocker_walk(op, p, visited);
  }

 private:
  [[nodiscard]] std::vector<OperationId> ancestry(
      const std::vector<OperationId>& roots) const {
    std::vector<char> seen(problem_->algorithm->operation_count(), 0);
    std::vector<OperationId> queue;
    for (const OperationId op : roots) {
      if (!seen[op.index()]) {
        seen[op.index()] = 1;
        queue.push_back(op);
      }
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
      for (const DependencyId d :
           problem_->algorithm->precedence_in_ref(queue[i])) {
        const OperationId src = problem_->algorithm->dependency(d).src;
        if (!seen[src.index()]) {
          seen[src.index()] = 1;
          queue.push_back(src);
        }
      }
    }
    return queue;
  }

  [[nodiscard]] OperationId blocker_walk(OperationId op, ProcessorId p,
                                         std::vector<char>& visited) const {
    if (visited[op.index()]) return {};
    visited[op.index()] = 1;
    if (value_at(op, p)) return {};
    if (sched_->replica_on(op, p) == nullptr) return op;
    for (const DependencyId d : problem_->algorithm->precedence_in_ref(op)) {
      const OperationId src = problem_->algorithm->dependency(d).src;
      if (value_at(src, p)) continue;
      const OperationId root = blocker_walk(src, p, visited);
      if (root.valid()) return root;
    }
    return op;
  }

  const Problem* problem_;
  const Schedule* sched_;
  IterationResult leaf_;
  std::vector<bool> dead_;
  std::vector<bool> dead_links_;
};

/// The screening oracle judges exactly what the certifier certifies: the
/// same processor/link budgets as within-contract, the same explicit
/// response bound (no bound -> no response check, mirroring the certifier's
/// survival-only sweep).
OracleSpec screening_spec(const CertifyReport& cert) {
  OracleSpec spec;
  spec.claimed_tolerance = cert.max_failures;
  spec.claimed_link_tolerance = cert.max_link_failures;
  spec.response_bound = cert.response_bound;
  spec.check_response = !is_infinite(cert.response_bound);
  spec.latency_constraints = cert.latency_constraints;
  return spec;
}

/// True when `cand` fixes EVERY banked reproducer.
bool fixes_bank(const Schedule& cand, const std::vector<MissionPlan>& bank,
                const OracleSpec& spec) {
  const Oracle oracle(cand, spec);
  const Simulator sim(cand);
  for (const MissionPlan& plan : bank) {
    if (!oracle.judge(plan, run_mission(sim, plan)).ok()) return false;
  }
  return true;
}

void apply_move(const RepairMove& move, const Problem& problem,
                HeuristicKind& kind, SchedulerOptions& opts) {
  switch (move.kind) {
    case RepairMove::Kind::kPinReplica:
      opts.constraints.pinned.push_back(
          SchedulingConstraints::Pin{move.op, move.proc});
      break;
    case RepairMove::Kind::kForbidPlacement:
      opts.constraints.forbidden.push_back(
          SchedulingConstraints::Forbid{move.op, move.proc});
      break;
    case RepairMove::Kind::kForbidRoute:
      opts.constraints.forbidden_links.push_back(
          SchedulingConstraints::ForbidLink{move.dep, move.link});
      break;
    case RepairMove::Kind::kActivateComm:
      if (kind == HeuristicKind::kSolution1) kind = HeuristicKind::kHybrid;
      opts.active_comm_deps.resize(problem.algorithm->dependency_count(),
                                   false);
      opts.active_comm_deps[move.dep.index()] = true;
      break;
    case RepairMove::Kind::kPinChain:
      for (const OperationId op : move.ops) {
        opts.constraints.pinned.push_back(
            SchedulingConstraints::Pin{op, move.proc});
      }
      break;
  }
}

/// Ordered candidate moves against one shrunk counterexample. Per
/// (lost output, candidate host) the root blocker is attacked with, in
/// order: route repairs off dead links (cheapest — nothing moves),
/// widening passive chains into active transfers, pinning the blocker onto
/// the starved host, and evicting the blocker from the killed processors.
std::vector<RepairMove> propose_moves(
    const Problem& problem, HeuristicKind kind, const Schedule& sched,
    const MissionPlan& plan,
    const std::vector<LatencyConstraint>& violated_chains,
    const SchedulerOptions& opts, std::size_t cap) {
  const AlgorithmGraph& graph = *problem.algorithm;
  const ArchitectureGraph& arch = *problem.architecture;
  const Localizer loc(problem, sched, final_iteration_scenario(plan));
  const RoutingTable routing(arch);
  const std::vector<LinkId> dead_links = loc.dead_link_ids();
  const std::size_t replicas =
      kind == HeuristicKind::kBase
          ? 1
          : static_cast<std::size_t>(problem.replication_factor());
  const bool has_timeouts = kind == HeuristicKind::kSolution1 ||
                            kind == HeuristicKind::kHybrid;

  std::vector<RepairMove> out;
  auto push_force = [&](const RepairMove& move) {
    for (const RepairMove& have : out) {
      if (have.kind == move.kind && have.op == move.op &&
          have.proc == move.proc && have.dep == move.dep &&
          have.link == move.link && have.ops == move.ops) {
        return;
      }
    }
    out.push_back(move);
  };
  auto push = [&](const RepairMove& move) {
    if (out.size() < cap) push_force(move);
  };
  auto pin_count = [&](OperationId op) {
    std::size_t n = 0;
    for (const SchedulingConstraints::Pin& pin : opts.constraints.pinned) {
      if (pin.op == op) ++n;
    }
    return n;
  };
  auto pinned = [&](OperationId op, ProcessorId p) {
    for (const SchedulingConstraints::Pin& pin : opts.constraints.pinned) {
      if (pin.op == op && pin.proc == p) return true;
    }
    return false;
  };
  auto forbidden = [&](OperationId op, ProcessorId p) {
    for (const SchedulingConstraints::Forbid& f : opts.constraints.forbidden) {
      if (f.op == op && f.proc == p) return true;
    }
    return false;
  };
  auto banned = [&](DependencyId dep, LinkId link) {
    for (const SchedulingConstraints::ForbidLink& f :
         opts.constraints.forbidden_links) {
      if (f.dep == dep && f.link == link) return true;
    }
    return false;
  };

  auto attack = [&](OperationId root, ProcessorId host) {
    // Route a blocked input off a dead link — only when an avoiding route
    // exists, otherwise the ban would silently fall back to the same route.
    for (const DependencyId d : graph.precedence_in_ref(root)) {
      for (const LinkId l : dead_links) {
        if (banned(d, l)) continue;
        for (const ScheduledComm* comm : sched.comms_of(d)) {
          bool crosses = false;
          for (const CommSegment& seg : comm->segments) {
            if (seg.link == l) {
              crosses = true;
              break;
            }
          }
          if (!crosses) continue;
          std::vector<bool> ban(arch.link_count(), false);
          ban[l.index()] = true;
          if (routing.route_avoiding(comm->from, comm->to, ban)) {
            RepairMove move;
            move.kind = RepairMove::Kind::kForbidRoute;
            move.dep = d;
            move.link = l;
            push(move);
          }
          break;
        }
      }
    }
    // Widen a passive timeout/election chain into actively replicated
    // transfers: every producer replica then sends, so no single silent or
    // crashed main starves the chain.
    if (has_timeouts) {
      for (const DependencyId d : graph.precedence_in_ref(root)) {
        if (!sched.uses_active_comms(d)) {
          RepairMove move;
          move.kind = RepairMove::Kind::kActivateComm;
          move.dep = d;
          push(move);
        }
      }
    }
    // Re-place a replica of the blocker on the starved surviving host.
    if (problem.exec->allowed(root, host) &&
        sched.replica_on(root, host) == nullptr && !pinned(root, host) &&
        !forbidden(root, host) && pin_count(root) < replicas) {
      RepairMove move;
      move.kind = RepairMove::Kind::kPinReplica;
      move.op = root;
      move.proc = host;
      push(move);
    }
    // Evict the blocker's replicas from the processors this counterexample
    // kills.
    for (const ScheduledOperation* replica : sched.replicas_view(root)) {
      if (loc.proc_dead(replica->processor) &&
          !forbidden(root, replica->processor) &&
          !pinned(root, replica->processor)) {
        RepairMove move;
        move.kind = RepairMove::Kind::kForbidPlacement;
        move.op = root;
        move.proc = replica->processor;
        push(move);
      }
    }
  };

  const std::vector<OperationId> lost = loc.lost_outputs();
  for (const OperationId output : lost) {
    for (const ProcessorId host : loc.candidate_hosts({output})) {
      const OperationId root = loc.root_blocker(output, host);
      if (!root.valid()) continue;
      attack(root, host);
      if (out.size() >= cap) break;
    }
    if (out.size() >= cap) break;
  }
  // Compound fallback, always proposed (past the cap if need be): when the
  // counterexample severs all communication toward a host, no single
  // re-placement restores an output — the host needs the violated outputs'
  // whole missing ancestry pinned locally.
  if (!lost.empty()) {
    const std::vector<OperationId> chain = loc.full_chain(lost);
    for (const ProcessorId host : loc.candidate_hosts(lost)) {
      RepairMove move;
      move.kind = RepairMove::Kind::kPinChain;
      move.op = lost.front();
      move.proc = host;
      bool feasible = true;
      for (const OperationId op : chain) {
        if (!problem.exec->allowed(op, host)) {
          feasible = false;
          break;
        }
        if (pinned(op, host)) continue;
        if (forbidden(op, host) || pin_count(op) >= replicas) {
          feasible = false;
          break;
        }
        move.ops.push_back(op);
      }
      if (!feasible || move.ops.empty()) continue;
      push_force(move);
    }
  }
  // A chain-latency violation serves every output, so there is no starved
  // host to localize through root blockers; the levers live on the violated
  // chain itself. Per violated constraint, in order: widen the passive
  // timeout/election chains feeding the sink's ancestry into active
  // transfers (recovery latency is dominated by timeout waits), then
  // co-locate the sink with a surviving replica of the chain's source
  // (removing the cross-processor hops between the chain's endpoints).
  if (lost.empty() && !violated_chains.empty()) {
    for (const LatencyConstraint& c : violated_chains) {
      const OperationId sink = graph.find_operation(c.sink_op);
      const OperationId source = graph.find_operation(c.source_op);
      if (!sink.valid()) continue;
      if (has_timeouts) {
        for (const OperationId op : loc.chain_ancestry(sink)) {
          for (const DependencyId d : graph.precedence_in_ref(op)) {
            if (!sched.uses_active_comms(d)) {
              RepairMove move;
              move.kind = RepairMove::Kind::kActivateComm;
              move.dep = d;
              push(move);
            }
          }
        }
      }
      if (!source.valid()) continue;
      for (const ScheduledOperation* replica : sched.replicas_view(source)) {
        const ProcessorId host = replica->processor;
        if (loc.proc_dead(host)) continue;
        if (problem.exec->allowed(sink, host) &&
            sched.replica_on(sink, host) == nullptr &&
            !pinned(sink, host) && !forbidden(sink, host) &&
            pin_count(sink) < replicas) {
          RepairMove move;
          move.kind = RepairMove::Kind::kPinReplica;
          move.op = sink;
          move.proc = host;
          push(move);
        }
      }
    }
  }
  if (lost.empty() && out.empty() && has_timeouts) {
    // Pure response violation (and the fallback when no chain-local move
    // was available): the only remaining lever that shortens recovery is
    // trading timeout chains for active transfers.
    for (const Dependency& dep : graph.dependencies()) {
      if (!sched.uses_active_comms(dep.id)) {
        RepairMove move;
        move.kind = RepairMove::Kind::kActivateComm;
        move.dep = dep.id;
        push(move);
      }
    }
  }
  return out;
}

}  // namespace

std::string to_string(RepairMove::Kind kind) {
  switch (kind) {
    case RepairMove::Kind::kPinReplica:
      return "pin-replica";
    case RepairMove::Kind::kForbidPlacement:
      return "forbid-placement";
    case RepairMove::Kind::kForbidRoute:
      return "forbid-route";
    case RepairMove::Kind::kActivateComm:
      return "activate-comm";
    case RepairMove::Kind::kPinChain:
      return "pin-chain";
  }
  return "?";
}

std::size_t preferred_candidate(const std::vector<Time>& makespans) {
  FTSCHED_REQUIRE(!makespans.empty(),
                  "preferred_candidate needs at least one candidate");
  std::size_t best = 0;
  for (std::size_t i = 1; i < makespans.size(); ++i) {
    // Strict comparison: equal makespans keep the earlier proposal, so
    // the tie-break is the deterministic move-proposal order.
    if (makespans[i] < makespans[best]) best = i;
  }
  return best;
}

RepairReport repair(const Problem& problem, HeuristicKind kind,
                    const RepairSpec& spec) {
  FTSCHED_SPAN("repair.run");
  RepairReport rep;
  rep.kind = kind;

  CertifyCache cache;
  CertifySpec cspec = spec.certify;
  cspec.cache = &cache;

  SchedulerOptions opts = spec.scheduler;
  HeuristicKind cur_kind = kind;
  Expected<Schedule> cur = ftsched::schedule(problem, cur_kind, opts);
  if (!cur) {
    rep.failure = "initial scheduling failed (" +
                  ftsched::to_string(cur.error().code) +
                  "): " + cur.error().message;
    return rep;
  }

  std::unordered_set<std::uint64_t> seen{schedule_hash(cur.value())};
  std::vector<MissionPlan> bank;
  std::size_t moves_tried = 0;
  std::size_t moves_accepted = 0;
  bool pending_has_move = false;
  RepairMove pending_move;
  std::size_t pending_tried = 0;
  std::size_t pending_surviving = 0;

  for (int round = 0;; ++round) {
    const CertifyReport cert = certify(cur.value(), cspec);
    RepairRound r;
    r.round = round;
    r.has_move = pending_has_move;
    r.move = pending_move;
    r.candidates_tried = pending_tried;
    r.candidates_surviving = pending_surviving;
    r.schedule_key = schedule_hash(cur.value());
    r.makespan = cur.value().makespan();
    r.certified = cert.certified;
    r.branches = cert.branches;
    r.total_counterexamples = cert.total_counterexamples;
    r.leaves_reused = cert.leaves_reused;
    r.leaves_fresh = cert.leaves_fresh;
    r.events_simulated = cert.events_simulated;
    pending_has_move = false;
    pending_tried = 0;
    pending_surviving = 0;

    if (cert.certified) {
      rep.rounds.push_back(std::move(r));
      rep.certified = true;
      rep.certificate = cert;
      // Confirmation sweep: the whole certificate replayed through the now
      // warm cache. Same verdict; every exhausted leaf is served from
      // cache, which is the incremental re-certification evidence the
      // report (and the tests) assert on.
      rep.confirmation = certify(cur.value(), cspec);
      break;
    }

    // Minimize and bank the first counterexample; every later move must
    // keep the whole bank fixed.
    const OracleSpec screen = screening_spec(cert);
    std::vector<LatencyConstraint> violated_chains;
    {
      const Simulator sim(cur.value());
      const Oracle oracle(cur.value(), screen);
      MissionPlan target = counterexample_plan(cert.counterexamples.front());
      ShrinkOptions sopts;
      sopts.max_simulations = spec.shrink_budget;
      try {
        const ShrinkResult shrunk =
            shrink(sim, oracle, std::move(target), sopts);
        r.counterexample = shrunk.plan;
        r.shrink_simulations = shrunk.simulations;
        r.shrink_budget_exhausted = shrunk.budget_exhausted;
      } catch (const std::invalid_argument&) {
        // The mission oracle and the certifier disagree on this branch
        // (should not happen — they enforce the same contract); keep the
        // unshrunk plan as the round's reproducer.
        r.counterexample =
            counterexample_plan(cert.counterexamples.front());
      }
      bank.push_back(r.counterexample);
      // Which chain constraints the banked reproducer violates — the
      // localization propose_moves targets instead of the global
      // activate-everything fallback.
      if (!screen.latency_constraints.empty()) {
        const Verdict verdict = oracle.judge(
            r.counterexample, run_mission(sim, r.counterexample));
        for (const std::string& name : verdict.violated_constraints) {
          for (const LatencyConstraint& c : screen.latency_constraints) {
            if (c.name == name) violated_chains.push_back(c);
          }
        }
      }
    }
    rep.rounds.push_back(std::move(r));

    if (round >= spec.max_rounds) {
      rep.rounds_exhausted = true;
      rep.certificate = cert;
      rep.failure =
          "round budget exhausted after " + std::to_string(round) + " moves";
      break;
    }

    const std::vector<RepairMove> moves =
        propose_moves(problem, cur_kind, cur.value(), bank.back(),
                      violated_chains, opts, spec.max_candidates);
    // Screen EVERY proposed move, then accept the surviving candidate
    // with the lowest repaired makespan (ties: earliest proposal) — the
    // first-found survivor could lock in a needlessly slow schedule that
    // later rounds can only constrain further, never relax.
    struct Candidate {
      RepairMove move;
      Schedule schedule;
      HeuristicKind kind;
      SchedulerOptions opts;
    };
    std::vector<Candidate> survivors;
    std::vector<Time> survivor_makespans;
    std::unordered_set<std::uint64_t> survivor_keys;
    for (const RepairMove& move : moves) {
      ++pending_tried;
      ++moves_tried;
      HeuristicKind next_kind = cur_kind;
      SchedulerOptions next_opts = opts;
      apply_move(move, problem, next_kind, next_opts);
      Expected<Schedule> cand = ftsched::schedule(problem, next_kind,
                                                  next_opts);
      if (!cand) continue;
      // A candidate that re-derives an already-visited schedule is a
      // cycle; one that breaks any banked reproducer is a regression.
      // The bank only grows, so a regression now is a regression in every
      // later round too — mark it visited. Unchosen survivors stay
      // unmarked: a different future bank state never makes them worse,
      // and a later round may legitimately re-derive one.
      const std::uint64_t key = schedule_hash(cand.value());
      if (seen.contains(key) || survivor_keys.contains(key)) continue;
      if (!fixes_bank(cand.value(), bank, screen)) {
        seen.insert(key);
        continue;
      }
      survivor_keys.insert(key);
      survivor_makespans.push_back(cand.value().makespan());
      survivors.push_back(Candidate{move, std::move(cand).value(),
                                    next_kind, std::move(next_opts)});
    }
    pending_surviving = survivors.size();
    if (!survivors.empty()) {
      Candidate& chosen = survivors[preferred_candidate(survivor_makespans)];
      seen.insert(schedule_hash(chosen.schedule));
      cur = std::move(chosen.schedule);
      cur_kind = chosen.kind;
      opts = std::move(chosen.opts);
      pending_has_move = true;
      pending_move = chosen.move;
      ++moves_accepted;
    } else {
      rep.moves_exhausted = true;
      rep.certificate = cert;
      rep.failure =
          "move set exhausted: no candidate fixes every banked "
          "counterexample";
      break;
    }
  }

  rep.kind = cur_kind;
  rep.constraints = opts.constraints;
  rep.active_comm_deps = opts.active_comm_deps;
  rep.schedule = std::move(cur).value();
  rep.cache_entries = cache.size();
  rep.metrics.add_counter("repair.rounds", rep.rounds.size());
  rep.metrics.add_counter("repair.moves_tried", moves_tried);
  rep.metrics.add_counter("repair.moves_accepted", moves_accepted);
  rep.metrics.add_counter("repair.cache_entries", rep.cache_entries);
  rep.metrics.add_counter("repair.certified", rep.certified ? 1 : 0);
  if (rep.confirmation) {
    rep.metrics.add_counter("repair.confirmation_leaves_reused",
                            rep.confirmation->leaves_reused);
    rep.metrics.add_counter("repair.confirmation_leaves_fresh",
                            rep.confirmation->leaves_fresh);
  }
  return rep;
}

namespace {

std::string move_text(const RepairMove& move, const AlgorithmGraph& graph,
                      const ArchitectureGraph& arch) {
  std::string out = to_string(move.kind);
  switch (move.kind) {
    case RepairMove::Kind::kPinReplica:
    case RepairMove::Kind::kForbidPlacement:
      out += " " + graph.operation(move.op).name + " on " +
             arch.processor(move.proc).name;
      break;
    case RepairMove::Kind::kForbidRoute:
      out += " " + graph.dependency(move.dep).name + " off " +
             arch.link(move.link).name;
      break;
    case RepairMove::Kind::kActivateComm:
      out += " " + graph.dependency(move.dep).name;
      break;
    case RepairMove::Kind::kPinChain:
      out += " [";
      for (std::size_t i = 0; i < move.ops.size(); ++i) {
        if (i > 0) out += " ";
        out += graph.operation(move.ops[i]).name;
      }
      out += "] on " + arch.processor(move.proc).name;
      break;
  }
  return out;
}

std::string move_json(const RepairMove& move, const AlgorithmGraph& graph,
                      const ArchitectureGraph& arch) {
  std::string out = "{\"kind\": " + obs::json_string(to_string(move.kind));
  switch (move.kind) {
    case RepairMove::Kind::kPinReplica:
    case RepairMove::Kind::kForbidPlacement:
      out += ", \"op\": " + obs::json_string(graph.operation(move.op).name);
      out += ", \"proc\": " +
             obs::json_string(arch.processor(move.proc).name);
      break;
    case RepairMove::Kind::kForbidRoute:
      out += ", \"dep\": " +
             obs::json_string(graph.dependency(move.dep).name);
      out += ", \"link\": " + obs::json_string(arch.link(move.link).name);
      break;
    case RepairMove::Kind::kActivateComm:
      out += ", \"dep\": " +
             obs::json_string(graph.dependency(move.dep).name);
      break;
    case RepairMove::Kind::kPinChain:
      out += ", \"proc\": " +
             obs::json_string(arch.processor(move.proc).name);
      out += ", \"ops\": [";
      for (std::size_t i = 0; i < move.ops.size(); ++i) {
        if (i > 0) out += ", ";
        out += obs::json_string(graph.operation(move.ops[i]).name);
      }
      out += "]";
      break;
  }
  out += "}";
  return out;
}

/// One-line human-readable rendering of a reproducer for the repair log
/// (io/scenario_format.hpp is a layer above campaign, so the log carries
/// this summary instead of the serialized scenario).
std::string plan_summary(const MissionPlan& plan,
                         const ArchitectureGraph& arch) {
  std::string out = "iterations " + std::to_string(plan.iterations);
  for (const ProcessorId p : plan.dead_at_start) {
    out += "; dead " + arch.processor(p).name;
  }
  for (const LinkId l : plan.dead_links_at_start) {
    out += "; dead-link " + arch.link(l).name;
  }
  for (const MissionFailure& f : plan.failures) {
    out += "; crash " + arch.processor(f.event.processor).name + "@" +
           time_to_string(f.event.time) + " it" +
           std::to_string(f.iteration);
  }
  for (const MissionLinkFailure& f : plan.link_failures) {
    out += "; link-crash " + arch.link(f.event.link).name + "@" +
           time_to_string(f.event.time) + " it" +
           std::to_string(f.iteration);
  }
  for (const MissionSilence& s : plan.silences) {
    out += "; silence " + arch.processor(s.window.processor).name + " [" +
           time_to_string(s.window.from) + ", " +
           time_to_string(s.window.to) + ") it" +
           std::to_string(s.iteration);
  }
  for (const ProcessorId p : plan.suspected_at_start) {
    out += "; suspect " + arch.processor(p).name;
  }
  return out;
}

std::string hex_key(std::uint64_t key) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(key));
  return buffer;
}

}  // namespace

std::string RepairReport::to_text(const AlgorithmGraph& graph,
                                  const ArchitectureGraph& arch) const {
  std::string out;
  out += "repair:   " + ftsched::to_string(kind) + ", " +
         std::to_string(rounds.size()) + " round(s)\n";
  for (const RepairRound& r : rounds) {
    out += "round " + std::to_string(r.round) + ": ";
    if (r.has_move) out += move_text(r.move, graph, arch) + " -> ";
    if (r.certified) {
      out += "CERTIFIED (" + std::to_string(r.branches) + " branches";
      if (r.leaves_reused > 0) {
        out += ", " + std::to_string(r.leaves_reused) + " leaves from cache";
      }
      out += ")\n";
    } else {
      out += "refuted (" + std::to_string(r.total_counterexamples) +
             " counterexamples over " + std::to_string(r.branches) +
             " branches; reproducer " +
             std::to_string(r.counterexample.event_count()) + " events";
      if (r.shrink_budget_exhausted) out += ", shrink budget exhausted";
      out += ")\n";
    }
  }
  out += "verdict:  ";
  out += certified ? "CERTIFIED" : ("REFUTED — " + failure);
  out += "\n";
  if (confirmation) {
    out += "replay:   confirmation sweep reused " +
           std::to_string(confirmation->leaves_reused) + "/" +
           std::to_string(confirmation->branches) +
           " leaves from the certify cache (" +
           std::to_string(cache_entries) + " entries)\n";
  }
  if (!constraints.pinned.empty() || !constraints.forbidden.empty() ||
      !constraints.forbidden_links.empty()) {
    out += "constraints:\n";
    for (const SchedulingConstraints::Pin& pin : constraints.pinned) {
      out += "  pin " + graph.operation(pin.op).name + " on " +
             arch.processor(pin.proc).name + "\n";
    }
    for (const SchedulingConstraints::Forbid& f : constraints.forbidden) {
      out += "  forbid " + graph.operation(f.op).name + " on " +
             arch.processor(f.proc).name + "\n";
    }
    for (const SchedulingConstraints::ForbidLink& f :
         constraints.forbidden_links) {
      out += "  route " + graph.dependency(f.dep).name + " off " +
             arch.link(f.link).name + "\n";
    }
  }
  bool any_active = false;
  for (std::size_t d = 0; d < active_comm_deps.size(); ++d) {
    if (!active_comm_deps[d]) continue;
    out += any_active ? ", " : "active comms: ";
    out += graph
               .dependency(DependencyId{
                   static_cast<DependencyId::underlying_type>(d)})
               .name;
    any_active = true;
  }
  if (any_active) out += "\n";
  return out;
}

std::string RepairReport::to_json(const AlgorithmGraph& graph,
                                  const ArchitectureGraph& arch) const {
  // Deliberately excludes wall-clock and thread-count fields: the repair
  // log is a pure function of (problem, kind, spec) and diffable across
  // thread counts.
  std::string out = "{\n";
  out += "  \"certified\": ";
  out += certified ? "true" : "false";
  out += ",\n  \"kind\": " + obs::json_string(ftsched::to_string(kind));
  out += ",\n  \"rounds\": [";
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const RepairRound& r = rounds[i];
    out += i > 0 ? ",\n    " : "\n    ";
    out += "{\"round\": " +
           obs::json_number(static_cast<std::int64_t>(r.round));
    out += ", \"move\": ";
    out += r.has_move ? move_json(r.move, graph, arch) : std::string("null");
    out += ", \"candidates_tried\": " +
           obs::json_number(static_cast<std::uint64_t>(r.candidates_tried));
    out += ", \"candidates_surviving\": " +
           obs::json_number(
               static_cast<std::uint64_t>(r.candidates_surviving));
    out += ", \"schedule_key\": " + obs::json_string(hex_key(r.schedule_key));
    out += ", \"makespan\": " + obs::json_number(r.makespan);
    out += ", \"certified\": ";
    out += r.certified ? "true" : "false";
    out += ", \"branches\": " +
           obs::json_number(static_cast<std::uint64_t>(r.branches));
    out += ", \"counterexamples\": " +
           obs::json_number(
               static_cast<std::uint64_t>(r.total_counterexamples));
    out += ", \"leaves_reused\": " +
           obs::json_number(static_cast<std::uint64_t>(r.leaves_reused));
    out += ", \"leaves_fresh\": " +
           obs::json_number(static_cast<std::uint64_t>(r.leaves_fresh));
    out += ", \"events_simulated\": " +
           obs::json_number(static_cast<std::uint64_t>(r.events_simulated));
    out += ", \"shrink_simulations\": " +
           obs::json_number(
               static_cast<std::uint64_t>(r.shrink_simulations));
    out += ", \"shrink_budget_exhausted\": ";
    out += r.shrink_budget_exhausted ? "true" : "false";
    out += ", \"counterexample\": ";
    out += r.certified
               ? obs::json_string("")
               : obs::json_string(plan_summary(r.counterexample, arch));
    out += "}";
  }
  out += rounds.empty() ? "]" : "\n  ]";
  out += ",\n  \"constraints\": {\"pinned\": [";
  for (std::size_t i = 0; i < constraints.pinned.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"op\": " +
           obs::json_string(graph.operation(constraints.pinned[i].op).name) +
           ", \"proc\": " +
           obs::json_string(
               arch.processor(constraints.pinned[i].proc).name) +
           "}";
  }
  out += "], \"forbidden\": [";
  for (std::size_t i = 0; i < constraints.forbidden.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"op\": " +
           obs::json_string(
               graph.operation(constraints.forbidden[i].op).name) +
           ", \"proc\": " +
           obs::json_string(
               arch.processor(constraints.forbidden[i].proc).name) +
           "}";
  }
  out += "], \"forbidden_links\": [";
  for (std::size_t i = 0; i < constraints.forbidden_links.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"dep\": " +
           obs::json_string(
               graph.dependency(constraints.forbidden_links[i].dep).name) +
           ", \"link\": " +
           obs::json_string(
               arch.link(constraints.forbidden_links[i].link).name) +
           "}";
  }
  out += "]}";
  out += ",\n  \"active_comm_deps\": [";
  bool first = true;
  for (std::size_t d = 0; d < active_comm_deps.size(); ++d) {
    if (!active_comm_deps[d]) continue;
    if (!first) out += ", ";
    out += obs::json_string(
        graph
            .dependency(
                DependencyId{static_cast<DependencyId::underlying_type>(d)})
            .name);
    first = false;
  }
  out += "]";
  out += ",\n  \"cache_entries\": " +
         obs::json_number(static_cast<std::uint64_t>(cache_entries));
  if (confirmation) {
    out += ",\n  \"confirmation\": {\"certified\": ";
    out += confirmation->certified ? "true" : "false";
    out += ", \"branches\": " +
           obs::json_number(
               static_cast<std::uint64_t>(confirmation->branches));
    out += ", \"leaves_reused\": " +
           obs::json_number(
               static_cast<std::uint64_t>(confirmation->leaves_reused));
    out += ", \"leaves_fresh\": " +
           obs::json_number(
               static_cast<std::uint64_t>(confirmation->leaves_fresh));
    out += "}";
  }
  out += ",\n  \"moves_exhausted\": ";
  out += moves_exhausted ? "true" : "false";
  out += ",\n  \"rounds_exhausted\": ";
  out += rounds_exhausted ? "true" : "false";
  out += ",\n  \"failure\": " + obs::json_string(failure);
  out += "\n}\n";
  return out;
}

}  // namespace ftsched::campaign
