#include "campaign/certify.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "arch/architecture_graph.hpp"
#include "campaign/canonical.hpp"
#include "campaign/slack.hpp"
#include "campaign/work_pool.hpp"
#include "core/error.hpp"
#include "core/time.hpp"
#include "obs/json_util.hpp"
#include "obs/span.hpp"
#include "sched/timeouts.hpp"
#include "sim/simulator.hpp"
#include "tuning/transient_analysis.hpp"

namespace ftsched::campaign {

namespace {

/// Static watch-chain deadlines: instants a continuously shifting arrival
/// can cross, flipping a receiver's timeout decision. Only the
/// timeout-driven schedules have any.
std::vector<Time> static_deadlines(const Schedule& schedule) {
  if (schedule.kind() != HeuristicKind::kSolution1 &&
      schedule.kind() != HeuristicKind::kHybrid) {
    return {};
  }
  const RoutingTable routing(*schedule.problem().architecture);
  const TimeoutTable timeouts(schedule, routing);
  std::vector<Time> out;
  for (const TimeoutChain& chain : timeouts.chains()) {
    for (const TimeoutEntry& entry : chain.entries) {
      out.push_back(entry.deadline);
    }
  }
  return out;
}

/// Fault classes, in canonical same-instant order.
enum : int { kClsCrash = 0, kClsLinkDeath = 1, kClsSilence = 2 };

/// A typed mid-run fault victim. The canonical same-instant order is the
/// key's lexicographic order — crashes, then link deaths, then silence
/// openings, each by ascending id — so every unordered same-instant fault
/// set is explored exactly once (same-instant injections commute: each
/// only queues its own victim's event / window before the instant's batch
/// is dispatched).
struct FaultKey {
  int cls = -1;
  int id = -1;

  [[nodiscard]] bool valid() const { return cls >= 0; }
  friend bool operator==(const FaultKey&, const FaultKey&) = default;
  friend bool operator<=(const FaultKey& a, const FaultKey& b) {
    return a.cls < b.cls || (a.cls == b.cls && a.id <= b.id);
  }
};

/// Remaining per-class fault budgets of a subtree.
struct Budgets {
  int crashes = 0;
  int links = 0;
  int silences = 0;

  [[nodiscard]] bool exhausted() const {
    return crashes <= 0 && links <= 0 && silences <= 0;
  }
};

/// Shared pruning context of one sweep: the subtree memo table, the static
/// slack table, and the digest options every task's Explorer uses. Null
/// memo = pruning disabled (spec.prune off, or gated off by
/// collect_branches / a replay cache).
struct PruneContext {
  CertifyMemo* memo = nullptr;
  const SlackTable* slack = nullptr;
  DigestOptions digest_options;
};

/// Depth-first exploration of one task's subtree; every instant the parent
/// prefix is forked, never replayed.
class Explorer {
 public:
  Explorer(const Simulator& simulator, const CertifySpec& spec,
           const std::vector<Time>& deadlines, std::size_t procs,
           std::size_t links, std::uint64_t schedule_key,
           const PruneContext& prune,
           const std::vector<LatencyProbe>& probes, CertifyTaskPartial& out)
      : sim_(simulator),
        spec_(spec),
        deadlines_(deadlines),
        procs_(procs),
        links_(links),
        beyond_tail_(simulator.schedule().makespan() + 1),
        // The replay cache stores the scalar leaf verdict only, so it is
        // gated off under chain constraints (like the memo; see
        // CertifySpec::latency_constraints).
        cache_(probes.empty() ? spec.cache : nullptr),
        schedule_key_(schedule_key),
        memo_(prune.memo),
        slack_(prune.slack),
        digest_options_(prune.digest_options),
        slack_active_(prune.memo != nullptr && prune.slack != nullptr &&
                      !prune.slack->empty() &&
                      !is_infinite(spec.response_bound) && spec.dedup),
        probes_(probes),
        out_(out) {
    out_.worst_chain_latency.assign(probes_.size(), 0);
  }

  /// Runs one task: the dead-at-start subsets' own leaf when `first` is
  /// invalid, otherwise the subtree of fault sequences starting with a
  /// fault of `first`'s class on `first`'s victim.
  void run(const std::vector<ProcessorId>& dead,
           const std::vector<LinkId>& dead_links, FaultKey first,
           Budgets budgets) {
    FTSCHED_SPAN("certify.task");
    dead_ = dead;
    dead_links_ = dead_links;
    crashes_.clear();
    link_crashes_.clear();
    silences_.clear();
    FailureScenario scenario;
    scenario.failed_at_start = dead;
    scenario.failed_links_at_start = dead_links;
    if (!first.valid()) {
      // The dead-at-start-only leaf: cacheable like any exhausted leaf —
      // each (dead, dead_links) pair owns exactly one leaf-only task, so
      // its key is unique within a sweep.
      std::uint64_t key = 0;
      if (cache_ != nullptr) {
        key = pattern_key();
        if (const auto hit = cache_->lookup(schedule_key_, key)) {
          ++out_.leaves_reused;
          record_leaf(hit->outputs_lost, hit->response_time,
                      hit->silence_deferral, {});
          return;
        }
      }
      Simulator::Branch root = sim_.begin(scenario);
      ++out_.forks;
      const IterationResult root_leaf = sim_.finish(root.fork());
      if (cache_ != nullptr) {
        cache_->insert(schedule_key_, key,
                       CertifyCache::Entry{!root_leaf.all_outputs_produced,
                                           root_leaf.response_time,
                                           root_leaf.silence_deferral});
      }
      certify_leaf(root_leaf);
      return;
    }
    Simulator::Branch root = sim_.begin(scenario);
    ++out_.forks;
    const IterationResult root_leaf = sim_.finish(root.fork());
    explore_children(root, root_leaf, budgets, 0, FaultKey{}, first,
                     kNoFrame);
  }

 private:
  [[nodiscard]] bool proc_alive(ProcessorId p) const {
    if (std::find(dead_.begin(), dead_.end(), p) != dead_.end()) {
      return false;
    }
    return std::none_of(crashes_.begin(), crashes_.end(),
                        [&](const FailureEvent& crash) {
                          return crash.processor == p;
                        });
  }

  [[nodiscard]] bool link_alive(LinkId l) const {
    if (std::find(dead_links_.begin(), dead_links_.end(), l) !=
        dead_links_.end()) {
      return false;
    }
    return std::none_of(link_crashes_.begin(), link_crashes_.end(),
                        [&](const LinkFailureEvent& death) {
                          return death.link == l;
                        });
  }

  /// Records one leaf verdict (simulated or cache-served) against the
  /// current fault pattern. `deferral` is the leaf run's measured
  /// silence_deferral — the tight response allowance its windows earned
  /// (0 when no window deferred a send); the same per-window bound the
  /// campaign oracle applies, always <= the historical longest-window
  /// allowance, so every verdict is at least as strict. `op_completions`
  /// is the leaf run's per-op completion table the chain constraints are
  /// judged from (unused — pass empty — when the spec carries none; the
  /// cache-served paths may do so because the cache is gated off under
  /// constraints).
  void record_leaf(bool lost, Time response, Time deferral,
                   const std::vector<Time>& op_completions) {
    ++out_.branches;
    const bool late =
        !is_infinite(spec_.response_bound) && !lost &&
        time_gt(response, spec_.response_bound + deferral);
    // Chain constraints are judged per dimension, like the scalar
    // envelope: a branch that lost outputs is already the worst verdict
    // (and its completion table describes a truncated run), so chains are
    // only consulted on output-complete leaves. A never-completed sink
    // reads as kInfinite latency — always a violation.
    chain_violated_.clear();
    if (!lost) {
      for (std::size_t i = 0; i < probes_.size(); ++i) {
        const Time latency = chain_latency(op_completions, probes_[i]);
        if (time_gt(latency,
                    spec_.latency_constraints[i].bound + deferral)) {
          chain_violated_.push_back(spec_.latency_constraints[i].name);
        } else {
          out_.worst_chain_latency[i] =
              std::max(out_.worst_chain_latency[i], latency);
        }
      }
    }
    const bool chain_late = !chain_violated_.empty();
    if (!lost && !late) {
      // Late branches are counterexamples, not the certified envelope;
      // keeping them out of worst_response lets the slack cut skip
      // provably-late leaves without perturbing the reported worst.
      out_.worst_response = std::max(out_.worst_response, response);
      for (MemoFrame& frame : frames_) {
        frame.worst = std::max(frame.worst, response);
      }
    }
    CertifyBranch branch;
    branch.dead_at_start = dead_;
    branch.dead_links_at_start = dead_links_;
    branch.crashes = crashes_;
    branch.link_crashes = link_crashes_;
    branch.silences = silences_;
    branch.outputs_lost = lost;
    branch.response_time = response;
    branch.violated_constraints = chain_violated_;
    if (lost || late || chain_late) {
      ++out_.total_counterexamples;
      if (out_.counterexamples.size() < spec_.max_counterexamples) {
        out_.counterexamples.push_back(branch);
      }
    }
    if (spec_.collect_branches) out_.collected.push_back(std::move(branch));
  }

  void certify_leaf(const IterationResult& leaf) {
    out_.events_simulated += leaf.events_executed;
    record_leaf(!leaf.all_outputs_produced, leaf.response_time,
                leaf.silence_deferral, leaf.op_completions);
  }

  /// plan_key of the CURRENT fault pattern (dead_/crashes_/... stacks) —
  /// the replay-cache key half identifying what was injected; the other
  /// half is schedule_hash identifying what it was injected into.
  [[nodiscard]] std::uint64_t pattern_key() const {
    CertifyBranch branch;
    branch.dead_at_start = dead_;
    branch.dead_links_at_start = dead_links_;
    branch.crashes = crashes_;
    branch.link_crashes = link_crashes_;
    branch.silences = silences_;
    return plan_key(counterexample_plan(branch));
  }

  /// Serves a budget-exhausted child from the replay cache when possible.
  /// A hit records the cached verdict (no fork, no simulation) and returns
  /// true; a miss remembers the key for store_leaf and returns false, as
  /// does any non-cacheable child (cache off, or budgets remaining — an
  /// interior child's trace is needed to seed its own children, so it is
  /// always simulated). The current fault pattern must already include the
  /// child's fault.
  bool serve_cached_leaf(const Budgets& rest) {
    have_pending_key_ = false;
    if (cache_ == nullptr || !rest.exhausted()) return false;
    const std::uint64_t key = pattern_key();
    if (const auto hit = cache_->lookup(schedule_key_, key)) {
      ++out_.leaves_reused;
      record_leaf(hit->outputs_lost, hit->response_time,
                  hit->silence_deferral, {});
      return true;
    }
    pending_key_ = key;
    have_pending_key_ = true;
    return false;
  }

  /// Publishes a freshly simulated leaf under the key the preceding
  /// serve_cached_leaf miss computed.
  void store_leaf(const IterationResult& leaf) {
    if (!have_pending_key_) return;
    cache_->insert(schedule_key_, pending_key_,
                   CertifyCache::Entry{!leaf.all_outputs_produced,
                                       leaf.response_time,
                                       leaf.silence_deferral});
    have_pending_key_ = false;
  }

  /// Externally visible action dates of one victim, plus the in-flight
  /// windows whose interior keeps a candidate (the fault instant there IS
  /// the link-release / frame-loss instant).
  struct VictimActs {
    std::vector<Time> acts;
    std::vector<Interval> windows;
  };

  /// A processor's acts: replica completions and the start/end of every
  /// hop it feeds; windows are the in-flight spans of those hops.
  [[nodiscard]] VictimActs proc_acts(const Trace& leaf,
                                     ProcessorId victim) const {
    VictimActs out;
    std::vector<std::pair<LinkId, Time>> open;
    for (const TraceEvent& event : leaf.events()) {
      if (event.proc != victim) continue;
      switch (event.kind) {
        case TraceEvent::Kind::kOpEnd:
          out.acts.push_back(event.time);
          break;
        case TraceEvent::Kind::kTransferStart:
          out.acts.push_back(event.time);
          open.emplace_back(event.link, event.time);
          break;
        // A drop ends the hop as surely as a completion: the frame is gone
        // and the link idle. Leaving the window open would let stale
        // history (a send killed by an earlier fault) keep candidate
        // instants forever — and make the merge decision depend on trace
        // prefix the state digest soundly abstracts.
        case TraceEvent::Kind::kTransferEnd:
        case TraceEvent::Kind::kDrop: {
          out.acts.push_back(event.time);
          const auto it = std::find_if(
              open.rbegin(), open.rend(),
              [&](const auto& o) { return o.first == event.link; });
          if (it != open.rend()) {
            out.windows.push_back(Interval{it->second, event.time});
            open.erase(std::next(it).base());
          }
          break;
        }
        default:
          break;
      }
    }
    for (const auto& [link, start] : open) {
      out.windows.push_back(Interval{start, kInfinite});
    }
    std::sort(out.acts.begin(), out.acts.end());
    return out;
  }

  /// A link's acts: every transfer start/end it carried. The in-flight
  /// windows are kept too, conservatively: a link dead mid-frame loses
  /// the frame at any interior instant, but keeping the interior samples
  /// costs little and never merges two behaviours unsoundly.
  [[nodiscard]] VictimActs link_acts(const Trace& leaf, LinkId victim) const {
    VictimActs out;
    Time open = kInfinite;
    for (const TraceEvent& event : leaf.events()) {
      if (event.link != victim) continue;
      if (event.kind == TraceEvent::Kind::kTransferStart) {
        out.acts.push_back(event.time);
        open = event.time;
      } else if (event.kind == TraceEvent::Kind::kTransferEnd ||
                 event.kind == TraceEvent::Kind::kDrop) {
        out.acts.push_back(event.time);
        if (!is_infinite(open)) {
          out.windows.push_back(Interval{open, event.time});
          open = kInfinite;
        }
      }
    }
    if (!is_infinite(open)) {
      out.windows.push_back(Interval{open, kInfinite});
    }
    std::sort(out.acts.begin(), out.acts.end());
    return out;
  }

  /// One hop start the victim feeds: the date a silent window's edges can
  /// distinguish, plus the payload (dependency, link) the slack cut needs
  /// to look up the hop's static critical tail.
  struct SendStart {
    Time time;
    DependencyId dep;
    LinkId link;
  };

  /// Sorted dates the victim starts feeding a hop — the only instants a
  /// silent window's edges can distinguish (is_silent is consulted at
  /// send start; a window opening inside an in-flight hop blocks nothing
  /// of it).
  [[nodiscard]] std::vector<SendStart> send_starts(const Trace& leaf,
                                                   ProcessorId victim) const {
    std::vector<SendStart> sends;
    for (const TraceEvent& event : leaf.events()) {
      if (event.proc == victim &&
          event.kind == TraceEvent::Kind::kTransferStart) {
        sends.push_back(SendStart{event.time, event.dep, event.link});
      }
    }
    std::sort(sends.begin(), sends.end(),
              [](const SendStart& a, const SendStart& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.dep != b.dep) return a.dep < b.dep;
                return a.link < b.link;
              });
    return sends;
  }

  /// Candidate instants kept for a crash-like fault (processor crash or
  /// link death), after the canonical same-instant filter and (when
  /// enabled) the exact-equivalence merge described in the header.
  [[nodiscard]] std::vector<Time> kept_crash_instants(
      const VictimActs& victim, const std::vector<Time>& candidates, Time t0,
      FaultKey last, FaultKey self) {
    std::vector<Time> kept;
    for (const Time c : candidates) {
      // Canonical ordering: equal-instant fault pairs are explored once,
      // in ascending (class, id) order.
      if (last.valid() && time_eq(c, t0) && self <= last) continue;
      if (!spec_.dedup || kept.empty()) {
        kept.push_back(c);
        continue;
      }
      const Time k0 = kept.back();
      const auto lo = std::upper_bound(victim.acts.begin(),
                                       victim.acts.end(), k0 + kTimeEpsilon);
      const bool acted = lo != victim.acts.end() && time_le(*lo, c);
      const bool mid_transfer =
          !acted && std::any_of(victim.windows.begin(), victim.windows.end(),
                                [&](const Interval& w) {
                                  return time_lt(w.start, c) &&
                                         time_lt(c, w.end);
                                });
      if (acted || mid_transfer) {
        kept.push_back(c);
      } else {
        ++out_.instants_merged;
      }
    }
    out_.instants_kept += kept.size();
    return kept;
  }

  /// Opening-edge candidates kept for a silent window on one victim.
  /// Windows [k0, t) and [c, t) block the same sends iff the victim starts
  /// no send in [k0, c) — the opening edge is inclusive, so the half-open
  /// check differs from the crash merge's (k0, c]. Kept/merged pairs are
  /// accounted per (from, to) combination in silence_tos().
  [[nodiscard]] std::vector<Time> kept_silence_froms(
      const std::vector<SendStart>& sends, const std::vector<Time>& candidates,
      Time t0, FaultKey last, FaultKey self) {
    std::vector<Time> kept;
    for (const Time c : candidates) {
      if (last.valid() && time_eq(c, t0) && self <= last) continue;
      if (!spec_.dedup || kept.empty()) {
        kept.push_back(c);
        continue;
      }
      const Time k0 = kept.back();
      const auto lo = std::lower_bound(
          sends.begin(), sends.end(), k0 - kTimeEpsilon,
          [](const SendStart& s, Time t) { return s.time < t; });
      if (lo != sends.end() && time_lt(lo->time, c)) {
        kept.push_back(c);
      } else {
        ++out_.instants_merged;
      }
    }
    return kept;
  }

  /// Closing-edge candidates for a window opening at `from`: every
  /// representative instant beyond it plus one past-the-end date (silent
  /// for the rest of the iteration). With dedup on, a window that blocks
  /// none of the victim's sends is pruned — it is exactly the parent
  /// leaf. Every surviving `to` is kept: the closing edge is where
  /// blocked sends resume, so it shifts downstream behaviour continuously
  /// (the continuum caveat in the header).
  [[nodiscard]] std::vector<Time> silence_tos(
      const std::vector<SendStart>& sends, const std::vector<Time>& candidates,
      Time from, Time beyond) {
    const auto first_blocked = std::lower_bound(
        sends.begin(), sends.end(), from - kTimeEpsilon,
        [](const SendStart& s, Time t) { return s.time < t; });
    std::vector<Time> kept;
    auto consider = [&](Time to) {
      const bool blocks =
          first_blocked != sends.end() && time_lt(first_blocked->time, to);
      if (spec_.dedup && !blocks) {
        ++out_.instants_merged;
        return;
      }
      kept.push_back(to);
    };
    for (const Time to : candidates) {
      if (time_gt(to, from)) consider(to);
    }
    consider(beyond);
    out_.instants_kept += kept.size();
    return kept;
  }

  // ---------------------------------------------------------------------
  // Subtree memoization. A frame is opened per fresh child subtree; while
  // it is on the stack every counter the subtree accumulates lands between
  // its open-snapshots and the close, so the entry's deltas fall out of
  // plain subtraction. Counterexample suffixes are recovered the same way:
  // the branches recorded past the frame's detail snapshot, stripped of
  // the stack prefix at the frame's depths. A frame is poisoned (never
  // stored) when a slack cut fires anywhere inside — the cut's skipped
  // leaf detail would make the entry depend on the recorder's cap state
  // instead of being a pure function of (digest, budgets).

  static constexpr std::size_t kNoFrame = static_cast<std::size_t>(-1);

  struct MemoFrame {
    std::uint64_t key1 = 0;
    std::uint64_t key2 = 0;
    bool relabeled = false;
    bool same_instant = false;
    bool poisoned = false;
    int last_cls = 0;
    int last_id = -1;
    // Fault-stack depths INCLUDING the child's own fault (suffix base).
    std::size_t crashes_depth = 0;
    std::size_t links_depth = 0;
    std::size_t silences_depth = 0;
    // out_ snapshots at open.
    std::size_t branches0 = 0;
    std::size_t forks0 = 0;
    std::size_t events0 = 0;
    std::size_t kept0 = 0;
    std::size_t merged0 = 0;
    std::size_t total0 = 0;
    std::size_t detail0 = 0;
    // Max response over the subtree's on-time, output-complete leaves.
    Time worst = 0;
  };

  /// Memo key half mixing the subtree's remaining budgets and root instant
  /// into the digest's low word. Budgets are non-negative and small; t0 by
  /// IEEE-754 bit pattern (digest-equal states share their clock, but the
  /// salt costs nothing and guards the key against digest-collision luck
  /// pairing different enumeration anchors).
  [[nodiscard]] static std::uint64_t budget_salt(const Budgets& budgets,
                                                 Time t0) {
    std::uint64_t x =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(
            budgets.crashes)) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             budgets.links))
         << 21) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             budgets.silences))
         << 42);
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof t0);
    std::memcpy(&bits, &t0, sizeof bits);
    x ^= bits * 0x9E3779B97F4A7C15ULL;
    x *= 0xC2B2AE3D27D4EB4FULL;
    x ^= x >> 29;
    return x;
  }

  /// Whether a published memo entry may be replayed here. Three guards on
  /// top of the key match (see DESIGN.md for the full argument):
  ///  * same-instant subtrees filter siblings through `last` and RAW victim
  ///    ids, so they are only portable to an identical (unrelabeled) state
  ///    under the identical last key;
  ///  * a relabeled match proves isomorphism, not identity — counts and
  ///    worst are transferable, counterexample suffixes (which name
  ///    victims) are not;
  ///  * when slack cuts are live, a fresh exploration at a full
  ///    counterexample cap diverges from the recorded cut-free subtree, so
  ///    only hits that provably keep the cap un-full may replay.
  [[nodiscard]] bool accept_hit(const CertifyMemoEntry& entry,
                                const StateDigest& digest,
                                FaultKey self) const {
    const bool relabel = entry.relabeled || digest.relabeled;
    if (entry.same_instant) {
      if (relabel) return false;
      if (entry.last_cls != self.cls || entry.last_id != self.id) {
        return false;
      }
    } else if (relabel && entry.total_counterexamples != 0) {
      return false;
    }
    if (slack_active_ && entry.total_counterexamples != 0 &&
        out_.counterexamples.size() + entry.total_counterexamples >=
            spec_.max_counterexamples) {
      return false;
    }
    return true;
  }

  /// Adds a memo entry's recorded contribution to this task exactly as the
  /// fresh subtree would have: counts summed, worst maxed (here and into
  /// every open frame), counterexample suffixes grafted onto the current
  /// fault stacks up to the detail cap.
  void replay_hit(const CertifyMemoEntry& entry) {
    out_.branches += entry.branches;
    out_.forks += entry.forks;
    out_.events_simulated += entry.events_simulated;
    out_.instants_kept += entry.instants_kept;
    out_.instants_merged += entry.instants_merged;
    out_.total_counterexamples += entry.total_counterexamples;
    out_.memo_branches_replayed += entry.branches;
    out_.worst_response =
        std::max(out_.worst_response, entry.worst_response);
    for (MemoFrame& frame : frames_) {
      frame.worst = std::max(frame.worst, entry.worst_response);
    }
    for (const CertifyMemoCex& suffix : entry.counterexamples) {
      if (out_.counterexamples.size() >= spec_.max_counterexamples) break;
      CertifyBranch branch;
      branch.dead_at_start = dead_;
      branch.dead_links_at_start = dead_links_;
      branch.crashes = crashes_;
      branch.crashes.insert(branch.crashes.end(), suffix.crashes.begin(),
                            suffix.crashes.end());
      branch.link_crashes = link_crashes_;
      branch.link_crashes.insert(branch.link_crashes.end(),
                                 suffix.link_crashes.begin(),
                                 suffix.link_crashes.end());
      branch.silences = silences_;
      branch.silences.insert(branch.silences.end(), suffix.silences.begin(),
                             suffix.silences.end());
      branch.outputs_lost = suffix.outputs_lost;
      branch.response_time = suffix.response_time;
      out_.counterexamples.push_back(std::move(branch));
    }
  }

  /// Pops the top frame and publishes its entry unless it was poisoned or
  /// its counterexample detail is incomplete (the task's cap filled inside
  /// the subtree, so the suffix list would under-represent the total).
  void close_frame(FaultKey key) {
    MemoFrame frame = std::move(frames_.back());
    frames_.pop_back();
    const std::size_t total_delta =
        out_.total_counterexamples - frame.total0;
    const std::size_t detail_delta =
        out_.counterexamples.size() - frame.detail0;
    if (frame.poisoned || detail_delta != total_delta) return;
    CertifyMemoEntry entry;
    entry.branches = out_.branches - frame.branches0;
    entry.forks = out_.forks - frame.forks0;
    entry.events_simulated = out_.events_simulated - frame.events0;
    entry.instants_kept = out_.instants_kept - frame.kept0;
    entry.instants_merged = out_.instants_merged - frame.merged0;
    entry.total_counterexamples = total_delta;
    entry.worst_response = frame.worst;
    entry.last_cls = static_cast<std::uint8_t>(key.cls);
    entry.last_id = key.id;
    entry.relabeled = frame.relabeled;
    entry.same_instant = frame.same_instant;
    entry.counterexamples.reserve(detail_delta);
    for (std::size_t i = frame.detail0; i < out_.counterexamples.size();
         ++i) {
      const CertifyBranch& branch = out_.counterexamples[i];
      CertifyMemoCex suffix;
      suffix.crashes.assign(branch.crashes.begin() +
                                static_cast<std::ptrdiff_t>(
                                    frame.crashes_depth),
                            branch.crashes.end());
      suffix.link_crashes.assign(branch.link_crashes.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         frame.links_depth),
                                 branch.link_crashes.end());
      suffix.silences.assign(branch.silences.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     frame.silences_depth),
                             branch.silences.end());
      suffix.outputs_lost = branch.outputs_lost;
      suffix.response_time = branch.response_time;
      entry.counterexamples.push_back(std::move(suffix));
    }
#ifdef FTSCHED_MEMO_AUDIT
    entry.audit_origin = audit_stacks(kInfinite);
#endif
    memo_->insert(frame.key1, frame.key2, entry);
  }

#ifdef FTSCHED_MEMO_AUDIT
  [[nodiscard]] std::string audit_stacks(Time c) const {
    std::string s;
    char buf[64];
    for (const ProcessorId p : dead_) {
      std::snprintf(buf, sizeof buf, "dead P%d; ", p.value());
      s += buf;
    }
    for (const LinkId l : dead_links_) {
      std::snprintf(buf, sizeof buf, "dead L%d; ", l.value());
      s += buf;
    }
    for (const FailureEvent& e : crashes_) {
      std::snprintf(buf, sizeof buf, "crash P%d@%.4f; ",
                    e.processor.value(), e.time);
      s += buf;
    }
    for (const LinkFailureEvent& e : link_crashes_) {
      std::snprintf(buf, sizeof buf, "link L%d@%.4f; ", e.link.value(),
                    e.time);
      s += buf;
    }
    for (const SilentWindow& w : silences_) {
      std::snprintf(buf, sizeof buf, "sil P%d@[%.4f,%.4f); ",
                    w.processor.value(), w.from, w.to);
      s += buf;
    }
    if (!is_infinite(c)) {
      std::snprintf(buf, sizeof buf, "<probe at %.4f>", c);
      s += buf;
    }
    return s;
  }
#endif

  /// Executes one child subtree — fork, inject, leaf, recursion — with the
  /// memo consulted first when pruning is on. The caller has already
  /// pushed the child's fault onto its stack; `inject` applies it to a
  /// forked branch.
  template <typename Inject>
  void explore_child(const Simulator::Branch& cursor, const Inject& inject,
                     Budgets rest, Time c, FaultKey key) {
    if (memo_ == nullptr) {
      if (!serve_cached_leaf(rest)) {
        Simulator::Branch child = cursor.fork();
        ++out_.forks;
        inject(child);
        ++out_.forks;
        const IterationResult child_leaf = sim_.finish(child.fork());
        certify_leaf(child_leaf);
        store_leaf(child_leaf);
        explore_children(child, child_leaf, rest, c, key, FaultKey{},
                         kNoFrame);
      }
      return;
    }
    // Prune path (the replay cache is gated off): fork once for the digest
    // probe; on a miss the probe fork becomes the child, so the fork
    // accounting matches the unpruned path exactly (a hit replays the
    // recording subtree's forks instead, probe fork uncounted).
    Simulator::Branch child = cursor.fork();
    inject(child);
    const StateDigest digest = sim_.branch_digest(child, digest_options_);
    const std::uint64_t key2 = digest.lo ^ budget_salt(rest, c);
    ++out_.memo_probes;
    if (const auto hit = memo_->lookup(digest.hi, key2)) {
      if (accept_hit(*hit, digest, key)) {
#ifdef FTSCHED_MEMO_AUDIT
        // Audit builds: explore the subtree fresh instead of replaying and
        // scream if the recorded entry disagrees — a digest collision.
        const std::size_t br0 = out_.branches, fk0 = out_.forks,
                          kp0 = out_.instants_kept,
                          mg0 = out_.instants_merged,
                          tc0 = out_.total_counterexamples;
        const std::size_t fi = frames_.size();
        {
          MemoFrame frame;
          frame.poisoned = true;  // never store over the audited entry
          frame.branches0 = br0;
          frame.crashes_depth = crashes_.size();
          frame.links_depth = link_crashes_.size();
          frame.silences_depth = silences_.size();
          frame.detail0 = out_.counterexamples.size();
          frame.total0 = tc0;
          frames_.push_back(frame);
        }
        out_.forks += 2;
        const IterationResult audit_leaf = sim_.finish(child.fork());
        certify_leaf(audit_leaf);
        explore_children(child, audit_leaf, rest, c, key, FaultKey{}, fi);
        frames_.pop_back();
        if (out_.branches - br0 != hit->branches ||
            out_.forks - fk0 != hit->forks ||
            out_.instants_kept - kp0 != hit->instants_kept ||
            out_.instants_merged - mg0 != hit->instants_merged ||
            out_.total_counterexamples - tc0 !=
                hit->total_counterexamples) {
          std::fprintf(
              stderr,
              "MEMO AUDIT MISMATCH digest=%016llx/%016llx t0=%.6f "
              "budgets=%d/%d/%d relab=%d/%d same=%d\n"
              "  entry: br=%zu fk=%zu kept=%zu mrg=%zu cex=%zu\n"
              "  fresh: br=%zu fk=%zu kept=%zu mrg=%zu cex=%zu\n"
              "  recorder: %s\n  replayer: %s\n",
              static_cast<unsigned long long>(digest.hi),
              static_cast<unsigned long long>(digest.lo), c, rest.crashes,
              rest.links, rest.silences, int(hit->relabeled),
              int(digest.relabeled), int(hit->same_instant), hit->branches,
              hit->forks, hit->instants_kept, hit->instants_merged,
              hit->total_counterexamples, out_.branches - br0,
              out_.forks - fk0, out_.instants_kept - kp0,
              out_.instants_merged - mg0, out_.total_counterexamples - tc0,
              hit->audit_origin.c_str(), audit_stacks(c).c_str());
        }
        return;
#else
        ++out_.memo_hits;
        replay_hit(*hit);
        return;
#endif
      }
    }
    const std::size_t frame_index = frames_.size();
    {
      MemoFrame frame;
      frame.key1 = digest.hi;
      frame.key2 = key2;
      frame.relabeled = digest.relabeled;
      frame.last_cls = key.cls;
      frame.last_id = key.id;
      frame.crashes_depth = crashes_.size();
      frame.links_depth = link_crashes_.size();
      frame.silences_depth = silences_.size();
      frame.branches0 = out_.branches;
      frame.forks0 = out_.forks;
      frame.events0 = out_.events_simulated;
      frame.kept0 = out_.instants_kept;
      frame.merged0 = out_.instants_merged;
      frame.total0 = out_.total_counterexamples;
      frame.detail0 = out_.counterexamples.size();
      frames_.push_back(frame);
    }
    out_.forks += 2;
    const IterationResult child_leaf = sim_.finish(child.fork());
    certify_leaf(child_leaf);
    explore_children(child, child_leaf, rest, c, key, FaultKey{},
                     frame_index);
    close_frame(key);
  }

  /// The slack cut's to-independent test: does deferring the victim's
  /// first send at/after `c` to ANY closing edge provably overshoot the
  /// response envelope? True when some first-instant send's static
  /// critical tail satisfies c + tail > bound + prev_len with margin —
  /// the deferred send resumes at `to`, so response >= to + tail, while
  /// the branch's allowance is at most max(prev window lengths, to - b)
  /// for a first block at b >= c - eps; either way the envelope is
  /// exceeded. Only sends at the first blocked instant are consulted:
  /// every kept closing edge provably blocks exactly those.
  [[nodiscard]] bool provably_late_silence(
      ProcessorId victim, const std::vector<SendStart>& sends,
      Time c) const {
    const auto first = std::lower_bound(
        sends.begin(), sends.end(), c - kTimeEpsilon,
        [](const SendStart& s, Time t) { return s.time < t; });
    if (first == sends.end()) return false;
    Time prev_len = 0;
    for (const SilentWindow& window : silences_) {
      prev_len = std::max(prev_len, window.to - window.from);
    }
    for (auto it = first; it != sends.end() && it->time == first->time;
         ++it) {
      const Time tail = slack_->critical_tail(victim, it->dep, it->link);
      if (is_infinite(tail)) continue;
      // 4 epsilons of margin: one for b >= c - eps, one for time_gt's own
      // tolerance, two against duration-sum rounding drift between this
      // static bound and the simulator's event arithmetic.
      if (time_gt(c + tail,
                  spec_.response_bound + prev_len + 4 * kTimeEpsilon)) {
        return true;
      }
    }
    return false;
  }

  void explore_children(const Simulator::Branch& node,
                        const IterationResult& leaf, Budgets budgets,
                        Time t0, FaultKey last, FaultKey only,
                        std::size_t frame_index) {
    if (budgets.exhausted()) return;
    const std::vector<Time> candidates =
        representative_instants(leaf.trace, t0, deadlines_);
    if (candidates.empty()) return;
    if (frame_index != kNoFrame && time_eq(candidates.front(), t0)) {
      // The subtree's top level has same-instant candidates: its shape
      // depends on the `last` sibling filter, which the memo entry must
      // advertise (see accept_hit).
      frames_[frame_index].same_instant = true;
    }
    const Time beyond = candidates.back() + beyond_tail_;

    struct VictimPlan {
      FaultKey key;
      std::vector<Time> instants;
      std::vector<SendStart> sends;  // silence victims only
    };
    std::vector<VictimPlan> victims;
    auto consider = [&](FaultKey key) {
      if (only.valid() && !(key == only)) return;
      VictimPlan plan;
      plan.key = key;
      if (key.cls == kClsCrash) {
        const ProcessorId victim{
            static_cast<ProcessorId::underlying_type>(key.id)};
        plan.instants = kept_crash_instants(proc_acts(leaf.trace, victim),
                                            candidates, t0, last, key);
      } else if (key.cls == kClsLinkDeath) {
        const LinkId victim{static_cast<LinkId::underlying_type>(key.id)};
        plan.instants = kept_crash_instants(link_acts(leaf.trace, victim),
                                            candidates, t0, last, key);
      } else {
        const ProcessorId victim{
            static_cast<ProcessorId::underlying_type>(key.id)};
        plan.sends = send_starts(leaf.trace, victim);
        plan.instants =
            kept_silence_froms(plan.sends, candidates, t0, last, key);
      }
      if (!plan.instants.empty()) victims.push_back(std::move(plan));
    };
    if (budgets.crashes > 0) {
      for (std::size_t p = 0; p < procs_; ++p) {
        const ProcessorId victim{
            static_cast<ProcessorId::underlying_type>(p)};
        if (!proc_alive(victim)) continue;
        consider(FaultKey{kClsCrash, static_cast<int>(p)});
      }
    }
    if (budgets.links > 0) {
      for (std::size_t l = 0; l < links_; ++l) {
        const LinkId victim{static_cast<LinkId::underlying_type>(l)};
        if (!link_alive(victim)) continue;
        consider(FaultKey{kClsLinkDeath, static_cast<int>(l)});
      }
    }
    if (budgets.silences > 0) {
      for (std::size_t p = 0; p < procs_; ++p) {
        const ProcessorId victim{
            static_cast<ProcessorId::underlying_type>(p)};
        if (!proc_alive(victim)) continue;
        consider(FaultKey{kClsSilence, static_cast<int>(p)});
      }
    }
    if (victims.empty()) return;

    // One cursor per node: the shared prefix is executed once per instant,
    // each (victim, instant) branch forks it.
    Simulator::Branch cursor = node.fork();
    ++out_.forks;
    std::vector<std::size_t> next(victims.size(), 0);
    for (;;) {
      // Earliest un-dispatched instant across the victims.
      Time c = kInfinite;
      for (std::size_t v = 0; v < victims.size(); ++v) {
        if (next[v] < victims[v].instants.size()) {
          c = std::min(c, victims[v].instants[next[v]]);
        }
      }
      if (is_infinite(c)) break;
      sim_.advance_until(cursor, c);
      for (std::size_t v = 0; v < victims.size(); ++v) {
        if (next[v] >= victims[v].instants.size() ||
            victims[v].instants[next[v]] != c) {
          continue;
        }
        ++next[v];
        const FaultKey key = victims[v].key;
        if (key.cls == kClsCrash) {
          const ProcessorId victim{
              static_cast<ProcessorId::underlying_type>(key.id)};
          crashes_.push_back(FailureEvent{victim, c});
          Budgets rest = budgets;
          --rest.crashes;
          explore_child(
              cursor,
              [&](Simulator::Branch& child) {
                sim_.inject(child, FailureEvent{victim, c});
              },
              rest, c, key);
          crashes_.pop_back();
        } else if (key.cls == kClsLinkDeath) {
          const LinkId victim{static_cast<LinkId::underlying_type>(key.id)};
          link_crashes_.push_back(LinkFailureEvent{victim, c});
          Budgets rest = budgets;
          --rest.links;
          explore_child(
              cursor,
              [&](Simulator::Branch& child) {
                sim_.inject(child, LinkFailureEvent{victim, c});
              },
              rest, c, key);
          link_crashes_.pop_back();
        } else {
          const ProcessorId victim{
              static_cast<ProcessorId::underlying_type>(key.id)};
          Budgets rest = budgets;
          --rest.silences;
          // Slack cut: every closing edge of a window opening at `c`
          // defers the same first-instant sends, so one static test covers
          // the whole edge fan. Only leaf windows (budgets exhausted, no
          // deeper faults to seed) at an already-full counterexample cap
          // are cut — the verdict, counts, and detail list then match the
          // unpruned sweep exactly; only events_simulated (not part of the
          // certificate) differs.
          const bool cut =
              slack_active_ && rest.exhausted() &&
              out_.counterexamples.size() >= spec_.max_counterexamples &&
              provably_late_silence(victim, victims[v].sends, c);
          for (const Time to :
               silence_tos(victims[v].sends, candidates, c, beyond)) {
            if (cut) {
              // The unpruned leaf's exact accounting, minus the simulation:
              // one branch, its two forks, one late counterexample (detail
              // cap is full, so no entry is appended there either), no
              // worst_response update (record_leaf skips late leaves).
              ++out_.branches;
              out_.forks += 2;
              ++out_.total_counterexamples;
              ++out_.slack_cuts;
              for (MemoFrame& frame : frames_) frame.poisoned = true;
              continue;
            }
            silences_.push_back(SilentWindow{victim, c, to});
            explore_child(
                cursor,
                [&](Simulator::Branch& child) {
                  sim_.inject(child, SilentWindow{victim, c, to});
                },
                rest, c, key);
            silences_.pop_back();
          }
        }
      }
    }
  }

  const Simulator& sim_;
  const CertifySpec& spec_;
  const std::vector<Time>& deadlines_;
  const std::size_t procs_;
  const std::size_t links_;
  const Time beyond_tail_;
  CertifyCache* const cache_;
  const std::uint64_t schedule_key_;
  std::uint64_t pending_key_ = 0;
  bool have_pending_key_ = false;
  CertifyMemo* const memo_;       // null = subtree memoization off
  const SlackTable* const slack_;  // null or empty = slack cut off
  const DigestOptions digest_options_;
  const bool slack_active_;
  /// Resolved chain probes, spec order (empty = scalar-only sweep).
  const std::vector<LatencyProbe>& probes_;
  /// Scratch: names the current leaf violates (record_leaf only).
  std::vector<std::string> chain_violated_;
  CertifyTaskPartial& out_;
  std::vector<ProcessorId> dead_;
  std::vector<LinkId> dead_links_;
  std::vector<FailureEvent> crashes_;
  std::vector<LinkFailureEvent> link_crashes_;
  std::vector<SilentWindow> silences_;
  // Open memo frames, root-first; indexed (not pointered) because the
  // vector reallocates during recursion.
  std::vector<MemoFrame> frames_;
};

/// Subsets of {0..count-1} with size 0..max, sizes ascending,
/// lexicographic within a size — the canonical task order.
std::vector<std::vector<int>> id_subsets(std::size_t count, int max) {
  std::vector<std::vector<int>> out;
  for (int size = 0; size <= max; ++size) {
    std::vector<int> combo;
    auto gen = [&](auto&& self, std::size_t from, int left) -> void {
      if (left == 0) {
        out.push_back(combo);
        return;
      }
      for (std::size_t p = from; p + static_cast<std::size_t>(left) <= count;
           ++p) {
        combo.push_back(static_cast<int>(p));
        self(self, p + 1, left - 1);
        combo.pop_back();
      }
    };
    gen(gen, 0, size);
  }
  return out;
}

std::vector<ProcessorId> to_proc_ids(const std::vector<int>& ids) {
  std::vector<ProcessorId> out;
  out.reserve(ids.size());
  for (const int id : ids) {
    out.push_back(ProcessorId{static_cast<ProcessorId::underlying_type>(id)});
  }
  return out;
}

std::vector<LinkId> to_link_ids(const std::vector<int>& ids) {
  std::vector<LinkId> out;
  out.reserve(ids.size());
  for (const int id : ids) {
    out.push_back(LinkId{static_cast<LinkId::underlying_type>(id)});
  }
  return out;
}

}  // namespace

MissionPlan counterexample_plan(const CertifyBranch& branch) {
  MissionPlan plan;
  plan.iterations = 1;
  plan.dead_at_start = branch.dead_at_start;
  plan.dead_links_at_start = branch.dead_links_at_start;
  for (const FailureEvent& crash : branch.crashes) {
    plan.failures.push_back(MissionFailure{0, crash});
  }
  for (const LinkFailureEvent& death : branch.link_crashes) {
    plan.link_failures.push_back(MissionLinkFailure{0, death});
  }
  for (const SilentWindow& window : branch.silences) {
    plan.silences.push_back(MissionSilence{0, window});
  }
  return plan;
}

namespace {

/// The fully resolved sweep: budgets clamped, subsets materialized, tasks
/// enumerated in the canonical global order every shard agrees on. A pure
/// function of (schedule, spec).
struct SweepPlan {
  int max_failures = 0;
  int max_links = 0;
  int max_silences = 0;
  std::vector<std::vector<ProcessorId>> subsets;
  std::vector<std::vector<LinkId>> link_subsets;
  struct Task {
    const std::vector<ProcessorId>* dead;
    const std::vector<LinkId>* dead_links;
    FaultKey first;  // invalid = leaf-only
    Budgets budgets;
  };
  std::vector<Task> tasks;
};

SweepPlan build_sweep_plan(const Schedule& schedule, const CertifySpec& spec) {
  const std::size_t procs =
      schedule.problem().architecture->processor_count();
  const std::size_t links = schedule.problem().architecture->link_count();
  SweepPlan plan;
  int max_failures = spec.max_failures < 0 ? schedule.failures_tolerated()
                                           : spec.max_failures;
  plan.max_failures = std::clamp(max_failures, 0,
                                 static_cast<int>(procs) - 1);
  plan.max_links =
      std::clamp(spec.max_link_failures, 0, static_cast<int>(links));
  plan.max_silences = std::max(spec.max_silences, 0);

  for (const std::vector<int>& ids : id_subsets(procs, plan.max_failures)) {
    plan.subsets.push_back(to_proc_ids(ids));
  }
  for (const std::vector<int>& ids : id_subsets(links, plan.max_links)) {
    plan.link_subsets.push_back(to_link_ids(ids));
  }

  // Tasks: each (processor subset, link subset) pair's own leaf, plus —
  // when some mid-run budget remains — one subtree per first fault victim
  // in canonical class order, splitting the dominant small-subset
  // subtrees across workers.
  for (const std::vector<ProcessorId>& dead : plan.subsets) {
    for (const std::vector<LinkId>& dead_links : plan.link_subsets) {
      Budgets budgets;
      budgets.crashes = plan.max_failures - static_cast<int>(dead.size());
      budgets.links = plan.max_links - static_cast<int>(dead_links.size());
      budgets.silences = plan.max_silences;
      plan.tasks.push_back(
          SweepPlan::Task{&dead, &dead_links, FaultKey{}, budgets});
      if (budgets.exhausted()) continue;
      auto add_first = [&](int cls, int id) {
        plan.tasks.push_back(
            SweepPlan::Task{&dead, &dead_links, FaultKey{cls, id}, budgets});
      };
      if (budgets.crashes > 0) {
        for (std::size_t p = 0; p < procs; ++p) {
          const ProcessorId victim{
              static_cast<ProcessorId::underlying_type>(p)};
          if (std::find(dead.begin(), dead.end(), victim) != dead.end()) {
            continue;
          }
          add_first(kClsCrash, static_cast<int>(p));
        }
      }
      if (budgets.links > 0) {
        for (std::size_t l = 0; l < links; ++l) {
          const LinkId victim{static_cast<LinkId::underlying_type>(l)};
          if (std::find(dead_links.begin(), dead_links.end(), victim) !=
              dead_links.end()) {
            continue;
          }
          add_first(kClsLinkDeath, static_cast<int>(l));
        }
      }
      if (budgets.silences > 0) {
        for (std::size_t p = 0; p < procs; ++p) {
          const ProcessorId victim{
              static_cast<ProcessorId::underlying_type>(p)};
          if (std::find(dead.begin(), dead.end(), victim) != dead.end()) {
            continue;
          }
          add_first(kClsSilence, static_cast<int>(p));
        }
      }
    }
  }
  return plan;
}

CertifySweep sweep_of(const SweepPlan& plan, const CertifySpec& spec) {
  CertifySweep sweep;
  sweep.max_failures = plan.max_failures;
  sweep.max_link_failures = plan.max_links;
  sweep.max_silences = plan.max_silences;
  sweep.response_bound = spec.response_bound;
  sweep.subsets = plan.subsets.size();
  sweep.link_subsets = plan.link_subsets.size();
  sweep.tasks = plan.tasks.size();
  return sweep;
}

}  // namespace

CertifySweep certify_sweep(const Schedule& schedule,
                           const CertifySpec& spec) {
  return sweep_of(build_sweep_plan(schedule, spec), spec);
}

CertifyMerger::CertifyMerger(const CertifySweep& sweep,
                             const CertifySpec& spec)
    : max_counterexamples_(spec.max_counterexamples),
      collect_branches_(spec.collect_branches) {
  report_.prune = spec.prune && !spec.collect_branches &&
                  spec.cache == nullptr && spec.latency_constraints.empty();
  report_.latency_constraints = spec.latency_constraints;
  report_.worst_chain_latency.assign(spec.latency_constraints.size(), 0);
  report_.max_failures = sweep.max_failures;
  report_.max_link_failures = sweep.max_link_failures;
  report_.max_silences = sweep.max_silences;
  report_.response_bound = sweep.response_bound;
  report_.subsets = sweep.subsets;
  report_.link_subsets = sweep.link_subsets;
}

void CertifyMerger::add(CertifyTaskPartial&& partial) {
  FTSCHED_REQUIRE(!any_added_ || partial.task_index > last_index_,
                  "CertifyMerger::add requires ascending task indices");
  any_added_ = true;
  last_index_ = partial.task_index;
  report_.branches += partial.branches;
  report_.forks += partial.forks;
  report_.leaves_reused += partial.leaves_reused;
  report_.events_simulated += partial.events_simulated;
  report_.instants_kept += partial.instants_kept;
  report_.instants_merged += partial.instants_merged;
  report_.total_counterexamples += partial.total_counterexamples;
  report_.memo_probes += partial.memo_probes;
  report_.memo_hits += partial.memo_hits;
  report_.memo_branches_replayed += partial.memo_branches_replayed;
  report_.slack_cuts += partial.slack_cuts;
  report_.worst_response =
      std::max(report_.worst_response, partial.worst_response);
  for (std::size_t i = 0; i < report_.worst_chain_latency.size() &&
                          i < partial.worst_chain_latency.size();
       ++i) {
    report_.worst_chain_latency[i] = std::max(
        report_.worst_chain_latency[i], partial.worst_chain_latency[i]);
  }
  for (CertifyBranch& cex : partial.counterexamples) {
    if (report_.counterexamples.size() < max_counterexamples_) {
      report_.counterexamples.push_back(std::move(cex));
    }
  }
  if (collect_branches_) {
    for (CertifyBranch& branch : partial.collected) {
      report_.branches_list.push_back(std::move(branch));
    }
  }
}

CertifyReport CertifyMerger::finish() {
  report_.certified = report_.total_counterexamples == 0;
  report_.leaves_fresh = report_.branches - report_.leaves_reused;
  report_.metrics.add_counter("certify.subsets", report_.subsets);
  report_.metrics.add_counter("certify.link_subsets", report_.link_subsets);
  report_.metrics.add_counter("certify.branches", report_.branches);
  report_.metrics.add_counter("certify.forks", report_.forks);
  report_.metrics.add_counter("certify.leaves_reused",
                              report_.leaves_reused);
  report_.metrics.add_counter("certify.leaves_fresh", report_.leaves_fresh);
  report_.metrics.add_counter("certify.events_simulated",
                              report_.events_simulated);
  report_.metrics.add_counter("certify.instants_kept",
                              report_.instants_kept);
  report_.metrics.add_counter("certify.instants_merged",
                              report_.instants_merged);
  report_.metrics.add_counter("certify.counterexamples",
                              report_.total_counterexamples);
  if (!report_.latency_constraints.empty()) {
    // Scalar sweeps keep their historical metric set byte for byte; the
    // counter exists only when the spec carries chain constraints.
    report_.metrics.add_counter("certify.latency_constraints",
                                report_.latency_constraints.size());
  }
  return std::move(report_);
}

bool certify_shard(const Schedule& schedule, const CertifySpec& spec,
                   const CertifyShardSpec& shard,
                   const std::function<void(CertifyTaskPartial&&)>& emit,
                   const std::function<bool()>& cancelled) {
  FTSCHED_SPAN("certify.shard");
  FTSCHED_REQUIRE(shard.shard_count >= 1 &&
                      shard.shard_index < shard.shard_count,
                  "certify_shard: shard_index must be < shard_count");
  const SweepPlan plan = build_sweep_plan(schedule, spec);
  const std::size_t procs =
      schedule.problem().architecture->processor_count();
  const std::size_t links = schedule.problem().architecture->link_count();
  const Simulator simulator(schedule);
  const std::vector<Time> deadlines = static_deadlines(schedule);
  const std::uint64_t schedule_key =
      spec.cache != nullptr ? schedule_hash(schedule) : 0;
  // Validates the spec's chain constraints (throws std::invalid_argument
  // on a malformed one) and resolves them to op-index probes once for the
  // whole shard.
  const std::vector<LatencyProbe> probes =
      resolve_latency_constraints(schedule, spec.latency_constraints);

  // Pruning is gated off under collect_branches (every branch must be
  // materialized, replaying a memo subtree would skip its enumeration),
  // under a replay cache (the cache is keyed by exact fault pattern; memo
  // replay would starve it nondeterministically), and under chain
  // constraints (memo entries carry only the scalar leaf verdict).
  const bool prune_enabled = spec.prune && !spec.collect_branches &&
                             spec.cache == nullptr && probes.empty();
  PruneContext prune;
  CertifyMemo memo;
  const std::vector<std::vector<std::uint32_t>> classes =
      prune_enabled ? automorphism_classes(schedule)
                    : std::vector<std::vector<std::uint32_t>>{};
  const SlackTable slack =
      prune_enabled ? SlackTable::build(schedule) : SlackTable{};
  if (prune_enabled) {
    // spec.memo lets a caller share one memo across sweeps (the frontier
    // walk); otherwise this shard owns a private one.
    prune.memo = spec.memo != nullptr ? spec.memo : &memo;
    prune.slack = &slack;
    prune.digest_options.with_allowance = !is_infinite(spec.response_bound);
    prune.digest_options.proc_classes = classes.empty() ? nullptr : &classes;
  }

  std::vector<std::size_t> owned;
  for (std::size_t t = 0; t < plan.tasks.size(); ++t) {
    if (shard.owns(t)) owned.push_back(t);
  }

  auto run_task = [&](std::size_t t) {
    CertifyTaskPartial partial;
    partial.task_index = t;
    Explorer explorer(simulator, spec, deadlines, procs, links, schedule_key,
                      prune, probes, partial);
    explorer.run(*plan.tasks[t].dead, *plan.tasks[t].dead_links,
                 plan.tasks[t].first, plan.tasks[t].budgets);
    return partial;
  };

  const unsigned threads = resolve_threads(spec.threads);
  if (threads == 1 || owned.size() <= 1) {
    for (const std::size_t t : owned) {
      if (cancelled && cancelled()) return false;
      emit(run_task(t));
    }
    return true;
  }

  // Parallel path: workers finish out of order; completed partials park in
  // a cursor-ordered buffer and are flushed to `emit` in ascending task
  // order, so the consumer sees exactly the single-threaded stream. The
  // buffer is bounded by the out-of-order window (at most the number of
  // in-flight tasks), not the task count.
  std::mutex emit_mutex;
  std::unordered_map<std::size_t, CertifyTaskPartial> ready;
  std::size_t next_pos = 0;
  bool was_cancelled = false;
  WorkPool pool(threads);
  for (std::size_t pos = 0; pos < owned.size(); ++pos) {
    pool.submit([&, pos] {
      {
        const std::lock_guard<std::mutex> lock(emit_mutex);
        if (was_cancelled) return;
        if (cancelled && cancelled()) {
          was_cancelled = true;
          return;
        }
      }
      CertifyTaskPartial partial = run_task(owned[pos]);
      const std::lock_guard<std::mutex> lock(emit_mutex);
      ready.emplace(pos, std::move(partial));
      while (true) {
        const auto it = ready.find(next_pos);
        if (it == ready.end()) break;
        emit(std::move(it->second));
        ready.erase(it);
        ++next_pos;
      }
    });
  }
  pool.wait();
  return !was_cancelled;
}

CertifyReport certify(const Schedule& schedule, const CertifySpec& spec) {
  FTSCHED_SPAN("certify.run");
  const auto wall_start = std::chrono::steady_clock::now();

  CertifyMerger merger(certify_sweep(schedule, spec), spec);
  certify_shard(schedule, spec, CertifyShardSpec{},
                [&](CertifyTaskPartial&& partial) {
                  merger.add(std::move(partial));
                });
  CertifyReport report = merger.finish();
  report.threads_used = resolve_threads(spec.threads);
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

namespace {

std::string branch_text(const CertifyBranch& branch,
                        const ArchitectureGraph& arch) {
  std::string out;
  out += "dead at start: ";
  if (branch.dead_at_start.empty() && branch.dead_links_at_start.empty()) {
    out += "-";
  }
  for (std::size_t i = 0; i < branch.dead_at_start.size(); ++i) {
    if (i > 0) out += ",";
    out += arch.processor(branch.dead_at_start[i]).name;
  }
  for (std::size_t i = 0; i < branch.dead_links_at_start.size(); ++i) {
    if (i > 0 || !branch.dead_at_start.empty()) out += ",";
    out += arch.link(branch.dead_links_at_start[i]).name;
  }
  out += "; crashes: ";
  if (branch.crashes.empty() && branch.link_crashes.empty()) out += "-";
  for (std::size_t i = 0; i < branch.crashes.size(); ++i) {
    if (i > 0) out += ", ";
    out += arch.processor(branch.crashes[i].processor).name;
    out += "@";
    out += time_to_string(branch.crashes[i].time);
  }
  for (std::size_t i = 0; i < branch.link_crashes.size(); ++i) {
    if (i > 0 || !branch.crashes.empty()) out += ", ";
    out += arch.link(branch.link_crashes[i].link).name;
    out += "@";
    out += time_to_string(branch.link_crashes[i].time);
  }
  if (!branch.silences.empty()) {
    out += "; silent: ";
    for (std::size_t i = 0; i < branch.silences.size(); ++i) {
      if (i > 0) out += ", ";
      out += arch.processor(branch.silences[i].processor).name;
      out += "@[";
      out += time_to_string(branch.silences[i].from);
      out += ",";
      out += time_to_string(branch.silences[i].to);
      out += ")";
    }
  }
  out += branch.outputs_lost
             ? "; OUTPUTS LOST"
             : "; response " + time_to_string(branch.response_time);
  for (std::size_t i = 0; i < branch.violated_constraints.size(); ++i) {
    out += i == 0 ? "; violates chain " : ", ";
    out += "\"" + branch.violated_constraints[i] + "\"";
  }
  return out;
}

std::string branch_json(const CertifyBranch& branch,
                        const ArchitectureGraph& arch) {
  std::string out = "{\"dead_at_start\": [";
  for (std::size_t i = 0; i < branch.dead_at_start.size(); ++i) {
    if (i > 0) out += ", ";
    out += obs::json_string(arch.processor(branch.dead_at_start[i]).name);
  }
  out += "], \"dead_links_at_start\": [";
  for (std::size_t i = 0; i < branch.dead_links_at_start.size(); ++i) {
    if (i > 0) out += ", ";
    out += obs::json_string(arch.link(branch.dead_links_at_start[i]).name);
  }
  out += "], \"crashes\": [";
  for (std::size_t i = 0; i < branch.crashes.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"processor\": " +
           obs::json_string(arch.processor(branch.crashes[i].processor).name) +
           ", \"time\": " + obs::json_number(branch.crashes[i].time) + "}";
  }
  out += "], \"link_crashes\": [";
  for (std::size_t i = 0; i < branch.link_crashes.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"link\": " +
           obs::json_string(arch.link(branch.link_crashes[i].link).name) +
           ", \"time\": " + obs::json_number(branch.link_crashes[i].time) +
           "}";
  }
  out += "], \"silences\": [";
  for (std::size_t i = 0; i < branch.silences.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"processor\": " +
           obs::json_string(arch.processor(branch.silences[i].processor).name) +
           ", \"from\": " + obs::json_number(branch.silences[i].from) +
           ", \"to\": " + obs::json_number(branch.silences[i].to) + "}";
  }
  out += "], \"outputs_lost\": ";
  out += branch.outputs_lost ? "true" : "false";
  out += ", \"response\": " + obs::json_number(branch.response_time);
  // Emitted only when non-empty: scalar certificates stay byte-identical.
  if (!branch.violated_constraints.empty()) {
    out += ", \"violated_constraints\": [";
    for (std::size_t i = 0; i < branch.violated_constraints.size(); ++i) {
      if (i > 0) out += ", ";
      out += obs::json_string(branch.violated_constraints[i]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace

std::string certify_branch_json(const CertifyBranch& branch,
                                const ArchitectureGraph& arch) {
  return branch_json(branch, arch);
}

std::string CertifyReport::to_text(const ArchitectureGraph& arch) const {
  std::string out;
  out += "certify:  K=" + std::to_string(max_failures) + " over " +
         std::to_string(arch.processor_count()) + " processors, " +
         std::to_string(subsets) + " dead-at-start subsets";
  if (max_link_failures > 0) {
    out += "; L=" + std::to_string(max_link_failures) + " over " +
           std::to_string(arch.link_count()) + " links, " +
           std::to_string(link_subsets) + " link subsets";
  }
  if (max_silences > 0) {
    out += "; S=" + std::to_string(max_silences) + " silent windows";
  }
  out += "\n";
  out += "branches: " + std::to_string(branches) + " certified branches, " +
         std::to_string(forks) + " forks, " +
         std::to_string(instants_kept) + " instants kept / " +
         std::to_string(instants_merged) + " merged as equivalent\n";
  out += "verdict:  ";
  out += certified
             ? "CERTIFIED — every branch served all outputs"
             : std::to_string(total_counterexamples) + " COUNTEREXAMPLES";
  out += "\n";
  out += "response: worst " + time_to_string(worst_response);
  if (!is_infinite(response_bound)) {
    out += " (bound " + time_to_string(response_bound) + ")";
  }
  out += "\n";
  for (std::size_t i = 0; i < latency_constraints.size(); ++i) {
    const LatencyConstraint& c = latency_constraints[i];
    out += "chain:    \"" + c.name + "\" (" + c.source_op + " -> " +
           c.sink_op + ") worst " +
           time_to_string(i < worst_chain_latency.size()
                              ? worst_chain_latency[i]
                              : 0) +
           " (bound " + time_to_string(c.bound) + ")\n";
  }
  char rate[64];
  std::snprintf(rate, sizeof rate, "%.0f branches/s on %u thread%s\n",
                branches_per_second(), threads_used,
                threads_used == 1 ? "" : "s");
  out += "rate:     ";
  out += rate;
  if (prune && threads_used == 1) {
    // Memo/cut telemetry is a publication race across workers, so it is
    // only printed where it is reproducible: the single-threaded path.
    out += "prune:    " + std::to_string(memo_hits) + "/" +
           std::to_string(memo_probes) + " memo hits, " +
           std::to_string(memo_branches_replayed) + " branches replayed, " +
           std::to_string(slack_cuts) + " slack cuts\n";
  }
  for (const CertifyBranch& cex : counterexamples) {
    out += "  counterexample: " + branch_text(cex, arch) + "\n";
  }
  return out;
}

std::string CertifyReport::to_json(const ArchitectureGraph& arch) const {
  // Deliberately excludes wall-clock and thread-count fields: the
  // certificate is a pure function of (schedule, spec) and diffable.
  std::string out = "{\n";
  out += "  \"certified\": ";
  out += certified ? "true" : "false";
  // A sweep whose resolved budgets allow no fault at all certifies only
  // the fault-free run; the marker keeps such a certificate from passing
  // as an exhaustive one downstream.
  out += ",\n  \"sweep\": ";
  out += (max_failures == 0 && max_link_failures == 0 && max_silences == 0)
             ? "\"empty\""
             : "\"exhaustive\"";
  out += ",\n  \"max_failures\": " +
         obs::json_number(static_cast<std::int64_t>(max_failures));
  out += ",\n  \"max_link_failures\": " +
         obs::json_number(static_cast<std::int64_t>(max_link_failures));
  out += ",\n  \"max_silences\": " +
         obs::json_number(static_cast<std::int64_t>(max_silences));
  out += ",\n  \"processors\": " + obs::json_number(static_cast<std::uint64_t>(
                                       arch.processor_count()));
  out += ",\n  \"links\": " +
         obs::json_number(static_cast<std::uint64_t>(arch.link_count()));
  out += ",\n  \"subsets\": " +
         obs::json_number(static_cast<std::uint64_t>(subsets));
  out += ",\n  \"link_subsets\": " +
         obs::json_number(static_cast<std::uint64_t>(link_subsets));
  out += ",\n  \"branches\": " +
         obs::json_number(static_cast<std::uint64_t>(branches));
  out += ",\n  \"forks\": " +
         obs::json_number(static_cast<std::uint64_t>(forks));
  out += ",\n  \"instants_kept\": " +
         obs::json_number(static_cast<std::uint64_t>(instants_kept));
  out += ",\n  \"instants_merged\": " +
         obs::json_number(static_cast<std::uint64_t>(instants_merged));
  out += ",\n  \"worst_response\": " + obs::json_number(worst_response);
  out += ",\n  \"response_bound\": " + obs::json_number(response_bound);
  // Scalar certificates must stay byte-identical, so the chain block only
  // exists when the spec carried constraints.
  if (!latency_constraints.empty()) {
    out += ",\n  \"latency_constraints\": [";
    for (std::size_t i = 0; i < latency_constraints.size(); ++i) {
      const LatencyConstraint& c = latency_constraints[i];
      out += i > 0 ? ",\n    " : "\n    ";
      out += "{\"name\": " + obs::json_string(c.name) +
             ", \"source\": " + obs::json_string(c.source_op) +
             ", \"sink\": " + obs::json_string(c.sink_op) +
             ", \"bound\": " + obs::json_number(c.bound) +
             ", \"worst\": " +
             obs::json_number(i < worst_chain_latency.size()
                                  ? worst_chain_latency[i]
                                  : 0) +
             "}";
    }
    out += "\n  ]";
  }
  out += ",\n  \"total_counterexamples\": " +
         obs::json_number(static_cast<std::uint64_t>(total_counterexamples));
  out += ",\n  \"counterexamples\": [";
  for (std::size_t i = 0; i < counterexamples.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    out += branch_json(counterexamples[i], arch);
  }
  out += counterexamples.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace ftsched::campaign
