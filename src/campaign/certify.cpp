#include "campaign/certify.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "arch/architecture_graph.hpp"
#include "campaign/work_pool.hpp"
#include "core/time.hpp"
#include "obs/json_util.hpp"
#include "obs/span.hpp"
#include "sched/timeouts.hpp"
#include "sim/simulator.hpp"
#include "tuning/transient_analysis.hpp"

namespace ftsched::campaign {

namespace {

/// One task's contribution, merged in task-index order (determinism).
struct Partial {
  std::size_t branches = 0;
  std::size_t forks = 0;
  std::size_t instants_kept = 0;
  std::size_t instants_merged = 0;
  std::size_t total_counterexamples = 0;
  Time worst_response = 0;
  std::vector<CertifyBranch> counterexamples;
  std::vector<CertifyBranch> collected;
};

/// Static watch-chain deadlines: instants a continuously shifting arrival
/// can cross, flipping a receiver's timeout decision. Only the
/// timeout-driven schedules have any.
std::vector<Time> static_deadlines(const Schedule& schedule) {
  if (schedule.kind() != HeuristicKind::kSolution1 &&
      schedule.kind() != HeuristicKind::kHybrid) {
    return {};
  }
  const RoutingTable routing(*schedule.problem().architecture);
  const TimeoutTable timeouts(schedule, routing);
  std::vector<Time> out;
  for (const TimeoutChain& chain : timeouts.chains()) {
    for (const TimeoutEntry& entry : chain.entries) {
      out.push_back(entry.deadline);
    }
  }
  return out;
}

/// Depth-first exploration of one task's subtree; every instant the parent
/// prefix is forked, never replayed.
class Explorer {
 public:
  Explorer(const Simulator& simulator, const CertifySpec& spec,
           const std::vector<Time>& deadlines, std::size_t procs,
           Partial& out)
      : sim_(simulator),
        spec_(spec),
        deadlines_(deadlines),
        procs_(procs),
        out_(out) {}

  /// Runs one task: the dead-at-start subset's own leaf when `first` is
  /// invalid, otherwise the subtree of crash sequences starting with
  /// `first`.
  void run(const std::vector<ProcessorId>& dead, ProcessorId first,
           int budget) {
    FTSCHED_SPAN("certify.task");
    dead_ = dead;
    crashes_.clear();
    FailureScenario scenario;
    scenario.failed_at_start = dead;
    Simulator::Branch root = sim_.begin(scenario);
    ++out_.forks;
    const IterationResult root_leaf = sim_.finish(root.fork());
    if (!first.valid()) {
      certify_leaf(root_leaf);
      return;
    }
    explore_children(root, root_leaf, budget, first);
  }

 private:
  [[nodiscard]] bool alive(ProcessorId p) const {
    if (std::find(dead_.begin(), dead_.end(), p) != dead_.end()) {
      return false;
    }
    return std::none_of(crashes_.begin(), crashes_.end(),
                        [&](const FailureEvent& crash) {
                          return crash.processor == p;
                        });
  }

  void certify_leaf(const IterationResult& leaf) {
    ++out_.branches;
    const bool lost = !leaf.all_outputs_produced;
    const bool late = !is_infinite(spec_.response_bound) && !lost &&
                      time_gt(leaf.response_time, spec_.response_bound);
    if (!lost) {
      out_.worst_response = std::max(out_.worst_response, leaf.response_time);
    }
    CertifyBranch branch;
    branch.dead_at_start = dead_;
    branch.crashes = crashes_;
    branch.outputs_lost = lost;
    branch.response_time = leaf.response_time;
    if (lost || late) {
      ++out_.total_counterexamples;
      if (out_.counterexamples.size() < spec_.max_counterexamples) {
        out_.counterexamples.push_back(branch);
      }
    }
    if (spec_.collect_branches) out_.collected.push_back(std::move(branch));
  }

  /// Candidate instants kept for `victim`, after the canonical-order
  /// filter and (when enabled) the exact-equivalence merge described in
  /// the header.
  [[nodiscard]] std::vector<Time> kept_for(const Trace& leaf,
                                           ProcessorId victim,
                                           const std::vector<Time>& candidates,
                                           Time t0) const {
    // The victim's externally visible action dates and the in-flight
    // windows of hops it feeds, from the leaf trace (the pre-crash prefix
    // of every branch in this subtree is exactly the leaf's own prefix).
    std::vector<Time> acts;
    std::vector<Interval> windows;
    std::vector<std::pair<LinkId, Time>> open;
    for (const TraceEvent& event : leaf.events()) {
      if (event.proc != victim) continue;
      switch (event.kind) {
        case TraceEvent::Kind::kOpEnd:
          acts.push_back(event.time);
          break;
        case TraceEvent::Kind::kTransferStart:
          acts.push_back(event.time);
          open.emplace_back(event.link, event.time);
          break;
        case TraceEvent::Kind::kTransferEnd: {
          acts.push_back(event.time);
          const auto it = std::find_if(
              open.rbegin(), open.rend(),
              [&](const auto& o) { return o.first == event.link; });
          if (it != open.rend()) {
            windows.push_back(Interval{it->second, event.time});
            open.erase(std::next(it).base());
          }
          break;
        }
        default:
          break;
      }
    }
    for (const auto& [link, start] : open) {
      windows.push_back(Interval{start, kInfinite});
    }
    std::sort(acts.begin(), acts.end());

    const ProcessorId last =
        crashes_.empty() ? ProcessorId{} : crashes_.back().processor;
    std::vector<Time> kept;
    for (const Time c : candidates) {
      // Canonical ordering: equal-instant crash pairs are explored once,
      // with ascending processor ids.
      if (last.valid() && time_eq(c, t0) && victim <= last) continue;
      if (!spec_.dedup || kept.empty()) {
        kept.push_back(c);
        continue;
      }
      const Time k0 = kept.back();
      const auto lo = std::upper_bound(acts.begin(), acts.end(),
                                       k0 + kTimeEpsilon);
      const bool acted =
          lo != acts.end() && time_le(*lo, c);
      const bool mid_transfer =
          !acted && std::any_of(windows.begin(), windows.end(),
                                [&](const Interval& w) {
                                  return time_lt(w.start, c) &&
                                         time_lt(c, w.end);
                                });
      if (acted || mid_transfer) {
        kept.push_back(c);
      } else {
        ++out_.instants_merged;
      }
    }
    out_.instants_kept += kept.size();
    return kept;
  }

  void explore_children(const Simulator::Branch& node,
                        const IterationResult& leaf, int budget,
                        ProcessorId only) {
    if (budget == 0) return;
    const Time t0 = crashes_.empty() ? 0 : crashes_.back().time;
    const std::vector<Time> candidates =
        representative_instants(leaf.trace, t0, deadlines_);

    std::vector<ProcessorId> victims;
    std::vector<std::vector<Time>> kept;
    for (std::size_t p = 0; p < procs_; ++p) {
      const ProcessorId victim{static_cast<ProcessorId::underlying_type>(p)};
      if (only.valid() && victim != only) continue;
      if (!alive(victim)) continue;
      std::vector<Time> instants =
          kept_for(leaf.trace, victim, candidates, t0);
      if (instants.empty()) continue;
      victims.push_back(victim);
      kept.push_back(std::move(instants));
    }
    if (victims.empty()) return;

    // One cursor per node: the shared prefix is executed once per instant,
    // each (victim, instant) branch forks it.
    Simulator::Branch cursor = node.fork();
    ++out_.forks;
    std::vector<std::size_t> next(victims.size(), 0);
    for (;;) {
      // Earliest un-dispatched instant across the victims.
      Time c = kInfinite;
      for (std::size_t v = 0; v < victims.size(); ++v) {
        if (next[v] < kept[v].size()) c = std::min(c, kept[v][next[v]]);
      }
      if (is_infinite(c)) break;
      sim_.advance_until(cursor, c);
      for (std::size_t v = 0; v < victims.size(); ++v) {
        if (next[v] >= kept[v].size() || kept[v][next[v]] != c) continue;
        ++next[v];
        Simulator::Branch child = cursor.fork();
        ++out_.forks;
        sim_.inject(child, FailureEvent{victims[v], c});
        crashes_.push_back(FailureEvent{victims[v], c});
        ++out_.forks;
        const IterationResult child_leaf = sim_.finish(child.fork());
        certify_leaf(child_leaf);
        explore_children(child, child_leaf, budget - 1, ProcessorId{});
        crashes_.pop_back();
      }
    }
  }

  const Simulator& sim_;
  const CertifySpec& spec_;
  const std::vector<Time>& deadlines_;
  const std::size_t procs_;
  Partial& out_;
  std::vector<ProcessorId> dead_;
  std::vector<FailureEvent> crashes_;
};

/// Dead-at-start subsets of {0..procs-1} with size 0..max, sizes
/// ascending, lexicographic within a size — the canonical task order.
std::vector<std::vector<ProcessorId>> dead_subsets(std::size_t procs,
                                                   int max) {
  std::vector<std::vector<ProcessorId>> out;
  for (int size = 0; size <= max; ++size) {
    std::vector<ProcessorId> combo;
    auto gen = [&](auto&& self, std::size_t from, int left) -> void {
      if (left == 0) {
        out.push_back(combo);
        return;
      }
      for (std::size_t p = from; p + static_cast<std::size_t>(left) <= procs;
           ++p) {
        combo.push_back(
            ProcessorId{static_cast<ProcessorId::underlying_type>(p)});
        self(self, p + 1, left - 1);
        combo.pop_back();
      }
    };
    gen(gen, 0, size);
  }
  return out;
}

}  // namespace

MissionPlan counterexample_plan(const CertifyBranch& branch) {
  MissionPlan plan;
  plan.iterations = 1;
  plan.dead_at_start = branch.dead_at_start;
  for (const FailureEvent& crash : branch.crashes) {
    plan.failures.push_back(MissionFailure{0, crash});
  }
  return plan;
}

CertifyReport certify(const Schedule& schedule, const CertifySpec& spec) {
  FTSCHED_SPAN("certify.run");
  const auto wall_start = std::chrono::steady_clock::now();

  const std::size_t procs =
      schedule.problem().architecture->processor_count();
  int max_failures = spec.max_failures < 0 ? schedule.failures_tolerated()
                                           : spec.max_failures;
  max_failures = std::clamp(max_failures, 0,
                            static_cast<int>(procs) - 1);

  const Simulator simulator(schedule);
  const std::vector<Time> deadlines = static_deadlines(schedule);
  const std::vector<std::vector<ProcessorId>> subsets =
      dead_subsets(procs, max_failures);

  // Tasks: each subset's own leaf, plus — when crash budget remains — one
  // subtree per first crash victim, splitting the dominant small-subset
  // subtrees across workers.
  struct Task {
    const std::vector<ProcessorId>* dead;
    ProcessorId first;  // invalid = leaf-only
    int budget;
  };
  std::vector<Task> tasks;
  for (const std::vector<ProcessorId>& dead : subsets) {
    const int budget = max_failures - static_cast<int>(dead.size());
    tasks.push_back(Task{&dead, ProcessorId{}, 0});
    if (budget == 0) continue;
    for (std::size_t p = 0; p < procs; ++p) {
      const ProcessorId victim{static_cast<ProcessorId::underlying_type>(p)};
      if (std::find(dead.begin(), dead.end(), victim) != dead.end()) {
        continue;
      }
      tasks.push_back(Task{&dead, victim, budget});
    }
  }

  std::vector<Partial> partials(tasks.size());
  const unsigned threads = resolve_threads(spec.threads);
  auto run_task = [&](std::size_t t) {
    Explorer explorer(simulator, spec, deadlines, procs, partials[t]);
    explorer.run(*tasks[t].dead, tasks[t].first, tasks[t].budget);
  };
  if (threads == 1 || tasks.size() <= 1) {
    for (std::size_t t = 0; t < tasks.size(); ++t) run_task(t);
  } else {
    WorkPool pool(threads);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      pool.submit([&, t] { run_task(t); });
    }
    pool.wait();
  }

  CertifyReport report;
  report.max_failures = max_failures;
  report.response_bound = spec.response_bound;
  report.subsets = subsets.size();
  report.threads_used = threads;
  for (Partial& partial : partials) {
    report.branches += partial.branches;
    report.forks += partial.forks;
    report.instants_kept += partial.instants_kept;
    report.instants_merged += partial.instants_merged;
    report.total_counterexamples += partial.total_counterexamples;
    report.worst_response =
        std::max(report.worst_response, partial.worst_response);
    for (CertifyBranch& cex : partial.counterexamples) {
      if (report.counterexamples.size() < spec.max_counterexamples) {
        report.counterexamples.push_back(std::move(cex));
      }
    }
    if (spec.collect_branches) {
      for (CertifyBranch& branch : partial.collected) {
        report.branches_list.push_back(std::move(branch));
      }
    }
  }
  report.certified = report.total_counterexamples == 0;
  report.metrics.add_counter("certify.subsets", report.subsets);
  report.metrics.add_counter("certify.branches", report.branches);
  report.metrics.add_counter("certify.forks", report.forks);
  report.metrics.add_counter("certify.instants_kept", report.instants_kept);
  report.metrics.add_counter("certify.instants_merged",
                             report.instants_merged);
  report.metrics.add_counter("certify.counterexamples",
                             report.total_counterexamples);
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

namespace {

std::string branch_text(const CertifyBranch& branch,
                        const ArchitectureGraph& arch) {
  std::string out;
  out += "dead at start: ";
  if (branch.dead_at_start.empty()) out += "-";
  for (std::size_t i = 0; i < branch.dead_at_start.size(); ++i) {
    if (i > 0) out += ",";
    out += arch.processor(branch.dead_at_start[i]).name;
  }
  out += "; crashes: ";
  if (branch.crashes.empty()) out += "-";
  for (std::size_t i = 0; i < branch.crashes.size(); ++i) {
    if (i > 0) out += ", ";
    out += arch.processor(branch.crashes[i].processor).name;
    out += "@";
    out += time_to_string(branch.crashes[i].time);
  }
  out += branch.outputs_lost
             ? "; OUTPUTS LOST"
             : "; response " + time_to_string(branch.response_time);
  return out;
}

std::string branch_json(const CertifyBranch& branch,
                        const ArchitectureGraph& arch) {
  std::string out = "{\"dead_at_start\": [";
  for (std::size_t i = 0; i < branch.dead_at_start.size(); ++i) {
    if (i > 0) out += ", ";
    out += obs::json_string(arch.processor(branch.dead_at_start[i]).name);
  }
  out += "], \"crashes\": [";
  for (std::size_t i = 0; i < branch.crashes.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"processor\": " +
           obs::json_string(arch.processor(branch.crashes[i].processor).name) +
           ", \"time\": " + obs::json_number(branch.crashes[i].time) + "}";
  }
  out += "], \"outputs_lost\": ";
  out += branch.outputs_lost ? "true" : "false";
  out += ", \"response\": " + obs::json_number(branch.response_time) + "}";
  return out;
}

}  // namespace

std::string CertifyReport::to_text(const ArchitectureGraph& arch) const {
  std::string out;
  out += "certify:  K=" + std::to_string(max_failures) + " over " +
         std::to_string(arch.processor_count()) + " processors, " +
         std::to_string(subsets) + " dead-at-start subsets\n";
  out += "branches: " + std::to_string(branches) + " certified branches, " +
         std::to_string(forks) + " forks, " +
         std::to_string(instants_kept) + " instants kept / " +
         std::to_string(instants_merged) + " merged as equivalent\n";
  out += "verdict:  ";
  out += certified
             ? "CERTIFIED — every branch served all outputs"
             : std::to_string(total_counterexamples) + " COUNTEREXAMPLES";
  out += "\n";
  out += "response: worst " + time_to_string(worst_response);
  if (!is_infinite(response_bound)) {
    out += " (bound " + time_to_string(response_bound) + ")";
  }
  out += "\n";
  char rate[64];
  std::snprintf(rate, sizeof rate, "%.0f branches/s on %u thread%s\n",
                branches_per_second(), threads_used,
                threads_used == 1 ? "" : "s");
  out += "rate:     ";
  out += rate;
  for (const CertifyBranch& cex : counterexamples) {
    out += "  counterexample: " + branch_text(cex, arch) + "\n";
  }
  return out;
}

std::string CertifyReport::to_json(const ArchitectureGraph& arch) const {
  // Deliberately excludes wall-clock and thread-count fields: the
  // certificate is a pure function of (schedule, spec) and diffable.
  std::string out = "{\n";
  out += "  \"certified\": ";
  out += certified ? "true" : "false";
  out += ",\n  \"max_failures\": " +
         obs::json_number(static_cast<std::int64_t>(max_failures));
  out += ",\n  \"processors\": " + obs::json_number(static_cast<std::uint64_t>(
                                       arch.processor_count()));
  out += ",\n  \"subsets\": " +
         obs::json_number(static_cast<std::uint64_t>(subsets));
  out += ",\n  \"branches\": " +
         obs::json_number(static_cast<std::uint64_t>(branches));
  out += ",\n  \"forks\": " +
         obs::json_number(static_cast<std::uint64_t>(forks));
  out += ",\n  \"instants_kept\": " +
         obs::json_number(static_cast<std::uint64_t>(instants_kept));
  out += ",\n  \"instants_merged\": " +
         obs::json_number(static_cast<std::uint64_t>(instants_merged));
  out += ",\n  \"worst_response\": " + obs::json_number(worst_response);
  out += ",\n  \"response_bound\": " + obs::json_number(response_bound);
  out += ",\n  \"total_counterexamples\": " +
         obs::json_number(static_cast<std::uint64_t>(total_counterexamples));
  out += ",\n  \"counterexamples\": [";
  for (std::size_t i = 0; i < counterexamples.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    out += branch_json(counterexamples[i], arch);
  }
  out += counterexamples.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace ftsched::campaign
