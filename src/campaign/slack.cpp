#include "campaign/slack.hpp"

#include <algorithm>
#include <map>

#include "arch/architecture_graph.hpp"
#include "arch/characteristics.hpp"
#include "graph/algorithm_graph.hpp"

namespace ftsched::campaign {

std::vector<std::vector<std::uint32_t>> automorphism_classes(
    const Schedule& schedule) {
  // Solution 1 / hybrid watchers and election-triggered dynamic sends
  // address processors by identity; no processor is a pure spectator.
  if (schedule.kind() == HeuristicKind::kSolution1 ||
      schedule.kind() == HeuristicKind::kHybrid) {
    return {};
  }
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  const std::size_t procs = arch.processor_count();

  std::vector<char> participant(procs, 0);
  for (const ScheduledOperation& op : schedule.operations()) {
    participant[op.processor.index()] = 1;
  }
  for (const ScheduledComm& comm : schedule.comms()) {
    if (comm.from.valid()) participant[comm.from.index()] = 1;
    if (comm.to.valid()) participant[comm.to.index()] = 1;
    if (comm.active && !comm.segments.empty()) {
      // Relay hops feed segments mid-route; a relay is no spectator.
      for (ProcessorId hop : schedule.comm_hops(comm)) {
        participant[hop.index()] = 1;
      }
    }
  }

  // Spectators with identical adjacent-link sets are interchangeable: a
  // swap fixes every link (each adjacent link touches both members), every
  // replica placement, and every transfer endpoint — the simulator's state
  // evolution is equivariant under it, which is exactly what the digest's
  // canonical relabeling needs.
  std::map<std::vector<std::int32_t>, std::vector<std::uint32_t>> groups;
  for (std::size_t p = 0; p < procs; ++p) {
    if (participant[p]) continue;
    std::vector<std::int32_t> key;
    for (LinkId link : arch.links_of(ProcessorId(
             static_cast<std::int32_t>(p)))) {
      key.push_back(link.value());
    }
    groups[std::move(key)].push_back(static_cast<std::uint32_t>(p));
  }

  std::vector<std::vector<std::uint32_t>> classes;
  for (auto& [key, members] : groups) {
    if (members.size() >= 2) classes.push_back(std::move(members));
  }
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<std::uint32_t>& a,
               const std::vector<std::uint32_t>& b) {
              return a.front() < b.front();
            });
  return classes;
}

SlackTable SlackTable::build(const Schedule& schedule) {
  SlackTable table;
  if (schedule.kind() == HeuristicKind::kSolution1 ||
      schedule.kind() == HeuristicKind::kHybrid) {
    return table;
  }
  const Problem& problem = schedule.problem();
  const AlgorithmGraph& algo = *problem.algorithm;

  for (const Dependency& dep : algo.dependencies()) {
    // Exactly one active transfer carries the value: a second sender could
    // deliver it around the deferred hop, voiding the bound.
    const std::vector<const ScheduledComm*> carriers =
        schedule.comms_of(dep.id);
    if (carriers.size() != 1) continue;
    const ScheduledComm& comm = *carriers.front();
    if (comm.liveness || comm.segments.empty()) continue;

    const ProcessorId dest = comm.to;
    if (!dest.valid()) continue;
    // A local replica of the producer makes the transfer redundant at the
    // destination.
    if (schedule.replica_on(dep.src, dest) != nullptr) continue;

    // The consumer must genuinely wait for the value: a memory op's input
    // arrives after its output (inter-iteration register), so deferring
    // the delivery delays nothing this iteration.
    const Operation& dst_op = algo.operation(dep.dst);
    if (dst_op.kind == OperationKind::kMem ||
        dst_op.kind == OperationKind::kExtioIn) {
      continue;
    }
    const ScheduledOperation* consumer = schedule.replica_on(dep.dst, dest);
    if (consumer == nullptr) continue;

    // Serial chain on the destination: replicas execute in scheduled order,
    // so the first external output AFTER the consumer (the consumer itself,
    // if it is one) cannot complete before the consumer's inputs arrive
    // plus every chain member's execution time. The output must be the
    // operation's ONLY replica, or another processor could produce it on
    // time.
    const std::vector<const ScheduledOperation*> chain =
        schedule.operations_on(dest);
    std::size_t at = chain.size();
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] == consumer) {
        at = i;
        break;
      }
    }
    if (at == chain.size()) continue;
    Time chain_time = 0;
    const ScheduledOperation* output = nullptr;
    for (std::size_t i = at; i < chain.size(); ++i) {
      const Time wcet = problem.exec->duration(chain[i]->op, dest);
      if (is_infinite(wcet)) {
        output = nullptr;
        break;
      }
      chain_time += wcet;
      if (algo.operation(chain[i]->op).kind == OperationKind::kExtioOut) {
        output = chain[i];
        break;
      }
    }
    if (output == nullptr) continue;
    if (schedule.replicas_view(output->op).size() != 1) continue;

    // One entry per hop: deferring hop i defers delivery by at least the
    // remaining hop durations.
    const std::vector<ProcessorId> hops = schedule.comm_hops(comm);
    bool durations_ok = true;
    std::vector<Time> hop_cost(comm.segments.size(), 0);
    for (std::size_t i = 0; i < comm.segments.size(); ++i) {
      hop_cost[i] = problem.comm->duration(dep.id, comm.segments[i].link);
      if (is_infinite(hop_cost[i])) durations_ok = false;
    }
    if (!durations_ok) continue;
    Time remaining = chain_time;
    for (std::size_t i = comm.segments.size(); i-- > 0;) {
      remaining += hop_cost[i];
      table.entries_.push_back(
          Entry{hops[i], dep.id, comm.segments[i].link, remaining});
    }
  }

  std::sort(table.entries_.begin(), table.entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.proc != b.proc) return a.proc < b.proc;
              if (a.dep != b.dep) return a.dep < b.dep;
              if (a.link != b.link) return a.link < b.link;
              return a.tail < b.tail;
            });
  // Duplicate (proc, dep, link) keys keep the smallest tail (weakest, thus
  // sound, bound); comms_of yields one comm per dep here, so duplicates
  // only arise from a route crossing the same (feeder, link) twice.
  table.entries_.erase(
      std::unique(table.entries_.begin(), table.entries_.end(),
                  [](const Entry& a, const Entry& b) {
                    return a.proc == b.proc && a.dep == b.dep &&
                           a.link == b.link;
                  }),
      table.entries_.end());
  return table;
}

Time SlackTable::critical_tail(ProcessorId proc, DependencyId dep,
                               LinkId link) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::tuple(proc, dep, link),
      [](const Entry& e, const std::tuple<ProcessorId, DependencyId, LinkId>&
                             key) {
        if (e.proc != std::get<0>(key)) return e.proc < std::get<0>(key);
        if (e.dep != std::get<1>(key)) return e.dep < std::get<1>(key);
        return e.link < std::get<2>(key);
      });
  if (it == entries_.end() || it->proc != proc || it->dep != dep ||
      it->link != link) {
    return kInfinite;
  }
  return it->tail;
}

}  // namespace ftsched::campaign
