#include "campaign/runner.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>
#include <utility>

#include "campaign/canonical.hpp"
#include "campaign/replay_cache.hpp"
#include "campaign/work_pool.hpp"
#include "core/text.hpp"
#include "obs/span.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"

namespace ftsched::campaign {

namespace {

/// Exact string set specialized for canonical fingerprints: keys live in an
/// append-only arena and the caller supplies the FNV-1a hash it already
/// computed for the replay cache, so an insert costs one open-addressing
/// probe plus an arena append — no per-key node allocation, no re-hash.
/// Equality still compares full key bytes, so the unique count is exact.
class FingerprintSet {
 public:
  /// True when `key` was new. `hash` must be fingerprint_hash(key).
  bool insert(std::uint64_t hash, std::string_view key) {
    if ((size() + 1) * 2 > index_.size()) grow();
    std::size_t probe = hash & mask_;
    while (true) {
      const std::uint32_t slot = index_[probe];
      if (slot == 0) {
        index_[probe] = static_cast<std::uint32_t>(size() + 1);
        hashes_.push_back(hash);
        arena_.append(key);
        ends_.push_back(static_cast<std::uint32_t>(arena_.size()));
        return true;
      }
      if (hashes_[slot - 1] == hash && key_at(slot - 1) == key) return false;
      probe = (probe + 1) & mask_;
    }
  }

  [[nodiscard]] std::size_t size() const { return hashes_.size(); }
  [[nodiscard]] std::uint64_t hash_at(std::size_t i) const {
    return hashes_[i];
  }
  [[nodiscard]] std::string_view key_at(std::size_t i) const {
    const std::uint32_t begin = i == 0 ? 0 : ends_[i - 1];
    return std::string_view(arena_).substr(begin, ends_[i] - begin);
  }

 private:
  void grow() {
    const std::size_t capacity = index_.empty() ? 128 : index_.size() * 2;
    index_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
      std::size_t probe = hashes_[i] & mask_;
      while (index_[probe] != 0) probe = (probe + 1) & mask_;
      index_[probe] = static_cast<std::uint32_t>(i + 1);
    }
  }

  std::string arena_;                  // concatenated keys
  std::vector<std::uint32_t> ends_;    // arena end offset of each key
  std::vector<std::uint64_t> hashes_;  // caller-supplied FNV-1a per key
  std::vector<std::uint32_t> index_;   // open addressing: entry index + 1
  std::size_t mask_ = 0;
};

/// Everything one chunk of scenario indices contributes; merged in index
/// order so the report is independent of which thread ran which chunk.
struct Partial {
  std::size_t within_contract = 0;
  std::size_t expected_losses = 0;
  std::size_t total_violations = 0;
  std::size_t cached_replays = 0;
  std::vector<CampaignViolation> violations;
  /// Canonical fingerprints of this chunk's scenarios; the global union
  /// gives the unique-coverage count, independent of chunk-to-thread
  /// assignment.
  FingerprintSet fingerprints;
  CampaignCoverage coverage;
  obs::MetricsSnapshot metrics;
};

/// Response times, relative to the oracle's static bound: everything at or
/// under 1 honours the envelope, the 2+ overflow bucket is pathological.
const std::vector<double>& response_ratio_bounds() {
  static const std::vector<double> bounds = {0.25, 0.5, 0.75, 1.0,
                                             1.25, 1.5,  2.0};
  return bounds;
}

/// Injected events per mission plan (the shrinker's search-space size).
const std::vector<double>& plan_event_bounds() {
  static const std::vector<double> bounds = {0, 1, 2, 4, 8, 16};
  return bounds;
}

/// Plain-integer per-chunk metric accumulator. The domain metrics used to
/// be counted straight into the partial's MetricsSnapshot — ~15 string-map
/// lookups per scenario, a sizeable slice of the per-scenario budget. The
/// tally keeps the hot loop lookup-free and is flushed into the snapshot
/// once per chunk; every chunk's histogram sums accumulate in the same
/// scenario order as before and chunks still merge in index order, so the
/// flushed snapshot is bit-identical to per-scenario counting (conditional
/// keys are only created when their tally is nonzero, matching the old
/// path's create-on-first-touch).
struct ChunkTally {
  std::uint64_t scenarios = 0;
  std::uint64_t within_contract = 0;
  std::uint64_t expected_losses = 0;
  std::uint64_t violations = 0;
  std::uint64_t cached_replays = 0;
  std::uint64_t faults_crashes = 0;
  std::uint64_t faults_dead_at_start = 0;
  std::uint64_t faults_links = 0;
  std::uint64_t faults_silences = 0;
  std::uint64_t faults_suspects = 0;
  std::uint64_t iterations = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t elections = 0;
  std::uint64_t transfers = 0;
  std::uint64_t iterations_outputs_lost = 0;
  /// response_ratio_bounds() buckets + overflow.
  std::array<std::uint64_t, 8> response_ratio{};
  std::uint64_t response_ratio_total = 0;
  double response_ratio_sum = 0;
  /// plan_event_bounds() buckets + overflow.
  std::array<std::uint64_t, 7> plan_events{};
  std::uint64_t plan_events_total = 0;
  double plan_events_sum = 0;
};

void count_metrics(const CampaignScenario& scenario,
                   const MissionResult& result, const Verdict& verdict,
                   Time response_bound, ChunkTally& tally) {
  const MissionPlan& plan = scenario.plan;
  tally.scenarios += 1;
  if (verdict.within_contract) tally.within_contract += 1;
  if (!verdict.within_contract && verdict.outputs_lost) {
    tally.expected_losses += 1;
  }
  if (!verdict.ok()) tally.violations += 1;
  tally.faults_crashes += plan.failures.size();
  tally.faults_dead_at_start += plan.dead_at_start.size();
  tally.faults_links +=
      plan.link_failures.size() + plan.dead_links_at_start.size();
  tally.faults_silences += plan.silences.size();
  tally.faults_suspects += plan.suspected_at_start.size();
  tally.iterations += result.iterations.size();
  for (const MissionIteration& iteration : result.iterations) {
    tally.timeouts += iteration.timeouts;
    tally.elections += iteration.elections;
    tally.transfers += iteration.transfers;
    if (is_infinite(iteration.response_time)) {
      tally.iterations_outputs_lost += 1;
    } else if (response_bound > 0) {
      const double ratio = iteration.response_time / response_bound;
      tally.response_ratio[obs::histogram_bucket(response_ratio_bounds(),
                                                 ratio)] += 1;
      tally.response_ratio_total += 1;
      tally.response_ratio_sum += ratio;
    }
  }
  const double events = static_cast<double>(plan.event_count());
  tally.plan_events[obs::histogram_bucket(plan_event_bounds(), events)] += 1;
  tally.plan_events_total += 1;
  tally.plan_events_sum += events;
}

void flush_histogram(obs::MetricsSnapshot& metrics, const std::string& name,
                     const std::vector<double>& bounds,
                     const std::uint64_t* counts, std::size_t n_counts,
                     std::uint64_t total, double sum) {
  obs::HistogramSnapshot histogram;
  histogram.bounds = bounds;
  histogram.counts.assign(counts, counts + n_counts);
  histogram.total = total;
  histogram.sum = sum;
  metrics.histograms.emplace(name, std::move(histogram));
}

void flush_tally(const ChunkTally& tally, obs::MetricsSnapshot& metrics) {
  metrics.add_counter("campaign.scenarios", tally.scenarios);
  if (tally.within_contract > 0) {
    metrics.add_counter("campaign.within_contract", tally.within_contract);
  }
  if (tally.expected_losses > 0) {
    metrics.add_counter("campaign.expected_losses", tally.expected_losses);
  }
  if (tally.violations > 0) {
    metrics.add_counter("campaign.violations", tally.violations);
  }
  if (tally.cached_replays > 0) {
    metrics.add_counter("campaign.cached_replays", tally.cached_replays);
  }
  metrics.add_counter("campaign.faults.crashes", tally.faults_crashes);
  metrics.add_counter("campaign.faults.dead_at_start",
                      tally.faults_dead_at_start);
  metrics.add_counter("campaign.faults.links", tally.faults_links);
  metrics.add_counter("campaign.faults.silences", tally.faults_silences);
  metrics.add_counter("campaign.faults.suspects", tally.faults_suspects);
  metrics.add_counter("campaign.iterations", tally.iterations);
  metrics.add_counter("campaign.timeouts", tally.timeouts);
  metrics.add_counter("campaign.elections", tally.elections);
  metrics.add_counter("campaign.transfers", tally.transfers);
  if (tally.iterations_outputs_lost > 0) {
    metrics.add_counter("campaign.iterations_outputs_lost",
                        tally.iterations_outputs_lost);
  }
  if (tally.response_ratio_total > 0) {
    flush_histogram(metrics, "campaign.response_ratio",
                    response_ratio_bounds(), tally.response_ratio.data(),
                    tally.response_ratio.size(), tally.response_ratio_total,
                    tally.response_ratio_sum);
  }
  flush_histogram(metrics, "campaign.plan_events", plan_event_bounds(),
                  tally.plan_events.data(), tally.plan_events.size(),
                  tally.plan_events_total, tally.plan_events_sum);
}

void count_coverage(const CampaignScenario& scenario, Time horizon,
                    CampaignCoverage& coverage) {
  const MissionPlan& plan = scenario.plan;
  for (const ProcessorId proc : plan.dead_at_start) {
    coverage.processor_faults[proc.index()] += 1;
    coverage.dead_at_start_events += 1;
  }
  for (const MissionFailure& failure : plan.failures) {
    coverage.processor_faults[failure.event.processor.index()] += 1;
    coverage.crash_events += 1;
    const double fraction =
        horizon > 0 ? failure.event.time / horizon : 0.0;
    std::size_t bucket = static_cast<std::size_t>(
        fraction * static_cast<double>(kCrashTimeBuckets));
    bucket = std::min(bucket, kCrashTimeBuckets - 1);
    coverage.crash_time_buckets[bucket] += 1;
  }
  for (const LinkId link : plan.dead_links_at_start) {
    coverage.link_faults[link.index()] += 1;
  }
  for (const MissionLinkFailure& failure : plan.link_failures) {
    coverage.link_faults[failure.event.link.index()] += 1;
  }
  coverage.silence_events += plan.silences.size();
  coverage.suspect_events += plan.suspected_at_start.size();
  if (plan.iterations > 1) coverage.multi_iteration_missions += 1;
}

/// One chunk's working set: sampler/fingerprint/mission buffers that every
/// scenario of a chunk reuses (the amortization that took the per-scenario
/// cost from malloc-bound to simulation-bound).
struct ChunkScratch {
  CampaignScenario scenario;
  ScenarioScratch gen;
  CanonicalScratch canon;
  MissionScratch mission;
  std::string key;
};

/// Hands chunk tasks a recycled ChunkScratch instead of a fresh one, so the
/// buffers — and, more importantly, the mission scratch's settled-iteration
/// memo — survive from chunk to chunk. The memo is a pure-function cache
/// (scenario -> IterationSummary), so which scratch a chunk happens to draw
/// cannot change any result; it only changes how many simulations are
/// skipped. At 1 thread the single recycled scratch makes the memo
/// campaign-global.
class ScratchPool {
 public:
  [[nodiscard]] std::unique_ptr<ChunkScratch> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<ChunkScratch> scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<ChunkScratch>();
  }

  void release(std::unique_ptr<ChunkScratch> scratch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(scratch));
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<ChunkScratch>> free_;
};

}  // namespace

void CampaignCoverage::merge(const CampaignCoverage& other) {
  auto add = [](std::vector<std::size_t>& into,
                const std::vector<std::size_t>& from) {
    into.resize(std::max(into.size(), from.size()), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
  };
  add(processor_faults, other.processor_faults);
  add(link_faults, other.link_faults);
  add(crash_time_buckets, other.crash_time_buckets);
  dead_at_start_events += other.dead_at_start_events;
  crash_events += other.crash_events;
  silence_events += other.silence_events;
  suspect_events += other.suspect_events;
  multi_iteration_missions += other.multi_iteration_missions;
}

CampaignReport run_campaign(const Schedule& schedule,
                            const CampaignOptions& options) {
  FTSCHED_SPAN("campaign.run");
  const auto wall_start = std::chrono::steady_clock::now();

  const ScenarioGenerator generator(schedule, options.spec, options.seed);
  const Oracle oracle(schedule, options.oracle);
  const Simulator simulator(schedule);
  const ArchitectureGraph& arch = *schedule.problem().architecture;

  CampaignReport report;
  report.claimed_tolerance = oracle.claimed_tolerance();
  report.response_bound = oracle.response_bound();
  report.horizon = generator.horizon();
  report.scenarios_run = options.scenarios;

  auto blank_coverage = [&] {
    CampaignCoverage coverage;
    coverage.processor_faults.assign(arch.processor_count(), 0);
    coverage.link_faults.assign(arch.link_count(), 0);
    coverage.crash_time_buckets.assign(kCrashTimeBuckets, 0);
    return coverage;
  };
  report.coverage = blank_coverage();

  // A structurally invalid schedule poisons every scenario; surface the
  // validator findings once, as a violation at the front of the list.
  if (!oracle.static_violations().empty()) {
    CampaignViolation violation;
    violation.index = 0;
    violation.seed = options.seed;
    violation.details = oracle.static_violations();
    report.violations.push_back(std::move(violation));
    report.total_violations += 1;
  }

  const unsigned threads = resolve_threads(options.threads);
  report.threads_used = threads;
  if (options.scenarios == 0) {
    report.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return report;
  }

  // Chunky tasks amortize pool overhead; several chunks per worker give
  // the stealing something to balance. The partition is deliberately
  // independent of the thread count: per-chunk metrics carry floating-point
  // histogram sums, and addition order — fixed by (partition, index-order
  // merge), not by which thread ran what — must not change with --threads
  // for the merged snapshot to stay bit-identical.
  const std::size_t chunk = std::max<std::size_t>(1, options.scenarios / 64);
  const std::size_t chunks = (options.scenarios + chunk - 1) / chunk;
  std::vector<Partial> partials(chunks);

  // Cross-chunk replay cache: a MissionResult is a pure function of the
  // plan's canonical fault pattern, so any chunk (any thread) can reuse a
  // pattern another chunk already simulated — a hit produces the exact
  // result a fresh simulation would, leaving every reported field
  // untouched. Best-effort by design (replay_cache.hpp).
  ReplayCache cache(options.scenarios);
  ScratchPool scratch_pool;

  auto evaluate = [&](std::size_t begin, std::size_t end, Partial& into) {
    FTSCHED_SPAN("campaign.chunk");
    // Accumulate locally and move into the preassigned slot at the end:
    // neighbouring chunks' partials can share a cache line, and writing
    // them per scenario from different workers would false-share it.
    Partial partial;
    partial.coverage = blank_coverage();
    ChunkTally tally;
    std::unique_ptr<ChunkScratch> chunk_scratch = scratch_pool.acquire();
    CampaignScenario& scenario = chunk_scratch->scenario;
    ScenarioScratch& gen_scratch = chunk_scratch->gen;
    CanonicalScratch& canon_scratch = chunk_scratch->canon;
    MissionScratch& mission_scratch = chunk_scratch->mission;
    std::string& key = chunk_scratch->key;
    for (std::size_t i = begin; i < end; ++i) {
      generator.scenario_into(i, scenario, gen_scratch);
      count_coverage(scenario, generator.horizon(), partial.coverage);
      canonical_fingerprint_into(scenario.plan, canon_scratch, key);
      const std::uint64_t hash = fingerprint_hash(key);
      // cached_replays counts within-chunk duplicate draws — the fixed
      // partition makes the count thread-count independent, unlike the
      // shared cache's hit count (which depends on cross-chunk timing and
      // is therefore deliberately not a report field).
      if (!partial.fingerprints.insert(hash, key)) {
        partial.cached_replays += 1;
        tally.cached_replays += 1;
      }
      const MissionResult* shared = cache.find(hash, key);
      std::shared_ptr<const MissionResult> fresh;
      if (shared == nullptr) {
        fresh = std::make_shared<MissionResult>(
            run_mission(simulator, scenario.plan, mission_scratch));
        cache.insert(hash, key, fresh);
      }
      const MissionResult& result = shared != nullptr ? *shared : *fresh;
      const Verdict verdict = oracle.judge(scenario.plan, result);
      count_metrics(scenario, result, verdict, oracle.response_bound(),
                    tally);
      if (verdict.within_contract) partial.within_contract += 1;
      if (!verdict.within_contract && verdict.outputs_lost) {
        partial.expected_losses += 1;
      }
      if (!verdict.ok()) {
        partial.total_violations += 1;
        CampaignViolation violation;
        violation.index = scenario.index;
        violation.seed = scenario.seed;
        violation.plan = scenario.plan;
        violation.details = verdict.violations;
        partial.violations.push_back(std::move(violation));
      }
    }
    flush_tally(tally, partial.metrics);
    scratch_pool.release(std::move(chunk_scratch));
    into = std::move(partial);
  };

  if (threads == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      evaluate(c * chunk, std::min(options.scenarios, (c + 1) * chunk),
               partials[c]);
    }
  } else {
    WorkPool pool(threads);
    for (std::size_t c = 0; c < chunks; ++c) {
      pool.submit([&, c] {
        evaluate(c * chunk, std::min(options.scenarios, (c + 1) * chunk),
                 partials[c]);
      });
    }
    pool.wait();
  }

  // Merge in index order: identical report for any thread count.
  FTSCHED_SPAN("campaign.merge");
  FingerprintSet fingerprints;
  for (Partial& partial : partials) {
    report.within_contract += partial.within_contract;
    report.expected_losses += partial.expected_losses;
    report.total_violations += partial.total_violations;
    report.cached_replays += partial.cached_replays;
    for (std::size_t i = 0; i < partial.fingerprints.size(); ++i) {
      fingerprints.insert(partial.fingerprints.hash_at(i),
                          partial.fingerprints.key_at(i));
    }
    report.coverage.merge(partial.coverage);
    report.metrics.merge(partial.metrics);
    for (CampaignViolation& violation : partial.violations) {
      if (report.violations.size() < options.max_recorded_violations) {
        report.violations.push_back(std::move(violation));
      } else {
        CampaignViolation stub;
        stub.index = violation.index;
        stub.seed = violation.seed;
        stub.details = std::move(violation.details);
        report.violations.push_back(std::move(stub));
      }
    }
  }

  report.unique_scenarios = fingerprints.size();
  report.duplicate_scenarios = report.scenarios_run - report.unique_scenarios;
  report.metrics.add_counter("campaign.unique_scenarios",
                             report.unique_scenarios);

  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

std::string CampaignReport::to_text(const ArchitectureGraph& arch) const {
  std::string out;
  out += "campaign: ";
  out += std::to_string(scenarios_run);
  out += " scenarios, ";
  out += std::to_string(within_contract);
  out += " within claimed K=";
  out += std::to_string(claimed_tolerance);
  out += ", ";
  out += std::to_string(expected_losses);
  out += " expected over-budget losses\n";
  out += "verdict:  " +
         (total_violations == 0
              ? std::string("no oracle violations")
              : std::to_string(total_violations) + " VIOLATIONS") +
         "\n";
  out += "bound:    response <= " + time_to_string(response_bound) +
         ", crash horizon " + time_to_string(horizon) + "\n";
  out += "coverage: " + std::to_string(unique_scenarios) +
         " unique fault patterns (" + std::to_string(duplicate_scenarios) +
         " duplicate draws, " + std::to_string(cached_replays) +
         " cached replays)\n";
  char rate[64];
  std::snprintf(rate, sizeof rate, "%.0f scenarios/s on %u thread%s\n",
                scenarios_per_second(), threads_used,
                threads_used == 1 ? "" : "s");
  out += "rate:     ";
  out += rate;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"processor", "faulted"});
  for (const Processor& proc : arch.processors()) {
    rows.push_back({proc.name,
                    std::to_string(coverage.processor_faults[proc.id.index()])});
  }
  out += render_table(rows);

  if (arch.link_count() > 0) {
    rows.clear();
    rows.push_back({"link", "killed"});
    for (const Link& link : arch.links()) {
      rows.push_back(
          {link.name, std::to_string(coverage.link_faults[link.id.index()])});
    }
    out += render_table(rows);
  }

  rows.clear();
  rows.push_back({"crash bucket", "hits"});
  for (std::size_t b = 0; b < coverage.crash_time_buckets.size(); ++b) {
    const double lo = static_cast<double>(b) /
                      static_cast<double>(kCrashTimeBuckets) * horizon;
    const double hi = static_cast<double>(b + 1) /
                      static_cast<double>(kCrashTimeBuckets) * horizon;
    std::string bucket = "[";
    bucket += time_to_string(lo);
    bucket += ", ";
    bucket += time_to_string(hi);
    bucket += ")";
    rows.push_back({std::move(bucket),
                    std::to_string(coverage.crash_time_buckets[b])});
  }
  out += render_table(rows);

  rows.clear();
  rows.push_back({"event class", "count"});
  rows.push_back({"dead at start", std::to_string(coverage.dead_at_start_events)});
  rows.push_back({"mid-run crashes", std::to_string(coverage.crash_events)});
  rows.push_back({"silent windows", std::to_string(coverage.silence_events)});
  rows.push_back({"wrong suspicions", std::to_string(coverage.suspect_events)});
  rows.push_back({"multi-iteration missions",
                  std::to_string(coverage.multi_iteration_missions)});
  out += render_table(rows);
  return out;
}

}  // namespace ftsched::campaign
