#include "campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "campaign/canonical.hpp"
#include "campaign/work_pool.hpp"
#include "core/text.hpp"
#include "obs/span.hpp"
#include "sim/mission.hpp"
#include "sim/simulator.hpp"

namespace ftsched::campaign {

namespace {

/// Everything one chunk of scenario indices contributes; merged in index
/// order so the report is independent of which thread ran which chunk.
struct Partial {
  std::size_t within_contract = 0;
  std::size_t expected_losses = 0;
  std::size_t total_violations = 0;
  std::size_t cached_replays = 0;
  std::vector<CampaignViolation> violations;
  /// Canonical fingerprints of this chunk's scenarios; the global union
  /// gives the unique-coverage count, independent of chunk-to-thread
  /// assignment.
  std::set<std::string> fingerprints;
  CampaignCoverage coverage;
  obs::MetricsSnapshot metrics;
};

/// Response times, relative to the oracle's static bound: everything at or
/// under 1 honours the envelope, the 2+ overflow bucket is pathological.
const std::vector<double>& response_ratio_bounds() {
  static const std::vector<double> bounds = {0.25, 0.5, 0.75, 1.0,
                                             1.25, 1.5,  2.0};
  return bounds;
}

/// Injected events per mission plan (the shrinker's search-space size).
const std::vector<double>& plan_event_bounds() {
  static const std::vector<double> bounds = {0, 1, 2, 4, 8, 16};
  return bounds;
}

void count_metrics(const CampaignScenario& scenario,
                   const MissionResult& result, const Verdict& verdict,
                   Time response_bound, obs::MetricsSnapshot& metrics) {
  const MissionPlan& plan = scenario.plan;
  metrics.add_counter("campaign.scenarios");
  if (verdict.within_contract) metrics.add_counter("campaign.within_contract");
  if (!verdict.within_contract && verdict.outputs_lost) {
    metrics.add_counter("campaign.expected_losses");
  }
  if (!verdict.ok()) metrics.add_counter("campaign.violations");
  metrics.add_counter("campaign.faults.crashes", plan.failures.size());
  metrics.add_counter("campaign.faults.dead_at_start",
                      plan.dead_at_start.size());
  metrics.add_counter("campaign.faults.links",
                      plan.link_failures.size() +
                          plan.dead_links_at_start.size());
  metrics.add_counter("campaign.faults.silences", plan.silences.size());
  metrics.add_counter("campaign.faults.suspects",
                      plan.suspected_at_start.size());
  metrics.add_counter("campaign.iterations", result.iterations.size());
  for (const MissionIteration& iteration : result.iterations) {
    metrics.add_counter("campaign.timeouts", iteration.timeouts);
    metrics.add_counter("campaign.elections", iteration.elections);
    metrics.add_counter("campaign.transfers", iteration.transfers);
    if (is_infinite(iteration.response_time)) {
      metrics.add_counter("campaign.iterations_outputs_lost");
    } else if (response_bound > 0) {
      metrics.observe("campaign.response_ratio", response_ratio_bounds(),
                      iteration.response_time / response_bound);
    }
  }
  metrics.observe("campaign.plan_events", plan_event_bounds(),
                  static_cast<double>(plan.event_count()));
}

void count_coverage(const CampaignScenario& scenario, Time horizon,
                    CampaignCoverage& coverage) {
  const MissionPlan& plan = scenario.plan;
  for (const ProcessorId proc : plan.dead_at_start) {
    coverage.processor_faults[proc.index()] += 1;
    coverage.dead_at_start_events += 1;
  }
  for (const MissionFailure& failure : plan.failures) {
    coverage.processor_faults[failure.event.processor.index()] += 1;
    coverage.crash_events += 1;
    const double fraction =
        horizon > 0 ? failure.event.time / horizon : 0.0;
    std::size_t bucket = static_cast<std::size_t>(
        fraction * static_cast<double>(kCrashTimeBuckets));
    bucket = std::min(bucket, kCrashTimeBuckets - 1);
    coverage.crash_time_buckets[bucket] += 1;
  }
  for (const LinkId link : plan.dead_links_at_start) {
    coverage.link_faults[link.index()] += 1;
  }
  for (const MissionLinkFailure& failure : plan.link_failures) {
    coverage.link_faults[failure.event.link.index()] += 1;
  }
  coverage.silence_events += plan.silences.size();
  coverage.suspect_events += plan.suspected_at_start.size();
  if (plan.iterations > 1) coverage.multi_iteration_missions += 1;
}

}  // namespace

void CampaignCoverage::merge(const CampaignCoverage& other) {
  auto add = [](std::vector<std::size_t>& into,
                const std::vector<std::size_t>& from) {
    into.resize(std::max(into.size(), from.size()), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
  };
  add(processor_faults, other.processor_faults);
  add(link_faults, other.link_faults);
  add(crash_time_buckets, other.crash_time_buckets);
  dead_at_start_events += other.dead_at_start_events;
  crash_events += other.crash_events;
  silence_events += other.silence_events;
  suspect_events += other.suspect_events;
  multi_iteration_missions += other.multi_iteration_missions;
}

CampaignReport run_campaign(const Schedule& schedule,
                            const CampaignOptions& options) {
  FTSCHED_SPAN("campaign.run");
  const auto wall_start = std::chrono::steady_clock::now();

  const ScenarioGenerator generator(schedule, options.spec, options.seed);
  const Oracle oracle(schedule, options.oracle);
  const Simulator simulator(schedule);
  const ArchitectureGraph& arch = *schedule.problem().architecture;

  CampaignReport report;
  report.claimed_tolerance = oracle.claimed_tolerance();
  report.response_bound = oracle.response_bound();
  report.horizon = generator.horizon();
  report.scenarios_run = options.scenarios;

  auto blank_coverage = [&] {
    CampaignCoverage coverage;
    coverage.processor_faults.assign(arch.processor_count(), 0);
    coverage.link_faults.assign(arch.link_count(), 0);
    coverage.crash_time_buckets.assign(kCrashTimeBuckets, 0);
    return coverage;
  };
  report.coverage = blank_coverage();

  // A structurally invalid schedule poisons every scenario; surface the
  // validator findings once, as a violation at the front of the list.
  if (!oracle.static_violations().empty()) {
    CampaignViolation violation;
    violation.index = 0;
    violation.seed = options.seed;
    violation.details = oracle.static_violations();
    report.violations.push_back(std::move(violation));
    report.total_violations += 1;
  }

  const unsigned threads = resolve_threads(options.threads);
  report.threads_used = threads;
  if (options.scenarios == 0) {
    report.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return report;
  }

  // Chunky tasks amortize pool overhead; several chunks per worker give
  // the stealing something to balance. The partition is deliberately
  // independent of the thread count: per-chunk metrics carry floating-point
  // histogram sums, and addition order — fixed by (partition, index-order
  // merge), not by which thread ran what — must not change with --threads
  // for the merged snapshot to stay bit-identical.
  const std::size_t chunk = std::max<std::size_t>(1, options.scenarios / 64);
  const std::size_t chunks = (options.scenarios + chunk - 1) / chunk;
  std::vector<Partial> partials(chunks);

  auto evaluate = [&](std::size_t begin, std::size_t end, Partial& partial) {
    FTSCHED_SPAN("campaign.chunk");
    partial.coverage = blank_coverage();
    // Replay cache: a scenario whose canonical fault pattern already ran
    // in this chunk reuses that MissionResult (the summaries are a
    // function of the canonical pattern — see canonical.hpp) and is only
    // re-judged against its own plan. Keys are exact fingerprints, so a
    // hit can never alias a different scenario.
    std::map<std::string, MissionResult> cache;
    for (std::size_t i = begin; i < end; ++i) {
      const CampaignScenario scenario = generator.scenario(i);
      count_coverage(scenario, generator.horizon(), partial.coverage);
      std::string key = canonical_fingerprint(scenario.plan);
      const auto hit = cache.find(key);
      MissionResult result;
      if (hit != cache.end()) {
        partial.cached_replays += 1;
        partial.metrics.add_counter("campaign.cached_replays");
        result = hit->second;
      } else {
        result = run_mission(simulator, scenario.plan);
        cache.emplace(key, result);
      }
      partial.fingerprints.insert(std::move(key));
      const Verdict verdict = oracle.judge(scenario.plan, result);
      count_metrics(scenario, result, verdict, oracle.response_bound(),
                    partial.metrics);
      if (verdict.within_contract) partial.within_contract += 1;
      if (!verdict.within_contract && verdict.outputs_lost) {
        partial.expected_losses += 1;
      }
      if (!verdict.ok()) {
        partial.total_violations += 1;
        CampaignViolation violation;
        violation.index = scenario.index;
        violation.seed = scenario.seed;
        violation.plan = scenario.plan;
        violation.details = verdict.violations;
        partial.violations.push_back(std::move(violation));
      }
    }
  };

  if (threads == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      evaluate(c * chunk, std::min(options.scenarios, (c + 1) * chunk),
               partials[c]);
    }
  } else {
    WorkPool pool(threads);
    for (std::size_t c = 0; c < chunks; ++c) {
      pool.submit([&, c] {
        evaluate(c * chunk, std::min(options.scenarios, (c + 1) * chunk),
                 partials[c]);
      });
    }
    pool.wait();
  }

  // Merge in index order: identical report for any thread count.
  FTSCHED_SPAN("campaign.merge");
  std::set<std::string> fingerprints;
  for (Partial& partial : partials) {
    report.within_contract += partial.within_contract;
    report.expected_losses += partial.expected_losses;
    report.total_violations += partial.total_violations;
    report.cached_replays += partial.cached_replays;
    fingerprints.merge(partial.fingerprints);
    report.coverage.merge(partial.coverage);
    report.metrics.merge(partial.metrics);
    for (CampaignViolation& violation : partial.violations) {
      if (report.violations.size() < options.max_recorded_violations) {
        report.violations.push_back(std::move(violation));
      } else {
        CampaignViolation stub;
        stub.index = violation.index;
        stub.seed = violation.seed;
        stub.details = std::move(violation.details);
        report.violations.push_back(std::move(stub));
      }
    }
  }

  report.unique_scenarios = fingerprints.size();
  report.duplicate_scenarios = report.scenarios_run - report.unique_scenarios;
  report.metrics.add_counter("campaign.unique_scenarios",
                             report.unique_scenarios);

  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return report;
}

std::string CampaignReport::to_text(const ArchitectureGraph& arch) const {
  std::string out;
  out += "campaign: ";
  out += std::to_string(scenarios_run);
  out += " scenarios, ";
  out += std::to_string(within_contract);
  out += " within claimed K=";
  out += std::to_string(claimed_tolerance);
  out += ", ";
  out += std::to_string(expected_losses);
  out += " expected over-budget losses\n";
  out += "verdict:  " +
         (total_violations == 0
              ? std::string("no oracle violations")
              : std::to_string(total_violations) + " VIOLATIONS") +
         "\n";
  out += "bound:    response <= " + time_to_string(response_bound) +
         ", crash horizon " + time_to_string(horizon) + "\n";
  out += "coverage: " + std::to_string(unique_scenarios) +
         " unique fault patterns (" + std::to_string(duplicate_scenarios) +
         " duplicate draws, " + std::to_string(cached_replays) +
         " cached replays)\n";
  char rate[64];
  std::snprintf(rate, sizeof rate, "%.0f scenarios/s on %u thread%s\n",
                scenarios_per_second(), threads_used,
                threads_used == 1 ? "" : "s");
  out += "rate:     ";
  out += rate;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"processor", "faulted"});
  for (const Processor& proc : arch.processors()) {
    rows.push_back({proc.name,
                    std::to_string(coverage.processor_faults[proc.id.index()])});
  }
  out += render_table(rows);

  if (arch.link_count() > 0) {
    rows.clear();
    rows.push_back({"link", "killed"});
    for (const Link& link : arch.links()) {
      rows.push_back(
          {link.name, std::to_string(coverage.link_faults[link.id.index()])});
    }
    out += render_table(rows);
  }

  rows.clear();
  rows.push_back({"crash bucket", "hits"});
  for (std::size_t b = 0; b < coverage.crash_time_buckets.size(); ++b) {
    const double lo = static_cast<double>(b) /
                      static_cast<double>(kCrashTimeBuckets) * horizon;
    const double hi = static_cast<double>(b + 1) /
                      static_cast<double>(kCrashTimeBuckets) * horizon;
    std::string bucket = "[";
    bucket += time_to_string(lo);
    bucket += ", ";
    bucket += time_to_string(hi);
    bucket += ")";
    rows.push_back({std::move(bucket),
                    std::to_string(coverage.crash_time_buckets[b])});
  }
  out += render_table(rows);

  rows.clear();
  rows.push_back({"event class", "count"});
  rows.push_back({"dead at start", std::to_string(coverage.dead_at_start_events)});
  rows.push_back({"mid-run crashes", std::to_string(coverage.crash_events)});
  rows.push_back({"silent windows", std::to_string(coverage.silence_events)});
  rows.push_back({"wrong suspicions", std::to_string(coverage.suspect_events)});
  rows.push_back({"multi-iteration missions",
                  std::to_string(coverage.multi_iteration_missions)});
  out += render_table(rows);
  return out;
}

}  // namespace ftsched::campaign
