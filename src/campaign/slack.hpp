// Static pre-analysis feeding the certifier's pruning (certify.hpp):
//
//  * automorphism_classes — interchangeable-processor classes of the
//    architecture RELATIVE to a schedule: processors that host no replica
//    and feed no transfer, grouped by identical adjacent-link sets. Two
//    members of a class are perfect spectators the simulator treats
//    symmetrically, so Simulator::branch_digest canonicalizes victim
//    identity within each class and isomorphic fault branches (crash
//    spectator A vs. crash spectator B) digest equal.
//
//  * SlackTable — per-send deferral tolerance: for a transfer hop fed by
//    processor `proc` carrying dependency `dep` over `link`, the critical
//    tail is a static lower bound on how much response time MUST still
//    elapse after the hop starts (remaining hop durations, then the
//    destination's serial operation chain from the value's consumer to its
//    first single-replica external output). A silence window that defers
//    such a send to a closing edge `to` forces response >= to + tail; when
//    that provably overshoots the bound plus any earnable allowance, the
//    certifier counts the branch late without simulating it (the slack
//    cut). Entries exist only where the bound is airtight: the dependency
//    travels by exactly one active transfer, the destination holds no
//    local replica of the producer, the consumer actually waits for the
//    value (not a memory op), and the output has a single replica
//    schedule-wide.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "sched/schedule.hpp"

namespace ftsched::campaign {

/// Interchangeable-processor classes for `schedule` (see header comment):
/// each inner vector lists the processor indices of one class, ascending,
/// classes ordered by first member; only classes with >= 2 members are
/// returned. Empty under solution 1 / hybrid — their watcher chains and
/// election-triggered sends address processors by identity, so no
/// processor is a true spectator.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> automorphism_classes(
    const Schedule& schedule);

/// Static critical-tail table for the slack cut (see header comment).
class SlackTable {
 public:
  /// Builds the table for `schedule`. Solution 1 / hybrid schedules get an
  /// empty table (their election machinery can re-route a value around a
  /// deferred send, so no static tail is a sound lower bound).
  [[nodiscard]] static SlackTable build(const Schedule& schedule);

  /// Lower bound on the response time still to elapse once `proc` starts
  /// sending `dep` over `link`; kInfinite when the table holds no airtight
  /// bound for that hop.
  [[nodiscard]] Time critical_tail(ProcessorId proc, DependencyId dep,
                                   LinkId link) const;

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  struct Entry {
    ProcessorId proc;
    DependencyId dep;
    LinkId link;
    Time tail = 0;
  };
  std::vector<Entry> entries_;  // sorted by (proc, dep, link)
};

}  // namespace ftsched::campaign
