#include "workload/random_dag.hpp"

#include <random>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace ftsched::workload {

std::unique_ptr<AlgorithmGraph> random_dag(const RandomDagParams& params) {
  FTSCHED_REQUIRE(params.operations >= 1, "random_dag needs >= 1 operation");
  FTSCHED_REQUIRE(params.width >= 1, "random_dag needs width >= 1");
  FTSCHED_REQUIRE(params.density >= 0 && params.density <= 1,
                  "density must be within [0, 1]");

  std::mt19937_64 rng(params.seed);
  auto graph = std::make_unique<AlgorithmGraph>();
  const OperationId in = graph->add_operation("in", OperationKind::kExtioIn);

  // Partition `operations` comps into layers of random width.
  std::vector<std::vector<OperationId>> layers;
  std::size_t created = 0;
  std::uniform_int_distribution<std::size_t> width_dist(1, params.width);
  while (created < params.operations) {
    const std::size_t take =
        std::min(width_dist(rng), params.operations - created);
    std::vector<OperationId> layer;
    for (std::size_t i = 0; i < take; ++i) {
      std::string name = "n";
      name += std::to_string(created++);
      layer.push_back(graph->add_operation(name));
    }
    layers.push_back(std::move(layer));
  }

  std::bernoulli_distribution edge(params.density);
  std::bernoulli_distribution skip(params.skip_density);
  // Forward edges between consecutive layers, with guarantees that keep the
  // graph connected end to end.
  for (std::size_t l = 0; l < layers.size(); ++l) {
    for (std::size_t i = 0; i < layers[l].size(); ++i) {
      const OperationId op = layers[l][i];
      bool has_pred = false;
      if (l == 0) {
        graph->add_dependency(in, op);
        has_pred = true;
      } else {
        for (OperationId prev : layers[l - 1]) {
          if (edge(rng)) {
            graph->add_dependency(prev, op);
            has_pred = true;
          }
        }
        // Skip edges from any strictly earlier layer.
        if (l >= 2) {
          std::uniform_int_distribution<std::size_t> layer_dist(0, l - 2);
          if (skip(rng)) {
            const auto& source_layer = layers[layer_dist(rng)];
            std::uniform_int_distribution<std::size_t> pick(
                0, source_layer.size() - 1);
            graph->add_dependency(source_layer[pick(rng)], op);
            has_pred = true;
          }
        }
        if (!has_pred) {
          std::uniform_int_distribution<std::size_t> pick(
              0, layers[l - 1].size() - 1);
          graph->add_dependency(layers[l - 1][pick(rng)], op);
        }
      }
    }
  }
  // Every non-final op must reach the sink: ensure a successor in the next
  // layer for ops that got none.
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (OperationId op : layers[l]) {
      if (graph->successors(op).empty()) {
        std::uniform_int_distribution<std::size_t> pick(
            0, layers[l + 1].size() - 1);
        graph->add_dependency(op, layers[l + 1][pick(rng)]);
      }
    }
  }
  const OperationId out =
      graph->add_operation("out", OperationKind::kExtioOut);
  for (OperationId op : layers.back()) {
    graph->add_dependency(op, out);
  }
  return graph;
}

}  // namespace ftsched::workload
