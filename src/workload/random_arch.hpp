// Seeded random architectures and characteristics tables, with CCR
// (communication-to-computation ratio) control — the standard knob for
// studying when communication-heavy strategies win (§5.6 criterion 4).
#pragma once

#include <cstdint>
#include <memory>

#include "arch/architecture_graph.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_dag.hpp"

namespace ftsched::workload {

enum class ArchKind { kBus, kFullyConnected, kRing, kChain, kStar };

[[nodiscard]] ArchitectureGraph make_architecture(ArchKind kind,
                                                  std::size_t processors);

struct RandomProblemParams {
  RandomDagParams dag;
  ArchKind arch_kind = ArchKind::kBus;
  std::size_t processors = 4;
  int failures_to_tolerate = 1;
  /// Mean WCET; actual values are uniform in [0.5, 1.5] x mean.
  Time mean_exec = 2.0;
  /// Mean communication duration = ccr * mean_exec.
  double ccr = 0.5;
  /// Probability a comp is disallowed on a given processor (clamped so
  /// every operation keeps at least K+1 allowed processors).
  double restrict_probability = 0.0;
  std::uint64_t seed = 1;
};

/// A complete random problem: DAG from `params.dag` (seeded by
/// `params.seed`), architecture from `arch_kind`, uniform-random tables.
/// Extio operations are pinned to exactly K+1 random processors, modelling
/// sensors/actuators wired to a subset of nodes (§5.4 item 3).
[[nodiscard]] OwnedProblem random_problem(const RandomProblemParams& params);

}  // namespace ftsched::workload
