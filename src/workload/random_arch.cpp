#include "workload/random_arch.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "arch/topologies.hpp"
#include "core/error.hpp"

namespace ftsched::workload {

ArchitectureGraph make_architecture(ArchKind kind, std::size_t processors) {
  switch (kind) {
    case ArchKind::kBus:
      return topologies::single_bus(processors);
    case ArchKind::kFullyConnected:
      return topologies::fully_connected(processors);
    case ArchKind::kRing:
      return topologies::ring(processors);
    case ArchKind::kChain:
      return topologies::chain(processors);
    case ArchKind::kStar:
      return topologies::star(processors);
  }
  throw std::invalid_argument("unknown architecture kind");
}

OwnedProblem random_problem(const RandomProblemParams& params) {
  FTSCHED_REQUIRE(params.failures_to_tolerate >= 0, "K must be >= 0");
  FTSCHED_REQUIRE(
      params.processors >
          static_cast<std::size_t>(params.failures_to_tolerate),
      "need more processors than failures to tolerate");
  FTSCHED_REQUIRE(params.ccr > 0, "ccr must be positive");

  RandomDagParams dag_params = params.dag;
  dag_params.seed = params.seed;
  auto algorithm = random_dag(dag_params);
  auto architecture = std::make_unique<ArchitectureGraph>(
      make_architecture(params.arch_kind, params.processors));
  auto exec = std::make_unique<ExecTable>(*algorithm, *architecture);
  auto comm = std::make_unique<CommTable>(*algorithm, *architecture);

  std::mt19937_64 rng(params.seed ^ 0x9e3779b97f4a7c15ULL);
  std::uniform_real_distribution<double> spread(0.5, 1.5);
  std::bernoulli_distribution restricted(params.restrict_probability);
  const std::size_t replicas =
      static_cast<std::size_t>(params.failures_to_tolerate) + 1;

  std::vector<std::size_t> proc_order(architecture->processor_count());
  std::iota(proc_order.begin(), proc_order.end(), 0);

  for (const Operation& op : algorithm->operations()) {
    // Choose the allowed set first, then sample durations for it.
    std::vector<bool> allowed(architecture->processor_count(), true);
    if (is_extio(op.kind)) {
      // Pin extios to exactly K+1 random processors.
      std::shuffle(proc_order.begin(), proc_order.end(), rng);
      std::fill(allowed.begin(), allowed.end(), false);
      for (std::size_t i = 0; i < replicas; ++i) {
        allowed[proc_order[i]] = true;
      }
    } else if (params.restrict_probability > 0) {
      std::size_t count = allowed.size();
      for (std::size_t p = 0; p < allowed.size() && count > replicas; ++p) {
        if (restricted(rng)) {
          allowed[p] = false;
          --count;
        }
      }
    }
    for (const Processor& proc : architecture->processors()) {
      if (!allowed[proc.id.index()]) continue;
      exec->set(op.id, proc.id, params.mean_exec * spread(rng));
    }
  }

  const Time mean_comm = params.ccr * params.mean_exec;
  for (const Dependency& dep : algorithm->dependencies()) {
    comm->set_uniform(dep.id, mean_comm * spread(rng));
  }

  return assemble(std::move(algorithm), std::move(architecture),
                  std::move(exec), std::move(comm),
                  params.failures_to_tolerate);
}

}  // namespace ftsched::workload
