// Seeded random layered DAG generator for the synthetic evaluation
// (reproduction bands: the paper's tool and testbed are unavailable, so the
// sweeps run over synthetic workloads; every graph is reproducible from its
// parameters + seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "graph/algorithm_graph.hpp"

namespace ftsched::workload {

struct RandomDagParams {
  /// Number of comp operations (extio source/sink added on top).
  std::size_t operations = 20;
  /// Maximum operations per layer (actual widths are sampled in [1, width]).
  std::size_t width = 4;
  /// Probability of an edge between ops in consecutive layers, in [0, 1].
  double density = 0.5;
  /// Additional probability of a "skip" edge jumping over >= 1 layer.
  double skip_density = 0.1;
  std::uint64_t seed = 1;
};

/// Layered random DAG: one extio input feeding layer 0, comp layers with
/// random forward edges (every op is guaranteed at least one predecessor in
/// an earlier layer and one successor in a later one, so the graph is
/// connected), and one extio output fed by the last layer.
[[nodiscard]] std::unique_ptr<AlgorithmGraph> random_dag(
    const RandomDagParams& params);

}  // namespace ftsched::workload
