// Deterministic classical task-graph shapes used by the synthetic
// benchmarks: fork-join, pipeline, diamond lattice, FFT butterfly, and the
// Gaussian-elimination task graph. All return pure algorithm graphs; pair
// them with a characteristics model from random_arch.hpp.
#pragma once

#include <cstddef>
#include <memory>

#include "graph/algorithm_graph.hpp"

namespace ftsched::workload {

/// in -> f1..fN -> out.
[[nodiscard]] std::unique_ptr<AlgorithmGraph> fork_join(std::size_t width);

/// in -> s1 -> s2 -> ... -> sN -> out.
[[nodiscard]] std::unique_ptr<AlgorithmGraph> pipeline(std::size_t stages);

/// `stages` x `width` lattice where every node feeds the next stage's
/// neighbours (a wide DAG with reconvergence).
[[nodiscard]] std::unique_ptr<AlgorithmGraph> diamond(std::size_t stages,
                                                      std::size_t width);

/// Radix-2 FFT butterfly graph on 2^log2_size points: log2_size stages of
/// 2^log2_size nodes, each with two predecessors.
[[nodiscard]] std::unique_ptr<AlgorithmGraph> fft(std::size_t log2_size);

/// Task graph of Gaussian elimination on an n x n matrix: per step k a
/// pivot task feeding n-k-1 update tasks that feed step k+1.
[[nodiscard]] std::unique_ptr<AlgorithmGraph> gaussian_elimination(
    std::size_t n);

/// A feedback control loop with a mem operation: sensors -> law -> actuator
/// plus a state register read by the law and written back each iteration.
[[nodiscard]] std::unique_ptr<AlgorithmGraph> control_loop(
    std::size_t sensors, std::size_t laws, std::size_t actuators);

}  // namespace ftsched::workload
