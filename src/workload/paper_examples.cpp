#include "workload/paper_examples.hpp"

#include <array>

#include "arch/topologies.hpp"

namespace ftsched::workload {

OwnedProblem assemble(std::unique_ptr<AlgorithmGraph> algorithm,
                      std::unique_ptr<ArchitectureGraph> architecture,
                      std::unique_ptr<ExecTable> exec,
                      std::unique_ptr<CommTable> comm,
                      int failures_to_tolerate) {
  OwnedProblem owned;
  owned.algorithm = std::move(algorithm);
  owned.architecture = std::move(architecture);
  owned.exec = std::move(exec);
  owned.comm = std::move(comm);
  owned.problem.algorithm = owned.algorithm.get();
  owned.problem.architecture = owned.architecture.get();
  owned.problem.exec = owned.exec.get();
  owned.problem.comm = owned.comm.get();
  owned.problem.failures_to_tolerate = failures_to_tolerate;
  return owned;
}

std::unique_ptr<AlgorithmGraph> paper_algorithm() {
  auto graph = std::make_unique<AlgorithmGraph>();
  const OperationId i = graph->add_operation("I", OperationKind::kExtioIn);
  const OperationId a = graph->add_operation("A");
  const OperationId b = graph->add_operation("B");
  const OperationId c = graph->add_operation("C");
  const OperationId d = graph->add_operation("D");
  const OperationId e = graph->add_operation("E");
  const OperationId o = graph->add_operation("O", OperationKind::kExtioOut);
  graph->add_dependency(i, a);
  graph->add_dependency(a, b);
  graph->add_dependency(a, c);
  graph->add_dependency(a, d);
  graph->add_dependency(b, e);
  graph->add_dependency(c, e);
  graph->add_dependency(d, e);
  graph->add_dependency(e, o);
  return graph;
}

namespace {

/// The shared duration tables of §5.4 / §6.5 / §7.3.
void fill_paper_tables(const AlgorithmGraph& graph,
                       const ArchitectureGraph& arch, ExecTable& exec,
                       CommTable& comm) {
  const ProcessorId p1 = arch.find_processor("P1");
  const ProcessorId p2 = arch.find_processor("P2");
  const ProcessorId p3 = arch.find_processor("P3");

  struct Row {
    const char* op;
    Time on_p1, on_p2, on_p3;
  };
  constexpr std::array<Row, 7> wcet{{
      {"I", 1, 1, kInfinite},
      {"A", 2, 2, 2},
      {"B", 3, 1.5, 1.5},
      {"C", 2, 3, 1},
      {"D", 3, 1, 1},
      {"E", 1, 1, 1},
      {"O", 1.5, 1.5, kInfinite},
  }};
  for (const Row& row : wcet) {
    const OperationId op = graph.find_operation(row.op);
    exec.set(op, p1, row.on_p1);
    exec.set(op, p2, row.on_p2);
    exec.set(op, p3, row.on_p3);
  }

  struct Edge {
    const char* name;
    Time duration;
  };
  constexpr std::array<Edge, 8> costs{{
      {"I->A", 1.25},
      {"A->B", 0.5},
      {"A->C", 0.5},
      {"A->D", 1},
      {"B->E", 0.5},
      {"C->E", 0.6},
      {"D->E", 0.8},
      {"E->O", 1},
  }};
  for (const Edge& edge : costs) {
    for (const Dependency& dep : graph.dependencies()) {
      if (dep.name == edge.name) comm.set_uniform(dep.id, edge.duration);
    }
  }
}

OwnedProblem paper_example(ArchitectureGraph&& topology) {
  auto algorithm = paper_algorithm();
  auto architecture = std::make_unique<ArchitectureGraph>(std::move(topology));
  auto exec = std::make_unique<ExecTable>(*algorithm, *architecture);
  auto comm = std::make_unique<CommTable>(*algorithm, *architecture);
  fill_paper_tables(*algorithm, *architecture, *exec, *comm);
  return assemble(std::move(algorithm), std::move(architecture),
                  std::move(exec), std::move(comm),
                  /*failures_to_tolerate=*/1);
}

}  // namespace

OwnedProblem paper_example1() {
  return paper_example(topologies::single_bus(3));
}

OwnedProblem paper_example2() {
  return paper_example(topologies::fully_connected(3));
}

}  // namespace ftsched::workload
