#include "workload/shapes.hpp"

#include <string>
#include <vector>

#include "core/error.hpp"

namespace ftsched::workload {

namespace {

std::string numbered(const char* stem, std::size_t i) {
  return std::string(stem) + std::to_string(i);
}

// Two-index variant, built with += — GCC 12's -Wrestrict false-positives
// on chained `"stem" + std::to_string(i) + "_" + ...` at -O3.
std::string numbered2(const char* stem, std::size_t i, std::size_t j) {
  std::string name = stem;
  name += std::to_string(i);
  name += '_';
  name += std::to_string(j);
  return name;
}

}  // namespace

std::unique_ptr<AlgorithmGraph> fork_join(std::size_t width) {
  FTSCHED_REQUIRE(width >= 1, "fork_join needs width >= 1");
  auto graph = std::make_unique<AlgorithmGraph>();
  const OperationId in = graph->add_operation("in", OperationKind::kExtioIn);
  const OperationId out =
      graph->add_operation("out", OperationKind::kExtioOut);
  const OperationId join = graph->add_operation("join");
  for (std::size_t i = 0; i < width; ++i) {
    const OperationId f = graph->add_operation(numbered("f", i));
    graph->add_dependency(in, f);
    graph->add_dependency(f, join);
  }
  graph->add_dependency(join, out);
  return graph;
}

std::unique_ptr<AlgorithmGraph> pipeline(std::size_t stages) {
  FTSCHED_REQUIRE(stages >= 1, "pipeline needs stages >= 1");
  auto graph = std::make_unique<AlgorithmGraph>();
  OperationId prev = graph->add_operation("in", OperationKind::kExtioIn);
  for (std::size_t i = 0; i < stages; ++i) {
    const OperationId stage = graph->add_operation(numbered("s", i));
    graph->add_dependency(prev, stage);
    prev = stage;
  }
  const OperationId out =
      graph->add_operation("out", OperationKind::kExtioOut);
  graph->add_dependency(prev, out);
  return graph;
}

std::unique_ptr<AlgorithmGraph> diamond(std::size_t stages,
                                        std::size_t width) {
  FTSCHED_REQUIRE(stages >= 1 && width >= 1,
                  "diamond needs stages >= 1 and width >= 1");
  auto graph = std::make_unique<AlgorithmGraph>();
  const OperationId in = graph->add_operation("in", OperationKind::kExtioIn);
  std::vector<OperationId> prev(width, in);
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<OperationId> current;
    for (std::size_t w = 0; w < width; ++w) {
      const OperationId node = graph->add_operation(
          numbered2("d", s, w));
      current.push_back(node);
      graph->add_dependency(prev[w], node);
      if (w > 0 && prev[w - 1] != in) {
        graph->add_dependency(prev[w - 1], node);
      }
    }
    prev = std::move(current);
  }
  const OperationId out =
      graph->add_operation("out", OperationKind::kExtioOut);
  for (std::size_t w = 0; w < width; ++w) {
    graph->add_dependency(prev[w], out);
  }
  return graph;
}

std::unique_ptr<AlgorithmGraph> fft(std::size_t log2_size) {
  FTSCHED_REQUIRE(log2_size >= 1 && log2_size <= 8,
                  "fft needs 1 <= log2_size <= 8");
  const std::size_t n = std::size_t{1} << log2_size;
  auto graph = std::make_unique<AlgorithmGraph>();
  std::vector<OperationId> prev;
  for (std::size_t i = 0; i < n; ++i) {
    prev.push_back(
        graph->add_operation(numbered("x", i), OperationKind::kExtioIn));
  }
  for (std::size_t stage = 0; stage < log2_size; ++stage) {
    const std::size_t stride = std::size_t{1} << stage;
    std::vector<OperationId> current;
    for (std::size_t i = 0; i < n; ++i) {
      const OperationId node = graph->add_operation(
          numbered2("b", stage, i));
      current.push_back(node);
      graph->add_dependency(prev[i], node);
      graph->add_dependency(prev[i ^ stride], node);
    }
    prev = std::move(current);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const OperationId out =
        graph->add_operation(numbered("y", i), OperationKind::kExtioOut);
    graph->add_dependency(prev[i], out);
  }
  return graph;
}

std::unique_ptr<AlgorithmGraph> gaussian_elimination(std::size_t n) {
  FTSCHED_REQUIRE(n >= 2 && n <= 32, "gaussian_elimination needs 2 <= n <= 32");
  auto graph = std::make_unique<AlgorithmGraph>();
  const OperationId in = graph->add_operation("in", OperationKind::kExtioIn);
  const OperationId out =
      graph->add_operation("out", OperationKind::kExtioOut);
  // prev[j]: the task that last produced column j.
  std::vector<OperationId> prev(n, in);
  OperationId last_pivot;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const OperationId pivot = graph->add_operation(numbered("piv", k));
    graph->add_dependency(prev[k], pivot);
    last_pivot = pivot;
    for (std::size_t j = k + 1; j < n; ++j) {
      const OperationId update = graph->add_operation(
          numbered2("upd", k, j));
      graph->add_dependency(pivot, update);
      graph->add_dependency(prev[j], update);
      prev[j] = update;
    }
  }
  graph->add_dependency(prev[n - 1], out);
  (void)last_pivot;
  return graph;
}

std::unique_ptr<AlgorithmGraph> control_loop(std::size_t sensors,
                                             std::size_t laws,
                                             std::size_t actuators) {
  FTSCHED_REQUIRE(sensors >= 1 && laws >= 1 && actuators >= 1,
                  "control_loop needs at least one of each");
  auto graph = std::make_unique<AlgorithmGraph>();
  const OperationId state = graph->add_operation("state", OperationKind::kMem);
  const OperationId fuse = graph->add_operation("fusion");
  for (std::size_t i = 0; i < sensors; ++i) {
    const OperationId sensor = graph->add_operation(
        numbered("sensor", i), OperationKind::kExtioIn);
    graph->add_dependency(sensor, fuse);
  }
  graph->add_dependency(state, fuse);
  const OperationId update = graph->add_operation("state_update");
  std::vector<OperationId> law_ids;
  for (std::size_t i = 0; i < laws; ++i) {
    const OperationId law = graph->add_operation(numbered("law", i));
    graph->add_dependency(fuse, law);
    graph->add_dependency(law, update);
    law_ids.push_back(law);
  }
  graph->add_dependency(update, state);  // written back for next iteration
  for (std::size_t i = 0; i < actuators; ++i) {
    const OperationId actuator = graph->add_operation(
        numbered("actuator", i), OperationKind::kExtioOut);
    graph->add_dependency(law_ids[i % laws], actuator);
  }
  return graph;
}

}  // namespace ftsched::workload
