// The paper's two worked examples, reproduced exactly from the published
// tables (§5.4, §6.5, §7.3); shared by tests, benchmarks, and examples.
//
// Algorithm (Figures 7, 13, 21):  I -> A -> {B, C, D} -> E -> O
// with I an extio input, O an extio output, A-E comps.
//
// Execution durations (both examples):
//           I    A    B    C    D    E    O
//   P1      1    2    3    2    3    1    1.5
//   P2      1    2    1.5  3    1    1    1.5
//   P3      inf  2    1.5  1    1    1    inf
//
// Communication durations, identical on every link (both examples):
//   I->A 1.25, A->B 0.5, A->C 0.5, A->D 1,
//   B->E 0.5, C->E 0.6, D->E 0.8, E->O 1.
//
// OCR caveat (recorded in EXPERIMENTS.md): our source text garbles one cell
// of each published table; the values above are the consistent
// reconstruction, cross-checked against the prose checkpoints of §6.5
// (B completes at 4.5 on P2, 5 on P3, 6 on P1) and the stated makespans.
//
// Example 1 (§6.5): the three processors share one bus; solution 1,
// tolerating K = 1 failure. Example 2 (§7.3): the same processors pairwise
// connected by point-to-point links L1.2, L2.3, L1.3; solution 2, K = 1.
#pragma once

#include <memory>

#include "arch/characteristics.hpp"
#include "arch/architecture_graph.hpp"
#include "graph/algorithm_graph.hpp"

namespace ftsched::workload {

/// Owns every component of a scheduling problem. Movable, not copyable
/// (Problem holds pointers into the owned parts).
struct OwnedProblem {
  std::unique_ptr<AlgorithmGraph> algorithm;
  std::unique_ptr<ArchitectureGraph> architecture;
  std::unique_ptr<ExecTable> exec;
  std::unique_ptr<CommTable> comm;
  Problem problem;
};

/// Assembles `problem` from the owned parts with the given K.
[[nodiscard]] OwnedProblem assemble(
    std::unique_ptr<AlgorithmGraph> algorithm,
    std::unique_ptr<ArchitectureGraph> architecture,
    std::unique_ptr<ExecTable> exec, std::unique_ptr<CommTable> comm,
    int failures_to_tolerate);

/// The paper's algorithm graph I -> A -> {B,C,D} -> E -> O.
[[nodiscard]] std::unique_ptr<AlgorithmGraph> paper_algorithm();

/// Example 1: bus architecture, K = 1 (§6.5).
[[nodiscard]] OwnedProblem paper_example1();

/// Example 2: fully connected point-to-point architecture, K = 1 (§7.3).
[[nodiscard]] OwnedProblem paper_example2();

}  // namespace ftsched::workload
