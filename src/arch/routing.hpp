// Static routing (paper §5.5 item 2: static routing is preferred because it
// yields a worst-case upper bound on every communication).
//
// A route between two processors is the ordered sequence of links a value
// crosses, store-and-forward through intermediate processors (the paper's
// Figure 8 example routes P1<->P3 through P2). Routes are computed once,
// off-line: minimum hop count, ties broken by the lexicographically smallest
// link-id sequence, so every component of the system — heuristics, executive
// generation, simulator — agrees on the same deterministic route table.
#pragma once

#include <optional>
#include <vector>

#include "arch/architecture_graph.hpp"
#include "core/error.hpp"

namespace ftsched {

/// One inter-processor route.
struct Route {
  /// Links crossed, in order, from source to destination. Empty for the
  /// degenerate source == destination route.
  std::vector<LinkId> links;
  /// Processors visited, in order, including source and destination; always
  /// links.size() + 1 entries (one entry when source == destination).
  std::vector<ProcessorId> hops;

  [[nodiscard]] std::size_t hop_count() const noexcept { return links.size(); }
};

class RoutingTable {
 public:
  /// Builds all-pairs routes by breadth-first search over the link graph.
  /// Throws if the architecture is not connected (no route exists).
  explicit RoutingTable(const ArchitectureGraph& arch);

  /// Route from `src` to `dst`. Precondition: both ids belong to the
  /// architecture the table was built from.
  [[nodiscard]] const Route& route(ProcessorId src, ProcessorId dst) const;

  /// Up to `count` pairwise link-disjoint routes from `src` to `dst`,
  /// shortest first (greedy: repeat the BFS with previously used links
  /// removed). At least one route is always returned (the primary); fewer
  /// than `count` when the topology lacks disjoint paths — a single bus
  /// yields exactly one. Replicated communications routed over disjoint
  /// paths survive individual link failures (the paper's §8 future work).
  [[nodiscard]] std::vector<Route> disjoint_routes(ProcessorId src,
                                                   ProcessorId dst,
                                                   std::size_t count) const;

  /// Shortest route from `src` to `dst` that crosses no banned link and
  /// relays through no banned processor (`dst` itself is always
  /// admissible); nullopt when the bans disconnect the pair. Used to give
  /// each replicated transfer of one value a route that avoids its
  /// siblings' links and relays, and the other replica hosts — so neither
  /// a link death nor a processor death can sever every copy.
  [[nodiscard]] std::optional<Route> route_avoiding(
      ProcessorId src, ProcessorId dst,
      const std::vector<bool>& banned_links,
      const std::vector<bool>* banned_processors = nullptr) const;

  /// Largest hop count in the table (the network diameter).
  [[nodiscard]] std::size_t diameter() const noexcept { return diameter_; }

 private:
  std::size_t n_ = 0;
  std::size_t diameter_ = 0;
  const ArchitectureGraph* arch_ = nullptr;
  std::vector<Route> routes_;  // n*n, row-major [src][dst]
};

}  // namespace ftsched
