// Distribution constraints (paper §4.1, §5.4): the two lookup tables that
// characterize an algorithm against an architecture.
//
//  * ExecTable — worst-case execution time of each operation on each
//    processor; kInfinite means the operation may not run there (the user's
//    allowed-processor sets, which encode extio placement constraints).
//  * CommTable — transfer duration of each data-dependency over each link.
//
// Together with the two graphs these tables are the complete input of every
// scheduling heuristic in this library.
#pragma once

#include <vector>

#include "arch/architecture_graph.hpp"
#include "arch/routing.hpp"
#include "core/time.hpp"
#include "graph/algorithm_graph.hpp"

namespace ftsched {

class ExecTable {
 public:
  /// All entries start at kInfinite ("not allowed").
  ExecTable(const AlgorithmGraph& algorithm, const ArchitectureGraph& arch);

  /// Sets the WCET of `op` on `proc`. Pass kInfinite to disallow.
  void set(OperationId op, ProcessorId proc, Time duration);

  /// Convenience: one WCET for `op` on every processor.
  void set_uniform(OperationId op, Time duration);

  [[nodiscard]] Time duration(OperationId op, ProcessorId proc) const;
  [[nodiscard]] bool allowed(OperationId op, ProcessorId proc) const {
    return !is_infinite(duration(op, proc));
  }

  /// Unchecked O(1) lookup for scheduler/simulator inner loops; the caller
  /// guarantees both ids belong to the graphs this table was built from.
  [[nodiscard]] Time duration_fast(OperationId op,
                                   ProcessorId proc) const noexcept {
    return wcet_[op.index() * procs_ + proc.index()];
  }
  [[nodiscard]] bool allowed_fast(OperationId op,
                                  ProcessorId proc) const noexcept {
    return !is_infinite(duration_fast(op, proc));
  }

  /// Processors able to execute `op`, ascending id.
  [[nodiscard]] std::vector<ProcessorId> allowed_processors(
      OperationId op) const;

  /// Cheapest WCET of `op` over all processors (the optimistic duration used
  /// by the schedule-pressure bound); kInfinite if nowhere allowed.
  [[nodiscard]] Time min_duration(OperationId op) const;

  /// Diagnostics: operations with no allowed processor, or with fewer than
  /// `replicas` allowed processors (infeasible for K = replicas-1 failures).
  [[nodiscard]] std::vector<std::string> check(std::size_t replicas) const;

  [[nodiscard]] std::size_t operation_count() const noexcept { return ops_; }
  [[nodiscard]] std::size_t processor_count() const noexcept { return procs_; }

 private:
  std::size_t ops_ = 0;
  std::size_t procs_ = 0;
  std::vector<Time> wcet_;  // ops x procs, row-major
  const AlgorithmGraph* algorithm_;
  const ArchitectureGraph* arch_;
};

class CommTable {
 public:
  /// All entries start at kInfinite ("duration not specified").
  CommTable(const AlgorithmGraph& algorithm, const ArchitectureGraph& arch);

  void set(DependencyId dep, LinkId link, Time duration);

  /// Convenience: one duration for `dep` on every link (the shape of the
  /// paper's tables).
  void set_uniform(DependencyId dep, Time duration);

  /// Duration of `dep` over a single `link`.
  [[nodiscard]] Time duration(DependencyId dep, LinkId link) const;

  /// Unchecked O(1) lookup for the scheduler's transfer inner loop; the
  /// caller guarantees both ids belong to the graphs this table was built
  /// from.
  [[nodiscard]] Time duration_fast(DependencyId dep,
                                   LinkId link) const noexcept {
    return cost_[dep.index() * links_ + link.index()];
  }

  /// Store-and-forward duration of `dep` over `route` (sum over its links);
  /// zero for the intra-processor route.
  [[nodiscard]] Time route_duration(DependencyId dep, const Route& route) const;

  /// Diagnostics: dependencies with an unspecified duration on some link.
  [[nodiscard]] std::vector<std::string> check() const;

 private:
  std::size_t deps_ = 0;
  std::size_t links_ = 0;
  std::vector<Time> cost_;  // deps x links, row-major
  const AlgorithmGraph* algorithm_;
  const ArchitectureGraph* arch_;
};

/// The complete scheduling problem: both graphs, both tables, and the number
/// K of fail-stop processor failures to tolerate (§5.6).
struct Problem {
  const AlgorithmGraph* algorithm = nullptr;
  const ArchitectureGraph* architecture = nullptr;
  const ExecTable* exec = nullptr;
  const CommTable* comm = nullptr;
  /// Number of permanent fail-stop processor failures to tolerate.
  int failures_to_tolerate = 0;
  /// Real-time constraint: latest admissible completion date of one
  /// iteration's failure-free schedule. kInfinite means unconstrained.
  Time deadline = kInfinite;

  [[nodiscard]] int replication_factor() const noexcept {
    return failures_to_tolerate + 1;
  }

  /// Full-input diagnostics (graph checks + table checks + redundancy);
  /// empty means the problem is well-formed and potentially feasible.
  [[nodiscard]] std::vector<std::string> check() const;
};

}  // namespace ftsched
