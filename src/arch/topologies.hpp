// Factory functions for the architecture shapes used throughout the paper
// and the benchmarks: a single shared bus (example 1, CAN-style), a fully
// connected point-to-point network (example 2), and the chain of Figure 8.
#pragma once

#include <cstddef>

#include "arch/architecture_graph.hpp"

namespace ftsched::topologies {

/// `n` processors P1..Pn on one bus named "bus".
[[nodiscard]] ArchitectureGraph single_bus(std::size_t n);

/// `n` processors, one point-to-point link "Li.j" per pair (i < j).
[[nodiscard]] ArchitectureGraph fully_connected(std::size_t n);

/// `n` processors in a line: P1—P2—...—Pn (communications between distant
/// processors are routed through the intermediates, as in Figure 8).
[[nodiscard]] ArchitectureGraph chain(std::size_t n);

/// `n` processors in a cycle (two disjoint routes between any pair).
[[nodiscard]] ArchitectureGraph ring(std::size_t n);

/// Star: P1 is the hub, P2..Pn are leaves linked to it.
[[nodiscard]] ArchitectureGraph star(std::size_t n);

}  // namespace ftsched::topologies
