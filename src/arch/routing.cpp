#include "arch/routing.hpp"

#include <algorithm>
#include <optional>
#include <queue>

namespace ftsched {

namespace {

/// BFS shortest route avoiding `banned` links and, when provided, banned
/// intermediate processors (the destination is always admissible); empty
/// optional if unreachable. Neighbors expand in ascending (link, processor)
/// order for determinism.
std::optional<Route> bfs_route(const ArchitectureGraph& arch,
                               ProcessorId src, ProcessorId dst,
                               const std::vector<bool>& banned,
                               const std::vector<bool>* banned_procs =
                                   nullptr) {
  const std::size_t n = arch.processor_count();
  std::vector<LinkId> via_link(n);
  std::vector<ProcessorId> parent(n);
  std::vector<bool> seen(n, false);
  seen[src.index()] = true;
  std::queue<ProcessorId> frontier;
  frontier.push(src);
  while (!frontier.empty()) {
    const ProcessorId p = frontier.front();
    frontier.pop();
    for (LinkId l : arch.links_of(p)) {
      if (banned[l.index()]) continue;
      for (ProcessorId q : arch.link(l).endpoints) {
        if (q == p || seen[q.index()]) continue;
        if (banned_procs != nullptr && (*banned_procs)[q.index()] &&
            q != dst) {
          continue;
        }
        seen[q.index()] = true;
        via_link[q.index()] = l;
        parent[q.index()] = p;
        frontier.push(q);
      }
    }
  }
  if (!seen[dst.index()]) return std::nullopt;
  Route route;
  std::vector<LinkId> links;
  std::vector<ProcessorId> hops{dst};
  ProcessorId cur = dst;
  while (cur != src) {
    links.push_back(via_link[cur.index()]);
    cur = parent[cur.index()];
    hops.push_back(cur);
  }
  std::reverse(links.begin(), links.end());
  std::reverse(hops.begin(), hops.end());
  route.links = std::move(links);
  route.hops = std::move(hops);
  return route;
}

}  // namespace

RoutingTable::RoutingTable(const ArchitectureGraph& arch)
    : n_(arch.processor_count()), arch_(&arch), routes_(n_ * n_) {
  FTSCHED_REQUIRE(arch.is_connected(),
                  "routing requires a connected architecture");

  for (const Processor& src : arch.processors()) {
    // BFS from src. Neighbors are expanded in ascending (link, processor)
    // order, and a vertex keeps its first discovery, which yields the
    // lexicographically smallest link sequence among min-hop routes.
    std::vector<LinkId> via_link(n_);
    std::vector<ProcessorId> parent(n_);
    std::vector<bool> seen(n_, false);
    seen[src.id.index()] = true;
    std::queue<ProcessorId> frontier;
    frontier.push(src.id);
    while (!frontier.empty()) {
      const ProcessorId p = frontier.front();
      frontier.pop();
      for (LinkId l : arch.links_of(p)) {
        for (ProcessorId q : arch.link(l).endpoints) {
          if (q == p || seen[q.index()]) continue;
          seen[q.index()] = true;
          via_link[q.index()] = l;
          parent[q.index()] = p;
          frontier.push(q);
        }
      }
    }

    for (const Processor& dst : arch.processors()) {
      Route& r = routes_[src.id.index() * n_ + dst.id.index()];
      if (dst.id == src.id) {
        r.hops = {src.id};
        continue;
      }
      // Walk parents back from dst and reverse.
      std::vector<LinkId> links;
      std::vector<ProcessorId> hops{dst.id};
      ProcessorId cur = dst.id;
      while (cur != src.id) {
        links.push_back(via_link[cur.index()]);
        cur = parent[cur.index()];
        hops.push_back(cur);
      }
      std::reverse(links.begin(), links.end());
      std::reverse(hops.begin(), hops.end());
      r.links = std::move(links);
      r.hops = std::move(hops);
      diameter_ = std::max(diameter_, r.links.size());
    }
  }
}

std::vector<Route> RoutingTable::disjoint_routes(ProcessorId src,
                                                 ProcessorId dst,
                                                 std::size_t count) const {
  FTSCHED_REQUIRE(count >= 1, "disjoint_routes needs count >= 1");
  std::vector<Route> result{route(src, dst)};
  if (src == dst) return result;
  std::vector<bool> banned(arch_->link_count(), false);
  for (LinkId link : result.front().links) banned[link.index()] = true;
  while (result.size() < count) {
    const std::optional<Route> next = bfs_route(*arch_, src, dst, banned);
    if (!next.has_value()) break;
    for (LinkId link : next->links) banned[link.index()] = true;
    result.push_back(std::move(*next));
  }
  return result;
}

std::optional<Route> RoutingTable::route_avoiding(
    ProcessorId src, ProcessorId dst, const std::vector<bool>& banned_links,
    const std::vector<bool>* banned_processors) const {
  FTSCHED_REQUIRE(banned_links.size() == arch_->link_count(),
                  "banned_links must have one entry per link");
  FTSCHED_REQUIRE(banned_processors == nullptr ||
                      banned_processors->size() == n_,
                  "banned_processors must have one entry per processor");
  return bfs_route(*arch_, src, dst, banned_links, banned_processors);
}

const Route& RoutingTable::route(ProcessorId src, ProcessorId dst) const {
  FTSCHED_REQUIRE(src.valid() && src.index() < n_ && dst.valid() &&
                      dst.index() < n_,
                  "route endpoints must belong to the architecture");
  return routes_[src.index() * n_ + dst.index()];
}

}  // namespace ftsched
