#include "arch/architecture_graph.hpp"

#include <algorithm>

namespace ftsched {

std::string to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kPointToPoint:
      return "point-to-point";
    case LinkKind::kBus:
      return "bus";
  }
  return "unknown";
}

bool Link::connects(ProcessorId p) const {
  return std::binary_search(endpoints.begin(), endpoints.end(), p);
}

ProcessorId ArchitectureGraph::add_processor(std::string name) {
  FTSCHED_REQUIRE(!name.empty(), "processor name must not be empty");
  FTSCHED_REQUIRE(!find_processor(name).valid(),
                  "duplicate processor name: " + name);
  const ProcessorId id{static_cast<ProcessorId::underlying_type>(
      processors_.size())};
  processors_.push_back(Processor{id, std::move(name)});
  links_of_.emplace_back();
  return id;
}

LinkId ArchitectureGraph::add_link(std::string name, ProcessorId a,
                                   ProcessorId b) {
  FTSCHED_REQUIRE(a != b, "a point-to-point link needs two distinct endpoints");
  std::vector<ProcessorId> endpoints{a, b};
  std::sort(endpoints.begin(), endpoints.end());
  FTSCHED_REQUIRE(!name.empty(), "link name must not be empty");
  FTSCHED_REQUIRE(!find_link(name).valid(), "duplicate link name: " + name);
  for (ProcessorId p : endpoints) {
    FTSCHED_REQUIRE(p.valid() && p.index() < processors_.size(),
                    "link endpoint is not a processor of this graph");
  }
  const LinkId id{static_cast<LinkId::underlying_type>(links_.size())};
  links_.push_back(
      Link{id, std::move(name), LinkKind::kPointToPoint, std::move(endpoints)});
  for (ProcessorId p : links_.back().endpoints) {
    links_of_[p.index()].push_back(id);
  }
  return id;
}

LinkId ArchitectureGraph::add_bus(std::string name,
                                  std::vector<ProcessorId> endpoints) {
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  FTSCHED_REQUIRE(endpoints.size() >= 2, "a bus needs at least two endpoints");
  FTSCHED_REQUIRE(!name.empty(), "link name must not be empty");
  FTSCHED_REQUIRE(!find_link(name).valid(), "duplicate link name: " + name);
  for (ProcessorId p : endpoints) {
    FTSCHED_REQUIRE(p.valid() && p.index() < processors_.size(),
                    "bus endpoint is not a processor of this graph");
  }
  const LinkId id{static_cast<LinkId::underlying_type>(links_.size())};
  links_.push_back(Link{id, std::move(name), LinkKind::kBus,
                        std::move(endpoints)});
  for (ProcessorId p : links_.back().endpoints) {
    links_of_[p.index()].push_back(id);
  }
  return id;
}

const Processor& ArchitectureGraph::processor(ProcessorId id) const {
  FTSCHED_REQUIRE(id.valid() && id.index() < processors_.size(),
                  "unknown processor id");
  return processors_[id.index()];
}

const Link& ArchitectureGraph::link(LinkId id) const {
  FTSCHED_REQUIRE(id.valid() && id.index() < links_.size(), "unknown link id");
  return links_[id.index()];
}

ProcessorId ArchitectureGraph::find_processor(std::string_view name) const {
  for (const Processor& p : processors_) {
    if (p.name == name) return p.id;
  }
  return ProcessorId{};
}

LinkId ArchitectureGraph::find_link(std::string_view name) const {
  for (const Link& l : links_) {
    if (l.name == name) return l.id;
  }
  return LinkId{};
}

const std::vector<LinkId>& ArchitectureGraph::links_of(ProcessorId p) const {
  FTSCHED_REQUIRE(p.valid() && p.index() < processors_.size(),
                  "unknown processor id");
  return links_of_[p.index()];
}

bool ArchitectureGraph::adjacent(ProcessorId a, ProcessorId b) const {
  for (LinkId l : links_of(a)) {
    if (links_[l.index()].connects(b)) return true;
  }
  return false;
}

bool ArchitectureGraph::is_connected() const {
  if (processors_.empty()) return true;
  std::vector<bool> seen(processors_.size(), false);
  std::vector<ProcessorId> stack{processors_.front().id};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const ProcessorId p = stack.back();
    stack.pop_back();
    for (LinkId l : links_of_[p.index()]) {
      for (ProcessorId q : links_[l.index()].endpoints) {
        if (!seen[q.index()]) {
          seen[q.index()] = true;
          ++count;
          stack.push_back(q);
        }
      }
    }
  }
  return count == processors_.size();
}

std::vector<std::string> ArchitectureGraph::check() const {
  std::vector<std::string> issues;
  if (!is_connected()) {
    issues.push_back("architecture graph is not connected");
  }
  for (const Processor& p : processors_) {
    if (links_of_[p.id.index()].empty() && processors_.size() > 1) {
      issues.push_back("processor '" + p.name + "' has no link");
    }
  }
  return issues;
}

}  // namespace ftsched
