// The architecture graph: processors connected by communication links
// (paper §4.3). Each processor owns one computation unit plus one
// communication unit per link it is attached to; links are either
// point-to-point (exactly two endpoints) or multi-point buses (two or more
// endpoints, transfers serialized by the bus arbiter, broadcast capable).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "core/ids.hpp"

namespace ftsched {

enum class LinkKind {
  /// Connects exactly two processors; independent links transfer in parallel.
  kPointToPoint,
  /// Shared medium connecting >= 2 processors; transfers are serialized and
  /// every attached processor observes every transfer (broadcast), which is
  /// what solution 1's passive-backup detection relies on (§6.1 item 1).
  kBus,
};

[[nodiscard]] std::string to_string(LinkKind kind);

struct Processor {
  ProcessorId id;
  std::string name;
};

struct Link {
  LinkId id;
  std::string name;
  LinkKind kind = LinkKind::kPointToPoint;
  /// Attached processors, ascending id.
  std::vector<ProcessorId> endpoints;

  [[nodiscard]] bool connects(ProcessorId p) const;
};

class ArchitectureGraph {
 public:
  ProcessorId add_processor(std::string name);

  /// Adds a point-to-point link between `a` and `b`.
  LinkId add_link(std::string name, ProcessorId a, ProcessorId b);

  /// Adds a bus attached to `endpoints` (>= 2 distinct processors).
  LinkId add_bus(std::string name, std::vector<ProcessorId> endpoints);

  [[nodiscard]] std::size_t processor_count() const noexcept {
    return processors_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }

  [[nodiscard]] const Processor& processor(ProcessorId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const std::vector<Processor>& processors() const noexcept {
    return processors_;
  }
  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }

  [[nodiscard]] ProcessorId find_processor(std::string_view name) const;
  [[nodiscard]] LinkId find_link(std::string_view name) const;

  /// Links whose endpoint set includes `p` (= the processor's communication
  /// units), ascending link id.
  [[nodiscard]] const std::vector<LinkId>& links_of(ProcessorId p) const;

  /// True if some link directly connects `a` and `b`.
  [[nodiscard]] bool adjacent(ProcessorId a, ProcessorId b) const;

  /// True if every processor can reach every other through links.
  [[nodiscard]] bool is_connected() const;

  /// Structural diagnostics; empty means well-formed.
  [[nodiscard]] std::vector<std::string> check() const;

 private:
  std::vector<Processor> processors_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> links_of_;  // per processor
};

}  // namespace ftsched
