#include "arch/topologies.hpp"

#include <string>
#include <vector>

#include "core/error.hpp"

namespace ftsched::topologies {

namespace {

std::vector<ProcessorId> add_processors(ArchitectureGraph& arch,
                                        std::size_t n) {
  std::vector<ProcessorId> procs;
  procs.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    // Built via += (not operator+ on a string literal): GCC 12's -Wrestrict
    // false-positives on `"P" + std::to_string(i)` at -O3.
    std::string name = "P";
    name += std::to_string(i);
    procs.push_back(arch.add_processor(name));
  }
  return procs;
}

std::string link_name(std::size_t i, std::size_t j) {
  std::string name = "L";
  name += std::to_string(i + 1);
  name += '.';
  name += std::to_string(j + 1);
  return name;
}

}  // namespace

ArchitectureGraph single_bus(std::size_t n) {
  FTSCHED_REQUIRE(n >= 2, "a bus topology needs at least two processors");
  ArchitectureGraph arch;
  const auto procs = add_processors(arch, n);
  arch.add_bus("bus", procs);
  return arch;
}

ArchitectureGraph fully_connected(std::size_t n) {
  FTSCHED_REQUIRE(n >= 2, "a network needs at least two processors");
  ArchitectureGraph arch;
  const auto procs = add_processors(arch, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      arch.add_link(link_name(i, j), procs[i], procs[j]);
    }
  }
  return arch;
}

ArchitectureGraph chain(std::size_t n) {
  FTSCHED_REQUIRE(n >= 2, "a chain needs at least two processors");
  ArchitectureGraph arch;
  const auto procs = add_processors(arch, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    arch.add_link(link_name(i, i + 1), procs[i], procs[i + 1]);
  }
  return arch;
}

ArchitectureGraph ring(std::size_t n) {
  FTSCHED_REQUIRE(n >= 3, "a ring needs at least three processors");
  ArchitectureGraph arch;
  const auto procs = add_processors(arch, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    arch.add_link(link_name(i, i + 1), procs[i], procs[i + 1]);
  }
  arch.add_link(link_name(0, n - 1), procs[0], procs[n - 1]);
  return arch;
}

ArchitectureGraph star(std::size_t n) {
  FTSCHED_REQUIRE(n >= 2, "a star needs at least two processors");
  ArchitectureGraph arch;
  const auto procs = add_processors(arch, n);
  for (std::size_t i = 1; i < n; ++i) {
    arch.add_link(link_name(0, i), procs[0], procs[i]);
  }
  return arch;
}

}  // namespace ftsched::topologies
