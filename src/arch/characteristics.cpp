#include "arch/characteristics.hpp"

#include <algorithm>

namespace ftsched {

ExecTable::ExecTable(const AlgorithmGraph& algorithm,
                     const ArchitectureGraph& arch)
    : ops_(algorithm.operation_count()),
      procs_(arch.processor_count()),
      wcet_(ops_ * procs_, kInfinite),
      algorithm_(&algorithm),
      arch_(&arch) {}

void ExecTable::set(OperationId op, ProcessorId proc, Time duration) {
  FTSCHED_REQUIRE(op.valid() && op.index() < ops_, "unknown operation id");
  FTSCHED_REQUIRE(proc.valid() && proc.index() < procs_,
                  "unknown processor id");
  FTSCHED_REQUIRE(is_infinite(duration) || time_gt(duration, 0),
                  "execution duration must be positive");
  wcet_[op.index() * procs_ + proc.index()] = duration;
}

void ExecTable::set_uniform(OperationId op, Time duration) {
  for (std::size_t p = 0; p < procs_; ++p) {
    set(op, ProcessorId{static_cast<ProcessorId::underlying_type>(p)},
        duration);
  }
}

Time ExecTable::duration(OperationId op, ProcessorId proc) const {
  FTSCHED_REQUIRE(op.valid() && op.index() < ops_, "unknown operation id");
  FTSCHED_REQUIRE(proc.valid() && proc.index() < procs_,
                  "unknown processor id");
  return wcet_[op.index() * procs_ + proc.index()];
}

std::vector<ProcessorId> ExecTable::allowed_processors(OperationId op) const {
  std::vector<ProcessorId> result;
  for (std::size_t p = 0; p < procs_; ++p) {
    const ProcessorId proc{static_cast<ProcessorId::underlying_type>(p)};
    if (allowed(op, proc)) result.push_back(proc);
  }
  return result;
}

Time ExecTable::min_duration(OperationId op) const {
  Time best = kInfinite;
  for (std::size_t p = 0; p < procs_; ++p) {
    best = std::min(best, wcet_[op.index() * procs_ + p]);
  }
  return best;
}

std::vector<std::string> ExecTable::check(std::size_t replicas) const {
  std::vector<std::string> issues;
  for (const Operation& op : algorithm_->operations()) {
    const std::size_t allowed = allowed_processors(op.id).size();
    if (allowed == 0) {
      issues.push_back("operation '" + op.name +
                       "' has no allowed processor");
    } else if (allowed < replicas) {
      issues.push_back("operation '" + op.name + "' allows only " +
                       std::to_string(allowed) + " processor(s), but " +
                       std::to_string(replicas) +
                       " replicas are required (insufficient redundancy)");
    }
  }
  return issues;
}

CommTable::CommTable(const AlgorithmGraph& algorithm,
                     const ArchitectureGraph& arch)
    : deps_(algorithm.dependency_count()),
      links_(arch.link_count()),
      cost_(deps_ * links_, kInfinite),
      algorithm_(&algorithm),
      arch_(&arch) {}

void CommTable::set(DependencyId dep, LinkId link, Time duration) {
  FTSCHED_REQUIRE(dep.valid() && dep.index() < deps_, "unknown dependency id");
  FTSCHED_REQUIRE(link.valid() && link.index() < links_, "unknown link id");
  FTSCHED_REQUIRE(time_gt(duration, 0) && !is_infinite(duration),
                  "communication duration must be positive and finite");
  cost_[dep.index() * links_ + link.index()] = duration;
}

void CommTable::set_uniform(DependencyId dep, Time duration) {
  for (std::size_t l = 0; l < links_; ++l) {
    set(dep, LinkId{static_cast<LinkId::underlying_type>(l)}, duration);
  }
}

Time CommTable::duration(DependencyId dep, LinkId link) const {
  FTSCHED_REQUIRE(dep.valid() && dep.index() < deps_, "unknown dependency id");
  FTSCHED_REQUIRE(link.valid() && link.index() < links_, "unknown link id");
  return cost_[dep.index() * links_ + link.index()];
}

Time CommTable::route_duration(DependencyId dep, const Route& route) const {
  Time total = 0;
  for (LinkId link : route.links) {
    const Time d = duration(dep, link);
    if (is_infinite(d)) return kInfinite;
    total += d;
  }
  return total;
}

std::vector<std::string> CommTable::check() const {
  std::vector<std::string> issues;
  for (const Dependency& dep : algorithm_->dependencies()) {
    for (const Link& link : arch_->links()) {
      if (is_infinite(duration(dep.id, link.id))) {
        issues.push_back("dependency '" + dep.name +
                         "' has no duration on link '" + link.name + "'");
      }
    }
  }
  return issues;
}

std::vector<std::string> Problem::check() const {
  std::vector<std::string> issues;
  FTSCHED_REQUIRE(algorithm && architecture && exec && comm,
                  "Problem has unset components");
  FTSCHED_REQUIRE(failures_to_tolerate >= 0,
                  "failures_to_tolerate must be non-negative");
  for (std::string& s : algorithm->check()) issues.push_back(std::move(s));
  for (std::string& s : architecture->check()) issues.push_back(std::move(s));
  if (architecture->processor_count() <
      static_cast<std::size_t>(replication_factor())) {
    issues.push_back("architecture has " +
                     std::to_string(architecture->processor_count()) +
                     " processor(s); tolerating " +
                     std::to_string(failures_to_tolerate) +
                     " failure(s) requires at least " +
                     std::to_string(replication_factor()));
  }
  for (std::string& s :
       exec->check(static_cast<std::size_t>(replication_factor()))) {
    issues.push_back(std::move(s));
  }
  for (std::string& s : comm->check()) issues.push_back(std::move(s));
  return issues;
}

}  // namespace ftsched
