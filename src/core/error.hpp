// Error handling for ftsched.
//
// Two regimes, following the C++ Core Guidelines split between contract
// violations and recoverable domain failures:
//
//  * Programming/contract errors (out-of-range id, malformed graph fed to an
//    API that documents a precondition) throw `std::invalid_argument` /
//    `std::out_of_range` via the FTSCHED_REQUIRE macro below.
//
//  * Domain failures that a correct caller must be able to observe — above
//    all "no K-fault-tolerant schedule exists for this input" (paper §5.5
//    item 1 and §8) — are reported as values through `Expected<T>`.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace ftsched {

/// Reason a scheduling/analysis request could not be satisfied.
/// `message` is always human-readable and names the offending entity.
struct Error {
  enum class Code {
    /// An operation's allowed-processor set has fewer than K+1 members, or
    /// the architecture has fewer than K+1 processors (paper §5.5 item 1).
    kInsufficientRedundancy,
    /// Graph/table inconsistency detected while solving (e.g. a dependency
    /// whose communication duration is missing for a required link).
    kInvalidInput,
    /// The produced schedule violates the caller's real-time bound.
    kDeadlineMissed,
    /// Architecture is not connected / no route between two processors.
    kNoRoute,
  };

  Code code = Code::kInvalidInput;
  std::string message;
};

[[nodiscard]] std::string to_string(Error::Code code);

/// Minimal expected-like result carrier (std::expected is C++23).
template <class T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Expected(Error error) : error_(std::move(error)) {}    // NOLINT(runtime/explicit)

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  /// Precondition: has_value(). Throws std::logic_error otherwise so tests
  /// fail loudly instead of dereferencing an empty optional.
  [[nodiscard]] T& value() & {
    require_value();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::move(*value_);
  }

  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }

  /// Precondition: !has_value().
  [[nodiscard]] const Error& error() const {
    if (has_value()) throw std::logic_error("Expected holds a value, not an error");
    return *error_;
  }

 private:
  void require_value() const {
    if (!value_.has_value()) {
      throw std::logic_error("Expected holds an error: " + error_->message);
    }
  }

  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Contract check used at public API boundaries.
#define FTSCHED_REQUIRE(cond, msg)                     \
  do {                                                 \
    if (!(cond)) throw std::invalid_argument((msg));   \
  } while (false)

}  // namespace ftsched
