#include "core/text.hpp"

#include <algorithm>

namespace ftsched {

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.assign(width - s.size(), ' ');
  out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out{s};
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += "  ";
      out += pad_right(row[c], widths[c]);
    }
    // Trim trailing spaces introduced by padding the last column.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(rows.front());
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c != 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (std::size_t r = 1; r < rows.size(); ++r) emit_row(rows[r]);
  return out;
}

}  // namespace ftsched
