// Small text-formatting helpers shared by the Gantt renderer, the DOT
// exporter, benchmark tables, and diagnostics. Kept dependency-free.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ftsched {

/// Left-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Joins `parts` with `sep` ("a, b, c").
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Renders a fixed-width text table: first row is the header, a rule is
/// drawn under it, and every column is sized to its widest cell. Used by the
/// benchmark binaries to print the paper's tables.
[[nodiscard]] std::string render_table(
    const std::vector<std::vector<std::string>>& rows);

}  // namespace ftsched
