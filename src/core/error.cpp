#include "core/error.hpp"

namespace ftsched {

std::string to_string(Error::Code code) {
  switch (code) {
    case Error::Code::kInsufficientRedundancy:
      return "insufficient-redundancy";
    case Error::Code::kInvalidInput:
      return "invalid-input";
    case Error::Code::kDeadlineMissed:
      return "deadline-missed";
    case Error::Code::kNoRoute:
      return "no-route";
  }
  return "unknown";
}

}  // namespace ftsched
