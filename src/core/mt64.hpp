// Lazily-seeded MT19937-64 — bit-identical to std::mt19937_64, built for
// workloads that seed a fresh engine per item and then draw only a handful
// of words (the campaign's scenario sampler: one engine per scenario,
// ~10-20 draws). std::mt19937_64's constructor initializes all 312 state
// words and the first draw twists all 312 again; for k draws with
// k < 156 only state words 0..k+156 ever matter, so this engine seeds and
// twists on demand (~3x fewer multiplies for typical scenario draws) and
// falls back to the standard full-twist machinery if a caller drains past
// the lazy window.
//
// Determinism contract: for every seed and every draw count, the output
// stream equals std::mt19937_64's exactly (pinned by
// tests/core/mt64_test.cpp) — swapping this engine in can never change a
// seeded corpus.
#pragma once

#include <array>
#include <cstdint>

namespace ftsched {

class LazyMt64 {
 public:
  using result_type = std::uint64_t;

  explicit LazyMt64(std::uint64_t seed) { reseed(seed); }

  /// Re-arms the engine on a new seed, reusing the state storage.
  void reseed(std::uint64_t seed) noexcept {
    x_[0] = seed;
    seeded_ = 1;
    next_ = 0;
    full_ = false;
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept {
    if (!full_) {
      if (next_ < kHalf) {
        // Twisted word i depends on seeded words i, i+1, and i+156 only —
        // seed exactly that far and twist one word in place.
        seed_to(next_ + kHalf);
        const std::uint64_t y =
            (x_[next_] & kUpperMask) | (x_[next_ + 1] & kLowerMask);
        x_[next_] = x_[next_ + kHalf] ^ (y >> 1) ^ ((y & 1) ? kMatrixA : 0);
        return temper(x_[next_++]);
      }
      // Drained past the lazy window (draw 156+): finish the first twist —
      // words 0..155 already hold their twisted values — and switch to the
      // standard full-block behaviour for good.
      for (std::size_t i = kHalf; i + 1 < kN; ++i) {
        const std::uint64_t y =
            (x_[i] & kUpperMask) | (x_[i + 1] & kLowerMask);
        x_[i] = x_[i - kHalf] ^ (y >> 1) ^ ((y & 1) ? kMatrixA : 0);
      }
      const std::uint64_t y = (x_[kN - 1] & kUpperMask) | (x_[0] & kLowerMask);
      x_[kN - 1] = x_[kHalf - 1] ^ (y >> 1) ^ ((y & 1) ? kMatrixA : 0);
      full_ = true;
    }
    if (next_ == kN) {
      twist();
      next_ = 0;
    }
    return temper(x_[next_++]);
  }

 private:
  static constexpr std::size_t kN = 312;
  static constexpr std::size_t kHalf = 156;  // the reference's MM
  static constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
  static constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
  static constexpr std::uint64_t kLowerMask = 0x000000007FFFFFFFULL;
  static constexpr std::uint64_t kInitMult = 6364136223846793005ULL;

  void seed_to(std::size_t last) noexcept {
    for (; seeded_ <= last; ++seeded_) {
      x_[seeded_] = kInitMult * (x_[seeded_ - 1] ^ (x_[seeded_ - 1] >> 62)) +
                    seeded_;
    }
  }

  void twist() noexcept {
    for (std::size_t i = 0; i < kN; ++i) {
      const std::uint64_t y =
          (x_[i] & kUpperMask) | (x_[(i + 1) % kN] & kLowerMask);
      x_[i] = x_[(i + kHalf) % kN] ^ (y >> 1) ^ ((y & 1) ? kMatrixA : 0);
    }
  }

  [[nodiscard]] static std::uint64_t temper(std::uint64_t z) noexcept {
    z ^= (z >> 29) & 0x5555555555555555ULL;
    z ^= (z << 17) & 0x71D67FFFEDA60000ULL;
    z ^= (z << 37) & 0xFFF7EEE000000000ULL;
    z ^= z >> 43;
    return z;
  }

  std::array<std::uint64_t, kN> x_;
  std::size_t seeded_ = 0;  // seeded words (prefix length), pre-full only
  std::size_t next_ = 0;    // next output index within the current block
  bool full_ = false;       // left the lazy window; x_ is a twisted block
};

}  // namespace ftsched
