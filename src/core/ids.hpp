// Strongly typed identifiers.
//
// Every entity in ftsched (operation, data-dependency, processor, link, ...)
// is identified by a dense index into its owning container. Raw `int` indices
// are easy to mix up across containers, so each entity gets its own Id type:
// `OperationId`, `ProcessorId`, ... They convert explicitly, compare, hash,
// and can key std::vector-based lookup tables through `value()`.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace ftsched {

/// CRTP-free strong index. `Tag` makes distinct instantiations incompatible.
template <class Tag>
class Id {
 public:
  using underlying_type = std::int32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) noexcept : value_(v) {}

  /// Dense index for vector-backed tables; negative means invalid.
  [[nodiscard]] constexpr underlying_type value() const noexcept {
    return value_;
  }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ >= 0; }

  /// Convenience for indexing: `table[id.index()]`.
  [[nodiscard]] constexpr std::size_t index() const noexcept {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying_type value_ = -1;
};

struct OperationTag {};
struct DependencyTag {};
struct ProcessorTag {};
struct LinkTag {};

/// Vertex of the algorithm graph (comp / mem / extio).
using OperationId = Id<OperationTag>;
/// Edge of the algorithm graph (a data-dependency).
using DependencyId = Id<DependencyTag>;
/// Vertex of the architecture graph (one computation unit per processor).
using ProcessorId = Id<ProcessorTag>;
/// Hyper-edge of the architecture graph (point-to-point link or bus).
using LinkId = Id<LinkTag>;

template <class Tag>
[[nodiscard]] std::string to_string(Id<Tag> id) {
  return id.valid() ? std::to_string(id.value()) : std::string("<invalid>");
}

}  // namespace ftsched

template <class Tag>
struct std::hash<ftsched::Id<Tag>> {
  std::size_t operator()(ftsched::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
