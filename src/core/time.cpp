#include "core/time.hpp"

#include <cmath>
#include <cstdio>

namespace ftsched {

std::string time_to_string(Time t) {
  if (is_infinite(t)) return "inf";
  if (t == -kInfinite) return "-inf";
  // Integral values print without a decimal point; everything else with up
  // to four significant decimals, trailing zeros trimmed.
  const double rounded = std::round(t);
  if (time_eq(t, rounded) && std::abs(rounded) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", rounded);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4f", t);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace ftsched
