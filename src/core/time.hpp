// Time representation for ftsched.
//
// The paper (Girault et al., RR-4006) expresses all durations in fractional
// "time units" (0.5, 1.25, ...). We represent time as double and provide
// epsilon-aware comparison helpers so schedule arithmetic (sums of many small
// durations) never misclassifies equal dates because of floating-point noise.
//
// A duration of `kInfinite` marks an impossible assignment: the
// characteristics tables use it for "this operation cannot run on this
// processor" (the paper's infinity entries).
#pragma once

#include <limits>
#include <string>

namespace ftsched {

/// Scheduling dates and durations, in the paper's abstract "time units".
using Time = double;

/// "Cannot execute here" marker used in characteristics tables.
inline constexpr Time kInfinite = std::numeric_limits<Time>::infinity();

/// Comparison slack. Durations in practice have >= 1e-3 granularity; 1e-9
/// absorbs accumulated rounding without ever merging distinct dates.
inline constexpr Time kTimeEpsilon = 1e-9;

/// True if `t` marks an impossible assignment.
[[nodiscard]] constexpr bool is_infinite(Time t) noexcept {
  return t == kInfinite;
}

[[nodiscard]] constexpr bool time_eq(Time a, Time b) noexcept {
  if (is_infinite(a) || is_infinite(b)) return a == b;
  const Time d = a - b;
  return d < kTimeEpsilon && d > -kTimeEpsilon;
}

[[nodiscard]] constexpr bool time_lt(Time a, Time b) noexcept {
  return a < b - kTimeEpsilon;
}

[[nodiscard]] constexpr bool time_le(Time a, Time b) noexcept {
  return a < b + kTimeEpsilon;
}

[[nodiscard]] constexpr bool time_gt(Time a, Time b) noexcept {
  return time_lt(b, a);
}

[[nodiscard]] constexpr bool time_ge(Time a, Time b) noexcept {
  return time_le(b, a);
}

/// Half-open interval [start, end) occupied on some resource.
struct Interval {
  Time start = 0;
  Time end = 0;

  [[nodiscard]] constexpr Time length() const noexcept { return end - start; }

  /// True if the two intervals share a point of positive measure.
  [[nodiscard]] constexpr bool overlaps(const Interval& other) const noexcept {
    return time_lt(start, other.end) && time_lt(other.start, end);
  }

  [[nodiscard]] constexpr bool contains(Time t) const noexcept {
    return time_le(start, t) && time_lt(t, end);
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// Renders a time compactly ("3", "4.5", "1.25", "inf") for diagnostics,
/// Gantt charts, and benchmark tables.
[[nodiscard]] std::string time_to_string(Time t);

}  // namespace ftsched
