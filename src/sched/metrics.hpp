// Comparison metrics between schedules: the paper's evaluation criteria
// (§5.6): fault-tolerance overhead, message counts, resource utilisation.
#pragma once

#include <cstddef>

#include "core/time.hpp"
#include "sched/schedule.hpp"

namespace ftsched {

struct ScheduleMetrics {
  Time makespan = 0;
  /// Active inter-processor transfers in the failure-free run.
  std::size_t inter_processor_comms = 0;
  /// Passive (failure-only) transfer slots (solution 1 backups).
  std::size_t passive_comms = 0;
  /// Total replica placements.
  std::size_t replicas = 0;
  /// Sum of busy time across computation units divided by
  /// (#processors * makespan); 0 when makespan is 0.
  double processor_utilisation = 0;
  /// Sum of busy time across links divided by (#links * makespan).
  double link_utilisation = 0;
  /// Throughput bound for the repeated reactive execution (§4.2): the next
  /// iteration cannot start faster than the busiest resource can drain, so
  /// the minimum iteration period is the largest per-resource busy time
  /// (computation units and links). Always <= makespan.
  Time min_period = 0;
};

[[nodiscard]] ScheduleMetrics compute_metrics(const Schedule& schedule);

/// Fault-tolerance overhead (§6.6 / §7.4): ft.makespan - baseline.makespan.
[[nodiscard]] Time overhead(const Schedule& fault_tolerant,
                            const Schedule& baseline);

}  // namespace ftsched
