#include "sched/gantt.hpp"

#include <algorithm>
#include <cmath>

#include "core/text.hpp"

namespace ftsched {

std::string to_text(const Schedule& schedule) {
  const Problem& problem = schedule.problem();
  std::string out;
  std::size_t label_width = 0;
  for (const Processor& proc : problem.architecture->processors()) {
    label_width = std::max(label_width, proc.name.size());
  }
  for (const Link& link : problem.architecture->links()) {
    label_width = std::max(label_width, link.name.size());
  }

  for (const Processor& proc : problem.architecture->processors()) {
    out += pad_right(proc.name, label_width) + " |";
    for (const ScheduledOperation* placement :
         schedule.operations_on(proc.id)) {
      out += ' ' + problem.algorithm->operation(placement->op).name + ':' +
             std::to_string(placement->rank) + '[' +
             time_to_string(placement->start) + ',' +
             time_to_string(placement->end) + ']';
    }
    out += '\n';
  }
  for (const Link& link : problem.architecture->links()) {
    out += pad_right(link.name, label_width) + " |";
    for (const auto& [comm, segment] : schedule.segments_on(link.id)) {
      out += ' ' + problem.algorithm->dependency(comm->dep).name + '[' +
             time_to_string(segment->start) + ',' +
             time_to_string(segment->end) + ']';
    }
    out += '\n';
  }
  out += "makespan = " + time_to_string(schedule.makespan()) + '\n';
  return out;
}

namespace {

/// Writes `label` into cells [first, last) of `row`, clipped and centred.
void stamp(std::string& row, std::size_t first, std::size_t last,
           const std::string& label) {
  if (last > row.size()) last = row.size();
  if (first >= last) return;
  for (std::size_t i = first; i < last; ++i) row[i] = '=';
  if (first < row.size()) row[first] = '|';
  if (last - 1 < row.size() && last - 1 > first) row[last - 1] = '|';
  const std::size_t room = last - first;
  const std::size_t len = std::min(label.size(), room);
  const std::size_t offset = first + (room - len) / 2;
  for (std::size_t i = 0; i < len; ++i) row[offset + i] = label[i];
}

}  // namespace

std::string to_gantt(const Schedule& schedule, std::size_t columns) {
  const Problem& problem = schedule.problem();
  const Time makespan = schedule.makespan();
  if (time_le(makespan, 0) || columns < 8) return to_text(schedule);
  const double scale = static_cast<double>(columns) / makespan;
  auto cell = [&](Time t) {
    return static_cast<std::size_t>(std::lround(t * scale));
  };

  std::size_t label_width = 0;
  for (const Processor& proc : problem.architecture->processors()) {
    label_width = std::max(label_width, proc.name.size());
  }
  for (const Link& link : problem.architecture->links()) {
    label_width = std::max(label_width, link.name.size());
  }

  std::string out;
  for (const Processor& proc : problem.architecture->processors()) {
    std::string row(columns + 1, ' ');
    for (const ScheduledOperation* placement :
         schedule.operations_on(proc.id)) {
      std::string label = problem.algorithm->operation(placement->op).name;
      if (placement->is_main() &&
          schedule.kind() != HeuristicKind::kBase) {
        label += '*';
      }
      stamp(row, cell(placement->start), cell(placement->end), label);
    }
    out += pad_right(proc.name, label_width) + " |" + row + '\n';
  }
  for (const Link& link : problem.architecture->links()) {
    std::string row(columns + 1, ' ');
    for (const auto& [comm, segment] : schedule.segments_on(link.id)) {
      stamp(row, cell(segment->start), cell(segment->end),
            problem.algorithm->dependency(comm->dep).name);
    }
    out += pad_right(link.name, label_width) + " |" + row + '\n';
  }
  out += pad_right("", label_width) + " 0" +
         pad_left("t=" + time_to_string(makespan), columns) + '\n';
  return out;
}

}  // namespace ftsched
