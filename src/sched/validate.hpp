// Structural validation of a schedule against its problem.
//
// The validator re-derives every invariant a correct static schedule must
// satisfy (DESIGN.md §6 item 1) and reports violations as readable strings.
// It is used by the test suite on every schedule any heuristic produces,
// including randomized property sweeps.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace ftsched {

/// Empty result == valid schedule. Checks:
///  * replication: every operation has exactly K+1 replicas (1 for the
///    baseline), ranks 0..K, on distinct processors allowed by the exec
///    table, each with end - start equal to its WCET;
///  * resource exclusivity: replicas on one processor never overlap; active
///    segments on one link never overlap;
///  * communication sanity: an active comm starts at or after its sending
///    replica's completion, its segments follow a contiguous link route from
///    the sender to `to`, and solution-1 schedules only main-replica sends;
///  * precedence: every replica has every input value available on its
///    processor (local replica or delivered comm) no later than its start;
///  * solution 2 redundancy: for every dependency and every consumer
///    processor without a local producer replica, every producer replica's
///    value is delivered to that processor;
///  * deadline: makespan within problem.deadline.
[[nodiscard]] std::vector<std::string> validate(const Schedule& schedule);

}  // namespace ftsched
