// Tunables of the list-scheduling engine, exposed for ablation studies.
#pragma once

#include <vector>

namespace ftsched {

struct ExplainLog;

struct SchedulerOptions {
  /// Adds to sigma(o, p) the cheapest communication duration of every
  /// outgoing dependency whose destination operation cannot execute on p.
  /// The paper's S(n) "takes into account the communication times between
  /// o_i and the main processor of its predecessors and successors" (§6.2);
  /// successors are unscheduled when o_i is a candidate, so this term is our
  /// static approximation of the successor part: placing an operation on a
  /// processor its successor is barred from provably costs at least one
  /// transfer. The ablation benchmark bench_overhead_sweep measures its
  /// effect; disabling it makes the baseline place the last computation of
  /// example 1 on P3, where the output extio cannot run (makespan 9.6
  /// instead of 8.8).
  bool successor_placement_penalty = true;

  /// Solution 2 only: route the K+1 replicated transfers of a dependency
  /// over pairwise link-disjoint paths (replica rank r takes the r-th
  /// disjoint route, wrapping when the topology offers fewer). With
  /// link-disjoint routes, the redundancy that masks processor failures
  /// also masks individual link failures — the paper's §8 future work.
  /// Costs longer detours on sparse topologies; no effect on a single bus.
  bool disjoint_comm_routes = false;

  /// Hybrid heuristic only: dependencies whose transfers are actively
  /// replicated (solution-2 semantics); every other dependency keeps
  /// solution 1's time-redundant protocol. Indexed by dependency id; an
  /// empty vector means all-passive. schedule_hybrid() drives this knob
  /// automatically; expose it here for manual ablations.
  std::vector<bool> active_comm_deps;

  /// Incremental candidate re-evaluation: cache every (candidate,
  /// processor) evaluation together with its version-stamped read-set
  /// (processor availability, link timelines, committed-delivery entries)
  /// and, at each mSn step, re-evaluate only the candidates whose read-set
  /// a commit actually invalidated. Schedules are byte-identical with the
  /// cache on or off (see DESIGN.md "Scheduler performance" for the
  /// determinism argument, and the golden-hash test sweep that enforces
  /// it); OFF forces the pre-incremental full rescan every step — the
  /// reference behaviour for equivalence tests and A/B benchmarks.
  bool incremental_select = true;

  /// Decision log: when non-null, the engine appends one ExplainStep per
  /// list-scheduling step — every evaluated (candidate, processor) pair
  /// with its σ components and the decision taken (sched/explain.hpp).
  /// Owned by the caller; recording costs one extra pass over the
  /// candidate evaluations, so leave null outside audits.
  ExplainLog* explain = nullptr;
};

}  // namespace ftsched
