// Tunables of the list-scheduling engine, exposed for ablation studies.
#pragma once

#include <vector>

#include "core/ids.hpp"

namespace ftsched {

struct ExplainLog;

/// Hard scheduling constraints threaded through the list scheduler — the
/// vocabulary the counterexample-guided repair engine (campaign/repair.hpp)
/// speaks. Each accepted repair move becomes one entry here; re-running the
/// scheduler under the accumulated set replays the same deterministic
/// algorithm inside a restricted decision space, so a repaired schedule is
/// an ordinary Schedule, certifiable and simulatable like any other.
///
/// Semantics:
///  * Pin — the kept K+1 placement set of `op` must contain `proc`
///    (check_input rejects pins on disallowed processors and more pins
///    than replicas). The remaining slots are filled by pressure order as
///    usual, so a pin perturbs only what it names.
///  * Forbid — `op` is never placed on `proc` (the complement move;
///    check_input re-verifies K+1 allowed processors remain).
///  * ForbidLink — every transfer of `dep` is routed over the shortest
///    route that avoids `link` (computed once per (from, to) pair at
///    init). When the ban disconnects a pair, the unconstrained shortest
///    route is used — same fallback contract as disjoint_comm_routes.
struct SchedulingConstraints {
  struct Pin {
    OperationId op;
    ProcessorId proc;
    friend bool operator==(const Pin&, const Pin&) = default;
  };
  struct Forbid {
    OperationId op;
    ProcessorId proc;
    friend bool operator==(const Forbid&, const Forbid&) = default;
  };
  struct ForbidLink {
    DependencyId dep;
    LinkId link;
    friend bool operator==(const ForbidLink&, const ForbidLink&) = default;
  };

  std::vector<Pin> pinned;
  std::vector<Forbid> forbidden;
  std::vector<ForbidLink> forbidden_links;

  [[nodiscard]] bool empty() const noexcept {
    return pinned.empty() && forbidden.empty() && forbidden_links.empty();
  }
};

struct SchedulerOptions {
  /// Adds to sigma(o, p) the cheapest communication duration of every
  /// outgoing dependency whose destination operation cannot execute on p.
  /// The paper's S(n) "takes into account the communication times between
  /// o_i and the main processor of its predecessors and successors" (§6.2);
  /// successors are unscheduled when o_i is a candidate, so this term is our
  /// static approximation of the successor part: placing an operation on a
  /// processor its successor is barred from provably costs at least one
  /// transfer. The ablation benchmark bench_overhead_sweep measures its
  /// effect; disabling it makes the baseline place the last computation of
  /// example 1 on P3, where the output extio cannot run (makespan 9.6
  /// instead of 8.8).
  bool successor_placement_penalty = true;

  /// Solution 2 only: route the K+1 replicated transfers of a dependency
  /// over pairwise link-disjoint paths (replica rank r takes the r-th
  /// disjoint route, wrapping when the topology offers fewer). With
  /// link-disjoint routes, the redundancy that masks processor failures
  /// also masks individual link failures — the paper's §8 future work.
  /// Costs longer detours on sparse topologies; no effect on a single bus.
  bool disjoint_comm_routes = false;

  /// Hybrid heuristic only: dependencies whose transfers are actively
  /// replicated (solution-2 semantics); every other dependency keeps
  /// solution 1's time-redundant protocol. Indexed by dependency id; an
  /// empty vector means all-passive. schedule_hybrid() drives this knob
  /// automatically; expose it here for manual ablations.
  std::vector<bool> active_comm_deps;

  /// Incremental candidate re-evaluation: cache every (candidate,
  /// processor) evaluation together with its version-stamped read-set
  /// (processor availability, link timelines, committed-delivery entries)
  /// and, at each mSn step, re-evaluate only the candidates whose read-set
  /// a commit actually invalidated. Schedules are byte-identical with the
  /// cache on or off (see DESIGN.md "Scheduler performance" for the
  /// determinism argument, and the golden-hash test sweep that enforces
  /// it); OFF forces the pre-incremental full rescan every step — the
  /// reference behaviour for equivalence tests and A/B benchmarks.
  bool incremental_select = true;

  /// Hard placement / routing constraints (see SchedulingConstraints).
  /// Empty (the default) costs nothing: the engine's hot paths test one
  /// boolean and take the unconstrained branch, byte-identical to the
  /// pre-constraint engine (golden-hash and allocation tests enforce it).
  SchedulingConstraints constraints;

  /// Decision log: when non-null, the engine appends one ExplainStep per
  /// list-scheduling step — every evaluated (candidate, processor) pair
  /// with its σ components and the decision taken (sched/explain.hpp).
  /// Owned by the caller; recording costs one extra pass over the
  /// candidate evaluations, so leave null outside audits.
  ExplainLog* explain = nullptr;
};

}  // namespace ftsched
