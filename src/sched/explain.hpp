// Scheduler decision log: why the list scheduler placed what where.
//
// The paper's heuristic is opaque in exactly the place users need to audit
// — each mSn step evaluates every candidate operation on every allowed
// processor, keeps the K+1 lowest-pressure assignments per candidate, and
// schedules the candidate whose kept set holds the *largest* pressure
// (most urgent, §6.2). Ties are broken by the deterministic order
// documented in heuristics.hpp. With SchedulerOptions::explain pointing at
// an ExplainLog, the engine records, per step, every evaluated
// (operation, processor) pair with the σ(o,p) = S + Δ + E − R components
// plus the successor-placement penalty, which assignments were kept, and
// which operation won — so pressure ties and tie-break order are auditable
// (trace_tool explain renders this log).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/characteristics.hpp"
#include "core/ids.hpp"
#include "core/time.hpp"

namespace ftsched {

/// One tentative (operation, processor) evaluation of one mSn step.
struct ExplainCandidate {
  OperationId op;
  ProcessorId proc;
  /// S: earliest start given the committed partial schedule.
  Time start = 0;
  /// Δ: WCET of op on proc.
  Time duration = 0;
  /// E: optimistic tail from op's completion to the sinks.
  Time tail = 0;
  /// Successor-placement penalty (SchedulerOptions); 0 when disabled.
  Time penalty = 0;
  /// σ = S + Δ + E − R + penalty (R is ExplainLog::critical_path).
  Time sigma = 0;
  /// Among the K+1 lowest-pressure assignments of its operation.
  bool kept = false;
};

/// One mSn step: the full candidate set and the decision.
struct ExplainStep {
  std::size_t step = 0;
  OperationId chosen;
  /// The chosen operation's urgency: the largest σ of its kept set (the
  /// max–min rule of §6.2).
  Time urgency = 0;
  /// Every evaluation of this step, in candidate-then-processor order.
  std::vector<ExplainCandidate> candidates;
};

/// Filled by the engine when SchedulerOptions::explain points here; one
/// entry per scheduled operation, in scheduling order.
struct ExplainLog {
  /// R: the optimistic critical path the σ values are measured against.
  Time critical_path = 0;
  std::vector<ExplainStep> steps;

  /// Per-step tables (op, proc, S, Δ, E, penalty, σ, kept/chosen), in the
  /// problem's names.
  [[nodiscard]] std::string to_text(const Problem& problem) const;
};

}  // namespace ftsched
