// Static distributed schedule: the output of every heuristic in this
// library and the input of the executive generator and the simulator.
//
// A schedule places K+1 replicas of every operation on K+1 distinct
// processors (K = 0 for the non-fault-tolerant baseline) and materializes
// the inter-processor communications the placement implies:
//
//  * active communications occupy time on links in the failure-free run
//    (all comms of the baseline and of solution 2; the main replica's sends
//    in solution 1);
//  * passive communications (solution 1 only) are the backup replicas'
//    OpComm procedures of Figure 12: they hold a statically computed
//    election position and materialize on a link only after a failure.
//
// Replicas of one operation are totally ordered by `rank`: rank 0 is the
// main replica (earliest completion date, §6.1 item 4), ranks 1..K are the
// backups in election order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/characteristics.hpp"
#include "core/ids.hpp"
#include "core/time.hpp"

namespace ftsched {

enum class HeuristicKind {
  /// Non-fault-tolerant SynDEx baseline (§4.4): K = 0, no replication.
  kBase,
  /// Solution 1 (§6): active replication of operations, time redundancy of
  /// communications (only the main replica sends; backups watch timeouts).
  kSolution1,
  /// Solution 2 (§7): active replication of operations AND communications
  /// (all replicas send; receivers keep the first arrival).
  kSolution2,
  /// Hybrid (§5.3's redundancy trade-off): solution 1's operation
  /// replication with a per-dependency choice between time-redundant
  /// (passive backups + timeouts) and actively replicated communications.
  kHybrid,
};

[[nodiscard]] std::string to_string(HeuristicKind kind);

/// One replica of one operation placed on one processor.
struct ScheduledOperation {
  OperationId op;
  /// Election position: 0 = main replica, 1..K = backups by completion date.
  int rank = 0;
  ProcessorId processor;
  Time start = 0;
  Time end = 0;

  [[nodiscard]] bool is_main() const noexcept { return rank == 0; }
  [[nodiscard]] Interval interval() const noexcept { return {start, end}; }
};

/// Occupation of one link by one communication (one hop of its route).
struct CommSegment {
  LinkId link;
  Time start = 0;
  Time end = 0;

  [[nodiscard]] Interval interval() const noexcept { return {start, end}; }
};

/// One inter-processor transfer of one data-dependency's value.
struct ScheduledComm {
  DependencyId dep;
  /// Rank of the sending replica of the dependency's source operation.
  int sender_rank = 0;
  ProcessorId from;
  /// The destination processor this transfer was created for.
  ProcessorId to;
  /// Every processor that observes the value (on a bus broadcast, all
  /// endpoints of the bus; on point-to-point, the route's hops).
  std::vector<ProcessorId> delivered_to;
  /// Link occupation per hop, in route order. Empty for passive comms.
  std::vector<CommSegment> segments;
  /// False for solution 1's backup OpComm entries, which send only after a
  /// failure and occupy no link time in the failure-free run.
  bool active = true;
  /// Solution 1 on point-to-point links: an explicit end-of-distribution
  /// send from the main replica to a backup processor, scheduled after
  /// every consumer delivery of the dependency, so the backup can certify
  /// that the main completed its sends (§6.1: the main sends "to all the
  /// backup processors of o"). Never needed on a bus, where the single
  /// consumer broadcast doubles as the certificate.
  bool liveness = false;

  /// Nominal delivery date at `to` (end of the last segment).
  [[nodiscard]] Time arrival() const {
    return segments.empty() ? kInfinite : segments.back().end;
  }
};

/// Non-allocating view over the replicas of one operation, ascending rank.
/// A borrowed range: valid until the next add_operation on the schedule.
/// This is the hot-path alternative to Schedule::replicas(), which builds a
/// std::vector of pointers per call — the scheduler's inner loop and the
/// simulator's watcher machinery iterate replicas millions of times per
/// campaign, so the query must not touch the heap.
class ReplicaView {
 public:
  class iterator {
   public:
    using value_type = const ScheduledOperation*;
    constexpr iterator(const std::size_t* at,
                       const ScheduledOperation* ops) noexcept
        : at_(at), ops_(ops) {}
    const ScheduledOperation* operator*() const noexcept {
      return &ops_[*at_];
    }
    iterator& operator++() noexcept {
      ++at_;
      return *this;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const std::size_t* at_;
    const ScheduledOperation* ops_;
  };

  constexpr ReplicaView() noexcept = default;
  constexpr ReplicaView(const std::size_t* first, std::size_t count,
                        const ScheduledOperation* ops) noexcept
      : first_(first), count_(count), ops_(ops) {}

  [[nodiscard]] iterator begin() const noexcept { return {first_, ops_}; }
  [[nodiscard]] iterator end() const noexcept {
    return {first_ + count_, ops_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Rank-`i` replica. Precondition: i < size().
  [[nodiscard]] const ScheduledOperation& operator[](
      std::size_t i) const noexcept {
    return ops_[first_[i]];
  }
  /// The main replica. Precondition: !empty().
  [[nodiscard]] const ScheduledOperation& front() const noexcept {
    return ops_[first_[0]];
  }

 private:
  const std::size_t* first_ = nullptr;
  std::size_t count_ = 0;
  const ScheduledOperation* ops_ = nullptr;
};

class Schedule {
 public:
  Schedule(const Problem& problem, HeuristicKind kind);

  [[nodiscard]] const Problem& problem() const noexcept { return *problem_; }
  [[nodiscard]] HeuristicKind kind() const noexcept { return kind_; }
  /// K, the number of tolerated failures this schedule was built for.
  [[nodiscard]] int failures_tolerated() const noexcept { return k_; }

  /// True when `dep`'s value travels by actively replicated transfers
  /// (every producer replica sends, first arrival wins) rather than by the
  /// time-redundant main-sends/backups-watch protocol. All-true under
  /// solution 2, all-false under solution 1, per-dependency under the
  /// hybrid; irrelevant for the baseline (single replicas).
  [[nodiscard]] bool uses_active_comms(DependencyId dep) const;

  /// Marks `dep` as actively replicated (set by the hybrid engine).
  void set_active_comms(DependencyId dep);

  /// Count of actively replicated dependencies.
  [[nodiscard]] std::size_t active_comm_dep_count() const;

  /// Records a replica placement. Replicas of one op must be added in rank
  /// order on distinct processors.
  void add_operation(const ScheduledOperation& placement);
  void add_comm(ScheduledComm comm);

  [[nodiscard]] const std::vector<ScheduledOperation>& operations()
      const noexcept {
    return ops_;
  }
  [[nodiscard]] const std::vector<ScheduledComm>& comms() const noexcept {
    return comms_;
  }

  /// All replicas of `op`, ascending rank. Empty if not (yet) scheduled.
  /// Allocates a pointer vector per call; hot paths use replicas_view().
  [[nodiscard]] std::vector<const ScheduledOperation*> replicas(
      OperationId op) const;

  /// Allocation-free variant of replicas(): a borrowed view, invalidated by
  /// the next add_operation.
  [[nodiscard]] ReplicaView replicas_view(OperationId op) const {
    const auto& index = replica_index_[op.index()];
    return {index.data(), index.size(), ops_.data()};
  }

  /// The main replica of `op`; nullptr if not scheduled.
  [[nodiscard]] const ScheduledOperation* main(OperationId op) const;

  /// The replica of `op` on `proc`; nullptr if none.
  [[nodiscard]] const ScheduledOperation* replica_on(OperationId op,
                                                     ProcessorId proc) const;

  [[nodiscard]] bool is_scheduled(OperationId op) const {
    return !replica_index_[op.index()].empty();
  }

  /// Replica placements on `proc`, ascending start date.
  [[nodiscard]] std::vector<const ScheduledOperation*> operations_on(
      ProcessorId proc) const;

  /// Active communication segments crossing `link`, ascending start date.
  [[nodiscard]] std::vector<std::pair<const ScheduledComm*, const CommSegment*>>
  segments_on(LinkId link) const;

  /// Active transfers carrying `dep`.
  [[nodiscard]] std::vector<const ScheduledComm*> comms_of(
      DependencyId dep) const;

  /// End of the failure-free run: max completion over replicas and active
  /// communication segments.
  [[nodiscard]] Time makespan() const;

  /// Count of active inter-processor transfers (the paper's message-count
  /// metric of §6.4).
  [[nodiscard]] std::size_t active_comm_count() const;

  /// Hop sequence (from, relays..., to) of an active comm, reconstructed
  /// from its segments — the route it was actually scheduled on, which may
  /// differ from the shortest one under disjoint routing. hops[i] feeds
  /// segment i. Precondition: the comm has segments forming a contiguous
  /// route (enforced by the validator).
  [[nodiscard]] std::vector<ProcessorId> comm_hops(
      const ScheduledComm& comm) const;

 private:
  const Problem* problem_;
  HeuristicKind kind_;
  int k_;
  std::vector<ScheduledOperation> ops_;
  std::vector<ScheduledComm> comms_;
  /// Per operation: indices into ops_, ascending rank.
  std::vector<std::vector<std::size_t>> replica_index_;
  /// Per dependency: hybrid per-dependency comm policy (see
  /// uses_active_comms).
  std::vector<char> active_comm_;
};

/// FNV-1a digest of every byte of scheduling output: kind, K, per-dependency
/// comm policy, each replica placement (op, rank, processor, start, end) and
/// each communication (dep, sender rank, endpoints, delivered_to, segments,
/// flags), with times hashed by IEEE-754 bit pattern. Two schedules hash
/// equal iff the engine made byte-identical decisions — the determinism
/// contract the golden-hash test sweep pins across engine rewrites.
[[nodiscard]] std::uint64_t schedule_hash(const Schedule& schedule);

}  // namespace ftsched
