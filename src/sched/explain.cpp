#include "sched/explain.hpp"

#include "arch/architecture_graph.hpp"
#include "core/text.hpp"
#include "graph/algorithm_graph.hpp"

namespace ftsched {

std::string ExplainLog::to_text(const Problem& problem) const {
  const AlgorithmGraph& graph = *problem.algorithm;
  const ArchitectureGraph& arch = *problem.architecture;
  std::string out =
      "R (optimistic critical path) = " + time_to_string(critical_path) +
      "\n";
  for (const ExplainStep& step : steps) {
    out += "\nstep " + std::to_string(step.step) + ": scheduled " +
           graph.operation(step.chosen).name + " (urgency " +
           time_to_string(step.urgency) + ")\n";
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"candidate", "proc", "S", "delta", "E", "penalty",
                    "sigma", "decision"});
    for (const ExplainCandidate& c : step.candidates) {
      std::string decision;
      if (c.kept) decision = c.op == step.chosen ? "scheduled" : "kept";
      rows.push_back({graph.operation(c.op).name,
                      arch.processor(c.proc).name, time_to_string(c.start),
                      time_to_string(c.duration), time_to_string(c.tail),
                      time_to_string(c.penalty), time_to_string(c.sigma),
                      decision});
    }
    out += render_table(rows);
  }
  return out;
}

}  // namespace ftsched
