#include "sched/pressure.hpp"

namespace ftsched {

DagTiming optimistic_timing(const Problem& problem) {
  return compute_dag_timing(*problem.algorithm, [&](OperationId op) {
    const Time d = problem.exec->min_duration(op);
    FTSCHED_REQUIRE(!is_infinite(d),
                    "operation '" + problem.algorithm->operation(op).name +
                        "' has no allowed processor");
    return d;
  });
}

}  // namespace ftsched
