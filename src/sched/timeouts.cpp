#include "sched/timeouts.hpp"

#include <algorithm>

namespace ftsched {

namespace {

/// Worst-case transfer bound of `dep` from `from` to `to` over the static
/// route (§6.1 item 2: "the worst case upper-bound of the message
/// transmission delay").
Time transfer_bound(const Schedule& schedule, const RoutingTable& routing,
                    DependencyId dep, ProcessorId from, ProcessorId to) {
  const Route& route = routing.route(from, to);
  return schedule.problem().comm->route_duration(dep, route);
}

/// Date at which `proc` observes the main replica's statically scheduled
/// transfer of `dep` — the earliest end of a segment crossing a link `proc`
/// is attached to (bus snooping / relayed or direct delivery); kInfinite if
/// the static schedule gives `proc` nothing to observe.
Time static_observation(const Schedule& schedule, DependencyId dep,
                        ProcessorId proc) {
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  Time best = kInfinite;
  for (const ScheduledComm* comm : schedule.comms_of(dep)) {
    if (comm->sender_rank != 0) continue;
    for (const CommSegment& seg : comm->segments) {
      if (arch.link(seg.link).connects(proc)) {
        best = std::min(best, seg.end);
      }
    }
  }
  return best;
}

/// Date at which `proc` observes a transfer that *certifies* the main
/// replica finished distributing `dep`: a liveness send, or the final
/// consumer delivery. A backup must watch for the certificate, not the
/// first send — on point-to-point links the main serves consumers one by
/// one, and observing an early send proves nothing about the rest.
Time certifying_observation(const Schedule& schedule, DependencyId dep,
                            ProcessorId proc) {
  const ArchitectureGraph& arch = *schedule.problem().architecture;
  Time final_end = 0;
  const ScheduledComm* final_comm = nullptr;
  for (const ScheduledComm* comm : schedule.comms_of(dep)) {
    if (comm->liveness || comm->segments.empty()) continue;
    if (time_ge(comm->segments.back().end, final_end)) {
      final_end = comm->segments.back().end;
      final_comm = comm;
    }
  }
  Time best = kInfinite;
  for (const ScheduledComm* comm : schedule.comms_of(dep)) {
    if (comm->sender_rank != 0) continue;
    if (!comm->liveness && comm != final_comm) continue;
    for (const CommSegment& seg : comm->segments) {
      if (arch.link(seg.link).connects(proc)) {
        best = std::min(best, seg.end);
      }
    }
  }
  return best;
}

}  // namespace

TimeoutTable::TimeoutTable(const Schedule& schedule,
                           const RoutingTable& routing) {
  const AlgorithmGraph& graph = *schedule.problem().algorithm;
  send_dates_.resize(graph.dependency_count());

  for (const Dependency& dep : graph.dependencies()) {
    // Actively replicated dependencies (solution 2 / hybrid) need no watch
    // chains: every replica sends and the first arrival wins.
    if (schedule.uses_active_comms(dep.id)) continue;
    const auto senders = schedule.replicas_view(dep.src);
    if (senders.empty()) continue;

    // Send decision dates d_m, in election order.
    std::vector<Time>& d = send_dates_[dep.id.index()];
    d.resize(senders.size());
    d[0] = senders[0].end;
    for (std::size_t m = 1; m < senders.size(); ++m) {
      // Backup m has watched ranks 0..m-1; its last deadline is for m-1:
      // the later of the naive bound and the statically scheduled
      // observation date on m's own links.
      Time watch_end =
          d[m - 1] + transfer_bound(schedule, routing, dep.id,
                                    senders[m - 1].processor,
                                    senders[m].processor);
      if (m == 1) {
        const Time observed = certifying_observation(schedule, dep.id,
                                                     senders[m].processor);
        if (!is_infinite(observed)) watch_end = std::max(watch_end, observed);
      }
      d[m] = std::max(senders[m].end, watch_end);
    }

    // `backup` selects the watch semantics: a backup replica watches for
    // the main's end-of-distribution certificate; a consumer watches for
    // its own delivery.
    auto make_chain = [&](ProcessorId receiver, std::size_t watched_ranks,
                          bool backup) {
      TimeoutChain chain;
      chain.dep = dep.id;
      chain.receiver = receiver;
      for (std::size_t m = 0; m < watched_ranks; ++m) {
        TimeoutEntry entry;
        entry.rank = static_cast<int>(m);
        entry.sender = senders[m].processor;
        entry.send_date = d[m];
        entry.deadline = d[m] + transfer_bound(schedule, routing, dep.id,
                                               senders[m].processor,
                                               receiver);
        if (m == 0) {
          const Time observed =
              backup ? certifying_observation(schedule, dep.id, receiver)
                     : static_observation(schedule, dep.id, receiver);
          if (!is_infinite(observed)) {
            entry.deadline = std::max(entry.deadline, observed);
          }
        }
        chain.entries.push_back(entry);
      }
      chains_.push_back(std::move(chain));
    };

    // Consumers without a local producer replica watch the full chain.
    std::vector<ProcessorId> consumers;
    for (const ScheduledOperation* replica :
         schedule.replicas_view(dep.dst)) {
      if (schedule.replica_on(dep.src, replica->processor) == nullptr) {
        consumers.push_back(replica->processor);
      }
    }
    for (ProcessorId receiver : consumers) {
      make_chain(receiver, senders.size(), /*backup=*/false);
    }
    // Backup senders watch only the ranks before them — but only when the
    // value actually has remote consumers (otherwise there is nothing to
    // relay and no OpComm is generated).
    if (!consumers.empty()) {
      for (std::size_t m = 1; m < senders.size(); ++m) {
        make_chain(senders[m].processor, m, /*backup=*/true);
      }
    }
  }
}

const TimeoutChain* TimeoutTable::chain(DependencyId dep,
                                        ProcessorId receiver) const {
  for (const TimeoutChain& chain : chains_) {
    if (chain.dep == dep && chain.receiver == receiver) return &chain;
  }
  return nullptr;
}

Time TimeoutTable::send_date(DependencyId dep, int rank) const {
  const auto& d = send_dates_[dep.index()];
  if (rank < 0 || static_cast<std::size_t>(rank) >= d.size()) {
    return kInfinite;
  }
  return d[static_cast<std::size_t>(rank)];
}

}  // namespace ftsched
