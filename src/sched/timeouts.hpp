// Static timeout computation for solution 1 (paper §6.1 item 2 and §6.3).
//
// Under time-redundant communications only the main replica of a producer
// sends. Every processor that waits for the value — consumers without a
// local replica, and the producer's own backup replicas — watches the
// senders in election order with statically computed deadlines:
//
//   c_m        completion date of the producer's rank-m replica (static,
//              replicas execute actively whether or not failures occur);
//   d_0 = c_0  the main replica sends as soon as it completes;
//   d_m = max(c_m, t_{m-1}^{(m)})   for m >= 1: a backup sends once it has
//              both computed the value and exhausted its own watch chain;
//   t_m^{(i)} = d_m + delta(p_m -> p_i)   deadline by which p_i must have
//              received rank m's message, where delta is the worst-case
//              transfer bound over the static route.
//
// When t_m^{(i)} expires without a message, p_i marks p_m's communication
// unit faulty (Figure 10's fail flags) and watches rank m+1.
//
// Contention refinement: the paper's bound is the route transfer time, which
// excludes medium contention. The static schedule, however, fixes the exact
// date the main replica's transfer completes — including every queueing
// delay on the shared links — so for rank 0 we take
// max(formula, static observation date at the receiver). Without this a
// failure-free run would fire spurious timeouts (e.g. example 1's A->D
// broadcast is queued behind A->B and A->C on the bus and lands after the
// naive bound). Backup ranks have no static transfer, so their deadlines
// keep the formula bound; a late message is still accepted (a mistake can
// only mean an unnecessary backup send, §6.1 item 3).
#pragma once

#include <optional>
#include <vector>

#include "arch/routing.hpp"
#include "sched/schedule.hpp"

namespace ftsched {

/// One sender position in a receiver's watch chain.
struct TimeoutEntry {
  /// Election rank of the watched sender (0 = main).
  int rank = 0;
  ProcessorId sender;
  /// d_m: earliest date this sender decides to transmit, assuming all
  /// better-ranked senders failed.
  Time send_date = 0;
  /// t_m^{(i)}: date by which the receiver must have the value if this
  /// sender is alive.
  Time deadline = 0;
};

/// The watch chain of one (dependency, receiving processor) pair.
struct TimeoutChain {
  DependencyId dep;
  ProcessorId receiver;
  /// Ascending rank. A consumer watches every rank; the producer's rank-m
  /// backup watches ranks 0..m-1 only (Figure 12's OpComm).
  std::vector<TimeoutEntry> entries;
};

/// All watch chains of a solution-1 schedule. Also useful on the baseline
/// (chains of length one: pure failure detection without recovery).
class TimeoutTable {
 public:
  TimeoutTable(const Schedule& schedule, const RoutingTable& routing);

  /// Chain for `dep` observed at `receiver`; nullptr when the receiver
  /// hosts a replica of the producer or never consumes the value.
  [[nodiscard]] const TimeoutChain* chain(DependencyId dep,
                                          ProcessorId receiver) const;

  [[nodiscard]] const std::vector<TimeoutChain>& chains() const noexcept {
    return chains_;
  }

  /// d_m of the rank-m replica of `dep`'s producer; kInfinite for ranks
  /// beyond K.
  [[nodiscard]] Time send_date(DependencyId dep, int rank) const;

 private:
  std::vector<std::vector<Time>> send_dates_;  // per dep, per rank
  std::vector<TimeoutChain> chains_;
};

}  // namespace ftsched
