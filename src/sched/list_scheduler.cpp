// The greedy list-scheduling engine behind all three heuristics
// (paper Figures 11 and 20). One engine, two communication policies:
//
//  * kBase / kSolution1 — only the main replica of a producer sends; a value
//    delivered to a processor (directly, by bus broadcast, or while being
//    relayed) is reused by every later consumer on that processor.
//  * kSolution2 — every replica of the producer sends to every consumer
//    processor that lacks a local replica of the producer; the consumer
//    starts on the first arrival.
//
// The engine is deterministic: all the paper's random tie-breaks are
// replaced by ascending (pressure, completion date, processor id) and
// ascending operation id.
#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "arch/routing.hpp"
#include "core/text.hpp"
#include "graph/dag_algorithms.hpp"
#include "obs/span.hpp"
#include "sched/explain.hpp"
#include "sched/heuristics.hpp"
#include "sched/pressure.hpp"

namespace ftsched {

namespace {

class Engine {
 public:
  Engine(const Problem& problem, HeuristicKind kind, SchedulerOptions options)
      : problem_(problem),
        kind_(kind),
        options_(options),
        replicas_(kind == HeuristicKind::kBase
                      ? 1
                      : problem.failures_to_tolerate + 1),
        routing_(*problem.architecture),
        schedule_(problem, kind) {}

  Expected<Schedule> run() {
    FTSCHED_SPAN("sched.run");
    if (auto error = check_input()) return *error;
    for (const Dependency& dep : graph().dependencies()) {
      if (dep_active(dep.id)) schedule_.set_active_comms(dep.id);
    }
    timing_ = optimistic_timing(problem_);
    if (options_.explain != nullptr) {
      options_.explain->critical_path = timing_.critical_path;
    }
    init_state();
    if (auto error = main_loop()) return *error;
    schedule_mem_inputs();
    if (kind_ == HeuristicKind::kSolution1 ||
        kind_ == HeuristicKind::kHybrid) {
      schedule_liveness_comms();
      add_passive_comms();
    }
    if (time_gt(schedule_.makespan(), problem_.deadline)) {
      return Error{Error::Code::kDeadlineMissed,
                   "schedule completes at " +
                       time_to_string(schedule_.makespan()) +
                       ", after the deadline " +
                       time_to_string(problem_.deadline)};
    }
    return std::move(schedule_);
  }

 private:
  /// One tentative placement of a candidate operation on a processor.
  struct Assignment {
    ProcessorId proc;
    Time start = 0;
    Time end = 0;
    Time sigma = 0;
  };

  /// Does this dependency's value travel by actively replicated transfers?
  bool dep_active(DependencyId dep) const {
    if (kind_ == HeuristicKind::kSolution2) return true;
    if (kind_ != HeuristicKind::kHybrid) return false;
    return dep.index() < options_.active_comm_deps.size() &&
           options_.active_comm_deps[dep.index()];
  }

  const AlgorithmGraph& graph() const { return *problem_.algorithm; }
  const ArchitectureGraph& arch() const { return *problem_.architecture; }
  const ExecTable& exec() const { return *problem_.exec; }
  const CommTable& comm() const { return *problem_.comm; }

  std::optional<Error> check_input() const {
    std::vector<std::string> issues = graph().check();
    for (std::string& s : arch().check()) issues.push_back(std::move(s));
    for (std::string& s : comm().check()) issues.push_back(std::move(s));
    if (!issues.empty()) {
      return Error{Error::Code::kInvalidInput, join(issues, "; ")};
    }
    if (arch().processor_count() < static_cast<std::size_t>(replicas_)) {
      return Error{Error::Code::kInsufficientRedundancy,
                   "architecture has " +
                       std::to_string(arch().processor_count()) +
                       " processor(s); " + std::to_string(replicas_) +
                       " replicas are required"};
    }
    std::vector<std::string> redundancy =
        exec().check(static_cast<std::size_t>(replicas_));
    if (!redundancy.empty()) {
      return Error{Error::Code::kInsufficientRedundancy,
                   join(redundancy, "; ")};
    }
    return std::nullopt;
  }

  void init_state() {
    proc_ready_.assign(arch().processor_count(), 0);
    link_ready_.assign(arch().link_count(), 0);
    avail_.assign(graph().dependency_count(),
                  std::vector<std::vector<Time>>(
                      static_cast<std::size_t>(replicas_),
                      std::vector<Time>(arch().processor_count(), kInfinite)));
  }

  /// mSn loop of Figures 11/20.
  std::optional<Error> main_loop() {
    std::vector<bool> is_candidate(graph().operation_count(), false);
    std::vector<bool> done(graph().operation_count(), false);
    std::vector<int> missing(graph().operation_count(), 0);
    for (const Operation& op : graph().operations()) {
      missing[op.id.index()] =
          static_cast<int>(graph().predecessors(op.id).size());
      if (missing[op.id.index()] == 0) is_candidate[op.id.index()] = true;
    }

    for (std::size_t scheduled = 0; scheduled < graph().operation_count();
         ++scheduled) {
      // mSn.1 + mSn.2: evaluate every candidate on its K+1 best processors
      // and select the candidate whose kept set holds the largest pressure.
      OperationId best_op;
      std::vector<Assignment> best_kept;
      Time best_urgency = -kInfinite;
      ExplainStep step;
      {
        FTSCHED_SPAN("sched.select");
        for (const Operation& op : graph().operations()) {
          if (!is_candidate[op.id.index()] || done[op.id.index()]) continue;
          std::vector<Assignment> kept = keep_best(
              op.id, options_.explain != nullptr ? &step : nullptr);
          const Time urgency = kept.back().sigma;
          if (time_gt(urgency, best_urgency)) {
            best_urgency = urgency;
            best_op = op.id;
            best_kept = std::move(kept);
          }
        }
      }
      FTSCHED_REQUIRE(best_op.valid(),
                      "candidate list empty before all operations scheduled "
                      "(cyclic precedence?)");
      if (options_.explain != nullptr) {
        step.step = scheduled;
        step.chosen = best_op;
        step.urgency = best_urgency;
        options_.explain->steps.push_back(std::move(step));
      }

      // mSn.3: implement the operation and the communications it implies.
      {
        FTSCHED_SPAN("sched.commit");
        commit(best_op, best_kept);
      }

      // mSn.4: update the candidate list.
      done[best_op.index()] = true;
      is_candidate[best_op.index()] = false;
      for (OperationId succ : graph().successors(best_op)) {
        if (--missing[succ.index()] == 0) is_candidate[succ.index()] = true;
      }
    }
    return std::nullopt;
  }

  /// The K+1 assignments of `op` minimizing sigma, ascending
  /// (sigma, completion, processor id). check_input() guarantees enough
  /// allowed processors exist. With `explain`, every evaluation is
  /// appended to the step's candidate list (kept = among the K+1 best).
  std::vector<Assignment> keep_best(OperationId op, ExplainStep* explain) {
    std::vector<Assignment> all;
    {
      FTSCHED_SPAN("sched.pressure_eval");
      for (const Processor& proc : arch().processors()) {
        if (!exec().allowed(op, proc.id)) continue;
        all.push_back(evaluate(op, proc.id));
      }
    }
    {
      FTSCHED_SPAN("sched.candidate_sort");
      std::sort(all.begin(), all.end(), [](const Assignment& a,
                                           const Assignment& b) {
        if (!time_eq(a.sigma, b.sigma)) return a.sigma < b.sigma;
        if (!time_eq(a.end, b.end)) return a.end < b.end;
        return a.proc < b.proc;
      });
    }
    if (explain != nullptr) {
      for (std::size_t i = 0; i < all.size(); ++i) {
        const Assignment& a = all[i];
        ExplainCandidate candidate;
        candidate.op = op;
        candidate.proc = a.proc;
        candidate.start = a.start;
        candidate.duration = a.end - a.start;
        candidate.tail = timing_.tail[op.index()];
        candidate.penalty = successor_penalty(op, a.proc);
        candidate.sigma = a.sigma;
        candidate.kept = i < static_cast<std::size_t>(replicas_);
        explain->candidates.push_back(candidate);
      }
    }
    all.resize(static_cast<std::size_t>(replicas_));
    return all;
  }

  /// Tentative evaluation of (op, proc): earliest start given the committed
  /// partial schedule, scheduling the implied communications on a scratch
  /// copy of the link timelines.
  Assignment evaluate(OperationId op, ProcessorId proc) {
    std::vector<Time> links = link_ready_;
    const Time data = data_ready(op, proc, links, nullptr);
    const Time start = std::max(data, proc_ready_[proc.index()]);
    const Time duration = exec().duration(op, proc);
    Assignment a;
    a.proc = proc;
    a.start = start;
    a.end = start + duration;
    a.sigma = schedule_pressure(timing_, op, start, duration) +
              successor_penalty(op, proc);
    return a;
  }

  /// Static lower bound on the communications forced by placing `op` on a
  /// processor its successor cannot execute on (see SchedulerOptions).
  Time successor_penalty(OperationId op, ProcessorId proc) const {
    if (!options_.successor_placement_penalty) return 0;
    Time penalty = 0;
    for (DependencyId dep : graph().precedence_out(op)) {
      const OperationId dst = graph().dependency(dep).dst;
      if (exec().allowed(dst, proc)) continue;
      Time cheapest = kInfinite;
      for (const Link& link : arch().links()) {
        cheapest = std::min(cheapest, comm().duration(dep, link.id));
      }
      if (!is_infinite(cheapest)) penalty = std::max(penalty, cheapest);
    }
    return penalty;
  }

  /// Earliest date all of op's inputs are available on `proc`, scheduling
  /// missing transfers on `links` (scratch copy when `out` is null,
  /// the real timeline when committing, in which case created comms are
  /// appended to the schedule and the availability table is updated).
  Time data_ready(OperationId op, ProcessorId proc, std::vector<Time>& links,
                  Schedule* out) {
    Time ready = 0;
    for (DependencyId dep_id : graph().precedence_in(op)) {
      ready = std::max(ready, dependency_arrival(dep_id, proc, links, out));
    }
    return ready;
  }

  /// Earliest date the value of `dep` is available on `proc`.
  Time dependency_arrival(DependencyId dep_id, ProcessorId proc,
                          std::vector<Time>& links, Schedule* out) {
    const Dependency& dep = graph().dependency(dep_id);
    // Intra-processor: a local replica of the producer makes the value
    // available at its completion; no transfer is created (§6.1, §7.1).
    if (const ScheduledOperation* local =
            schedule_.replica_on(dep.src, proc)) {
      return local->end;
    }
    if (dep_active(dep_id)) {
      // Every producer replica sends; the consumer keeps the first arrival.
      // Under disjoint routing each transfer takes a route that avoids its
      // siblings' links AND relays, and never relays through another
      // replica's host — so no single link or processor death severs every
      // copy (§8 future work). When the bans disconnect a pair we fall back
      // to the shortest route (overlap accepted, reported by the
      // link-failure benchmarks).
      std::vector<bool> banned_links;
      std::vector<bool> banned_procs;
      if (options_.disjoint_comm_routes) {
        banned_links.assign(arch().link_count(), false);
        banned_procs.assign(arch().processor_count(), false);
        for (const ScheduledOperation* host : schedule_.replicas(dep.src)) {
          banned_procs[host->processor.index()] = true;
        }
      }
      Time first = kInfinite;
      for (const ScheduledOperation* sender : schedule_.replicas(dep.src)) {
        Time arrival = avail_[dep_id.index()][sender->rank][proc.index()];
        if (is_infinite(arrival)) {
          const Route* forced = nullptr;
          std::optional<Route> detour;
          if (options_.disjoint_comm_routes) {
            // The sender itself is of course allowed to originate.
            banned_procs[sender->processor.index()] = false;
            detour = routing_.route_avoiding(sender->processor, proc,
                                             banned_links, &banned_procs);
            banned_procs[sender->processor.index()] = true;
            if (detour.has_value()) forced = &*detour;
          }
          arrival = transfer(dep_id, *sender, proc, links, out, 0, false,
                             forced);
          if (options_.disjoint_comm_routes) {
            const Route& used =
                forced != nullptr ? *forced
                                  : routing_.route(sender->processor, proc);
            for (LinkId link : used.links) banned_links[link.index()] = true;
            for (ProcessorId hop : used.hops) {
              if (hop != sender->processor && hop != proc) {
                banned_procs[hop.index()] = true;
              }
            }
          }
        }
        first = std::min(first, arrival);
      }
      return first;
    }
    // Base / solution 1: only the main replica sends; reuse any committed
    // delivery (bus broadcast or relay) observed by `proc`.
    const Time seen = avail_[dep_id.index()][0][proc.index()];
    if (!is_infinite(seen)) return seen;
    return transfer(dep_id, *schedule_.main(dep.src), proc, links, out);
  }

  /// Schedules the store-and-forward transfer of `dep` from `sender` to
  /// `proc`, returns its arrival date. The shortest route is used unless
  /// the caller forces a detour (disjoint routing). With `out`, commits the
  /// transfer and marks every processor that observes the value (link
  /// endpoints: bus broadcast / relay hops) in the availability table.
  Time transfer(DependencyId dep_id, const ScheduledOperation& sender,
                ProcessorId proc, std::vector<Time>& links, Schedule* out,
                Time not_before = 0, bool liveness = false,
                const Route* forced_route = nullptr) {
    const Route& route = forced_route != nullptr
                             ? *forced_route
                             : routing_.route(sender.processor, proc);
    ScheduledComm record;
    record.dep = dep_id;
    record.sender_rank = sender.rank;
    record.from = sender.processor;
    record.to = proc;
    record.liveness = liveness;
    Time at = std::max(sender.end, not_before);
    for (LinkId link : route.links) {
      const Time start = std::max(links[link.index()], at);
      const Time end = start + comm().duration(dep_id, link);
      links[link.index()] = end;
      at = end;
      if (out) record.segments.push_back(CommSegment{link, start, end});
    }
    if (out) {
      for (const CommSegment& seg : record.segments) {
        for (ProcessorId endpoint : arch().link(seg.link).endpoints) {
          Time& slot =
              avail_[dep_id.index()][sender.rank][endpoint.index()];
          slot = std::min(slot, seg.end);
          record.delivered_to.push_back(endpoint);
        }
      }
      out->add_comm(std::move(record));
    }
    return at;
  }

  /// mSn.3: commits the chosen operation on its K+1 processors, main first.
  /// Ranks are re-derived from the actual completion dates, which can differ
  /// from the evaluated ones once the replicas' transfers interact on links.
  void commit(OperationId op, const std::vector<Assignment>& kept) {
    std::vector<ScheduledOperation> placements;
    for (const Assignment& assignment : kept) {
      const ProcessorId proc = assignment.proc;
      const Time data = data_ready(op, proc, link_ready_, &schedule_);
      const Time start = std::max(data, proc_ready_[proc.index()]);
      const Time end = start + exec().duration(op, proc);
      proc_ready_[proc.index()] = end;
      placements.push_back(ScheduledOperation{op, 0, proc, start, end});
    }
    std::stable_sort(placements.begin(), placements.end(),
                     [](const ScheduledOperation& a,
                        const ScheduledOperation& b) {
                       return time_lt(a.end, b.end);
                     });
    for (std::size_t rank = 0; rank < placements.size(); ++rank) {
      placements[rank].rank = static_cast<int>(rank);
      schedule_.add_operation(placements[rank]);
    }
  }

  /// Dependencies into mem operations carry no intra-iteration precedence
  /// but their values must still reach every mem replica before the next
  /// iteration; transfer them once everything is placed (§4.2 item 2).
  void schedule_mem_inputs() {
    for (const Dependency& dep : graph().dependencies()) {
      if (graph().is_precedence(dep.id)) continue;
      for (const ScheduledOperation* replica : schedule_.replicas(dep.dst)) {
        dependency_arrival(dep.id, replica->processor, link_ready_,
                           &schedule_);
      }
    }
  }

  /// Solution 1: the main replica sends its result "to all the processors
  /// executing a replica of each successor operation ... and to all the
  /// backup processors of o" (§6.1). The second half is a liveness signal:
  /// a backup that never observes the main's transfer cannot tell a healthy
  /// main from a dead one. On a bus the consumer broadcast covers every
  /// backup for free; on point-to-point links explicit transfers must be
  /// added — this is precisely the extra cost that makes solution 1
  /// ill-suited to point-to-point architectures (§6.1 item 1).
  void schedule_liveness_comms() {
    for (const Dependency& dep : graph().dependencies()) {
      if (dep_active(dep.id)) continue;
      bool remote_consumer = false;
      for (const ScheduledOperation* consumer : schedule_.replicas(dep.dst)) {
        if (schedule_.replica_on(dep.src, consumer->processor) == nullptr) {
          remote_consumer = true;
          break;
        }
      }
      if (!remote_consumer) continue;
      // The transfer that certifies the main finished distributing: the
      // latest-ending consumer delivery of this dependency.
      Time final_end = 0;
      const ScheduledComm* final_comm = nullptr;
      for (const ScheduledComm* comm : schedule_.comms_of(dep.id)) {
        if (comm->liveness || comm->segments.empty()) continue;
        if (time_ge(comm->segments.back().end, final_end)) {
          final_end = comm->segments.back().end;
          final_comm = comm;
        }
      }
      for (const ScheduledOperation* backup : schedule_.replicas(dep.src)) {
        if (backup->is_main()) continue;
        // A backup that observes the final consumer delivery on one of its
        // own links (always the case on a bus) needs no extra signal.
        bool observes_final = false;
        if (final_comm != nullptr) {
          for (const CommSegment& seg : final_comm->segments) {
            if (arch().link(seg.link).connects(backup->processor)) {
              observes_final = true;
              break;
            }
          }
        }
        if (observes_final) continue;
        transfer(dep.id, *schedule_.main(dep.src), backup->processor,
                 link_ready_, &schedule_, /*not_before=*/final_end,
                 /*liveness=*/true);
      }
    }
  }

  /// Solution 1's backup OpComm procedures (Figure 12): for every
  /// dependency that has at least one remote consumer, each backup replica
  /// of the producer holds an election position and sends only on failure.
  void add_passive_comms() {
    for (const Dependency& dep : graph().dependencies()) {
      if (dep_active(dep.id)) continue;
      std::vector<ProcessorId> consumers;
      for (const ScheduledOperation* replica : schedule_.replicas(dep.dst)) {
        if (schedule_.replica_on(dep.src, replica->processor) == nullptr) {
          consumers.push_back(replica->processor);
        }
      }
      if (consumers.empty()) continue;
      for (const ScheduledOperation* sender : schedule_.replicas(dep.src)) {
        if (sender->is_main()) continue;
        ScheduledComm passive;
        passive.dep = dep.id;
        passive.sender_rank = sender->rank;
        passive.from = sender->processor;
        passive.to = consumers.front();
        passive.delivered_to = consumers;
        passive.active = false;
        schedule_.add_comm(std::move(passive));
      }
    }
  }

  const Problem& problem_;
  HeuristicKind kind_;
  SchedulerOptions options_;
  int replicas_;
  RoutingTable routing_;
  Schedule schedule_;
  DagTiming timing_;
  std::vector<Time> proc_ready_;
  std::vector<Time> link_ready_;
  /// avail_[dep][sender rank][proc]: earliest committed availability of the
  /// dependency's value on the processor, kInfinite if never delivered.
  std::vector<std::vector<std::vector<Time>>> avail_;
};

}  // namespace

Expected<Schedule> schedule_base(const Problem& problem,
                                 SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kBase, options).run();
}

Expected<Schedule> schedule_solution1(const Problem& problem,
                                      SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kSolution1, options).run();
}

Expected<Schedule> schedule_solution2(const Problem& problem,
                                      SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kSolution2, options).run();
}

Expected<Schedule> schedule_hybrid_with_policy(const Problem& problem,
                                               SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kHybrid, options).run();
}

Expected<Schedule> schedule(const Problem& problem, HeuristicKind kind,
                            SchedulerOptions options) {
  return Engine(problem, kind, options).run();
}

}  // namespace ftsched
