// The greedy list-scheduling engine behind all three heuristics
// (paper Figures 11 and 20). One engine, two communication policies:
//
//  * kBase / kSolution1 — only the main replica of a producer sends; a value
//    delivered to a processor (directly, by bus broadcast, or while being
//    relayed) is reused by every later consumer on that processor.
//  * kSolution2 — every replica of the producer sends to every consumer
//    processor that lacks a local replica of the producer; the consumer
//    starts on the first arrival.
//
// The engine is deterministic: all the paper's random tie-breaks are
// replaced by ascending (pressure, completion date, processor id) and
// ascending operation id.
//
// Performance architecture (see DESIGN.md "Scheduler performance"):
// scheduling is this system's compile-time hot path — the campaign engine
// and the hybrid tuner re-run it thousands of times per sweep — so the
// select loop is incremental and allocation-free. Every tentative
// (candidate, processor) evaluation is cached together with a
// version-stamped read-set: the processor slot it starts on, the committed
// delivery entries of its input dependencies, and the link timelines its
// tentative transfers read (a folded 64-bit mask). A commit bumps one
// monotonic serial and stamps exactly the resources it wrote; at the next
// step a cached evaluation is reused iff nothing it read carries a newer
// stamp. Reused values are bit-identical to what re-evaluation would
// produce, so the schedule — and the explain log, which replays cached
// entries — is byte-identical with the cache on or off (enforced by the
// golden-hash sweep in tests/sched/golden_hash_test.cpp). Tentative
// transfers run on an epoch-stamped scratch timeline instead of a copy of
// the link array, and all per-step working sets live in members sized once
// in init_state().
#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "arch/routing.hpp"
#include "core/text.hpp"
#include "graph/dag_algorithms.hpp"
#include "obs/span.hpp"
#include "sched/explain.hpp"
#include "sched/heuristics.hpp"
#include "sched/pressure.hpp"

namespace ftsched {

namespace {

class Engine {
 public:
  Engine(const Problem& problem, HeuristicKind kind, SchedulerOptions options)
      : problem_(problem),
        kind_(kind),
        options_(std::move(options)),
        replicas_(kind == HeuristicKind::kBase
                      ? 1
                      : problem.failures_to_tolerate + 1),
        routing_(*problem.architecture),
        schedule_(problem, kind) {}

  Expected<Schedule> run() {
    FTSCHED_SPAN("sched.run");
    if (auto error = check_input()) return *error;
    for (const Dependency& dep : graph().dependencies()) {
      if (dep_active(dep.id)) schedule_.set_active_comms(dep.id);
    }
    timing_ = optimistic_timing(problem_);
    if (options_.explain != nullptr) {
      options_.explain->critical_path = timing_.critical_path;
    }
    init_state();
    if (auto error = main_loop()) return *error;
    schedule_mem_inputs();
    if (kind_ == HeuristicKind::kSolution1 ||
        kind_ == HeuristicKind::kHybrid) {
      schedule_liveness_comms();
      add_passive_comms();
    }
    if (time_gt(schedule_.makespan(), problem_.deadline)) {
      return Error{Error::Code::kDeadlineMissed,
                   "schedule completes at " +
                       time_to_string(schedule_.makespan()) +
                       ", after the deadline " +
                       time_to_string(problem_.deadline)};
    }
    return std::move(schedule_);
  }

 private:
  /// One tentative placement of a candidate operation on a processor.
  struct Assignment {
    ProcessorId proc;
    Time start = 0;
    Time end = 0;
    Time sigma = 0;
  };

  /// Cached tentative evaluation of one (operation, processor) pair.
  /// `serial` is the commit serial the evaluation was computed at (0 =
  /// never evaluated); `links_read` folds every link whose committed
  /// timeline the evaluation read into bit (link % 64). The entry is
  /// reusable iff no stamped write to its read-set is newer than `serial`.
  struct EvalSlot {
    Assignment a;
    std::uint64_t serial = 0;
    std::uint64_t links_read = 0;
  };

  /// Tentative link timeline for one evaluation: reads fall through to the
  /// committed timeline (recording the link in the read-set mask) unless
  /// this evaluation already wrote the slot in the current epoch. Starting
  /// a new evaluation is one counter bump — no copy of the link array.
  struct ScratchLinks {
    Engine& e;

    Time get(LinkId link) {
      const std::size_t i = link.index();
      if (e.scratch_epoch_[i] == e.epoch_) return e.scratch_links_[i];
      e.links_read_ |= std::uint64_t{1} << (i & 63);
      return e.link_ready_[i];
    }
    void set(LinkId link, Time t) {
      const std::size_t i = link.index();
      e.scratch_epoch_[i] = e.epoch_;
      e.scratch_links_[i] = t;
    }
  };

  /// Committed link timeline: writes go to the real array and stamp the
  /// link with the current commit serial, invalidating cached evaluations
  /// that read it.
  struct CommitLinks {
    Engine& e;

    Time get(LinkId link) const { return e.link_ready_[link.index()]; }
    void set(LinkId link, Time t) {
      e.link_ready_[link.index()] = t;
      e.link_fold_stamp_[link.index() & 63] = e.serial_;
    }
  };

  /// Does this dependency's value travel by actively replicated transfers?
  bool dep_active(DependencyId dep) const {
    if (kind_ == HeuristicKind::kSolution2) return true;
    if (kind_ != HeuristicKind::kHybrid) return false;
    return dep.index() < options_.active_comm_deps.size() &&
           options_.active_comm_deps[dep.index()];
  }

  const AlgorithmGraph& graph() const { return *problem_.algorithm; }
  const ArchitectureGraph& arch() const { return *problem_.architecture; }
  const ExecTable& exec() const { return *problem_.exec; }
  const CommTable& comm() const { return *problem_.comm; }

  Time& avail(DependencyId dep, int rank, ProcessorId proc) {
    return avail_[dep.index() * avail_dep_stride_ +
                  static_cast<std::size_t>(rank) * proc_count_ +
                  proc.index()];
  }

  std::optional<Error> check_input() const {
    std::vector<std::string> issues = graph().check();
    for (std::string& s : arch().check()) issues.push_back(std::move(s));
    for (std::string& s : comm().check()) issues.push_back(std::move(s));
    if (!issues.empty()) {
      return Error{Error::Code::kInvalidInput, join(issues, "; ")};
    }
    if (arch().processor_count() < static_cast<std::size_t>(replicas_)) {
      return Error{Error::Code::kInsufficientRedundancy,
                   "architecture has " +
                       std::to_string(arch().processor_count()) +
                       " processor(s); " + std::to_string(replicas_) +
                       " replicas are required"};
    }
    std::vector<std::string> redundancy =
        exec().check(static_cast<std::size_t>(replicas_));
    if (!redundancy.empty()) {
      return Error{Error::Code::kInsufficientRedundancy,
                   join(redundancy, "; ")};
    }
    if (!options_.constraints.empty()) {
      if (auto error = check_constraints()) return error;
    }
    return std::nullopt;
  }

  /// Validates the caller's SchedulingConstraints against the problem:
  /// every referenced id must exist, pins must land on allowed and
  /// non-forbidden processors, and each operation must keep at least K+1
  /// placeable processors after the forbids. A constraint set that leaves
  /// no feasible placement is an input error, not a silent relaxation —
  /// the repair engine relies on this to discard impossible moves.
  std::optional<Error> check_constraints() const {
    const SchedulingConstraints& c = options_.constraints;
    const std::size_t ops = graph().operation_count();
    const std::size_t procs = arch().processor_count();
    const std::size_t deps = graph().dependency_count();
    const std::size_t links = arch().link_count();
    auto invalid = [](std::string message) {
      return Error{Error::Code::kInvalidInput, std::move(message)};
    };
    for (const SchedulingConstraints::Pin& pin : c.pinned) {
      if (pin.op.index() >= ops || pin.proc.index() >= procs) {
        return invalid("constraint pins an unknown operation or processor");
      }
      if (!exec().allowed_fast(pin.op, pin.proc)) {
        return invalid("operation " + graph().operation(pin.op).name +
                       " cannot execute on pinned processor " +
                       arch().processor(pin.proc).name);
      }
    }
    for (const SchedulingConstraints::Forbid& forbid : c.forbidden) {
      if (forbid.op.index() >= ops || forbid.proc.index() >= procs) {
        return invalid("constraint forbids an unknown operation or processor");
      }
    }
    for (const SchedulingConstraints::ForbidLink& fl : c.forbidden_links) {
      if (fl.dep.index() >= deps || fl.link.index() >= links) {
        return invalid("constraint forbids an unknown dependency or link");
      }
    }
    for (const Operation& op : graph().operations()) {
      std::size_t pins = 0;
      for (const SchedulingConstraints::Pin& pin : c.pinned) {
        if (pin.op != op.id) continue;
        bool duplicate = false;
        for (const SchedulingConstraints::Pin& other : c.pinned) {
          if (&other == &pin) break;
          duplicate = duplicate || (other.op == op.id &&
                                    other.proc == pin.proc);
        }
        if (duplicate) continue;
        for (const SchedulingConstraints::Forbid& forbid : c.forbidden) {
          if (forbid.op == op.id && forbid.proc == pin.proc) {
            return invalid("operation " + op.name + " is both pinned to and "
                           "forbidden on " +
                           arch().processor(pin.proc).name);
          }
        }
        ++pins;
      }
      if (pins > static_cast<std::size_t>(replicas_)) {
        return Error{Error::Code::kInsufficientRedundancy,
                     "operation " + op.name + " pins " +
                         std::to_string(pins) + " processors but only " +
                         std::to_string(replicas_) + " replicas exist"};
      }
      std::size_t placeable = 0;
      for (const Processor& proc : arch().processors()) {
        if (!exec().allowed_fast(op.id, proc.id)) continue;
        bool banned = false;
        for (const SchedulingConstraints::Forbid& forbid : c.forbidden) {
          if (forbid.op == op.id && forbid.proc == proc.id) {
            banned = true;
            break;
          }
        }
        if (!banned) ++placeable;
      }
      if (placeable < static_cast<std::size_t>(replicas_)) {
        return Error{Error::Code::kInsufficientRedundancy,
                     "operation " + op.name + " keeps " +
                         std::to_string(placeable) +
                         " placeable processor(s) under the constraints; " +
                         std::to_string(replicas_) +
                         " replicas are required"};
      }
    }
    return std::nullopt;
  }

  void init_state() {
    const std::size_t ops = graph().operation_count();
    const std::size_t deps = graph().dependency_count();
    proc_count_ = arch().processor_count();
    const std::size_t links = arch().link_count();

    proc_ready_.assign(proc_count_, 0);
    link_ready_.assign(links, 0);
    avail_dep_stride_ = static_cast<std::size_t>(replicas_) * proc_count_;
    avail_.assign(deps * avail_dep_stride_, kInfinite);

    scratch_links_.assign(links, 0);
    scratch_epoch_.assign(links, 0);
    epoch_ = 0;

    serial_ = 1;
    proc_stamp_.assign(proc_count_, 0);
    dep_stamp_.assign(deps, 0);
    link_fold_stamp_.assign(64, 0);

    eval_cache_.assign(ops * proc_count_, EvalSlot{});
    cand_serial_.assign(ops, 0);
    cand_urgency_.assign(ops, 0);
    kept_cache_.assign(ops * static_cast<std::size_t>(replicas_),
                       Assignment{});
    all_scratch_.reserve(proc_count_);
    placements_.reserve(static_cast<std::size_t>(replicas_));

    // Flattened precedence tables: precedence_in()/successors() build a
    // fresh vector per call, which the select loop cannot afford — one CSR
    // copy per run instead.
    pred_offset_.assign(ops + 1, 0);
    pred_deps_.clear();
    succ_offset_.assign(ops + 1, 0);
    succ_ops_.clear();
    for (const Operation& op : graph().operations()) {
      for (DependencyId dep : graph().precedence_in_ref(op.id)) {
        pred_deps_.push_back(dep);
      }
      pred_offset_[op.id.index() + 1] = pred_deps_.size();
      // successors(), deduplicated and sorted, without its per-call vector.
      const std::size_t first = succ_ops_.size();
      for (DependencyId dep : graph().out_dependencies(op.id)) {
        if (graph().is_precedence(dep)) {
          succ_ops_.push_back(graph().dependency(dep).dst);
        }
      }
      std::sort(succ_ops_.begin() + static_cast<std::ptrdiff_t>(first),
                succ_ops_.end());
      succ_ops_.erase(
          std::unique(succ_ops_.begin() + static_cast<std::ptrdiff_t>(first),
                      succ_ops_.end()),
          succ_ops_.end());
      succ_offset_[op.id.index() + 1] = succ_ops_.size();
    }

    // Committed-replica completion dates, (op, proc)-indexed: the engine's
    // O(1) stand-in for Schedule::replica_on in dependency_arrival.
    local_end_.assign(ops * proc_count_, kInfinite);

    // Satellite of the same hot loop: the cheapest transfer duration of
    // each dependency over any link, precomputed once instead of re-scanning
    // every link per (candidate, processor) evaluation, and from it the
    // static successor-placement penalty of every (operation, processor)
    // pair (successor_penalty reads only static data: the exec table and
    // this table).
    cheapest_comm_.assign(deps, kInfinite);
    for (const Dependency& dep : graph().dependencies()) {
      Time cheapest = kInfinite;
      for (const Link& link : arch().links()) {
        cheapest = std::min(cheapest, comm().duration_fast(dep.id, link.id));
      }
      cheapest_comm_[dep.id.index()] = cheapest;
    }
    penalty_.assign(ops * proc_count_, 0);
    if (options_.successor_placement_penalty) {
      for (const Operation& op : graph().operations()) {
        for (const Processor& proc : arch().processors()) {
          Time penalty = 0;
          for (DependencyId dep : graph().precedence_out(op.id)) {
            const OperationId dst = graph().dependency(dep).dst;
            if (exec().allowed_fast(dst, proc.id)) continue;
            const Time cheapest = cheapest_comm_[dep.index()];
            if (!is_infinite(cheapest)) {
              penalty = std::max(penalty, cheapest);
            }
          }
          penalty_[op.id.index() * proc_count_ + proc.id.index()] = penalty;
        }
      }
    }

    // Constraint tables — built only when constraints exist, so the
    // unconstrained hot paths stay allocation-free and byte-identical.
    has_place_constraints_ = !options_.constraints.pinned.empty() ||
                             !options_.constraints.forbidden.empty();
    has_link_constraints_ = !options_.constraints.forbidden_links.empty();
    if (has_place_constraints_) {
      forbidden_.assign(ops * proc_count_, 0);
      for (const SchedulingConstraints::Forbid& forbid :
           options_.constraints.forbidden) {
        forbidden_[forbid.op.index() * proc_count_ + forbid.proc.index()] = 1;
      }
      pinned_on_.assign(ops, {});
      for (const SchedulingConstraints::Pin& pin :
           options_.constraints.pinned) {
        std::vector<ProcessorId>& list = pinned_on_[pin.op.index()];
        if (std::find(list.begin(), list.end(), pin.proc) == list.end()) {
          list.push_back(pin.proc);
        }
      }
      pin_selected_.reserve(proc_count_);
    }
    if (has_link_constraints_) {
      // Per constrained dependency: the banned-link mask and the full
      // (from, to) avoid-route matrix, computed once. A ban that
      // disconnects a pair falls back to the unconstrained shortest route
      // (same contract as disjoint routing's fallback).
      dep_route_slot_.assign(deps, -1);
      dep_banned_links_.clear();
      dep_routes_.clear();
      for (const SchedulingConstraints::ForbidLink& fl :
           options_.constraints.forbidden_links) {
        std::int32_t& slot = dep_route_slot_[fl.dep.index()];
        if (slot < 0) {
          slot = static_cast<std::int32_t>(dep_banned_links_.size());
          dep_banned_links_.emplace_back(links, false);
          dep_routes_.emplace_back();
        }
        dep_banned_links_[static_cast<std::size_t>(slot)][fl.link.index()] =
            true;
      }
      for (std::size_t s = 0; s < dep_routes_.size(); ++s) {
        dep_routes_[s].resize(proc_count_ * proc_count_);
        for (std::size_t from = 0; from < proc_count_; ++from) {
          for (std::size_t to = 0; to < proc_count_; ++to) {
            const ProcessorId src{
                static_cast<ProcessorId::underlying_type>(from)};
            const ProcessorId dst{
                static_cast<ProcessorId::underlying_type>(to)};
            std::optional<Route> detour =
                from == to ? std::nullopt
                           : routing_.route_avoiding(src, dst,
                                                     dep_banned_links_[s]);
            dep_routes_[s][from * proc_count_ + to] =
                detour.has_value() ? std::move(*detour)
                                   : routing_.route(src, dst);
          }
        }
      }
    }
  }

  /// The static route every transfer of `dep` from `from` to `to` takes:
  /// the constraint-avoiding route when the dependency carries a
  /// ForbidLink, the plain shortest route otherwise.
  const Route& static_route(DependencyId dep, ProcessorId from,
                            ProcessorId to) const {
    if (has_link_constraints_) {
      const std::int32_t slot = dep_route_slot_[dep.index()];
      if (slot >= 0) {
        return dep_routes_[static_cast<std::size_t>(slot)]
                          [from.index() * proc_count_ + to.index()];
      }
    }
    return routing_.route(from, to);
  }

  /// Static lower bound on the communications forced by placing `op` on a
  /// processor its successor cannot execute on (see SchedulerOptions).
  /// Precomputed per (operation, processor) in init_state().
  Time successor_penalty(OperationId op, ProcessorId proc) const {
    return penalty_[op.index() * proc_count_ + proc.index()];
  }

  /// mSn loop of Figures 11/20.
  std::optional<Error> main_loop() {
    // Candidate list kept sorted ascending by operation id — the
    // deterministic evaluation (and explain) order.
    std::vector<OperationId> candidates;
    std::vector<int> missing(graph().operation_count(), 0);
    for (const Operation& op : graph().operations()) {
      missing[op.id.index()] =
          static_cast<int>(graph().predecessors(op.id).size());
      if (missing[op.id.index()] == 0) candidates.push_back(op.id);
    }

    for (std::size_t scheduled = 0; scheduled < graph().operation_count();
         ++scheduled) {
      // mSn.1 + mSn.2: evaluate every candidate on its K+1 best processors
      // and select the candidate whose kept set holds the largest pressure.
      OperationId best_op;
      Time best_urgency = -kInfinite;
      ExplainStep step;
      {
        FTSCHED_SPAN("sched.select");
        for (OperationId op : candidates) {
          const Time urgency =
              keep_best(op, options_.explain != nullptr ? &step : nullptr);
          if (time_gt(urgency, best_urgency)) {
            best_urgency = urgency;
            best_op = op;
          }
        }
      }
      FTSCHED_REQUIRE(best_op.valid(),
                      "candidate list empty before all operations scheduled "
                      "(cyclic precedence?)");
      if (options_.explain != nullptr) {
        step.step = scheduled;
        step.chosen = best_op;
        step.urgency = best_urgency;
        options_.explain->steps.push_back(std::move(step));
      }

      // mSn.3: implement the operation and the communications it implies.
      {
        FTSCHED_SPAN("sched.commit");
        commit(best_op);
      }

      // mSn.4: update the candidate list (kept sorted by id).
      candidates.erase(
          std::find(candidates.begin(), candidates.end(), best_op));
      for (std::size_t s = succ_offset_[best_op.index()];
           s < succ_offset_[best_op.index() + 1]; ++s) {
        const OperationId succ = succ_ops_[s];
        if (--missing[succ.index()] == 0) {
          candidates.insert(
              std::lower_bound(candidates.begin(), candidates.end(), succ),
              succ);
        }
      }
    }
    return std::nullopt;
  }

  /// mSn.1 for one candidate: its K+1 assignments minimizing sigma,
  /// ascending (sigma, completion, processor id), written to the
  /// candidate's kept_cache_ row; returns the urgency (the kept set's
  /// largest sigma). check_input() guarantees enough allowed processors
  /// exist. Per-(op, proc) evaluations are cached and reused while their
  /// version-stamped read-set is untouched; cached entries carry exactly
  /// the values re-evaluation would produce, so reuse cannot change any
  /// decision. With `explain`, every evaluation — cached entries replayed —
  /// is appended to the step's candidate list (kept = among the K+1 best).
  Time keep_best(OperationId op, ExplainStep* explain) {
    FTSCHED_SPAN("sched.pressure_eval");
    // Committed deliveries of any input dependency invalidate every
    // processor's evaluation of this candidate at once.
    std::uint64_t dep_change = 0;
    for (DependencyId dep : pred_span(op)) {
      dep_change = std::max(dep_change, dep_stamp_[dep.index()]);
    }

    all_scratch_.clear();
    bool all_cached = options_.incremental_select &&
                      cand_serial_[op.index()] != 0 &&
                      cand_serial_[op.index()] >= dep_change;
    const std::size_t row = op.index() * proc_count_;
    for (const Processor& proc : arch().processors()) {
      if (!exec().allowed_fast(op, proc.id)) continue;
      if (has_place_constraints_ && forbidden_[row + proc.id.index()] != 0) {
        continue;
      }
      EvalSlot& slot = eval_cache_[row + proc.id.index()];
      if (!options_.incremental_select || !slot_valid(slot, proc.id,
                                                      dep_change)) {
        slot.a = evaluate(op, proc.id);
        slot.links_read = links_read_;
        slot.serial = serial_;
        all_cached = false;
      }
      all_scratch_.push_back(slot.a);
    }
    if (all_cached && explain == nullptr) return cand_urgency_[op.index()];

    const auto by_pressure = [](const Assignment& a, const Assignment& b) {
      if (!time_eq(a.sigma, b.sigma)) return a.sigma < b.sigma;
      if (!time_eq(a.end, b.end)) return a.end < b.end;
      return a.proc < b.proc;
    };
    // Pins force their processors into the kept set; the remaining slots
    // fill in pressure order (check_input guarantees every pinned
    // processor was evaluated and at most K+1 processors are pinned).
    const std::vector<ProcessorId>* pins =
        has_place_constraints_ && !pinned_on_[op.index()].empty()
            ? &pinned_on_[op.index()]
            : nullptr;
    {
      FTSCHED_SPAN("sched.candidate_sort");
      const auto kept_end =
          all_scratch_.begin() + static_cast<std::ptrdiff_t>(replicas_);
      if (explain != nullptr || pins != nullptr) {
        // The audit log lists the full table in pressure order (and pinned
        // selection scans all of it), so sort it all; the fast path only
        // needs the K+1 winners in order.
        std::sort(all_scratch_.begin(), all_scratch_.end(), by_pressure);
      } else {
        std::partial_sort(all_scratch_.begin(), kept_end, all_scratch_.end(),
                          by_pressure);
      }
    }
    Assignment* kept = kept_row(op);
    if (pins == nullptr) {
      if (explain != nullptr) {
        for (std::size_t i = 0; i < all_scratch_.size(); ++i) {
          const Assignment& a = all_scratch_[i];
          ExplainCandidate candidate;
          candidate.op = op;
          candidate.proc = a.proc;
          candidate.start = a.start;
          candidate.duration = a.end - a.start;
          candidate.tail = timing_.tail[op.index()];
          candidate.penalty = successor_penalty(op, a.proc);
          candidate.sigma = a.sigma;
          candidate.kept = i < static_cast<std::size_t>(replicas_);
          explain->candidates.push_back(candidate);
        }
      }
      for (std::size_t i = 0; i < static_cast<std::size_t>(replicas_); ++i) {
        kept[i] = all_scratch_[i];
      }
    } else {
      pin_selected_.assign(all_scratch_.size(), 0);
      std::size_t taken = 0;
      for (std::size_t i = 0; i < all_scratch_.size(); ++i) {
        if (std::find(pins->begin(), pins->end(), all_scratch_[i].proc) !=
            pins->end()) {
          pin_selected_[i] = 1;
          ++taken;
        }
      }
      for (std::size_t i = 0;
           i < all_scratch_.size() &&
           taken < static_cast<std::size_t>(replicas_);
           ++i) {
        if (pin_selected_[i] == 0) {
          pin_selected_[i] = 1;
          ++taken;
        }
      }
      if (explain != nullptr) {
        for (std::size_t i = 0; i < all_scratch_.size(); ++i) {
          const Assignment& a = all_scratch_[i];
          ExplainCandidate candidate;
          candidate.op = op;
          candidate.proc = a.proc;
          candidate.start = a.start;
          candidate.duration = a.end - a.start;
          candidate.tail = timing_.tail[op.index()];
          candidate.penalty = successor_penalty(op, a.proc);
          candidate.sigma = a.sigma;
          candidate.kept = pin_selected_[i] != 0;
          explain->candidates.push_back(candidate);
        }
      }
      std::size_t k = 0;
      for (std::size_t i = 0; i < all_scratch_.size(); ++i) {
        if (pin_selected_[i] != 0) kept[k++] = all_scratch_[i];
      }
    }
    cand_urgency_[op.index()] =
        kept[static_cast<std::size_t>(replicas_) - 1].sigma;
    cand_serial_[op.index()] = serial_;
    return cand_urgency_[op.index()];
  }

  /// This candidate's K+1 kept assignments (kept_cache_ row), valid until a
  /// commit invalidates one of its evaluations.
  Assignment* kept_row(OperationId op) {
    return kept_cache_.data() +
           op.index() * static_cast<std::size_t>(replicas_);
  }

  bool slot_valid(const EvalSlot& slot, ProcessorId proc,
                  std::uint64_t dep_change) const {
    if (slot.serial == 0) return false;
    if (slot.serial < dep_change) return false;
    if (slot.serial < proc_stamp_[proc.index()]) return false;
    std::uint64_t mask = slot.links_read;
    while (mask != 0) {
      const int bit = std::countr_zero(mask);
      if (slot.serial < link_fold_stamp_[static_cast<std::size_t>(bit)]) {
        return false;
      }
      mask &= mask - 1;
    }
    return true;
  }

  /// Tentative evaluation of (op, proc): earliest start given the committed
  /// partial schedule, scheduling the implied communications on the
  /// epoch-stamped scratch link timeline. Records the links read into
  /// links_read_ for the caller to stash in the evaluation's cache slot.
  Assignment evaluate(OperationId op, ProcessorId proc) {
    ++epoch_;
    links_read_ = 0;
    ScratchLinks links{*this};
    const Time data = data_ready(op, proc, links, nullptr);
    const Time start = std::max(data, proc_ready_[proc.index()]);
    const Time duration = exec().duration_fast(op, proc);
    Assignment a;
    a.proc = proc;
    a.start = start;
    a.end = start + duration;
    a.sigma = schedule_pressure(timing_, op, start, duration) +
              successor_penalty(op, proc);
    return a;
  }

  /// Earliest date all of op's inputs are available on `proc`, scheduling
  /// missing transfers on `links` (the scratch timeline when `out` is null,
  /// the committed one when committing, in which case created comms are
  /// appended to the schedule and the availability table is updated).
  template <class Links>
  Time data_ready(OperationId op, ProcessorId proc, Links& links,
                  Schedule* out) {
    Time ready = 0;
    for (DependencyId dep_id : pred_span(op)) {
      ready = std::max(ready, dependency_arrival(dep_id, proc, links, out));
    }
    return ready;
  }

  /// Precedence-in dependencies of `op` from the flattened table.
  struct DepSpan {
    const DependencyId* first;
    const DependencyId* last;
    const DependencyId* begin() const { return first; }
    const DependencyId* end() const { return last; }
  };
  DepSpan pred_span(OperationId op) const {
    return {pred_deps_.data() + pred_offset_[op.index()],
            pred_deps_.data() + pred_offset_[op.index() + 1]};
  }

  /// Earliest date the value of `dep` is available on `proc`.
  template <class Links>
  Time dependency_arrival(DependencyId dep_id, ProcessorId proc, Links& links,
                          Schedule* out) {
    const Dependency& dep = graph().dependency(dep_id);
    // Intra-processor: a local replica of the producer makes the value
    // available at its completion; no transfer is created (§6.1, §7.1).
    const Time local_end =
        local_end_[dep.src.index() * proc_count_ + proc.index()];
    if (!is_infinite(local_end)) return local_end;
    if (dep_active(dep_id)) {
      // Every producer replica sends; the consumer keeps the first arrival.
      // Under disjoint routing each transfer takes a route that avoids its
      // siblings' links AND relays, and never relays through another
      // replica's host — so no single link or processor death severs every
      // copy (§8 future work). When the bans disconnect a pair we fall back
      // to the shortest route (overlap accepted, reported by the
      // link-failure benchmarks).
      if (options_.disjoint_comm_routes) {
        banned_links_.assign(arch().link_count(), false);
        if (has_link_constraints_ && dep_route_slot_[dep_id.index()] >= 0) {
          // Constraint bans seed the disjoint search: no replica's route
          // may cross a forbidden link either.
          banned_links_ = dep_banned_links_[static_cast<std::size_t>(
              dep_route_slot_[dep_id.index()])];
        }
        banned_procs_.assign(arch().processor_count(), false);
        for (const ScheduledOperation* host :
             schedule_.replicas_view(dep.src)) {
          banned_procs_[host->processor.index()] = true;
        }
      }
      Time first = kInfinite;
      for (const ScheduledOperation* sender :
           schedule_.replicas_view(dep.src)) {
        Time arrival = avail(dep_id, sender->rank, proc);
        if (is_infinite(arrival)) {
          const Route* forced = nullptr;
          std::optional<Route> detour;
          if (options_.disjoint_comm_routes) {
            // The sender itself is of course allowed to originate.
            banned_procs_[sender->processor.index()] = false;
            detour = routing_.route_avoiding(sender->processor, proc,
                                             banned_links_, &banned_procs_);
            banned_procs_[sender->processor.index()] = true;
            if (detour.has_value()) forced = &*detour;
          }
          arrival = transfer(dep_id, *sender, proc, links, out, 0, false,
                             forced);
          if (options_.disjoint_comm_routes) {
            const Route& used =
                forced != nullptr
                    ? *forced
                    : static_route(dep_id, sender->processor, proc);
            for (LinkId link : used.links) {
              banned_links_[link.index()] = true;
            }
            for (ProcessorId hop : used.hops) {
              if (hop != sender->processor && hop != proc) {
                banned_procs_[hop.index()] = true;
              }
            }
          }
        }
        first = std::min(first, arrival);
      }
      return first;
    }
    // Base / solution 1: only the main replica sends; reuse any committed
    // delivery (bus broadcast or relay) observed by `proc`.
    const Time seen = avail(dep_id, 0, proc);
    if (!is_infinite(seen)) return seen;
    return transfer(dep_id, *schedule_.main(dep.src), proc, links, out);
  }

  /// Schedules the store-and-forward transfer of `dep` from `sender` to
  /// `proc`, returns its arrival date. The shortest route is used unless
  /// the caller forces a detour (disjoint routing). With `out`, commits the
  /// transfer and marks every processor that observes the value (link
  /// endpoints: bus broadcast / relay hops) in the availability table.
  template <class Links>
  Time transfer(DependencyId dep_id, const ScheduledOperation& sender,
                ProcessorId proc, Links& links, Schedule* out,
                Time not_before = 0, bool liveness = false,
                const Route* forced_route = nullptr) {
    const Route& route = forced_route != nullptr
                             ? *forced_route
                             : static_route(dep_id, sender.processor, proc);
    Time at = std::max(sender.end, not_before);
    if (out == nullptr) {
      // Tentative: only the arrival date matters; build no comm record.
      for (LinkId link : route.links) {
        const Time start = std::max(links.get(link), at);
        at = start + comm().duration_fast(dep_id, link);
        links.set(link, at);
      }
      return at;
    }
    ScheduledComm record;
    record.dep = dep_id;
    record.sender_rank = sender.rank;
    record.from = sender.processor;
    record.to = proc;
    record.liveness = liveness;
    for (LinkId link : route.links) {
      const Time start = std::max(links.get(link), at);
      const Time end = start + comm().duration_fast(dep_id, link);
      links.set(link, end);
      at = end;
      record.segments.push_back(CommSegment{link, start, end});
    }
    if (!record.segments.empty()) dep_stamp_[dep_id.index()] = serial_;
    for (const CommSegment& seg : record.segments) {
      for (ProcessorId endpoint : arch().link(seg.link).endpoints) {
        Time& slot = avail(dep_id, sender.rank, endpoint);
        slot = std::min(slot, seg.end);
        // Consecutive route segments share their relay endpoint (and on a
        // bus every segment shares all endpoints): record each observer
        // once, keeping first-delivery order.
        if (std::find(record.delivered_to.begin(),
                      record.delivered_to.end(),
                      endpoint) == record.delivered_to.end()) {
          record.delivered_to.push_back(endpoint);
        }
      }
    }
    out->add_comm(std::move(record));
    return at;
  }

  /// mSn.3: commits the chosen operation on its K+1 processors, main first.
  /// Ranks are re-derived from the actual completion dates, which can differ
  /// from the evaluated ones once the replicas' transfers interact on links.
  /// Bumps the commit serial and stamps every resource written, so only the
  /// cached evaluations that actually read them are re-evaluated next step.
  void commit(OperationId op) {
    ++serial_;
    const Assignment* kept = kept_row(op);
    CommitLinks links{*this};
    placements_.clear();
    for (std::size_t i = 0; i < static_cast<std::size_t>(replicas_); ++i) {
      const ProcessorId proc = kept[i].proc;
      const Time data = data_ready(op, proc, links, &schedule_);
      const Time start = std::max(data, proc_ready_[proc.index()]);
      const Time end = start + exec().duration_fast(op, proc);
      proc_ready_[proc.index()] = end;
      proc_stamp_[proc.index()] = serial_;
      local_end_[op.index() * proc_count_ + proc.index()] = end;
      placements_.push_back(ScheduledOperation{op, 0, proc, start, end});
    }
    std::stable_sort(placements_.begin(), placements_.end(),
                     [](const ScheduledOperation& a,
                        const ScheduledOperation& b) {
                       return time_lt(a.end, b.end);
                     });
    for (std::size_t rank = 0; rank < placements_.size(); ++rank) {
      placements_[rank].rank = static_cast<int>(rank);
      schedule_.add_operation(placements_[rank]);
    }
  }

  /// Dependencies into mem operations carry no intra-iteration precedence
  /// but their values must still reach every mem replica before the next
  /// iteration; transfer them once everything is placed (§4.2 item 2).
  void schedule_mem_inputs() {
    CommitLinks links{*this};
    for (const Dependency& dep : graph().dependencies()) {
      if (graph().is_precedence(dep.id)) continue;
      for (const ScheduledOperation* replica :
           schedule_.replicas_view(dep.dst)) {
        dependency_arrival(dep.id, replica->processor, links, &schedule_);
      }
    }
  }

  /// Solution 1: the main replica sends its result "to all the processors
  /// executing a replica of each successor operation ... and to all the
  /// backup processors of o" (§6.1). The second half is a liveness signal:
  /// a backup that never observes the main's transfer cannot tell a healthy
  /// main from a dead one. On a bus the consumer broadcast covers every
  /// backup for free; on point-to-point links explicit transfers must be
  /// added — this is precisely the extra cost that makes solution 1
  /// ill-suited to point-to-point architectures (§6.1 item 1).
  void schedule_liveness_comms() {
    CommitLinks links{*this};
    // The transfer that certifies each main finished distributing: the
    // latest-ending consumer delivery of the dependency. One pass over the
    // committed comms (comms_of would rescan the whole list per
    // dependency), indexes not pointers — the appends below reallocate.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::size_t> final_of(graph().dependency_count(), kNone);
    for (std::size_t i = 0; i < schedule_.comms().size(); ++i) {
      const ScheduledComm& comm = schedule_.comms()[i];
      if (!comm.active || comm.liveness || comm.segments.empty()) continue;
      std::size_t& slot = final_of[comm.dep.index()];
      if (slot == kNone ||
          time_ge(comm.segments.back().end,
                  schedule_.comms()[slot].segments.back().end)) {
        slot = i;
      }
    }
    for (const Dependency& dep : graph().dependencies()) {
      if (dep_active(dep.id)) continue;
      bool remote_consumer = false;
      for (const ScheduledOperation* consumer :
           schedule_.replicas_view(dep.dst)) {
        if (is_infinite(local_end_[dep.src.index() * proc_count_ +
                                   consumer->processor.index()])) {
          remote_consumer = true;
          break;
        }
      }
      if (!remote_consumer) continue;
      const ScheduledComm* final_comm =
          final_of[dep.id.index()] == kNone
              ? nullptr
              : &schedule_.comms()[final_of[dep.id.index()]];
      const Time final_end =
          final_comm == nullptr ? 0 : final_comm->segments.back().end;
      for (const ScheduledOperation* backup :
           schedule_.replicas_view(dep.src)) {
        if (backup->is_main()) continue;
        // A backup that observes the final consumer delivery on one of its
        // own links (always the case on a bus) needs no extra signal.
        bool observes_final = false;
        if (final_comm != nullptr) {
          for (const CommSegment& seg : final_comm->segments) {
            if (arch().link(seg.link).connects(backup->processor)) {
              observes_final = true;
              break;
            }
          }
        }
        if (observes_final) continue;
        transfer(dep.id, *schedule_.main(dep.src), backup->processor,
                 links, &schedule_, /*not_before=*/final_end,
                 /*liveness=*/true);
      }
    }
  }

  /// Solution 1's backup OpComm procedures (Figure 12): for every
  /// dependency that has at least one remote consumer, each backup replica
  /// of the producer holds an election position and sends only on failure.
  void add_passive_comms() {
    for (const Dependency& dep : graph().dependencies()) {
      if (dep_active(dep.id)) continue;
      std::vector<ProcessorId> consumers;
      for (const ScheduledOperation* replica :
           schedule_.replicas_view(dep.dst)) {
        if (is_infinite(local_end_[dep.src.index() * proc_count_ +
                                   replica->processor.index()])) {
          consumers.push_back(replica->processor);
        }
      }
      if (consumers.empty()) continue;
      for (const ScheduledOperation* sender :
           schedule_.replicas_view(dep.src)) {
        if (sender->is_main()) continue;
        ScheduledComm passive;
        passive.dep = dep.id;
        passive.sender_rank = sender->rank;
        passive.from = sender->processor;
        passive.to = consumers.front();
        passive.delivered_to = consumers;
        passive.active = false;
        schedule_.add_comm(std::move(passive));
      }
    }
  }

  const Problem& problem_;
  HeuristicKind kind_;
  SchedulerOptions options_;
  int replicas_;
  RoutingTable routing_;
  Schedule schedule_;
  DagTiming timing_;
  std::size_t proc_count_ = 0;

  std::vector<Time> proc_ready_;
  std::vector<Time> link_ready_;
  /// avail(dep, sender rank, proc): earliest committed availability of the
  /// dependency's value on the processor, kInfinite if never delivered.
  /// One contiguous array (dep-major, then rank, then processor) — the
  /// previous vector<vector<vector<Time>>> cost two indirections per read
  /// in the innermost dependency_arrival loop.
  std::vector<Time> avail_;
  std::size_t avail_dep_stride_ = 0;
  /// Static precomputes (init_state): cheapest single-link transfer
  /// duration per dependency, and the successor-placement penalty per
  /// (operation, processor) derived from it.
  std::vector<Time> cheapest_comm_;
  std::vector<Time> penalty_;
  /// Flattened precedence CSR tables (init_state) — avoid the per-call
  /// vector the graph accessors build.
  std::vector<std::size_t> pred_offset_;
  std::vector<DependencyId> pred_deps_;
  std::vector<std::size_t> succ_offset_;
  std::vector<OperationId> succ_ops_;
  /// Completion date of op's committed replica on proc, kInfinite if none:
  /// the hot-path equivalent of Schedule::replica_on(op, proc)->end.
  std::vector<Time> local_end_;

  // --- incremental-select state (see class comment) ---
  /// Monotonic commit counter; bumped at the start of every commit.
  std::uint64_t serial_ = 1;
  /// Per processor: serial of the last proc_ready_ write.
  std::vector<std::uint64_t> proc_stamp_;
  /// Per dependency: serial of the last committed delivery (avail_ write).
  std::vector<std::uint64_t> dep_stamp_;
  /// Per folded link index (link % 64): serial of the last timeline write.
  /// Folding trades precision for a fixed-size mask — aliasing can only
  /// cause extra re-evaluation, never a stale reuse.
  std::vector<std::uint64_t> link_fold_stamp_;
  /// Per (operation, processor): cached tentative evaluation.
  std::vector<EvalSlot> eval_cache_;
  /// Per operation: serial/urgency of the cached keep_best result, and its
  /// kept K+1 assignments as one flat row-major array.
  std::vector<std::uint64_t> cand_serial_;
  std::vector<Time> cand_urgency_;
  std::vector<Assignment> kept_cache_;

  // --- per-evaluation scratch, sized once in init_state ---
  /// Epoch-stamped tentative link timeline (ScratchLinks).
  std::vector<Time> scratch_links_;
  std::vector<std::uint64_t> scratch_epoch_;
  std::uint64_t epoch_ = 0;
  /// Folded mask of links the current evaluation read (ScratchLinks::get).
  std::uint64_t links_read_ = 0;
  /// keep_best working set and commit placement buffer.
  std::vector<Assignment> all_scratch_;
  std::vector<ScheduledOperation> placements_;
  /// Disjoint-routing ban sets (only touched under disjoint_comm_routes).
  std::vector<bool> banned_links_;
  std::vector<bool> banned_procs_;

  // --- scheduling constraints (empty set: every table stays empty and the
  // hot paths test one boolean) ---
  bool has_place_constraints_ = false;
  bool has_link_constraints_ = false;
  /// Per (operation, processor): 1 = placement forbidden.
  std::vector<char> forbidden_;
  /// Per operation: processors its kept set must contain.
  std::vector<std::vector<ProcessorId>> pinned_on_;
  /// Per dependency: index into dep_banned_links_/dep_routes_, -1 = none.
  std::vector<std::int32_t> dep_route_slot_;
  std::vector<std::vector<bool>> dep_banned_links_;
  /// Per slot: procs x procs avoid-route matrix (see static_route).
  std::vector<std::vector<Route>> dep_routes_;
  /// keep_best pinned-selection scratch.
  std::vector<char> pin_selected_;
};

}  // namespace

Expected<Schedule> schedule_base(const Problem& problem,
                                 SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kBase, std::move(options)).run();
}

Expected<Schedule> schedule_solution1(const Problem& problem,
                                      SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kSolution1, std::move(options)).run();
}

Expected<Schedule> schedule_solution2(const Problem& problem,
                                      SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kSolution2, std::move(options)).run();
}

Expected<Schedule> schedule_hybrid_with_policy(const Problem& problem,
                                               SchedulerOptions options) {
  return Engine(problem, HeuristicKind::kHybrid, std::move(options)).run();
}

Expected<Schedule> schedule(const Problem& problem, HeuristicKind kind,
                            SchedulerOptions options) {
  return Engine(problem, kind, std::move(options)).run();
}

}  // namespace ftsched
