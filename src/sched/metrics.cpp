#include "sched/metrics.hpp"

#include <vector>

namespace ftsched {

ScheduleMetrics compute_metrics(const Schedule& schedule) {
  ScheduleMetrics metrics;
  metrics.makespan = schedule.makespan();
  metrics.replicas = schedule.operations().size();

  std::vector<Time> proc_busy_by(
      schedule.problem().architecture->processor_count(), 0);
  Time proc_busy = 0;
  for (const ScheduledOperation& placement : schedule.operations()) {
    proc_busy += placement.end - placement.start;
    proc_busy_by[placement.processor.index()] +=
        placement.end - placement.start;
  }
  std::vector<Time> link_busy_by(
      schedule.problem().architecture->link_count(), 0);
  Time link_busy = 0;
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active) {
      ++metrics.passive_comms;
      continue;
    }
    ++metrics.inter_processor_comms;
    for (const CommSegment& segment : comm.segments) {
      link_busy += segment.end - segment.start;
      link_busy_by[segment.link.index()] += segment.end - segment.start;
    }
  }
  for (const Time busy : proc_busy_by) {
    metrics.min_period = std::max(metrics.min_period, busy);
  }
  for (const Time busy : link_busy_by) {
    metrics.min_period = std::max(metrics.min_period, busy);
  }

  const Problem& problem = schedule.problem();
  if (time_gt(metrics.makespan, 0)) {
    const std::size_t procs = problem.architecture->processor_count();
    const std::size_t links = problem.architecture->link_count();
    if (procs > 0) {
      metrics.processor_utilisation =
          proc_busy / (static_cast<double>(procs) * metrics.makespan);
    }
    if (links > 0) {
      metrics.link_utilisation =
          link_busy / (static_cast<double>(links) * metrics.makespan);
    }
  }
  return metrics;
}

Time overhead(const Schedule& fault_tolerant, const Schedule& baseline) {
  return fault_tolerant.makespan() - baseline.makespan();
}

}  // namespace ftsched
