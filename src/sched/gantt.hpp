// Text renderings of a schedule, in the spirit of the paper's timing
// diagrams (Figures 14-19, 22-24): one row per processor and per link.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace ftsched {

/// Compact listing, one line per resource:
///   P1   | I:0[0,1] A:0[1,3] C:0[3,5]
///   bus  | I->A[3,3.5] ...
/// Operations print as name:rank[start,end] with the main replica marked
/// by rank 0; comms as depname[start,end].
[[nodiscard]] std::string to_text(const Schedule& schedule);

/// Scaled ASCII Gantt chart; `columns` is the width of the time axis. Each
/// resource gets one row of cells; an operation covers round(length/scale)
/// cells labelled with its name (main replicas in upper case marker '*').
[[nodiscard]] std::string to_gantt(const Schedule& schedule,
                                   std::size_t columns = 72);

}  // namespace ftsched
