// Schedule-pressure ingredients (paper §6.2, first phase).
//
// The pressure of scheduling candidate operation o on processor p at step n:
//
//     sigma(n)(o, p) = S(n)(o, p) + Delta(o, p) + E(o) - R
//
// where S is the earliest start date given the partial schedule, Delta the
// WCET of o on p, E(o) the longest tail from o's completion to the sinks
// (durations taken as the minimum WCET over allowed processors, zero
// communication cost), and R the critical path under the same optimistic
// model. sigma measures how much the assignment lengthens the critical path.
// This header exposes the static (step-independent) part.
#pragma once

#include "arch/characteristics.hpp"
#include "graph/dag_algorithms.hpp"

namespace ftsched {

/// E(o) tails and R computed with the optimistic per-operation duration
/// min_p Delta(o, p). Precondition: every operation has at least one allowed
/// processor (check via problem.check()).
[[nodiscard]] DagTiming optimistic_timing(const Problem& problem);

/// sigma for a concrete (start, duration) choice given precomputed timing.
[[nodiscard]] inline Time schedule_pressure(const DagTiming& timing,
                                            OperationId op, Time start,
                                            Time duration) {
  return start + duration + timing.tail[op.index()] - timing.critical_path;
}

}  // namespace ftsched
