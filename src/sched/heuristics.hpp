// Public entry points of the three scheduling heuristics.
//
// All three are greedy list schedulers driven by the schedule-pressure cost
// function (paper §6.2/§7.2); they differ in the replication factor and in
// how inter-processor communications are materialized. All are deterministic:
// the paper breaks pressure ties randomly, we break them by ascending
// operation/processor id so results are reproducible run to run.
//
// Failure modes (returned as Error, never thrown):
//  * kInsufficientRedundancy — some operation allows fewer than K+1
//    processors, or the architecture has fewer than K+1 processors;
//  * kInvalidInput — malformed graphs/tables (missing durations, cycles);
//  * kDeadlineMissed — a schedule exists but violates problem.deadline.
#pragma once

#include "arch/characteristics.hpp"
#include "core/error.hpp"
#include "sched/options.hpp"
#include "sched/schedule.hpp"

namespace ftsched {

/// Non-fault-tolerant SynDEx baseline (§4.4): one copy of each operation,
/// communications from the (sole) producer. `problem.failures_to_tolerate`
/// is ignored (treated as 0).
[[nodiscard]] Expected<Schedule> schedule_base(const Problem& problem,
                                               SchedulerOptions options = {});

/// Solution 1 (§6): K+1 active replicas per operation; only the main replica
/// (earliest completion) sends, backups are passive and take over by
/// statically computed timeouts. Best suited to bus architectures.
[[nodiscard]] Expected<Schedule> schedule_solution1(
    const Problem& problem, SchedulerOptions options = {});

/// Solution 2 (§7): K+1 active replicas per operation AND per communication;
/// receivers consume the first arrival. Best suited to point-to-point
/// architectures; no timeouts anywhere.
[[nodiscard]] Expected<Schedule> schedule_solution2(
    const Problem& problem, SchedulerOptions options = {});

/// Hybrid (§5.3's redundancy trade-off): solution 1's operation replication
/// with `options.active_comm_deps` selecting which dependencies use
/// solution 2's actively replicated transfers instead of timeout chains.
/// With an all-false policy this is exactly solution 1; with all-true,
/// solution-2 communications on solution-1 election machinery disabled.
/// The automatic policy search lives in tuning/hybrid.hpp.
[[nodiscard]] Expected<Schedule> schedule_hybrid_with_policy(
    const Problem& problem, SchedulerOptions options);

/// Dispatch by kind (used by sweeps and the trade-off explorer example).
[[nodiscard]] Expected<Schedule> schedule(const Problem& problem,
                                          HeuristicKind kind,
                                          SchedulerOptions options = {});

}  // namespace ftsched
