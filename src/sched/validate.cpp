#include "sched/validate.hpp"

#include <algorithm>
#include <map>

#include "arch/routing.hpp"
#include "core/text.hpp"

namespace ftsched {

namespace {

class Validator {
 public:
  explicit Validator(const Schedule& schedule)
      : schedule_(schedule), problem_(schedule.problem()) {}

  std::vector<std::string> run() {
    check_replication();
    check_processor_exclusivity();
    check_link_exclusivity();
    check_comms();
    check_precedence();
    if (schedule_.kind() != HeuristicKind::kBase) {
      check_active_comm_redundancy();
    }
    if (time_gt(schedule_.makespan(), problem_.deadline)) {
      issue("makespan " + time_to_string(schedule_.makespan()) +
            " exceeds deadline " + time_to_string(problem_.deadline));
    }
    return std::move(issues_);
  }

 private:
  const AlgorithmGraph& graph() const { return *problem_.algorithm; }
  const ArchitectureGraph& arch() const { return *problem_.architecture; }

  void issue(std::string text) { issues_.push_back(std::move(text)); }

  std::string op_name(OperationId id) const {
    return graph().operation(id).name;
  }
  std::string proc_name(ProcessorId id) const {
    return arch().processor(id).name;
  }

  int expected_replicas() const {
    return schedule_.kind() == HeuristicKind::kBase
               ? 1
               : problem_.failures_to_tolerate + 1;
  }

  void check_replication() {
    for (const Operation& op : graph().operations()) {
      const auto replicas = schedule_.replicas(op.id);
      if (replicas.size() != static_cast<std::size_t>(expected_replicas())) {
        issue("operation '" + op.name + "' has " +
              std::to_string(replicas.size()) + " replicas, expected " +
              std::to_string(expected_replicas()));
        continue;
      }
      for (std::size_t rank = 0; rank < replicas.size(); ++rank) {
        const ScheduledOperation& r = *replicas[rank];
        if (r.rank != static_cast<int>(rank)) {
          issue("operation '" + op.name + "' replica ranks are not 0..K");
        }
        if (!problem_.exec->allowed(op.id, r.processor)) {
          issue("operation '" + op.name + "' placed on disallowed processor " +
                proc_name(r.processor));
        } else {
          const Time wcet = problem_.exec->duration(op.id, r.processor);
          if (!time_eq(r.end - r.start, wcet)) {
            issue("operation '" + op.name + "' on " + proc_name(r.processor) +
                  " lasts " + time_to_string(r.end - r.start) +
                  ", table says " + time_to_string(wcet));
          }
        }
        for (std::size_t other = rank + 1; other < replicas.size(); ++other) {
          if (replicas[other]->processor == r.processor) {
            issue("two replicas of '" + op.name + "' share processor " +
                  proc_name(r.processor));
          }
        }
      }
    }
  }

  void check_processor_exclusivity() {
    for (const Processor& proc : arch().processors()) {
      const auto ops = schedule_.operations_on(proc.id);
      for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
        if (ops[i]->interval().overlaps(ops[i + 1]->interval())) {
          issue("replicas of '" + op_name(ops[i]->op) + "' and '" +
                op_name(ops[i + 1]->op) + "' overlap on " + proc.name);
        }
      }
    }
  }

  void check_link_exclusivity() {
    for (const Link& link : arch().links()) {
      const auto segments = schedule_.segments_on(link.id);
      for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
        if (segments[i].second->interval().overlaps(
                segments[i + 1].second->interval())) {
          issue("transfers of '" +
                graph().dependency(segments[i].first->dep).name + "' and '" +
                graph().dependency(segments[i + 1].first->dep).name +
                "' overlap on link " + link.name);
        }
      }
    }
  }

  void check_comms() {
    for (const ScheduledComm& comm : schedule_.comms()) {
      const Dependency& dep = graph().dependency(comm.dep);
      const ScheduledOperation* sender =
          schedule_.replica_on(dep.src, comm.from);
      if (sender == nullptr || sender->rank != comm.sender_rank) {
        issue("comm of '" + dep.name + "' claims sender rank " +
              std::to_string(comm.sender_rank) + " on " +
              proc_name(comm.from) + ", but no such replica exists");
        continue;
      }
      if (!schedule_.uses_active_comms(comm.dep) && comm.active &&
          comm.sender_rank != 0) {
        issue("active comm of '" + dep.name +
              "' sent by a backup replica under time-redundant comms");
      }
      if (!comm.active) continue;
      if (comm.segments.empty()) {
        issue("active comm of '" + dep.name + "' has no segments");
        continue;
      }
      if (time_lt(comm.segments.front().start, sender->end)) {
        issue("comm of '" + dep.name + "' starts before its producer ends");
      }
      // Segments must follow a contiguous route from `from` to `to`: each
      // segment's link must be attached to the current hop, and each
      // intermediate hop is the endpoint the next segment departs from.
      ProcessorId at = comm.from;
      Time prev_end = -kInfinite;
      bool route_ok = true;
      for (std::size_t i = 0; i < comm.segments.size() && route_ok; ++i) {
        const CommSegment& seg = comm.segments[i];
        const Link& link = arch().link(seg.link);
        if (!link.connects(at)) {
          route_ok = false;
          break;
        }
        if (time_lt(seg.start, prev_end)) {
          issue("comm of '" + dep.name + "' has out-of-order segments");
        }
        prev_end = seg.end;
        const Time duration = problem_.comm->duration(comm.dep, seg.link);
        if (!time_eq(seg.end - seg.start, duration)) {
          issue("comm of '" + dep.name + "' on link " + link.name +
                " lasts " + time_to_string(seg.end - seg.start) +
                ", table says " + time_to_string(duration));
        }
        if (i + 1 == comm.segments.size()) {
          // Final hop must deliver to the destination.
          route_ok = link.connects(comm.to);
          at = comm.to;
        } else {
          // Relay hop: the endpoint (other than `at`) shared with the next
          // segment's link.
          const Link& next_link = arch().link(comm.segments[i + 1].link);
          ProcessorId relay;
          for (ProcessorId endpoint : link.endpoints) {
            if (endpoint != at && next_link.connects(endpoint)) {
              relay = endpoint;
              break;
            }
          }
          if (!relay.valid()) {
            route_ok = false;
            break;
          }
          at = relay;
        }
      }
      if (!route_ok) {
        issue("comm of '" + dep.name +
              "' does not follow a contiguous route to " +
              proc_name(comm.to));
      }
    }
  }

  /// Earliest availability of dep's value on `proc` according to the
  /// schedule: local producer replica or delivered active comm.
  Time arrival(DependencyId dep_id, ProcessorId proc) const {
    const Dependency& dep = graph().dependency(dep_id);
    if (const auto* local = schedule_.replica_on(dep.src, proc)) {
      return local->end;
    }
    Time best = kInfinite;
    for (const ScheduledComm* comm : schedule_.comms_of(dep_id)) {
      for (const CommSegment& seg : comm->segments) {
        if (arch().link(seg.link).connects(proc)) {
          best = std::min(best, seg.end);
        }
      }
    }
    return best;
  }

  void check_precedence() {
    for (const ScheduledOperation& placement : schedule_.operations()) {
      for (DependencyId dep_id : graph().precedence_in(placement.op)) {
        const Time at = arrival(dep_id, placement.processor);
        if (time_gt(at, placement.start)) {
          issue("replica of '" + op_name(placement.op) + "' on " +
                proc_name(placement.processor) + " starts at " +
                time_to_string(placement.start) + " but input '" +
                graph().dependency(dep_id).name + "' arrives at " +
                time_to_string(at));
        }
      }
    }
    // Mem inputs: the value must reach every mem replica's processor by the
    // end of the iteration even though it does not gate the mem's start.
    for (const Dependency& dep : graph().dependencies()) {
      if (graph().is_precedence(dep.id)) continue;
      for (const ScheduledOperation* replica : schedule_.replicas(dep.dst)) {
        if (is_infinite(arrival(dep.id, replica->processor))) {
          issue("mem input '" + dep.name + "' never reaches replica on " +
                proc_name(replica->processor));
        }
      }
    }
  }

  /// Every actively replicated dependency (all of solution 2's, the
  /// hybrid's flagged ones) must deliver every producer replica's value to
  /// every remote consumer.
  void check_active_comm_redundancy() {
    for (const Dependency& dep : graph().dependencies()) {
      if (!schedule_.uses_active_comms(dep.id)) continue;
      for (const ScheduledOperation* consumer :
           schedule_.replicas(dep.dst)) {
        const ProcessorId proc = consumer->processor;
        if (schedule_.replica_on(dep.src, proc) != nullptr) continue;
        for (const ScheduledOperation* sender :
             schedule_.replicas(dep.src)) {
          bool delivered = false;
          for (const ScheduledComm* comm : schedule_.comms_of(dep.id)) {
            if (comm->sender_rank != sender->rank) continue;
            if (std::find(comm->delivered_to.begin(),
                          comm->delivered_to.end(),
                          proc) != comm->delivered_to.end()) {
              delivered = true;
              break;
            }
          }
          if (!delivered) {
            issue("active comms: value of '" + dep.name + "' from replica " +
                  std::to_string(sender->rank) + " never delivered to " +
                  proc_name(proc));
          }
        }
      }
    }
  }

  const Schedule& schedule_;
  const Problem& problem_;
  std::vector<std::string> issues_;
};

}  // namespace

std::vector<std::string> validate(const Schedule& schedule) {
  return Validator(schedule).run();
}

}  // namespace ftsched
