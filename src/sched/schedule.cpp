#include "sched/schedule.hpp"

#include <algorithm>
#include <bit>

namespace ftsched {

std::string to_string(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kBase:
      return "base (non fault-tolerant)";
    case HeuristicKind::kSolution1:
      return "solution 1 (passive comm redundancy)";
    case HeuristicKind::kSolution2:
      return "solution 2 (active comm redundancy)";
    case HeuristicKind::kHybrid:
      return "hybrid (per-dependency comm redundancy)";
  }
  return "unknown";
}

Schedule::Schedule(const Problem& problem, HeuristicKind kind)
    : problem_(&problem),
      kind_(kind),
      k_(kind == HeuristicKind::kBase ? 0 : problem.failures_to_tolerate),
      replica_index_(problem.algorithm->operation_count()),
      active_comm_(problem.algorithm->dependency_count(),
                   kind == HeuristicKind::kSolution2 ? 1 : 0) {
  // Exact replica count and a comm estimate up front, so the engine's
  // commit loop never reallocates ops_ (replicas_view hands out borrowed
  // pointers into it between commits).
  ops_.reserve(problem.algorithm->operation_count() *
               static_cast<std::size_t>(k_ + 1));
  comms_.reserve(problem.algorithm->dependency_count() *
                 static_cast<std::size_t>(k_ + 1));
}

bool Schedule::uses_active_comms(DependencyId dep) const {
  FTSCHED_REQUIRE(dep.valid() && dep.index() < active_comm_.size(),
                  "unknown dependency id");
  return active_comm_[dep.index()] != 0;
}

void Schedule::set_active_comms(DependencyId dep) {
  FTSCHED_REQUIRE(dep.valid() && dep.index() < active_comm_.size(),
                  "unknown dependency id");
  active_comm_[dep.index()] = 1;
}

std::size_t Schedule::active_comm_dep_count() const {
  std::size_t count = 0;
  for (char flag : active_comm_) count += flag != 0;
  return count;
}

void Schedule::add_operation(const ScheduledOperation& placement) {
  FTSCHED_REQUIRE(placement.op.valid() &&
                      placement.op.index() < replica_index_.size(),
                  "placement references an unknown operation");
  auto& index = replica_index_[placement.op.index()];
  FTSCHED_REQUIRE(placement.rank == static_cast<int>(index.size()),
                  "replicas must be added in rank order");
  FTSCHED_REQUIRE(replica_on(placement.op, placement.processor) == nullptr,
                  "two replicas of one operation on the same processor");
  index.push_back(ops_.size());
  ops_.push_back(placement);
}

void Schedule::add_comm(ScheduledComm comm) {
  FTSCHED_REQUIRE(comm.dep.valid(), "comm references an invalid dependency");
  comms_.push_back(std::move(comm));
}

std::vector<const ScheduledOperation*> Schedule::replicas(
    OperationId op) const {
  std::vector<const ScheduledOperation*> result;
  for (std::size_t i : replica_index_[op.index()]) {
    result.push_back(&ops_[i]);
  }
  return result;
}

const ScheduledOperation* Schedule::main(OperationId op) const {
  const auto& index = replica_index_[op.index()];
  return index.empty() ? nullptr : &ops_[index.front()];
}

const ScheduledOperation* Schedule::replica_on(OperationId op,
                                               ProcessorId proc) const {
  for (std::size_t i : replica_index_[op.index()]) {
    if (ops_[i].processor == proc) return &ops_[i];
  }
  return nullptr;
}

std::vector<const ScheduledOperation*> Schedule::operations_on(
    ProcessorId proc) const {
  std::vector<const ScheduledOperation*> result;
  for (const ScheduledOperation& placement : ops_) {
    if (placement.processor == proc) result.push_back(&placement);
  }
  std::sort(result.begin(), result.end(),
            [](const ScheduledOperation* a, const ScheduledOperation* b) {
              if (!time_eq(a->start, b->start)) return a->start < b->start;
              return a->op < b->op;
            });
  return result;
}

std::vector<std::pair<const ScheduledComm*, const CommSegment*>>
Schedule::segments_on(LinkId link) const {
  std::vector<std::pair<const ScheduledComm*, const CommSegment*>> result;
  for (const ScheduledComm& comm : comms_) {
    if (!comm.active) continue;
    for (const CommSegment& seg : comm.segments) {
      if (seg.link == link) result.emplace_back(&comm, &seg);
    }
  }
  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    if (!time_eq(a.second->start, b.second->start)) {
      return a.second->start < b.second->start;
    }
    return a.first->dep < b.first->dep;
  });
  return result;
}

std::vector<const ScheduledComm*> Schedule::comms_of(DependencyId dep) const {
  std::vector<const ScheduledComm*> result;
  for (const ScheduledComm& comm : comms_) {
    if (comm.dep == dep && comm.active) result.push_back(&comm);
  }
  return result;
}

Time Schedule::makespan() const {
  Time end = 0;
  for (const ScheduledOperation& placement : ops_) {
    end = std::max(end, placement.end);
  }
  for (const ScheduledComm& comm : comms_) {
    if (!comm.active) continue;
    for (const CommSegment& seg : comm.segments) {
      end = std::max(end, seg.end);
    }
  }
  return end;
}

std::vector<ProcessorId> Schedule::comm_hops(const ScheduledComm& comm) const {
  const ArchitectureGraph& arch = *problem_->architecture;
  std::vector<ProcessorId> hops{comm.from};
  ProcessorId at = comm.from;
  for (std::size_t i = 0; i < comm.segments.size(); ++i) {
    const Link& link = arch.link(comm.segments[i].link);
    FTSCHED_REQUIRE(link.connects(at),
                    "comm segments do not form a contiguous route");
    if (i + 1 == comm.segments.size()) {
      at = comm.to;
    } else {
      const Link& next = arch.link(comm.segments[i + 1].link);
      ProcessorId relay;
      for (ProcessorId endpoint : link.endpoints) {
        if (endpoint != at && next.connects(endpoint)) {
          relay = endpoint;
          break;
        }
      }
      FTSCHED_REQUIRE(relay.valid(),
                      "comm segments do not form a contiguous route");
      at = relay;
    }
    hops.push_back(at);
  }
  return hops;
}

std::size_t Schedule::active_comm_count() const {
  std::size_t count = 0;
  for (const ScheduledComm& comm : comms_) {
    if (comm.active) ++count;
  }
  return count;
}

namespace {

struct Fnv1a {
  std::uint64_t state = 14695981039346656037ull;

  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      state ^= (v >> (byte * 8)) & 0xff;
      state *= 1099511628211ull;
    }
  }
  void mix_time(Time t) { mix(std::bit_cast<std::uint64_t>(t)); }
  template <class Tag>
  void mix_id(Id<Tag> id) {
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(id.value())));
  }
};

}  // namespace

std::uint64_t schedule_hash(const Schedule& schedule) {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(schedule.kind()));
  h.mix(static_cast<std::uint64_t>(schedule.failures_tolerated()));
  for (const Dependency& dep : schedule.problem().algorithm->dependencies()) {
    h.mix(schedule.uses_active_comms(dep.id) ? 1 : 0);
  }
  h.mix(schedule.operations().size());
  for (const ScheduledOperation& op : schedule.operations()) {
    h.mix_id(op.op);
    h.mix(static_cast<std::uint64_t>(op.rank));
    h.mix_id(op.processor);
    h.mix_time(op.start);
    h.mix_time(op.end);
  }
  h.mix(schedule.comms().size());
  for (const ScheduledComm& comm : schedule.comms()) {
    h.mix_id(comm.dep);
    h.mix(static_cast<std::uint64_t>(comm.sender_rank));
    h.mix_id(comm.from);
    h.mix_id(comm.to);
    h.mix(comm.delivered_to.size());
    for (ProcessorId proc : comm.delivered_to) h.mix_id(proc);
    h.mix(comm.segments.size());
    for (const CommSegment& seg : comm.segments) {
      h.mix_id(seg.link);
      h.mix_time(seg.start);
      h.mix_time(seg.end);
    }
    h.mix(comm.active ? 1 : 0);
    h.mix(comm.liveness ? 1 : 0);
  }
  return h.state;
}

}  // namespace ftsched
