// certifyd request/response protocol: line-delimited JSON, one request per
// line in, a stream of response records out.
//
// Requests (the "type" member selects):
//   {"type":"submit","id":"r1","problem":"data/x.ft",      — or
//    "problem_inline":"algorithm\n...","heuristic":"solution1",
//    "claim_k":-1,"links":0,"silences":0,"response_bound":12.5,
//    "latency_constraints":[{"name":"c","source":"A","sink":"B","bound":5}],
//    "threads":0,"deadline_ms":0,"certificate_out":"cert.json"}
//   {"type":"status","id":"s1"}
//   {"type":"shutdown"}
//
// Responses: every record echoes the request id.
//   ack          — request admitted; carries the plan key and sweep size
//   progress     — one per finished certification task (streaming path)
//   counterexample — one violating branch, as found (capped at the spec's
//                  max_counterexamples, like the certificate itself)
//   result       — verdict summary; "cache" says "hit" or "miss"
//   status / error / bye
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/oracle.hpp"
#include "core/error.hpp"
#include "core/time.hpp"

namespace ftsched::service {

struct SubmitRequest {
  std::string id;
  /// Path to a problem file; empty when problem_inline is used instead.
  std::string problem_path;
  /// Problem text carried in the request itself (pipe-mode CI, remote
  /// clients without a shared filesystem). Newlines arrive as \n escapes.
  std::string problem_inline;
  std::string heuristic = "solution1";
  int claim_k = -1;
  int links = 0;
  int silences = 0;
  Time response_bound = kInfinite;
  /// Named chain constraints to certify alongside the scalar envelope:
  /// "latency_constraints":[{"name":…,"source":…,"sink":…,"bound":…}].
  /// Structural validity (well-formed JSON, positive bound) is checked at
  /// parse time; resolution against the schedule happens at submit, where
  /// a malformed spec answers with an error record.
  std::vector<campaign::LatencyConstraint> latency_constraints = {};
  unsigned threads = 0;
  /// Per-request deadline; 0 = none. An expired deadline cancels the
  /// remaining certification tasks and answers with an error record.
  double deadline_ms = 0;
  /// Optional server-side path the full certificate JSON is written to
  /// (the result record itself carries only the summary).
  std::string certificate_out;
};

struct Request {
  enum class Kind { kSubmit, kStatus, kShutdown };
  Kind kind = Kind::kStatus;
  std::string id;
  SubmitRequest submit;
};

/// Parses one request line; malformed JSON or an unknown type is a clean
/// Error (the server answers with an error record and keeps serving).
[[nodiscard]] Expected<Request> parse_request(std::string_view line);

}  // namespace ftsched::service
