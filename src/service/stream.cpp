#include "service/stream.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "obs/json_util.hpp"
#include "service/json.hpp"

namespace ftsched::service {
namespace {

/// Exact double round-trip: 17 significant digits guarantee
/// strtod(%.17g(x)) == x, so a time survives worker → stream → merger
/// bit-for-bit and the merged certificate renders the same %.12g text as
/// the single-process one. kInfinite (and anything non-finite) is null.
std::string wire_time(Time t) {
  if (!std::isfinite(t)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", t);
  return buf;
}

Time read_time(const JsonValue& object, std::string_view key, Time def) {
  const JsonValue* member = object.find(key);
  if (member == nullptr) return def;
  if (member->is_null()) return kInfinite;
  if (member->is_number()) return member->number;
  return def;
}

std::size_t read_size(const JsonValue& object, std::string_view key) {
  return static_cast<std::size_t>(object.number_or(key, 0));
}

bool append_ids(const JsonValue* array, auto& out) {
  if (array == nullptr) return true;  // absent = empty
  if (!array->is_array()) return false;
  for (const JsonValue& item : array->items) {
    if (!item.is_number()) return false;
    out.emplace_back(static_cast<std::int32_t>(item.number));
  }
  return true;
}

}  // namespace

void OstreamSink::write(std::string_view line) {
  out_ << line << '\n';
  out_.flush();
}

std::string write_branch(const campaign::CertifyBranch& branch) {
  std::string out = "{\"dead\":[";
  for (std::size_t i = 0; i < branch.dead_at_start.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(branch.dead_at_start[i].value());
  }
  out += "],\"dead_links\":[";
  for (std::size_t i = 0; i < branch.dead_links_at_start.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(branch.dead_links_at_start[i].value());
  }
  out += "],\"crashes\":[";
  for (std::size_t i = 0; i < branch.crashes.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"p\":" + std::to_string(branch.crashes[i].processor.value()) +
           ",\"t\":" + wire_time(branch.crashes[i].time) + "}";
  }
  out += "],\"link_crashes\":[";
  for (std::size_t i = 0; i < branch.link_crashes.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"l\":" + std::to_string(branch.link_crashes[i].link.value()) +
           ",\"t\":" + wire_time(branch.link_crashes[i].time) + "}";
  }
  out += "],\"silences\":[";
  for (std::size_t i = 0; i < branch.silences.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"p\":" + std::to_string(branch.silences[i].processor.value()) +
           ",\"from\":" + wire_time(branch.silences[i].from) +
           ",\"to\":" + wire_time(branch.silences[i].to) + "}";
  }
  out += "],\"lost\":";
  out += branch.outputs_lost ? "true" : "false";
  out += ",\"response\":" + wire_time(branch.response_time);
  // Constraint names appear only when violated, keeping scalar-only
  // branches byte-identical to the pre-constraint wire format.
  if (!branch.violated_constraints.empty()) {
    out += ",\"violated\":[";
    for (std::size_t i = 0; i < branch.violated_constraints.size(); ++i) {
      if (i > 0) out += ',';
      out += obs::json_string(branch.violated_constraints[i]);
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string write_meta_record(const StreamMeta& meta) {
  std::string out = "{\"type\":\"meta\",\"format\":" +
                    std::to_string(meta.format) +
                    ",\"plan_key\":" + obs::json_string(meta.plan_key);
  out += ",\"max_failures\":" + std::to_string(meta.max_failures);
  out += ",\"max_link_failures\":" + std::to_string(meta.max_link_failures);
  out += ",\"max_silences\":" + std::to_string(meta.max_silences);
  out += ",\"response_bound\":" + wire_time(meta.response_bound);
  out += ",\"subsets\":" + std::to_string(meta.subsets);
  out += ",\"link_subsets\":" + std::to_string(meta.link_subsets);
  out += ",\"tasks\":" + std::to_string(meta.tasks);
  out += ",\"shard_index\":" + std::to_string(meta.shard_index);
  out += ",\"shard_count\":" + std::to_string(meta.shard_count);
  out += ",\"max_counterexamples\":" +
         std::to_string(meta.max_counterexamples);
  out += ",\"dedup\":";
  out += meta.dedup ? "true" : "false";
  if (!meta.constraints.empty()) {
    out += ",\"latency_constraints\":[";
    for (std::size_t i = 0; i < meta.constraints.size(); ++i) {
      const campaign::LatencyConstraint& c = meta.constraints[i];
      if (i > 0) out += ',';
      out += "{\"name\":" + obs::json_string(c.name);
      out += ",\"source\":" + obs::json_string(c.source_op);
      out += ",\"sink\":" + obs::json_string(c.sink_op);
      out += ",\"bound\":" + wire_time(c.bound) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string write_task_record(const campaign::CertifyTaskPartial& task) {
  std::string out =
      "{\"type\":\"task\",\"task\":" + std::to_string(task.task_index);
  out += ",\"branches\":" + std::to_string(task.branches);
  out += ",\"forks\":" + std::to_string(task.forks);
  out += ",\"leaves_reused\":" + std::to_string(task.leaves_reused);
  out += ",\"events_simulated\":" + std::to_string(task.events_simulated);
  out += ",\"instants_kept\":" + std::to_string(task.instants_kept);
  out += ",\"instants_merged\":" + std::to_string(task.instants_merged);
  out += ",\"total_counterexamples\":" +
         std::to_string(task.total_counterexamples);
  out += ",\"worst_response\":" + wire_time(task.worst_response);
  if (!task.worst_chain_latency.empty()) {
    out += ",\"worst_chain_latency\":[";
    for (std::size_t i = 0; i < task.worst_chain_latency.size(); ++i) {
      if (i > 0) out += ',';
      out += wire_time(task.worst_chain_latency[i]);
    }
    out += "]";
  }
  out += ",\"counterexamples\":[";
  for (std::size_t i = 0; i < task.counterexamples.size(); ++i) {
    if (i > 0) out += ',';
    out += write_branch(task.counterexamples[i]);
  }
  out += "]}";
  return out;
}

std::string write_end_record(const StreamEnd& end) {
  std::string out =
      "{\"type\":\"end\",\"shard_index\":" + std::to_string(end.shard_index);
  out += ",\"tasks_emitted\":" + std::to_string(end.tasks_emitted);
  out += ",\"cancelled\":";
  out += end.cancelled ? "true" : "false";
  out += "}";
  return out;
}

namespace {

Expected<campaign::CertifyBranch> parse_branch(const JsonValue& object) {
  const auto bad = [](const std::string& what) {
    return Error{Error::Code::kInvalidInput, "stream: bad branch: " + what};
  };
  if (!object.is_object()) return bad("not an object");
  campaign::CertifyBranch branch;
  if (!append_ids(object.find("dead"), branch.dead_at_start)) {
    return bad("dead must be an array of ids");
  }
  if (!append_ids(object.find("dead_links"), branch.dead_links_at_start)) {
    return bad("dead_links must be an array of ids");
  }
  if (const JsonValue* crashes = object.find("crashes")) {
    if (!crashes->is_array()) return bad("crashes must be an array");
    for (const JsonValue& item : crashes->items) {
      if (!item.is_object()) return bad("crash must be an object");
      FailureEvent event;
      event.processor =
          ProcessorId(static_cast<std::int32_t>(item.number_or("p", -1)));
      event.time = read_time(item, "t", 0);
      branch.crashes.push_back(event);
    }
  }
  if (const JsonValue* deaths = object.find("link_crashes")) {
    if (!deaths->is_array()) return bad("link_crashes must be an array");
    for (const JsonValue& item : deaths->items) {
      if (!item.is_object()) return bad("link crash must be an object");
      LinkFailureEvent event;
      event.link = LinkId(static_cast<std::int32_t>(item.number_or("l", -1)));
      event.time = read_time(item, "t", 0);
      branch.link_crashes.push_back(event);
    }
  }
  if (const JsonValue* silences = object.find("silences")) {
    if (!silences->is_array()) return bad("silences must be an array");
    for (const JsonValue& item : silences->items) {
      if (!item.is_object()) return bad("silence must be an object");
      SilentWindow window;
      window.processor =
          ProcessorId(static_cast<std::int32_t>(item.number_or("p", -1)));
      window.from = read_time(item, "from", 0);
      window.to = read_time(item, "to", 0);
      branch.silences.push_back(window);
    }
  }
  branch.outputs_lost = object.bool_or("lost", false);
  branch.response_time = read_time(object, "response", kInfinite);
  if (const JsonValue* violated = object.find("violated")) {
    if (!violated->is_array()) return bad("violated must be an array");
    for (const JsonValue& item : violated->items) {
      if (!item.is_string()) return bad("violated entries must be strings");
      branch.violated_constraints.push_back(item.string);
    }
  }
  return branch;
}

}  // namespace

Expected<StreamRecord> parse_record(std::string_view line) {
  auto parsed = parse_json(line);
  if (!parsed.has_value()) {
    return Error{Error::Code::kInvalidInput,
                 "stream: malformed record: " + parsed.error().message};
  }
  const JsonValue& object = parsed.value();
  if (!object.is_object()) {
    return Error{Error::Code::kInvalidInput,
                 "stream: record is not a JSON object"};
  }
  const std::string type = object.string_or("type", "");
  StreamRecord record;
  if (type == "meta") {
    record.kind = StreamRecord::Kind::kMeta;
    StreamMeta& meta = record.meta;
    meta.format = static_cast<int>(object.number_or("format", 0));
    if (meta.format != 1) {
      return Error{Error::Code::kInvalidInput,
                   "stream: unsupported format " +
                       std::to_string(meta.format)};
    }
    meta.plan_key = object.string_or("plan_key", "");
    meta.max_failures = static_cast<int>(object.number_or("max_failures", 0));
    meta.max_link_failures =
        static_cast<int>(object.number_or("max_link_failures", 0));
    meta.max_silences = static_cast<int>(object.number_or("max_silences", 0));
    meta.response_bound = read_time(object, "response_bound", kInfinite);
    meta.subsets = read_size(object, "subsets");
    meta.link_subsets = read_size(object, "link_subsets");
    meta.tasks = read_size(object, "tasks");
    meta.shard_index = read_size(object, "shard_index");
    meta.shard_count = read_size(object, "shard_count");
    meta.max_counterexamples = read_size(object, "max_counterexamples");
    meta.dedup = object.bool_or("dedup", true);
    if (const JsonValue* list = object.find("latency_constraints")) {
      if (!list->is_array()) {
        return Error{Error::Code::kInvalidInput,
                     "stream: latency_constraints must be an array"};
      }
      for (const JsonValue& item : list->items) {
        if (!item.is_object()) {
          return Error{Error::Code::kInvalidInput,
                       "stream: latency constraint must be an object"};
        }
        campaign::LatencyConstraint c;
        c.name = item.string_or("name", "");
        c.source_op = item.string_or("source", "");
        c.sink_op = item.string_or("sink", "");
        c.bound = read_time(item, "bound", kInfinite);
        meta.constraints.push_back(std::move(c));
      }
    }
    if (meta.shard_count == 0 || meta.shard_index >= meta.shard_count) {
      return Error{Error::Code::kInvalidInput,
                   "stream: meta has invalid shard assignment"};
    }
    return record;
  }
  if (type == "task") {
    record.kind = StreamRecord::Kind::kTask;
    campaign::CertifyTaskPartial& task = record.task;
    const JsonValue* index = object.find("task");
    if (index == nullptr || !index->is_number()) {
      return Error{Error::Code::kInvalidInput,
                   "stream: task record missing task index"};
    }
    task.task_index = static_cast<std::size_t>(index->number);
    task.branches = read_size(object, "branches");
    task.forks = read_size(object, "forks");
    task.leaves_reused = read_size(object, "leaves_reused");
    task.events_simulated = read_size(object, "events_simulated");
    task.instants_kept = read_size(object, "instants_kept");
    task.instants_merged = read_size(object, "instants_merged");
    task.total_counterexamples = read_size(object, "total_counterexamples");
    task.worst_response = read_time(object, "worst_response", 0);
    if (const JsonValue* worsts = object.find("worst_chain_latency")) {
      if (!worsts->is_array()) {
        return Error{Error::Code::kInvalidInput,
                     "stream: worst_chain_latency must be an array"};
      }
      for (const JsonValue& item : worsts->items) {
        if (item.is_null()) {
          task.worst_chain_latency.push_back(kInfinite);
        } else if (item.is_number()) {
          task.worst_chain_latency.push_back(item.number);
        } else {
          return Error{Error::Code::kInvalidInput,
                       "stream: worst_chain_latency entries must be numbers"};
        }
      }
    }
    if (const JsonValue* list = object.find("counterexamples")) {
      if (!list->is_array()) {
        return Error{Error::Code::kInvalidInput,
                     "stream: counterexamples must be an array"};
      }
      for (const JsonValue& item : list->items) {
        auto branch = parse_branch(item);
        if (!branch.has_value()) return branch.error();
        task.counterexamples.push_back(std::move(branch.value()));
      }
    }
    return record;
  }
  if (type == "end") {
    record.kind = StreamRecord::Kind::kEnd;
    record.end.shard_index = read_size(object, "shard_index");
    record.end.tasks_emitted = read_size(object, "tasks_emitted");
    record.end.cancelled = object.bool_or("cancelled", false);
    return record;
  }
  return Error{Error::Code::kInvalidInput,
               "stream: unknown record type \"" + type + "\""};
}

}  // namespace ftsched::service
