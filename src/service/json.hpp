// Minimal JSON value + recursive-descent parser for the service layer.
//
// ftsched has only ever EMITTED JSON (obs/json_util.hpp); the certifyd
// server and the shard/merge protocol are the first consumers that must
// parse it back: request lines arriving over the pipe/socket, and partial-
// certificate records produced by remote shard workers. The parser covers
// exactly RFC 8259's value grammar over complete documents — objects,
// arrays, strings (with escapes), numbers, booleans, null — and reports
// malformed input as a clean Error naming the byte offset, never UB.
//
// Numbers are held as double: every counter the protocol carries fits
// 2^53 exactly, and times round-trip bit-exactly through the %.17g
// rendering the stream records use (service/stream.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace ftsched::service {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;  // kArray
  /// Members in document order (duplicate keys kept; find returns the
  /// first, matching common parser behaviour).
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }

  /// First member named `key`, or nullptr (also for non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed member access with defaults — absent members and kind
  /// mismatches yield the default, so request parsing reads flat records
  /// without a cascade of null checks.
  [[nodiscard]] double number_or(std::string_view key, double def) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view def) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool def) const;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed,
/// trailing garbage rejected). Errors carry the byte offset and what was
/// expected.
[[nodiscard]] Expected<JsonValue> parse_json(std::string_view text);

}  // namespace ftsched::service
