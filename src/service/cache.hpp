// Plan-key result cache for certifyd.
//
// Certification is a pure function of (schedule bytes, resolved budgets,
// certificate knobs) — Goemans–Lynch–Saias frames exactly this as a
// per-plan fault-budget query, the shape a long-lived service memoizes.
// The key deliberately hashes the SCHEDULE, not the problem text: two
// textually different problem files that produce the same schedule
// (renamed operations, reordered declarations — isomorphic plans) share a
// key and hit the cache. Budgets are resolved through certify_sweep before
// keying, so claim_k = -1 ("the schedule's own tolerance") and the
// explicit equivalent K collide onto one entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "campaign/certify.hpp"
#include "core/time.hpp"
#include "sched/schedule.hpp"

namespace ftsched::service {

/// Canonical cache identity of one certification request. Stable text —
/// it appears in protocol records and in `campaign_tool --plan-key`
/// output, so users can check cache identity offline.
[[nodiscard]] std::string plan_key_string(const Schedule& schedule,
                                          const campaign::CertifySpec& spec);

/// What the service keeps per plan key: the verdict summary the result
/// record needs plus the full certificate JSON (already rendered — a hit
/// costs no re-render and is byte-identical to the miss that filled it).
struct CachedResult {
  bool certified = false;
  std::size_t branches = 0;
  std::size_t total_counterexamples = 0;
  Time worst_response = 0;
  std::string certificate_json;
};

/// Thread-safe LRU map plan key → CachedResult. Capacity 0 disables
/// caching entirely (every get is a miss, puts are dropped) — bench_service
/// uses that as its uncached baseline.
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Bumps the entry to most-recently-used and counts a hit/miss.
  [[nodiscard]] std::optional<CachedResult> get(const std::string& key);

  /// Inserts or refreshes; evicts the least-recently-used entry beyond
  /// capacity.
  void put(const std::string& key, CachedResult value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  struct Entry {
    std::string key;
    CachedResult result;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<Entry> order_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ftsched::service
