#include "service/server.hpp"

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "campaign/certify.hpp"
#include "io/problem_format.hpp"
#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "sched/heuristics.hpp"
#include "service/json.hpp"

namespace ftsched::service {
namespace {

using obs::json_string;

/// Bucket bounds for the per-request certification latency histogram.
const std::vector<double> kLatencyBoundsMs = {1,   5,    10,   50,
                                              100, 500, 1000, 5000};

void count(const char* name, std::uint64_t n = 1) {
  obs::MetricsRegistry::global().counter(name).add(n);
}

std::string wire_time_or_null(Time t) {
  return obs::json_number(t);  // non-finite renders as null
}

bool parse_heuristic(const std::string& name, HeuristicKind& kind) {
  if (name == "base") {
    kind = HeuristicKind::kBase;
  } else if (name == "solution1") {
    kind = HeuristicKind::kSolution1;
  } else if (name == "solution2") {
    kind = HeuristicKind::kSolution2;
  } else {
    return false;
  }
  return true;
}

bool stopped(const ServeOptions& options) {
  return options.stop != nullptr &&
         options.stop->load(std::memory_order_relaxed);
}

class FdSink : public RecordSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}
  void write(std::string_view line) override {
    std::string framed(line);
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::write(fd_, framed.data() + off, framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // peer went away; records to a dead client are dropped
      }
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
};

}  // namespace

CertifyService::CertifyService(const ServeOptions& options)
    : options_(options), cache_(options.cache_capacity) {}

ServiceStats CertifyService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

/// Merges one finished request's counter delta into the shared totals and
/// mirrors it into the obs registry. One lock, whole delta: the global
/// counters only ever advance by complete per-request contributions.
void CertifyService::merge(const ServiceStats& delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += delta.requests;
    stats_.submits += delta.submits;
    stats_.cache_hits += delta.cache_hits;
    stats_.cache_misses += delta.cache_misses;
    stats_.deadline_exceeded += delta.deadline_exceeded;
    stats_.errors += delta.errors;
  }
  if (delta.requests != 0) count("service.requests", delta.requests);
  if (delta.submits != 0) count("service.submits", delta.submits);
  if (delta.cache_hits != 0) count("service.cache_hits", delta.cache_hits);
  if (delta.cache_misses != 0) {
    count("service.cache_misses", delta.cache_misses);
  }
  if (delta.deadline_exceeded != 0) {
    count("service.deadline_exceeded", delta.deadline_exceeded);
  }
  if (delta.errors != 0) count("service.errors", delta.errors);
}

void CertifyService::emit_error(RecordSink& sink, const std::string& id,
                                const std::string& message,
                                ServiceStats& delta) {
  ++delta.errors;
  sink.write("{\"type\":\"error\",\"id\":" + json_string(id) +
             ",\"message\":" + json_string(message) + "}");
}

void CertifyService::write_status(RecordSink& sink,
                                  const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"type\":\"status\",\"id\":" + json_string(id);
  out += ",\"requests\":" + std::to_string(stats_.requests);
  out += ",\"submits\":" + std::to_string(stats_.submits);
  out += ",\"cache_hits\":" + std::to_string(stats_.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(stats_.cache_misses);
  out += ",\"cache_entries\":" + std::to_string(cache_.size());
  out += ",\"cache_capacity\":" + std::to_string(cache_.capacity());
  out += ",\"deadline_exceeded\":" +
         std::to_string(stats_.deadline_exceeded);
  out += ",\"errors\":" + std::to_string(stats_.errors);
  out += "}";
  sink.write(out);
}

bool CertifyService::handle_line(std::string_view line, RecordSink& sink) {
  ServiceStats delta;
  ++delta.requests;
  bool serving = true;
  auto request = parse_request(line);
  if (!request.has_value()) {
    emit_error(sink, "", request.error().message, delta);
  } else {
    switch (request.value().kind) {
      case Request::Kind::kShutdown:
        sink.write("{\"type\":\"bye\",\"id\":" +
                   json_string(request.value().id) + "}");
        serving = false;
        break;
      case Request::Kind::kStatus:
        write_status(sink, request.value().id);
        break;
      case Request::Kind::kSubmit:
        handle_submit(request.value().submit, sink, delta);
        break;
    }
  }
  merge(delta);
  return serving;
}

void CertifyService::handle_submit(const SubmitRequest& submit,
                                   RecordSink& sink, ServiceStats& delta) {
  ++delta.submits;

  std::string text = submit.problem_inline;
  if (!submit.problem_path.empty()) {
    std::ifstream file(submit.problem_path);
    if (!file) {
      emit_error(sink, submit.id,
                 "cannot open problem file " + submit.problem_path, delta);
      return;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  Expected<workload::OwnedProblem> parsed = io::read_problem(text);
  if (!parsed.has_value()) {
    emit_error(sink, submit.id, "problem: " + parsed.error().message, delta);
    return;
  }
  const workload::OwnedProblem owned = std::move(parsed).value();

  HeuristicKind kind = HeuristicKind::kSolution1;
  if (!parse_heuristic(submit.heuristic, kind)) {
    emit_error(sink, submit.id,
               "unknown heuristic \"" + submit.heuristic +
                   "\" (base | solution1 | solution2)",
               delta);
    return;
  }
  const Expected<Schedule> scheduled = schedule(owned.problem, kind);
  if (!scheduled.has_value()) {
    emit_error(sink, submit.id,
               "scheduling failed: " + scheduled.error().message, delta);
    return;
  }
  const Schedule& sched = scheduled.value();
  const ArchitectureGraph& arch = *owned.problem.architecture;

  campaign::CertifySpec spec;
  spec.max_failures = submit.claim_k;
  spec.max_link_failures = submit.links;
  spec.max_silences = submit.silences;
  spec.response_bound = submit.response_bound;
  spec.latency_constraints = submit.latency_constraints;
  spec.threads = submit.threads != 0 ? submit.threads : options_.threads;

  // Resolve chain constraints against the schedule before acking: a
  // malformed spec (endpoint not in the graph, replica-less op, bad
  // bound) is a client error record, not a mid-certification throw.
  if (!spec.latency_constraints.empty()) {
    try {
      (void)campaign::resolve_latency_constraints(sched,
                                                  spec.latency_constraints);
    } catch (const std::invalid_argument& error) {
      emit_error(sink, submit.id, error.what(), delta);
      return;
    }
  }

  const std::string key = plan_key_string(sched, spec);
  const campaign::CertifySweep sweep = campaign::certify_sweep(sched, spec);
  sink.write("{\"type\":\"ack\",\"id\":" + json_string(submit.id) +
             ",\"plan_key\":" + json_string(key) +
             ",\"tasks\":" + std::to_string(sweep.tasks) + "}");

  const auto result_record = [&](const CachedResult& result,
                                 const char* origin) {
    std::string out = "{\"type\":\"result\",\"id\":" + json_string(submit.id);
    out += ",\"plan_key\":" + json_string(key);
    out += ",\"cache\":" + json_string(origin);
    out += ",\"certified\":";
    out += result.certified ? "true" : "false";
    out += ",\"branches\":" + std::to_string(result.branches);
    out += ",\"counterexamples\":" +
           std::to_string(result.total_counterexamples);
    out += ",\"worst_response\":" + wire_time_or_null(result.worst_response);
    out += ",\"certificate_bytes\":" +
           std::to_string(result.certificate_json.size());
    out += "}";
    sink.write(out);
  };

  const auto write_certificate = [&](const CachedResult& result) {
    if (submit.certificate_out.empty()) return true;
    std::ofstream file(submit.certificate_out);
    if (!file) {
      emit_error(sink, submit.id,
                 "cannot write " + submit.certificate_out, delta);
      return false;
    }
    file << result.certificate_json;
    return true;
  };

  std::optional<CachedResult> hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hit = cache_.get(key);
  }
  if (hit.has_value()) {
    ++delta.cache_hits;
    if (!write_certificate(*hit)) return;
    result_record(*hit, "hit");
    return;
  }
  ++delta.cache_misses;

  const auto start = std::chrono::steady_clock::now();
  const auto expired = [&] {
    if (submit.deadline_ms <= 0) return false;
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    return elapsed.count() > submit.deadline_ms;
  };

  campaign::CertifyMerger merger(sweep, spec);
  std::size_t streamed_counterexamples = 0;
  std::size_t branches_so_far = 0;
  std::size_t counterexamples_so_far = 0;
  const bool completed = campaign::certify_shard(
      sched, spec, campaign::CertifyShardSpec{},
      [&](campaign::CertifyTaskPartial&& partial) {
        branches_so_far += partial.branches;
        counterexamples_so_far += partial.total_counterexamples;
        for (const campaign::CertifyBranch& branch :
             partial.counterexamples) {
          if (streamed_counterexamples >= spec.max_counterexamples) break;
          ++streamed_counterexamples;
          sink.write("{\"type\":\"counterexample\",\"id\":" +
                     json_string(submit.id) +
                     ",\"task\":" + std::to_string(partial.task_index) +
                     ",\"branch\":" + write_branch(branch) + "}");
        }
        if (options_.progress) {
          sink.write("{\"type\":\"progress\",\"id\":" +
                     json_string(submit.id) +
                     ",\"task\":" + std::to_string(partial.task_index) +
                     ",\"tasks\":" + std::to_string(sweep.tasks) +
                     ",\"branches\":" + std::to_string(branches_so_far) +
                     ",\"counterexamples\":" +
                     std::to_string(counterexamples_so_far) + "}");
        }
        merger.add(std::move(partial));
      },
      expired);
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  obs::MetricsRegistry::global()
      .histogram("service.shard_latency_ms", kLatencyBoundsMs)
      .observe(elapsed.count());

  if (!completed) {
    ++delta.deadline_exceeded;
    emit_error(sink, submit.id,
               "deadline of " + std::to_string(submit.deadline_ms) +
                   " ms exceeded; certification abandoned",
               delta);
    return;
  }

  campaign::CertifyReport report = merger.finish();
  CachedResult result;
  result.certified = report.certified;
  result.branches = report.branches;
  result.total_counterexamples = report.total_counterexamples;
  result.worst_response = report.worst_response;
  result.certificate_json = report.to_json(arch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.put(key, result);
  }
  if (!write_certificate(result)) return;
  result_record(result, "miss");
}

int serve_lines(std::istream& in, std::ostream& out,
                const ServeOptions& options) {
  CertifyService service(options);
  OstreamSink sink(out);
  std::string line;
  while (!stopped(options) && std::getline(in, line)) {
    if (line.empty()) continue;
    if (!service.handle_line(line, sink)) break;
  }
  return 0;
}

namespace {

/// Serves one accepted connection until EOF, a shutdown request, or the
/// server-wide shutdown/stop flags. Reads poll with a timeout so a worker
/// holding an idle connection notices a shutdown initiated elsewhere and
/// releases itself — without that, joining the pool could hang forever on
/// a silent client.
void serve_connection(CertifyService& service, int conn,
                      std::atomic<bool>& shutdown,
                      const ServeOptions& options) {
  FdSink sink(conn);
  std::string buffer;
  char chunk[4096];
  while (!shutdown.load(std::memory_order_relaxed) && !stopped(options)) {
    pollfd pfd{conn, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flags
    const ssize_t n = ::read(conn, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      if (!service.handle_line(line, sink)) {
        shutdown.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
}

}  // namespace

int serve_socket(const std::string& path, const ServeOptions& options) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("certifyd: socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "certifyd: socket path too long: %s\n",
                 path.c_str());
    ::close(listener);
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("certifyd: bind/listen");
    ::close(listener);
    return 2;
  }

  // One service for the whole server lifetime: the plan-key cache is
  // shared across all connections and workers, which is the point of the
  // daemon. Workers pull accepted connections from a queue; with the
  // default single worker this is the classic sequential accept loop.
  CertifyService service(options);
  std::atomic<bool> shutdown{false};
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<int> queued;
  bool accepting = true;

  const unsigned pool = options.serve_threads != 0 ? options.serve_threads : 1;
  std::vector<std::thread> workers;
  workers.reserve(pool);
  for (unsigned w = 0; w < pool; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        int conn = -1;
        {
          std::unique_lock<std::mutex> lock(queue_mu);
          queue_cv.wait(lock,
                        [&] { return !accepting || !queued.empty(); });
          if (queued.empty()) return;
          conn = queued.front();
          queued.pop_front();
        }
        serve_connection(service, conn, shutdown, options);
        ::close(conn);
      }
    });
  }

  while (!shutdown.load(std::memory_order_relaxed) && !stopped(options)) {
    // Poll with a timeout so a shutdown served on a worker thread (or
    // SIGINT) stops the accept loop even when no new client arrives.
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) {
      std::perror("certifyd: poll");
      break;
    }
    if (ready <= 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;  // SIGINT: loop re-checks the flag
      std::perror("certifyd: accept");
      break;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      queued.push_back(conn);
    }
    queue_cv.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu);
    accepting = false;
  }
  queue_cv.notify_all();
  for (std::thread& worker : workers) worker.join();

  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace ftsched::service
