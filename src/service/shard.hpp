// Shard/merge protocol: one certification spanning N workers.
//
// Shard i of n owns every global task t with t % n == i
// (CertifyShardSpec::owns). certify_stream runs that slice and writes
// meta/task/end records to a sink as tasks finish — bounded memory: at no
// point does a full CertifyReport exist on the worker. merge_streams
// re-canonicalizes any complete set of worker streams — records may arrive
// interleaved or out of order within a stream — back into the ascending
// global task order and folds them through the same CertifyMerger that
// certify() itself uses, so the merged certificate is byte-identical to
// the single-process one.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/certify.hpp"
#include "core/error.hpp"
#include "service/stream.hpp"

namespace ftsched::service {

struct StreamShardResult {
  /// False when the cancel hook fired; the stream's end record then says
  /// cancelled and merge_streams will refuse it.
  bool completed = true;
  std::size_t tasks_emitted = 0;
};

/// Runs shard `shard` of the sweep and streams its records into `sink`.
[[nodiscard]] StreamShardResult certify_stream(
    const Schedule& schedule, const campaign::CertifySpec& spec,
    const campaign::CertifyShardSpec& shard, RecordSink& sink,
    const std::function<bool()>& cancelled = {});

/// Merges complete worker streams (one string per worker, NDJSON) into the
/// certificate report. Validates before trusting: every stream carries a
/// meta matching `schedule` + `spec` (same plan key, same sweep shape),
/// shard assignments are consistent, every stream ends uncancelled with
/// the advertised task count, and the union of task records covers each
/// global task index exactly once.
[[nodiscard]] Expected<campaign::CertifyReport> merge_streams(
    const Schedule& schedule, const campaign::CertifySpec& spec,
    const std::vector<std::string>& streams);

}  // namespace ftsched::service
