#include "service/json.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace ftsched::service {
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  // Nesting guard: the protocol's deepest legitimate record is ~6 levels
  // (result → certificate → counterexamples → branch → crashes → pair);
  // 64 leaves headroom while keeping hostile input from overflowing the
  // parse stack.
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] Error fail(const std::string& what) const {
    return Error{Error::Code::kInvalidInput,
                 "json: " + what + " at offset " + std::to_string(pos)};
  }

  [[nodiscard]] bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_word(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  Expected<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        if (consume_word("null")) return JsonValue{};
        return fail("expected 'null'");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        return fail(std::string("unexpected character '") + c + "'");
    }
  }

  Expected<JsonValue> parse_object(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    ++pos;  // '{'
    skip_ws();
    if (consume('}')) return value;
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      auto key = parse_raw_string();
      if (!key.has_value()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      auto member = parse_value(depth + 1);
      if (!member.has_value()) return member.error();
      value.members.emplace_back(std::move(key.value()),
                                 std::move(member.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return value;
      return fail("expected ',' or '}' in object");
    }
  }

  Expected<JsonValue> parse_array(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    ++pos;  // '['
    skip_ws();
    if (consume(']')) return value;
    while (true) {
      auto item = parse_value(depth + 1);
      if (!item.has_value()) return item.error();
      value.items.push_back(std::move(item.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return value;
      return fail("expected ',' or ']' in array");
    }
  }

  Expected<std::string> parse_raw_string() {
    ++pos;  // '"'
    std::string out;
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (at_end()) return fail("unterminated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4u;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode the BMP code point; the protocol itself only
            // emits ASCII, so surrogate pairs are passed through as the
            // replacement-free raw code unit encoding of each half.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0u | (code >> 6u)));
              out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
            } else {
              out.push_back(static_cast<char>(0xE0u | (code >> 12u)));
              out.push_back(static_cast<char>(0x80u | ((code >> 6u) & 0x3Fu)));
              out.push_back(static_cast<char>(0x80u | (code & 0x3Fu)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
        continue;
      }
      // Raw control characters are invalid JSON; reject instead of
      // silently accepting unframed newlines inside NDJSON lines.
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos;
        return fail("unescaped control character in string");
      }
      out.push_back(c);
    }
  }

  Expected<JsonValue> parse_string_value() {
    auto raw = parse_raw_string();
    if (!raw.has_value()) return raw.error();
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    value.string = std::move(raw.value());
    return value;
  }

  Expected<JsonValue> parse_bool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (consume_word("true")) {
      value.boolean = true;
      return value;
    }
    if (consume_word("false")) {
      value.boolean = false;
      return value;
    }
    return fail("expected 'true' or 'false'");
  }

  Expected<JsonValue> parse_number() {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (at_end()) return fail("truncated number");
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    if (consume('.')) {
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected digit after '.'");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected exponent digit");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    // The slice is a valid JSON number, which is also a valid strtod
    // input; copy to guarantee NUL termination for strtod.
    const std::string slice(text.substr(start, pos - start));
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(slice.c_str(), nullptr);
    return value;
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double def) const {
  const JsonValue* member = find(key);
  return (member != nullptr && member->is_number()) ? member->number : def;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view def) const {
  const JsonValue* member = find(key);
  return (member != nullptr && member->is_string()) ? member->string
                                                    : std::string(def);
}

bool JsonValue::bool_or(std::string_view key, bool def) const {
  const JsonValue* member = find(key);
  return (member != nullptr && member->is_bool()) ? member->boolean : def;
}

Expected<JsonValue> parse_json(std::string_view text) {
  Parser parser{text};
  auto value = parser.parse_value(0);
  if (!value.has_value()) return value;
  parser.skip_ws();
  if (!parser.at_end()) return parser.fail("trailing garbage after document");
  return value;
}

}  // namespace ftsched::service
