// Streaming certificate protocol: newline-delimited JSON records.
//
// A shard worker emits exactly one `meta` record (the resolved sweep shape
// plus the shard assignment — everything a merger must check before
// trusting task records), then its owned `task` records in ascending
// global task-index order, then one `end` record (a truncated stream is
// detectable: no end, or tasks_emitted mismatch). Records are
// self-delimiting lines, so a stream can be written to a pipe, a file, or
// a socket and consumed incrementally with O(1) buffered lines.
//
// Wire fidelity. Times are serialized with %.17g — enough digits that
// strtod returns the identical double — and kInfinite maps to JSON null;
// ids travel as raw integers (names are an architecture concern: the
// merged CertifyReport re-renders them via to_json(arch)). This is what
// makes the merge byte-identical to the single-process certificate: the
// merger rebuilds the exact CertifyTaskPartial values the worker's
// CertifyMerger would have consumed locally.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/certify.hpp"
#include "core/error.hpp"
#include "core/time.hpp"

namespace ftsched::service {

/// Destination for protocol records. Implementations append ONE newline
/// per write; `line` itself never contains one.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void write(std::string_view line) = 0;
};

/// Collects records into a string (tests, merge fixtures).
class StringSink : public RecordSink {
 public:
  void write(std::string_view line) override {
    text_.append(line);
    text_.push_back('\n');
  }
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  std::string text_;
};

/// Writes records to an ostream, one line each, flushed per record so a
/// peer reading us through a pipe sees them as they happen.
class OstreamSink : public RecordSink {
 public:
  explicit OstreamSink(std::ostream& out) : out_(out) {}
  void write(std::string_view line) override;

 private:
  std::ostream& out_;
};

/// Stream header: the resolved sweep shape (budgets after clamping,
/// enumeration sizes) plus this worker's shard assignment and the spec
/// knobs that change certificate bytes (max_counterexamples, dedup).
struct StreamMeta {
  int format = 1;
  std::string plan_key;
  int max_failures = 0;
  int max_link_failures = 0;
  int max_silences = 0;
  Time response_bound = kInfinite;
  std::size_t subsets = 0;
  std::size_t link_subsets = 0;
  std::size_t tasks = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t max_counterexamples = 0;
  bool dedup = true;
  /// Named chain constraints the shard certified against. On the wire only
  /// when non-empty, so scalar-bound streams are byte-identical to format 1
  /// streams written before constraints existed.
  std::vector<campaign::LatencyConstraint> constraints = {};
};

/// Stream trailer; tasks_emitted lets the merger detect truncation and
/// `cancelled` marks a deadline-abandoned shard as unusable.
struct StreamEnd {
  std::size_t shard_index = 0;
  std::size_t tasks_emitted = 0;
  bool cancelled = false;
};

struct StreamRecord {
  enum class Kind { kMeta, kTask, kEnd };
  Kind kind = Kind::kMeta;
  StreamMeta meta;
  campaign::CertifyTaskPartial task;
  StreamEnd end;
};

[[nodiscard]] std::string write_meta_record(const StreamMeta& meta);
[[nodiscard]] std::string write_task_record(
    const campaign::CertifyTaskPartial& task);
[[nodiscard]] std::string write_end_record(const StreamEnd& end);

/// Branch serialization shared with the server's live counterexample
/// records (numeric ids, %.17g times).
[[nodiscard]] std::string write_branch(const campaign::CertifyBranch& branch);

/// Parses one NDJSON protocol line. Malformed input — truncated JSON,
/// unknown record type, wrong field kinds — yields a clean Error.
[[nodiscard]] Expected<StreamRecord> parse_record(std::string_view line);

}  // namespace ftsched::service
