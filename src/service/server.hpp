// certifyd: the certifier as a long-lived service.
//
// CertifyService is the transport-agnostic core — one request line in, a
// stream of response records out — so the pipe loop (CI, tests, benches
// drive it with stringstreams), the Unix-domain socket loop, and any
// future transport share one implementation. The service owns the LRU
// plan-key cache, so repeated/isomorphic submissions across requests AND
// across socket connections hit it.
//
// Certification streams: each finished task yields a progress record and
// its counterexamples (capped like the certificate) the moment the task
// completes, and is folded into the O(max_counterexamples) CertifyMerger —
// the server never materializes a full in-memory report beyond that capped
// summary.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/stream.hpp"

namespace ftsched::service {

struct ServeOptions {
  /// Plan-key result cache entries; 0 disables caching.
  std::size_t cache_capacity = 64;
  /// Default worker threads for requests that don't set their own.
  unsigned threads = 0;
  /// Graceful-shutdown flag (SIGINT): polled between requests, so an
  /// in-flight certification drains before the loop exits.
  const std::atomic<bool>* stop = nullptr;
  /// Emit a progress record per finished certification task.
  bool progress = true;
  /// Socket-mode connection workers. 1 (the default) serves connections
  /// sequentially in accept order; N > 1 lets N clients certify
  /// concurrently against the one shared service + plan-key cache.
  unsigned serve_threads = 1;
};

/// Deterministic service counters (mirrored into the global obs registry
/// as service.* metrics; status responses read these, not the registry,
/// so tests see exact values even when other subsystems share the
/// registry).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t submits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t errors = 0;
};

class CertifyService {
 public:
  explicit CertifyService(const ServeOptions& options);

  /// Handles one request line, writing response records to `sink`.
  /// Returns false when the request was a shutdown (a bye record has been
  /// written); every other outcome — including malformed requests, which
  /// answer with an error record — returns true and keeps serving.
  ///
  /// Thread-safe: concurrent callers (the socket worker pool) certify in
  /// parallel; each request accumulates its service.* counters privately
  /// and merges the whole delta under one lock when it finishes, so the
  /// totals any later status request observes are a sum of completed
  /// requests — independent of worker interleaving.
  bool handle_line(std::string_view line, RecordSink& sink);

  /// Snapshot of the merged counters (by value: the struct is shared with
  /// the worker pool).
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] ResultCache& cache() { return cache_; }

 private:
  void handle_submit(const SubmitRequest& submit, RecordSink& sink,
                     ServiceStats& delta);
  void emit_error(RecordSink& sink, const std::string& id,
                  const std::string& message, ServiceStats& delta);
  void write_status(RecordSink& sink, const std::string& id) const;
  void merge(const ServiceStats& delta);

  ServeOptions options_;
  mutable std::mutex mu_;  // guards cache_ and stats_
  ResultCache cache_;
  ServiceStats stats_;
};

/// Pipe mode: serve line-delimited requests from `in`, records to `out`
/// (flushed per record — the CI smoke test talks to us through a pipe).
/// Returns 0 after shutdown/EOF/stop-flag drain.
int serve_lines(std::istream& in, std::ostream& out,
                const ServeOptions& options);

/// Unix-domain socket mode: bind + listen on `path` (an existing socket
/// file is replaced), serve connections sequentially with one shared
/// service (and cache) until a shutdown request or the stop flag. Returns
/// 0 on clean shutdown, 2 if the socket cannot be created.
int serve_socket(const std::string& path, const ServeOptions& options);

}  // namespace ftsched::service
