#include "service/cache.hpp"

#include <cmath>
#include <cstdio>

namespace ftsched::service {

std::string plan_key_string(const Schedule& schedule,
                            const campaign::CertifySpec& spec) {
  const campaign::CertifySweep sweep = campaign::certify_sweep(schedule, spec);
  char buf[160];
  char bound[40];
  if (std::isfinite(sweep.response_bound)) {
    std::snprintf(bound, sizeof bound, "%.17g", sweep.response_bound);
  } else {
    std::snprintf(bound, sizeof bound, "inf");
  }
  std::snprintf(buf, sizeof buf, "pk-%016llx-k%d-l%d-s%d-r%s-d%d-c%zu",
                static_cast<unsigned long long>(schedule_hash(schedule)),
                sweep.max_failures, sweep.max_link_failures,
                sweep.max_silences, bound, spec.dedup ? 1 : 0,
                spec.max_counterexamples);
  return buf;
}

std::optional<CachedResult> ResultCache::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->result;
}

void ResultCache::put(const std::string& key, CachedResult value) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, order_.begin());
  while (index_.size() > capacity_) {
    index_.erase(order_.back().key);
    order_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace ftsched::service
