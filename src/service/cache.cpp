#include "service/cache.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace ftsched::service {

namespace {

// FNV-1a over the constraint list's identity (names, endpoints, %.17g
// bounds, and a separator so field concatenations can't collide across
// boundaries). Only mixed into the plan key when constraints exist, so
// every scalar-bound key is byte-identical to the pre-constraint format
// and cached scalar results survive the upgrade.
std::uint64_t constraints_hash(
    const std::vector<campaign::LatencyConstraint>& constraints) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ull;
    }
    h ^= 0x1f;
    h *= 1099511628211ull;
  };
  for (const campaign::LatencyConstraint& c : constraints) {
    mix(c.name.data(), c.name.size());
    mix(c.source_op.data(), c.source_op.size());
    mix(c.sink_op.data(), c.sink_op.size());
    char bound[40];
    std::snprintf(bound, sizeof bound, "%.17g", c.bound);
    mix(bound, std::strlen(bound));
  }
  return h;
}

}  // namespace

std::string plan_key_string(const Schedule& schedule,
                            const campaign::CertifySpec& spec) {
  const campaign::CertifySweep sweep = campaign::certify_sweep(schedule, spec);
  char buf[200];
  char bound[40];
  if (std::isfinite(sweep.response_bound)) {
    std::snprintf(bound, sizeof bound, "%.17g", sweep.response_bound);
  } else {
    std::snprintf(bound, sizeof bound, "inf");
  }
  std::snprintf(buf, sizeof buf, "pk-%016llx-k%d-l%d-s%d-r%s-d%d-c%zu",
                static_cast<unsigned long long>(schedule_hash(schedule)),
                sweep.max_failures, sweep.max_link_failures,
                sweep.max_silences, bound, spec.dedup ? 1 : 0,
                spec.max_counterexamples);
  std::string key = buf;
  if (!spec.latency_constraints.empty()) {
    char chains[24];
    std::snprintf(chains, sizeof chains, "-q%016llx",
                  static_cast<unsigned long long>(
                      constraints_hash(spec.latency_constraints)));
    key += chains;
  }
  return key;
}

std::optional<CachedResult> ResultCache::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->result;
}

void ResultCache::put(const std::string& key, CachedResult value) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, order_.begin());
  while (index_.size() > capacity_) {
    index_.erase(order_.back().key);
    order_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace ftsched::service
