#include "service/shard.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "service/cache.hpp"

namespace ftsched::service {
namespace {

StreamMeta make_meta(const Schedule& schedule,
                     const campaign::CertifySpec& spec,
                     const campaign::CertifyShardSpec& shard) {
  const campaign::CertifySweep sweep = campaign::certify_sweep(schedule, spec);
  StreamMeta meta;
  meta.plan_key = plan_key_string(schedule, spec);
  meta.max_failures = sweep.max_failures;
  meta.max_link_failures = sweep.max_link_failures;
  meta.max_silences = sweep.max_silences;
  meta.response_bound = sweep.response_bound;
  meta.subsets = sweep.subsets;
  meta.link_subsets = sweep.link_subsets;
  meta.tasks = sweep.tasks;
  meta.shard_index = shard.shard_index;
  meta.shard_count = shard.shard_count;
  meta.max_counterexamples = spec.max_counterexamples;
  meta.dedup = spec.dedup;
  meta.constraints = spec.latency_constraints;
  return meta;
}

bool same_constraints(const std::vector<campaign::LatencyConstraint>& a,
                      const std::vector<campaign::LatencyConstraint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].source_op != b[i].source_op ||
        a[i].sink_op != b[i].sink_op || !time_eq(a[i].bound, b[i].bound)) {
      return false;
    }
  }
  return true;
}

Error merge_error(const std::string& what) {
  return Error{Error::Code::kInvalidInput, "stream merge: " + what};
}

}  // namespace

StreamShardResult certify_stream(const Schedule& schedule,
                                 const campaign::CertifySpec& spec,
                                 const campaign::CertifyShardSpec& shard,
                                 RecordSink& sink,
                                 const std::function<bool()>& cancelled) {
  sink.write(write_meta_record(make_meta(schedule, spec, shard)));
  StreamShardResult result;
  result.completed = campaign::certify_shard(
      schedule, spec, shard,
      [&](campaign::CertifyTaskPartial&& partial) {
        // Certified-branch collection is a local bench concern; it is
        // never part of the wire certificate, and dropping it here keeps
        // the stream (and the worker's live memory) bounded.
        partial.collected.clear();
        sink.write(write_task_record(partial));
        ++result.tasks_emitted;
      },
      cancelled);
  StreamEnd end;
  end.shard_index = shard.shard_index;
  end.tasks_emitted = result.tasks_emitted;
  end.cancelled = !result.completed;
  sink.write(write_end_record(end));
  return result;
}

Expected<campaign::CertifyReport> merge_streams(
    const Schedule& schedule, const campaign::CertifySpec& spec,
    const std::vector<std::string>& streams) {
  if (streams.empty()) return merge_error("no streams given");

  const campaign::CertifySweep sweep = campaign::certify_sweep(schedule, spec);
  const std::string expected_key = plan_key_string(schedule, spec);

  // Task records keyed by global index; std::map gives the ascending
  // iteration the merger requires regardless of arrival order.
  std::map<std::size_t, campaign::CertifyTaskPartial> tasks;

  for (std::size_t s = 0; s < streams.size(); ++s) {
    const std::string& text = streams[s];
    const std::string where = "stream " + std::to_string(s);
    bool saw_meta = false;
    bool saw_end = false;
    campaign::CertifyShardSpec shard;
    std::size_t task_records = 0;

    std::size_t begin = 0;
    while (begin < text.size()) {
      std::size_t nl = text.find('\n', begin);
      if (nl == std::string::npos) nl = text.size();
      const std::string_view line(text.data() + begin, nl - begin);
      begin = nl + 1;
      if (line.empty()) continue;

      auto parsed = parse_record(line);
      if (!parsed.has_value()) {
        return merge_error(where + ": " + parsed.error().message);
      }
      StreamRecord& record = parsed.value();
      if (saw_end) return merge_error(where + ": record after end");

      switch (record.kind) {
        case StreamRecord::Kind::kMeta: {
          if (saw_meta) return merge_error(where + ": duplicate meta");
          saw_meta = true;
          const StreamMeta& meta = record.meta;
          if (meta.plan_key != expected_key) {
            return merge_error(where + ": plan key " + meta.plan_key +
                               " does not match this request (" +
                               expected_key + ")");
          }
          // plan_key covers schedule + budgets + knobs, but cross-check
          // the sweep shape too: it defends against a worker built from
          // diverged sources whose key format happens to agree.
          if (meta.max_failures != sweep.max_failures ||
              meta.max_link_failures != sweep.max_link_failures ||
              meta.max_silences != sweep.max_silences ||
              meta.subsets != sweep.subsets ||
              meta.link_subsets != sweep.link_subsets ||
              meta.tasks != sweep.tasks) {
            return merge_error(where + ": sweep shape disagrees");
          }
          // The plan key only mixes constraints when present; compare the
          // lists themselves so a shard certified against different chains
          // (or none) can never contribute task records to this merge.
          if (!same_constraints(meta.constraints, spec.latency_constraints)) {
            return merge_error(where + ": latency constraints disagree");
          }
          shard.shard_index = meta.shard_index;
          shard.shard_count = meta.shard_count;
          break;
        }
        case StreamRecord::Kind::kTask: {
          if (!saw_meta) return merge_error(where + ": task before meta");
          const std::size_t index = record.task.task_index;
          if (index >= sweep.tasks) {
            return merge_error(where + ": task index " +
                               std::to_string(index) + " out of range");
          }
          if (!shard.owns(index)) {
            return merge_error(where + ": task " + std::to_string(index) +
                               " not owned by shard " +
                               std::to_string(shard.shard_index) + "/" +
                               std::to_string(shard.shard_count));
          }
          if (!tasks.emplace(index, std::move(record.task)).second) {
            return merge_error("task " + std::to_string(index) +
                               " appears in more than one record");
          }
          ++task_records;
          break;
        }
        case StreamRecord::Kind::kEnd: {
          if (!saw_meta) return merge_error(where + ": end before meta");
          saw_end = true;
          if (record.end.cancelled) {
            return merge_error(where + ": shard was cancelled");
          }
          if (record.end.tasks_emitted != task_records) {
            return merge_error(where + ": end advertises " +
                               std::to_string(record.end.tasks_emitted) +
                               " tasks but " + std::to_string(task_records) +
                               " records arrived");
          }
          break;
        }
      }
    }
    if (!saw_meta) return merge_error(where + ": missing meta record");
    if (!saw_end) return merge_error(where + ": truncated (no end record)");
  }

  if (tasks.size() != sweep.tasks) {
    return merge_error("incomplete shard set: " +
                       std::to_string(tasks.size()) + " of " +
                       std::to_string(sweep.tasks) + " tasks covered");
  }

  campaign::CertifyMerger merger(sweep, spec);
  for (auto& [index, partial] : tasks) merger.add(std::move(partial));
  return merger.finish();
}

}  // namespace ftsched::service
