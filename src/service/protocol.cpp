#include "service/protocol.hpp"

#include "service/json.hpp"

namespace ftsched::service {

Expected<Request> parse_request(std::string_view line) {
  auto parsed = parse_json(line);
  if (!parsed.has_value()) {
    return Error{Error::Code::kInvalidInput,
                 "request: " + parsed.error().message};
  }
  const JsonValue& object = parsed.value();
  if (!object.is_object()) {
    return Error{Error::Code::kInvalidInput,
                 "request: not a JSON object"};
  }
  const std::string type = object.string_or("type", "");
  Request request;
  request.id = object.string_or("id", "");
  if (type == "status") {
    request.kind = Request::Kind::kStatus;
    return request;
  }
  if (type == "shutdown") {
    request.kind = Request::Kind::kShutdown;
    return request;
  }
  if (type == "submit") {
    request.kind = Request::Kind::kSubmit;
    SubmitRequest& submit = request.submit;
    submit.id = request.id;
    submit.problem_path = object.string_or("problem", "");
    submit.problem_inline = object.string_or("problem_inline", "");
    if (submit.problem_path.empty() && submit.problem_inline.empty()) {
      return Error{Error::Code::kInvalidInput,
                   "request: submit needs \"problem\" or \"problem_inline\""};
    }
    if (!submit.problem_path.empty() && !submit.problem_inline.empty()) {
      return Error{
          Error::Code::kInvalidInput,
          "request: \"problem\" and \"problem_inline\" are exclusive"};
    }
    submit.heuristic = object.string_or("heuristic", "solution1");
    submit.claim_k = static_cast<int>(object.number_or("claim_k", -1));
    submit.links = static_cast<int>(object.number_or("links", 0));
    submit.silences = static_cast<int>(object.number_or("silences", 0));
    if (const JsonValue* bound = object.find("response_bound")) {
      if (bound->is_number() && bound->number > 0) {
        submit.response_bound = bound->number;
      } else if (!bound->is_null()) {
        return Error{Error::Code::kInvalidInput,
                     "request: response_bound must be a positive number"};
      }
    }
    if (const JsonValue* list = object.find("latency_constraints")) {
      if (!list->is_array()) {
        return Error{Error::Code::kInvalidInput,
                     "request: latency_constraints must be an array"};
      }
      for (const JsonValue& item : list->items) {
        if (!item.is_object()) {
          return Error{Error::Code::kInvalidInput,
                       "request: latency constraint must be an object"};
        }
        campaign::LatencyConstraint c;
        c.name = item.string_or("name", "");
        c.source_op = item.string_or("source", "");
        c.sink_op = item.string_or("sink", "");
        if (c.name.empty() || c.source_op.empty() || c.sink_op.empty()) {
          return Error{Error::Code::kInvalidInput,
                       "request: latency constraint needs \"name\", "
                       "\"source\", and \"sink\""};
        }
        const JsonValue* bound = item.find("bound");
        if (bound == nullptr || !bound->is_number() || !(bound->number > 0)) {
          return Error{Error::Code::kInvalidInput,
                       "request: latency constraint \"" + c.name +
                           "\" needs a positive \"bound\""};
        }
        c.bound = bound->number;
        submit.latency_constraints.push_back(std::move(c));
      }
    }
    submit.threads =
        static_cast<unsigned>(object.number_or("threads", 0));
    submit.deadline_ms = object.number_or("deadline_ms", 0);
    if (submit.deadline_ms < 0) {
      return Error{Error::Code::kInvalidInput,
                   "request: deadline_ms must be >= 0"};
    }
    submit.certificate_out = object.string_or("certificate_out", "");
    return request;
  }
  return Error{Error::Code::kInvalidInput,
               "request: unknown type \"" + type + "\""};
}

}  // namespace ftsched::service
