#include "io/problem_format.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <vector>

#include "core/text.hpp"

namespace ftsched::io {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

Error parse_error(int line, const std::string& message) {
  return Error{Error::Code::kInvalidInput,
               "line " + std::to_string(line) + ": " + message};
}

/// Parses a duration ("1.25" or "inf").
bool parse_time(const std::string& token, Time& out) {
  if (token == "inf") {
    out = kInfinite;
    return true;
  }
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

OperationKind parse_kind(const std::string& token, bool& ok) {
  ok = true;
  if (token == "comp") return OperationKind::kComp;
  if (token == "mem") return OperationKind::kMem;
  if (token == "extio-in") return OperationKind::kExtioIn;
  if (token == "extio-out") return OperationKind::kExtioOut;
  ok = false;
  return OperationKind::kComp;
}

class Parser {
 public:
  Expected<workload::OwnedProblem> run(std::string_view text) {
    algorithm_ = std::make_unique<AlgorithmGraph>();
    architecture_ = std::make_unique<ArchitectureGraph>();

    enum class Section { kNone, kAlgorithm, kArchitecture, kExec, kComm,
                         kProblem };
    Section section = Section::kNone;
    int line_number = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      const std::string_view line =
          text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                         : eol - pos);
      pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
      ++line_number;
      const std::vector<std::string> tokens = tokenize(line);
      if (tokens.empty()) continue;

      const std::string& head = tokens.front();
      if (head == "algorithm") {
        section = Section::kAlgorithm;
        continue;
      }
      if (head == "architecture") {
        section = Section::kArchitecture;
        continue;
      }
      if (head == "exec") {
        if (auto err = ensure_tables(line_number)) return *err;
        section = Section::kExec;
        continue;
      }
      if (head == "comm") {
        if (auto err = ensure_tables(line_number)) return *err;
        section = Section::kComm;
        continue;
      }
      if (head == "problem") {
        section = Section::kProblem;
        continue;
      }

      std::optional<Error> error;
      switch (section) {
        case Section::kNone:
          error = parse_error(line_number,
                              "directive outside any section: " + head);
          break;
        case Section::kAlgorithm:
          error = algorithm_line(line_number, tokens);
          break;
        case Section::kArchitecture:
          error = architecture_line(line_number, tokens);
          break;
        case Section::kExec:
          error = exec_line(line_number, tokens);
          break;
        case Section::kComm:
          error = comm_line(line_number, tokens);
          break;
        case Section::kProblem:
          error = problem_line(line_number, tokens);
          break;
      }
      if (error) return *error;
    }

    if (exec_ == nullptr) {
      // No exec/comm sections: empty tables (diagnosed by Problem::check).
      exec_ = std::make_unique<ExecTable>(*algorithm_, *architecture_);
      comm_ = std::make_unique<CommTable>(*algorithm_, *architecture_);
    }
    workload::OwnedProblem owned = workload::assemble(
        std::move(algorithm_), std::move(architecture_), std::move(exec_),
        std::move(comm_), tolerate_);
    owned.problem.deadline = deadline_;
    return owned;
  }

 private:
  std::optional<Error> ensure_tables(int line) {
    if (exec_ == nullptr) {
      if (algorithm_->operation_count() == 0 ||
          architecture_->processor_count() == 0) {
        return parse_error(line,
                           "exec/comm sections need the algorithm and "
                           "architecture sections first");
      }
      exec_ = std::make_unique<ExecTable>(*algorithm_, *architecture_);
      comm_ = std::make_unique<CommTable>(*algorithm_, *architecture_);
    }
    return std::nullopt;
  }

  std::optional<Error> algorithm_line(int line,
                                      const std::vector<std::string>& t) {
    try {
      if (t[0] == "operation" && (t.size() == 2 || t.size() == 3)) {
        OperationKind kind = OperationKind::kComp;
        if (t.size() == 3) {
          bool ok = false;
          kind = parse_kind(t[2], ok);
          if (!ok) return parse_error(line, "unknown kind: " + t[2]);
        }
        algorithm_->add_operation(t[1], kind);
        return std::nullopt;
      }
      if (t[0] == "dependency" && t.size() == 3) {
        const OperationId src = algorithm_->find_operation(t[1]);
        const OperationId dst = algorithm_->find_operation(t[2]);
        if (!src.valid()) return parse_error(line, "unknown operation " + t[1]);
        if (!dst.valid()) return parse_error(line, "unknown operation " + t[2]);
        algorithm_->add_dependency(src, dst);
        return std::nullopt;
      }
    } catch (const std::invalid_argument& ex) {
      return parse_error(line, ex.what());
    }
    return parse_error(line, "expected 'operation <name> [kind]' or "
                             "'dependency <src> <dst>'");
  }

  std::optional<Error> architecture_line(int line,
                                         const std::vector<std::string>& t) {
    try {
      if (t[0] == "processor" && t.size() == 2) {
        architecture_->add_processor(t[1]);
        return std::nullopt;
      }
      if (t[0] == "link" && t.size() == 4) {
        const ProcessorId a = architecture_->find_processor(t[2]);
        const ProcessorId b = architecture_->find_processor(t[3]);
        if (!a.valid() || !b.valid()) {
          return parse_error(line, "unknown processor in link");
        }
        architecture_->add_link(t[1], a, b);
        return std::nullopt;
      }
      if (t[0] == "bus" && t.size() >= 4) {
        std::vector<ProcessorId> endpoints;
        for (std::size_t i = 2; i < t.size(); ++i) {
          const ProcessorId p = architecture_->find_processor(t[i]);
          if (!p.valid()) {
            return parse_error(line, "unknown processor " + t[i]);
          }
          endpoints.push_back(p);
        }
        architecture_->add_bus(t[1], std::move(endpoints));
        return std::nullopt;
      }
    } catch (const std::invalid_argument& ex) {
      return parse_error(line, ex.what());
    }
    return parse_error(line, "expected 'processor <name>', 'link <name> "
                             "<p> <q>' or 'bus <name> <p...>'");
  }

  std::optional<Error> exec_line(int line, const std::vector<std::string>& t) {
    if (t.size() != 3) {
      return parse_error(line, "expected '<operation> <processor|*> <wcet>'");
    }
    const OperationId op = algorithm_->find_operation(t[0]);
    if (!op.valid()) return parse_error(line, "unknown operation " + t[0]);
    Time wcet = 0;
    if (!parse_time(t[2], wcet)) {
      return parse_error(line, "bad duration: " + t[2]);
    }
    try {
      if (t[1] == "*") {
        exec_->set_uniform(op, wcet);
      } else {
        const ProcessorId proc = architecture_->find_processor(t[1]);
        if (!proc.valid()) {
          return parse_error(line, "unknown processor " + t[1]);
        }
        exec_->set(op, proc, wcet);
      }
    } catch (const std::invalid_argument& ex) {
      return parse_error(line, ex.what());
    }
    return std::nullopt;
  }

  std::optional<Error> comm_line(int line, const std::vector<std::string>& t) {
    if (t.size() != 3) {
      return parse_error(line, "expected '<dependency> <link|*> <duration>'");
    }
    DependencyId dep;
    for (const Dependency& candidate : algorithm_->dependencies()) {
      if (candidate.name == t[0]) {
        dep = candidate.id;
        break;
      }
    }
    if (!dep.valid()) return parse_error(line, "unknown dependency " + t[0]);
    Time duration = 0;
    if (!parse_time(t[2], duration)) {
      return parse_error(line, "bad duration: " + t[2]);
    }
    try {
      if (t[1] == "*") {
        comm_->set_uniform(dep, duration);
      } else {
        const LinkId link = architecture_->find_link(t[1]);
        if (!link.valid()) return parse_error(line, "unknown link " + t[1]);
        comm_->set(dep, link, duration);
      }
    } catch (const std::invalid_argument& ex) {
      return parse_error(line, ex.what());
    }
    return std::nullopt;
  }

  std::optional<Error> problem_line(int line,
                                    const std::vector<std::string>& t) {
    if (t[0] == "tolerate" && t.size() == 2) {
      int k = -1;
      const auto [ptr, ec] =
          std::from_chars(t[1].data(), t[1].data() + t[1].size(), k);
      if (ec != std::errc{} || ptr != t[1].data() + t[1].size() || k < 0) {
        return parse_error(line, "bad failure count: " + t[1]);
      }
      tolerate_ = k;
      return std::nullopt;
    }
    if (t[0] == "deadline" && t.size() == 2) {
      if (!parse_time(t[1], deadline_)) {
        return parse_error(line, "bad deadline: " + t[1]);
      }
      return std::nullopt;
    }
    return parse_error(line, "expected 'tolerate <k>' or 'deadline <t>'");
  }

  std::unique_ptr<AlgorithmGraph> algorithm_;
  std::unique_ptr<ArchitectureGraph> architecture_;
  std::unique_ptr<ExecTable> exec_;
  std::unique_ptr<CommTable> comm_;
  int tolerate_ = 0;
  Time deadline_ = kInfinite;
};

}  // namespace

Expected<workload::OwnedProblem> read_problem(std::string_view text) {
  return Parser{}.run(text);
}

std::string write_problem(const Problem& problem) {
  FTSCHED_REQUIRE(problem.algorithm && problem.architecture && problem.exec &&
                      problem.comm,
                  "write_problem needs a fully assembled problem");
  std::string out = "algorithm\n";
  for (const Operation& op : problem.algorithm->operations()) {
    out += "  operation " + op.name;
    if (op.kind != OperationKind::kComp) out += ' ' + to_string(op.kind);
    out += '\n';
  }
  for (const Dependency& dep : problem.algorithm->dependencies()) {
    out += "  dependency " + problem.algorithm->operation(dep.src).name +
           ' ' + problem.algorithm->operation(dep.dst).name + '\n';
  }

  out += "architecture\n";
  for (const Processor& proc : problem.architecture->processors()) {
    out += "  processor " + proc.name + '\n';
  }
  for (const Link& link : problem.architecture->links()) {
    out += link.kind == LinkKind::kBus ? "  bus " : "  link ";
    out += link.name;
    for (ProcessorId endpoint : link.endpoints) {
      out += ' ' + problem.architecture->processor(endpoint).name;
    }
    out += '\n';
  }

  out += "exec\n";
  for (const Operation& op : problem.algorithm->operations()) {
    for (const Processor& proc : problem.architecture->processors()) {
      const Time wcet = problem.exec->duration(op.id, proc.id);
      if (is_infinite(wcet)) continue;
      out += "  " + op.name + ' ' + proc.name + ' ' + time_to_string(wcet) +
             '\n';
    }
  }

  out += "comm\n";
  for (const Dependency& dep : problem.algorithm->dependencies()) {
    for (const Link& link : problem.architecture->links()) {
      const Time duration = problem.comm->duration(dep.id, link.id);
      if (is_infinite(duration)) continue;
      out += "  " + dep.name + ' ' + link.name + ' ' +
             time_to_string(duration) + '\n';
    }
  }

  out += "problem\n  tolerate " +
         std::to_string(problem.failures_to_tolerate) + '\n';
  if (!is_infinite(problem.deadline)) {
    out += "  deadline " + time_to_string(problem.deadline) + '\n';
  }
  return out;
}

}  // namespace ftsched::io
