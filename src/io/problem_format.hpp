// Text format for complete scheduling problems — the role SynDEx's input
// files play (§4.1): an algorithm graph, an architecture graph, the two
// characteristics tables, and the fault-tolerance requirement, in one
// human-editable file.
//
//   # comment (blank lines ignored; indentation optional)
//   algorithm
//     operation I extio-in        # kinds: comp | mem | extio-in | extio-out
//     operation A                 # comp is the default
//     dependency I A              # edges by operation name
//   architecture
//     processor P1
//     processor P2
//     processor P3
//     bus can P1 P2 P3            # multi-point link
//     link L1.2 P1 P2             # point-to-point link
//   exec
//     I P1 1                      # WCET of I on P1
//     I P2 1                      # unlisted pairs stay disallowed
//     A * 2                       # '*' = same WCET on every processor
//   comm
//     I->A * 1.25                 # duration of the edge, '*' = every link
//     A->B can 0.5                # or one specific link
//   problem
//     tolerate 1                  # K
//     deadline 12.5               # optional real-time constraint
//
// Sections may appear in any order except that `exec`/`comm` need the
// graphs they reference; the canonical order above is what write_problem
// emits. Dependencies are named "src->dst" (first edge between a pair) for
// the `comm` section.
#pragma once

#include <string>
#include <string_view>

#include "core/error.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::io {

/// Parses the format above. Errors carry a line number and explanation.
[[nodiscard]] Expected<workload::OwnedProblem> read_problem(
    std::string_view text);

/// Serializes a problem to the same format (round-trips through
/// read_problem).
[[nodiscard]] std::string write_problem(const Problem& problem);

}  // namespace ftsched::io
