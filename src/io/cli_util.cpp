#include "io/cli_util.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace ftsched::io {

namespace {

/// strtol/strtod communicate overflow ONLY through errno: the return value
/// is a saturated LONG_MAX / HUGE_VAL that passes naive range checks.
/// errno must be cleared before the call — a stale ERANGE from an earlier
/// library call would otherwise condemn a perfectly good operand.
template <typename Value, typename Convert>
ParseStatus checked(const char* text, Value& out, Convert convert) {
  errno = 0;
  char* end = nullptr;
  out = convert(text, &end);
  if (end == text || *end != '\0') return ParseStatus::kMalformed;
  if (errno == ERANGE) return ParseStatus::kOutOfRange;
  return ParseStatus::kOk;
}

}  // namespace

ParseStatus parse_number(const char* text, long& out) {
  const ParseStatus status = checked(
      text, out, [](const char* s, char** end) { return std::strtol(s, end, 10); });
  if (status != ParseStatus::kOk) return status;
  return out >= 0 ? ParseStatus::kOk : ParseStatus::kMalformed;
}

ParseStatus parse_fraction(const char* text, double& out) {
  const ParseStatus status = checked(
      text, out, [](const char* s, char** end) { return std::strtod(s, end); });
  if (status != ParseStatus::kOk) return status;
  return out >= 0.0 && out <= 1.0 ? ParseStatus::kOk
                                  : ParseStatus::kMalformed;
}

ParseStatus parse_time(const char* text, double& out) {
  const ParseStatus status = checked(
      text, out, [](const char* s, char** end) { return std::strtod(s, end); });
  if (status != ParseStatus::kOk) return status;
  return out > 0.0 ? ParseStatus::kOk : ParseStatus::kMalformed;
}

ParseStatus parse_shard(const char* text, std::size_t& index,
                        std::size_t& count) {
  errno = 0;
  char* end = nullptr;
  const long i = std::strtol(text, &end, 10);
  if (end == text || *end != '/') return ParseStatus::kMalformed;
  if (errno == ERANGE) return ParseStatus::kOutOfRange;
  const char* rest = end + 1;
  errno = 0;
  const long n = std::strtol(rest, &end, 10);
  if (end == rest || *end != '\0') return ParseStatus::kMalformed;
  if (errno == ERANGE) return ParseStatus::kOutOfRange;
  if (i < 0 || n <= 0 || i >= n) return ParseStatus::kMalformed;
  index = static_cast<std::size_t>(i);
  count = static_cast<std::size_t>(n);
  return ParseStatus::kOk;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << content;
  file.flush();
  // operator<< reports disk-full and I/O errors only through the stream
  // state; without this check a truncated artifact looks like success.
  if (!file.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace ftsched::io
