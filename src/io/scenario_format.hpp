// Text reproducer format for fault-injection scenarios: the campaign's
// shrunk counterexamples serialize to this, land in tests/ as permanent
// regressions, and replay deterministically (campaign_tool --replay).
// Entities are referenced by the names of the architecture the scenario
// attacks, so a reproducer reads as documentation:
//
//   # comment (blank lines ignored; indentation optional)
//   scenario
//     iterations 3
//     dead P2                  # dead & known before iteration 0
//     crash P3 4.25 @1         # fail-stop at t=4.25 in iteration 1
//     silent P1 2 4.5 @0       # send-omission window [2, 4.5)
//     link-dead can            # link dead before iteration 0
//     link-crash L1.2 3 @2     # link dies at t=3 in iteration 2
//     suspected P2             # healthy but flagged at mission start
//
// The '@N' iteration suffix is optional and defaults to @0. Times are
// written with full precision so a shrunk instant replays bit-exactly.
#pragma once

#include <string>
#include <string_view>

#include "arch/architecture_graph.hpp"
#include "core/error.hpp"
#include "sim/mission.hpp"

namespace ftsched::io {

/// Serializes `plan` against `arch` (round-trips through read_scenario).
[[nodiscard]] std::string write_scenario(const MissionPlan& plan,
                                         const ArchitectureGraph& arch);

/// Parses the format above. Errors carry a line number and explanation;
/// unknown processor/link names, malformed times, and events aimed past
/// the mission's iteration count are all rejected.
[[nodiscard]] Expected<MissionPlan> read_scenario(
    std::string_view text, const ArchitectureGraph& arch);

}  // namespace ftsched::io
