#include "io/scenario_format.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <vector>

namespace ftsched::io {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

Error parse_error(int line, const std::string& message) {
  return Error{Error::Code::kInvalidInput,
               "line " + std::to_string(line) + ": " + message};
}

bool parse_time(const std::string& token, Time& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end && out >= 0;
}

bool parse_int(const std::string& token, int& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

/// Shortest representation that round-trips bit-exactly.
std::string time_exact(Time t) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, t);
  return ec == std::errc{} ? std::string(buffer, ptr) : std::string("0");
}

/// Parses an optional trailing "@N" iteration token.
std::optional<Error> parse_at(const std::vector<std::string>& tokens,
                              std::size_t index, int line, int& iteration) {
  iteration = 0;
  if (index >= tokens.size()) return std::nullopt;
  const std::string& token = tokens[index];
  if (token.size() < 2 || token[0] != '@' ||
      !parse_int(token.substr(1), iteration) || iteration < 0) {
    return parse_error(line, "expected @<iteration>, got '" + token + "'");
  }
  return std::nullopt;
}

}  // namespace

std::string write_scenario(const MissionPlan& plan,
                           const ArchitectureGraph& arch) {
  std::string out = "scenario\n";
  out += "  iterations " + std::to_string(plan.iterations) + "\n";
  for (const ProcessorId proc : plan.dead_at_start) {
    out += "  dead " + arch.processor(proc).name + "\n";
  }
  for (const MissionFailure& failure : plan.failures) {
    out += "  crash " + arch.processor(failure.event.processor).name + " " +
           time_exact(failure.event.time) + " @" +
           std::to_string(failure.iteration) + "\n";
  }
  for (const MissionSilence& silence : plan.silences) {
    out += "  silent " + arch.processor(silence.window.processor).name + " " +
           time_exact(silence.window.from) + " " +
           time_exact(silence.window.to) + " @" +
           std::to_string(silence.iteration) + "\n";
  }
  for (const LinkId link : plan.dead_links_at_start) {
    out += "  link-dead " + arch.link(link).name + "\n";
  }
  for (const MissionLinkFailure& failure : plan.link_failures) {
    out += "  link-crash " + arch.link(failure.event.link).name + " " +
           time_exact(failure.event.time) + " @" +
           std::to_string(failure.iteration) + "\n";
  }
  for (const ProcessorId proc : plan.suspected_at_start) {
    out += "  suspected " + arch.processor(proc).name + "\n";
  }
  return out;
}

Expected<MissionPlan> read_scenario(std::string_view text,
                                    const ArchitectureGraph& arch) {
  MissionPlan plan;
  bool in_scenario = false;
  int line_number = 0;
  std::size_t pos = 0;
  // Every iteration an event targets; validated against plan.iterations at
  // the end so directive order does not matter.
  int max_iteration = 0;

  auto processor = [&](const std::string& name) {
    return arch.find_processor(name);
  };
  auto link = [&](const std::string& name) { return arch.find_link(name); };

  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    const std::string& head = tokens.front();
    if (head == "scenario") {
      in_scenario = true;
      continue;
    }
    if (!in_scenario) {
      return parse_error(line_number,
                         "directive before 'scenario' header: " + head);
    }

    int iteration = 0;
    if (head == "iterations") {
      if (tokens.size() != 2 || !parse_int(tokens[1], plan.iterations) ||
          plan.iterations < 1) {
        return parse_error(line_number, "expected: iterations <count >= 1>");
      }
    } else if (head == "dead" || head == "suspected") {
      if (tokens.size() != 2) {
        return parse_error(line_number,
                           "expected: " + head + " <processor>");
      }
      const ProcessorId proc = processor(tokens[1]);
      if (!proc.valid()) {
        return parse_error(line_number, "unknown processor " + tokens[1]);
      }
      (head == "dead" ? plan.dead_at_start : plan.suspected_at_start)
          .push_back(proc);
    } else if (head == "crash") {
      Time time = 0;
      if (tokens.size() < 3 || tokens.size() > 4 ||
          !parse_time(tokens[2], time)) {
        return parse_error(line_number,
                           "expected: crash <processor> <time> [@iter]");
      }
      const ProcessorId proc = processor(tokens[1]);
      if (!proc.valid()) {
        return parse_error(line_number, "unknown processor " + tokens[1]);
      }
      if (auto err = parse_at(tokens, 3, line_number, iteration)) return *err;
      max_iteration = std::max(max_iteration, iteration);
      plan.failures.push_back(
          MissionFailure{iteration, FailureEvent{proc, time}});
    } else if (head == "silent") {
      Time from = 0;
      Time to = 0;
      if (tokens.size() < 4 || tokens.size() > 5 ||
          !parse_time(tokens[2], from) || !parse_time(tokens[3], to) ||
          !time_lt(from, to)) {
        return parse_error(
            line_number,
            "expected: silent <processor> <from> <to> [@iter] with from < to");
      }
      const ProcessorId proc = processor(tokens[1]);
      if (!proc.valid()) {
        return parse_error(line_number, "unknown processor " + tokens[1]);
      }
      if (auto err = parse_at(tokens, 4, line_number, iteration)) return *err;
      max_iteration = std::max(max_iteration, iteration);
      plan.silences.push_back(
          MissionSilence{iteration, SilentWindow{proc, from, to}});
    } else if (head == "link-dead") {
      if (tokens.size() != 2) {
        return parse_error(line_number, "expected: link-dead <link>");
      }
      const LinkId id = link(tokens[1]);
      if (!id.valid()) {
        return parse_error(line_number, "unknown link " + tokens[1]);
      }
      plan.dead_links_at_start.push_back(id);
    } else if (head == "link-crash") {
      Time time = 0;
      if (tokens.size() < 3 || tokens.size() > 4 ||
          !parse_time(tokens[2], time)) {
        return parse_error(line_number,
                           "expected: link-crash <link> <time> [@iter]");
      }
      const LinkId id = link(tokens[1]);
      if (!id.valid()) {
        return parse_error(line_number, "unknown link " + tokens[1]);
      }
      if (auto err = parse_at(tokens, 3, line_number, iteration)) return *err;
      max_iteration = std::max(max_iteration, iteration);
      plan.link_failures.push_back(
          MissionLinkFailure{iteration, LinkFailureEvent{id, time}});
    } else {
      return parse_error(line_number, "unknown directive: " + head);
    }
  }

  if (!in_scenario) {
    return Error{Error::Code::kInvalidInput, "missing 'scenario' header"};
  }
  if (max_iteration >= plan.iterations) {
    return Error{Error::Code::kInvalidInput,
                 "an event targets iteration " +
                     std::to_string(max_iteration) + " but the mission has " +
                     std::to_string(plan.iterations) + " iteration(s)"};
  }
  return plan;
}

}  // namespace ftsched::io
