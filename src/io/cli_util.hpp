// Hardened helpers for command-line front ends (examples/*_tool): numeric
// operand parsing that rejects out-of-range input instead of silently
// saturating, and file writing that reports stream failure instead of
// returning success over a truncated artifact.
//
// Both exist because of real CLI bugs: strtol/strtod set errno = ERANGE on
// overflow but still return LONG_MAX / HUGE_VAL, so a parser that only
// checks the end pointer accepts "--rounds 99999999999999999999" as
// LONG_MAX; and ofstream::operator<< reports disk-full or I/O errors only
// through the stream state, so a writer that never looks at it reports
// success while leaving a truncated certificate behind.
#pragma once

#include <cstddef>
#include <string>

namespace ftsched::io {

/// Outcome of parsing one numeric operand. kMalformed (not a number,
/// trailing garbage, out of the accepted domain) is a usage error;
/// kOutOfRange (errno == ERANGE overflow/underflow) deserves its own
/// diagnostic — the text LOOKS like a valid number and silently clamping
/// it is how the pre-fix CLI accepted impossible budgets.
enum class ParseStatus { kOk, kMalformed, kOutOfRange };

/// Non-negative decimal integer into `out`.
[[nodiscard]] ParseStatus parse_number(const char* text, long& out);

/// Double in [0, 1] into `out`.
[[nodiscard]] ParseStatus parse_fraction(const char* text, double& out);

/// Strictly positive double into `out`.
[[nodiscard]] ParseStatus parse_time(const char* text, double& out);

/// "I/N" shard assignment with 0 <= I < N.
[[nodiscard]] ParseStatus parse_shard(const char* text, std::size_t& index,
                                      std::size_t& count);

/// Writes `content` to `path`. False — with a "cannot write <path>"
/// diagnostic on stderr — when the file cannot be opened OR the stream is
/// not good() after writing and flushing (disk full, I/O error), so a
/// truncated artifact is never reported as success.
[[nodiscard]] bool write_file(const std::string& path,
                              const std::string& content);

}  // namespace ftsched::io
