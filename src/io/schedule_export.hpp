// Machine-readable schedule exports for external tooling (plotting the
// Gantt charts, diffing schedules across revisions):
//  * JSON — one object with placements, transfers, and headline metrics;
//  * CSV — one row per replica placement and per transfer segment.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace ftsched::io {

[[nodiscard]] std::string to_json(const Schedule& schedule);

/// Columns: kind,entity,rank,resource,start,end,extra
///   op rows:   op,<name>,<rank>,<processor>,<start>,<end>,main|backup
///   comm rows: comm,<dependency>,<sender rank>,<link>,<start>,<end>,<to>
[[nodiscard]] std::string to_csv(const Schedule& schedule);

}  // namespace ftsched::io
