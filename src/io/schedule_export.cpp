#include "io/schedule_export.hpp"

#include "sched/metrics.hpp"

namespace ftsched::io {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_json(const Schedule& schedule) {
  const Problem& problem = schedule.problem();
  const ScheduleMetrics metrics = compute_metrics(schedule);
  std::string out = "{\n";
  out += "  \"heuristic\": \"" + json_escape(to_string(schedule.kind())) +
         "\",\n";
  out += "  \"failures_tolerated\": " +
         std::to_string(schedule.failures_tolerated()) + ",\n";
  out += "  \"makespan\": " + time_to_string(metrics.makespan) + ",\n";
  out += "  \"operations\": [\n";
  for (std::size_t i = 0; i < schedule.operations().size(); ++i) {
    const ScheduledOperation& placement = schedule.operations()[i];
    out += "    {\"op\": \"" +
           json_escape(problem.algorithm->operation(placement.op).name) +
           "\", \"rank\": " + std::to_string(placement.rank) +
           ", \"processor\": \"" +
           json_escape(
               problem.architecture->processor(placement.processor).name) +
           "\", \"start\": " + time_to_string(placement.start) +
           ", \"end\": " + time_to_string(placement.end) + "}";
    out += i + 1 < schedule.operations().size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"comms\": [\n";
  for (std::size_t i = 0; i < schedule.comms().size(); ++i) {
    const ScheduledComm& comm = schedule.comms()[i];
    out += "    {\"dependency\": \"" +
           json_escape(problem.algorithm->dependency(comm.dep).name) +
           "\", \"sender_rank\": " + std::to_string(comm.sender_rank) +
           ", \"from\": \"" +
           json_escape(problem.architecture->processor(comm.from).name) +
           "\", \"to\": \"" +
           json_escape(problem.architecture->processor(comm.to).name) +
           "\", \"active\": " + (comm.active ? "true" : "false") +
           ", \"liveness\": " + (comm.liveness ? "true" : "false") +
           ", \"segments\": [";
    for (std::size_t s = 0; s < comm.segments.size(); ++s) {
      const CommSegment& segment = comm.segments[s];
      out += "{\"link\": \"" +
             json_escape(problem.architecture->link(segment.link).name) +
             "\", \"start\": " + time_to_string(segment.start) +
             ", \"end\": " + time_to_string(segment.end) + "}";
      if (s + 1 < comm.segments.size()) out += ", ";
    }
    out += "]}";
    out += i + 1 < schedule.comms().size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string to_csv(const Schedule& schedule) {
  const Problem& problem = schedule.problem();
  std::string out = "kind,entity,rank,resource,start,end,extra\n";
  for (const ScheduledOperation& placement : schedule.operations()) {
    out += "op," + problem.algorithm->operation(placement.op).name + ',' +
           std::to_string(placement.rank) + ',' +
           problem.architecture->processor(placement.processor).name + ',' +
           time_to_string(placement.start) + ',' +
           time_to_string(placement.end) + ',' +
           (placement.is_main() ? "main" : "backup") + '\n';
  }
  for (const ScheduledComm& comm : schedule.comms()) {
    for (const CommSegment& segment : comm.segments) {
      out += "comm," + problem.algorithm->dependency(comm.dep).name + ',' +
             std::to_string(comm.sender_rank) + ',' +
             problem.architecture->link(segment.link).name + ',' +
             time_to_string(segment.start) + ',' +
             time_to_string(segment.end) + ',' +
             problem.architecture->processor(comm.to).name + '\n';
    }
  }
  return out;
}

}  // namespace ftsched::io
