#include "exec/codegen.hpp"

#include <algorithm>
#include <map>

#include "arch/routing.hpp"
#include "core/text.hpp"

namespace ftsched {

namespace {

/// The processor feeding each segment of an active comm (hop sequence from
/// the static route; segment i is fed by hop i).
std::vector<ProcessorId> feeding_hops(const RoutingTable& routing,
                                      const ScheduledComm& comm) {
  const Route& route = routing.route(comm.from, comm.to);
  return route.hops;  // hops[i] feeds links[i]; last entry is `to`
}

}  // namespace

Executive generate_executive(const Schedule& schedule) {
  const Problem& problem = schedule.problem();
  const AlgorithmGraph& graph = *problem.algorithm;
  const ArchitectureGraph& arch = *problem.architecture;
  RoutingTable routing(arch);
  TimeoutTable timeouts(schedule, routing);
  // Receives are guarded by watch chains wherever time-redundant comms are
  // in play (solution 1, and the hybrid's passive dependencies — the
  // TimeoutTable holds no chains for actively replicated ones).
  const bool watched = schedule.kind() == HeuristicKind::kSolution1 ||
                       schedule.kind() == HeuristicKind::kHybrid;

  Executive executive;
  executive.kind = schedule.kind();
  executive.processors.resize(arch.processor_count());

  for (const Processor& proc : arch.processors()) {
    ProcessorPrograms& programs = executive.processors[proc.id.index()];
    programs.processor = proc.id;
    programs.computation.name = "compute_" + proc.name;
    for (const ScheduledOperation* placement :
         schedule.operations_on(proc.id)) {
      Instruction instr;
      instr.kind = Instruction::Kind::kExec;
      instr.op = placement->op;
      instr.rank = placement->rank;
      instr.planned_start = placement->start;
      instr.planned_end = placement->end;
      programs.computation.instructions.push_back(std::move(instr));
    }
    for (LinkId link : arch.links_of(proc.id)) {
      UnitProgram unit;
      unit.name = "comm_" + proc.name + "_" + arch.link(link).name;
      programs.comm_units.emplace_back(link, std::move(unit));
    }
  }

  auto comm_unit = [&](ProcessorId proc, LinkId link) -> UnitProgram& {
    for (auto& [unit_link, unit] :
         executive.processors[proc.index()].comm_units) {
      if (unit_link == link) return unit;
    }
    throw std::logic_error("transfer crosses a link its hop is not on");
  };

  // Sends and receives, per active transfer hop.
  for (const ScheduledComm& comm : schedule.comms()) {
    if (!comm.active) continue;
    const std::vector<ProcessorId> hops = feeding_hops(routing, comm);
    for (std::size_t i = 0; i < comm.segments.size(); ++i) {
      const CommSegment& segment = comm.segments[i];

      Instruction send;
      send.kind = Instruction::Kind::kSend;
      send.dep = comm.dep;
      send.link = segment.link;
      send.peer = comm.to;
      send.planned_start = segment.start;
      send.planned_end = segment.end;
      comm_unit(hops[i], segment.link).instructions.push_back(send);

      // Receivers: every endpoint of this segment's link that consumes the
      // value (a replica of the destination operation without a local
      // producer replica) or relays it (the next hop).
      const Dependency& dep = graph.dependency(comm.dep);
      for (ProcessorId endpoint : arch.link(segment.link).endpoints) {
        if (endpoint == hops[i]) continue;
        const bool relays = i + 1 < hops.size() && endpoint == hops[i + 1];
        const bool consumes =
            schedule.replica_on(dep.dst, endpoint) != nullptr &&
            schedule.replica_on(dep.src, endpoint) == nullptr;
        if (!relays && !consumes) continue;
        Instruction recv;
        recv.kind = Instruction::Kind::kRecv;
        recv.dep = comm.dep;
        recv.link = segment.link;
        recv.peer = hops[i];
        recv.planned_start = segment.start;
        recv.planned_end = segment.end;
        if (watched) {
          if (const TimeoutChain* chain = timeouts.chain(comm.dep, endpoint)) {
            recv.chain = chain->entries;
          }
        }
        comm_unit(endpoint, segment.link).instructions.push_back(recv);
      }
    }
  }

  // Solution-1 backups: conditional sends on the unit of the link that
  // reaches the first consumer.
  for (const ScheduledComm& comm : schedule.comms()) {
    if (comm.active) continue;
    const Route& route = routing.route(comm.from, comm.to);
    if (route.links.empty()) continue;
    Instruction opcomm;
    opcomm.kind = Instruction::Kind::kOpComm;
    opcomm.dep = comm.dep;
    opcomm.link = route.links.front();
    opcomm.peer = comm.to;
    if (const TimeoutChain* chain = timeouts.chain(comm.dep, comm.from)) {
      opcomm.chain = chain->entries;
      opcomm.planned_start =
          chain->entries.empty() ? 0 : chain->entries.back().deadline;
      opcomm.planned_end = opcomm.planned_start;
    }
    comm_unit(comm.from, opcomm.link).instructions.push_back(opcomm);
  }

  // Communication units run sequentially in planned order.
  for (ProcessorPrograms& programs : executive.processors) {
    for (auto& [link, unit] : programs.comm_units) {
      std::stable_sort(unit.instructions.begin(), unit.instructions.end(),
                       [](const Instruction& a, const Instruction& b) {
                         return time_lt(a.planned_start, b.planned_start);
                       });
    }
  }
  return executive;
}

namespace {

std::string chain_comment(const std::vector<TimeoutEntry>& chain,
                          const ArchitectureGraph& arch) {
  std::vector<std::string> parts;
  for (const TimeoutEntry& entry : chain) {
    parts.push_back(arch.processor(entry.sender).name + "@" +
                    time_to_string(entry.deadline));
  }
  return join(parts, ", ");
}

std::string identifier(std::string name) {
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0)) c = '_';
  }
  return name;
}

}  // namespace

std::string emit_c(const Executive& executive, const Schedule& schedule) {
  const Problem& problem = schedule.problem();
  const AlgorithmGraph& graph = *problem.algorithm;
  const ArchitectureGraph& arch = *problem.architecture;

  std::string out;
  out += "/* Distributed executive generated by ftsched (" +
         to_string(executive.kind) + ") */\n";
  out += "/* makespan " + time_to_string(schedule.makespan()) + ", K = " +
         std::to_string(schedule.failures_tolerated()) + " */\n\n";

  for (const ProcessorPrograms& programs : executive.processors) {
    const std::string proc = arch.processor(programs.processor).name;
    out += "void " + identifier(programs.computation.name) + "(void) {\n";
    out += "  for (;;) { /* one iteration per reaction */\n";
    for (const Instruction& instr : programs.computation.instructions) {
      out += "    exec_" + identifier(graph.operation(instr.op).name) +
             "();  /* replica " + std::to_string(instr.rank) + ", [" +
             time_to_string(instr.planned_start) + ", " +
             time_to_string(instr.planned_end) + "] */\n";
    }
    out += "  }\n}\n\n";

    for (const auto& [link, unit] : programs.comm_units) {
      out += "void " + identifier(unit.name) + "(void) {\n";
      out += "  for (;;) {\n";
      for (const Instruction& instr : unit.instructions) {
        const std::string dep = identifier(graph.dependency(instr.dep).name);
        switch (instr.kind) {
          case Instruction::Kind::kSend:
            out += "    send(" + dep + ", /*to=*/" +
                   arch.processor(instr.peer).name + ");  /* [" +
                   time_to_string(instr.planned_start) + ", " +
                   time_to_string(instr.planned_end) + "] */\n";
            break;
          case Instruction::Kind::kRecv:
            out += "    recv(" + dep + ", /*from=*/" +
                   arch.processor(instr.peer).name + ");";
            if (!instr.chain.empty()) {
              out += "  /* watch: " + chain_comment(instr.chain, arch) +
                     " */";
            }
            out += "\n";
            break;
          case Instruction::Kind::kOpComm:
            out += "    op_comm(" + dep + ");  /* backup send, watch: " +
                   chain_comment(instr.chain, arch) + " */\n";
            break;
          case Instruction::Kind::kExec:
            break;  // never on a comm unit
        }
      }
      out += "  }\n}\n\n";
    }
    (void)proc;
  }
  return out;
}

}  // namespace ftsched
