// The distributed executive (paper §4.1 step 2): the static schedule
// translated into one macro-instruction program per computation unit and
// per communication unit, exactly what SynDEx's executive generator emits
// before macro-expansion into compilable code.
//
// Instruction kinds:
//   kExec   — run one replica of an operation (computation units);
//   kSend   — transmit a dependency's value over one link hop;
//   kRecv   — wait for a dependency's value on one link, guarded by the
//             solution-1 watch chain (Figure 10's receive with timeout);
//   kOpComm — a backup replica's conditional send: watch the better-ranked
//             senders and transmit if they all time out (Figure 12).
#pragma once

#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"
#include "sched/timeouts.hpp"

namespace ftsched {

struct Instruction {
  enum class Kind { kExec, kSend, kRecv, kOpComm };

  Kind kind = Kind::kExec;
  /// kExec: the operation and its replica rank.
  OperationId op;
  int rank = -1;
  /// Comm kinds: the dependency carried.
  DependencyId dep;
  /// kSend/kRecv: the link crossed by this hop.
  LinkId link;
  /// kSend: destination processor of the transfer. kRecv: sending hop.
  ProcessorId peer;
  /// Nominal (failure-free) dates from the static schedule; an OpComm has
  /// no nominal dates (it acts only after a failure).
  Time planned_start = 0;
  Time planned_end = 0;
  /// kRecv / kOpComm: the watch chain (empty outside solution 1).
  std::vector<TimeoutEntry> chain;
};

/// The instruction sequence of one sequential unit.
struct UnitProgram {
  std::string name;
  std::vector<Instruction> instructions;
};

/// All programs of one processor: its computation unit plus one
/// communication unit per attached link.
struct ProcessorPrograms {
  ProcessorId processor;
  UnitProgram computation;
  std::vector<std::pair<LinkId, UnitProgram>> comm_units;
};

struct Executive {
  HeuristicKind kind = HeuristicKind::kBase;
  std::vector<ProcessorPrograms> processors;

  [[nodiscard]] const ProcessorPrograms& of(ProcessorId proc) const {
    return processors.at(proc.index());
  }
};

}  // namespace ftsched
