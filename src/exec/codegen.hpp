// Executive generation: static schedule -> per-unit macro-instruction
// programs (paper §4.1 step 2). The result is checked against the schedule
// by the test suite and rendered to pseudo-C by emit_c().
#pragma once

#include <string>

#include "exec/program.hpp"
#include "sched/schedule.hpp"

namespace ftsched {

/// Derives the executive:
///  * every replica becomes a kExec on its processor's computation unit, in
///    start-date order;
///  * every active transfer hop becomes a kSend on the feeding processor's
///    communication unit for that link, and a kRecv on each receiving
///    endpoint that consumes the value, in link-occupation order;
///  * under solution 1, kRecv instructions carry the receiver's watch chain
///    and every passive comm becomes a kOpComm on its backup's unit.
[[nodiscard]] Executive generate_executive(const Schedule& schedule);

/// Renders the executive as human-readable pseudo-C, one function per unit
/// (the shape of SynDEx's m4-macro output).
[[nodiscard]] std::string emit_c(const Executive& executive,
                                 const Schedule& schedule);

}  // namespace ftsched
