// The algorithm graph: a factorized, infinitely repeated data-flow DAG
// (paper §4.2). One instance describes the work of a single iteration.
//
// Precedence semantics: a data-dependency src->dst constrains dst to start
// after src's value is available, EXCEPT when dst is a `mem` operation — a
// mem consumes its input at the *end* of the iteration (its output precedes
// its input, like a register), so edges into a mem do not constrain the mem's
// start within the iteration. `predecessors()`/`successors()` and the DAG
// check use this precedence relation; `in_dependencies()` always returns the
// raw data-flow edges.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"
#include "core/ids.hpp"
#include "graph/operation.hpp"

namespace ftsched {

class AlgorithmGraph {
 public:
  /// Adds a vertex. `name` must be unique and non-empty.
  OperationId add_operation(std::string name,
                            OperationKind kind = OperationKind::kComp);

  /// Adds a data-flow edge. Self-loops are rejected; parallel edges between
  /// the same pair are allowed (distinct data channels).
  DependencyId add_dependency(OperationId src, OperationId dst,
                              std::string name = {});

  [[nodiscard]] std::size_t operation_count() const noexcept {
    return operations_.size();
  }
  [[nodiscard]] std::size_t dependency_count() const noexcept {
    return dependencies_.size();
  }

  [[nodiscard]] const Operation& operation(OperationId id) const;
  [[nodiscard]] const Dependency& dependency(DependencyId id) const;
  [[nodiscard]] const std::vector<Operation>& operations() const noexcept {
    return operations_;
  }
  [[nodiscard]] const std::vector<Dependency>& dependencies() const noexcept {
    return dependencies_;
  }

  /// Lookup by unique name; invalid id if absent.
  [[nodiscard]] OperationId find_operation(std::string_view name) const;

  /// Raw data-flow edges into / out of `op`.
  [[nodiscard]] const std::vector<DependencyId>& in_dependencies(
      OperationId op) const;
  [[nodiscard]] const std::vector<DependencyId>& out_dependencies(
      OperationId op) const;

  /// Edges that impose an intra-iteration precedence constraint on their
  /// destination: all edges except those whose destination is a mem.
  [[nodiscard]] std::vector<DependencyId> precedence_in(OperationId op) const;
  [[nodiscard]] std::vector<DependencyId> precedence_out(OperationId op) const;

  /// Allocation-free precedence_in: a reference into the adjacency (the
  /// shared empty list for mem destinations). Same contents and order as
  /// precedence_in(); for loops on scheduling hot paths.
  [[nodiscard]] const std::vector<DependencyId>& precedence_in_ref(
      OperationId op) const;

  /// Distinct operations preceding / following `op` in the precedence
  /// relation (deduplicated, ordered by id).
  [[nodiscard]] std::vector<OperationId> predecessors(OperationId op) const;
  [[nodiscard]] std::vector<OperationId> successors(OperationId op) const;

  /// True if the edge imposes a precedence constraint (dst is not a mem).
  [[nodiscard]] bool is_precedence(DependencyId dep) const;

  /// Operations with no precedence predecessor (iteration sources): extio
  /// inputs, mems, and orphan comps.
  [[nodiscard]] std::vector<OperationId> sources() const;
  /// Operations with no precedence successor (iteration sinks).
  [[nodiscard]] std::vector<OperationId> sinks() const;

  /// Kahn topological order of the precedence relation, ties broken by
  /// ascending operation id (deterministic). Empty when the precedence
  /// relation has a cycle.
  [[nodiscard]] std::vector<OperationId> topological_order() const;

  [[nodiscard]] bool is_acyclic() const {
    return operations_.empty() || !topological_order().empty();
  }

  /// Structural diagnostics: cyclic precedence, extio-in with inputs,
  /// extio-out with outputs, unnamed duplicates. Empty means well-formed.
  [[nodiscard]] std::vector<std::string> check() const;

 private:
  std::vector<Operation> operations_;
  std::vector<Dependency> dependencies_;
  std::vector<std::vector<DependencyId>> in_;   // per operation
  std::vector<std::vector<DependencyId>> out_;  // per operation
};

}  // namespace ftsched
