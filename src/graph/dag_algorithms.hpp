// Longest-path machinery on the algorithm graph's precedence relation.
//
// These are the quantities behind the schedule-pressure cost function
// (paper §6.2, first phase): the critical path length R and, per operation,
// the longest "head" (work strictly before the operation starts) and "tail"
// (work strictly after the operation completes), all measured with a
// caller-supplied duration model and, optionally, a per-edge communication
// cost model.
#pragma once

#include <concepts>
#include <vector>

#include "core/error.hpp"
#include "core/time.hpp"
#include "graph/algorithm_graph.hpp"

namespace ftsched {

template <class F>
concept OperationDuration = std::invocable<F, OperationId> &&
    std::convertible_to<std::invoke_result_t<F, OperationId>, Time>;

template <class F>
concept DependencyCost = std::invocable<F, DependencyId> &&
    std::convertible_to<std::invoke_result_t<F, DependencyId>, Time>;

/// Per-operation longest-path data for a fixed duration model.
struct DagTiming {
  /// head[o]: longest sum of durations on any precedence path ending just
  /// before o starts (0 for sources).
  std::vector<Time> head;
  /// tail[o]: longest sum of durations on any precedence path starting just
  /// after o completes (0 for sinks). This is the paper's E(o) measured from
  /// the end of the critical path.
  std::vector<Time> tail;
  /// Critical path length R = max over o of head[o] + dur(o) + tail[o].
  Time critical_path = 0;
};

/// Computes heads/tails/critical path. `dur` gives each operation's duration
/// (use the minimum WCET over allowed processors for the paper's optimistic
/// bound); `comm` gives each precedence edge's cost (zero functor for the
/// paper's communication-free bound). Throws if the graph is cyclic.
template <OperationDuration Dur, DependencyCost Comm>
[[nodiscard]] DagTiming compute_dag_timing(const AlgorithmGraph& graph,
                                           Dur&& dur, Comm&& comm) {
  const std::vector<OperationId> order = graph.topological_order();
  FTSCHED_REQUIRE(order.size() == graph.operation_count() ||
                      graph.operation_count() == 0,
                  "compute_dag_timing requires an acyclic precedence graph");

  DagTiming timing;
  timing.head.assign(graph.operation_count(), 0);
  timing.tail.assign(graph.operation_count(), 0);

  for (OperationId op : order) {
    for (DependencyId dep_id : graph.precedence_in_ref(op)) {
      const Dependency& dep = graph.dependency(dep_id);
      const Time candidate =
          timing.head[dep.src.index()] + dur(dep.src) + comm(dep_id);
      if (time_lt(timing.head[op.index()], candidate)) {
        timing.head[op.index()] = candidate;
      }
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OperationId op = *it;
    for (DependencyId dep_id : graph.out_dependencies(op)) {
      if (!graph.is_precedence(dep_id)) continue;
      const Dependency& dep = graph.dependency(dep_id);
      const Time candidate =
          comm(dep_id) + dur(dep.dst) + timing.tail[dep.dst.index()];
      if (time_lt(timing.tail[op.index()], candidate)) {
        timing.tail[op.index()] = candidate;
      }
    }
  }
  for (OperationId op : order) {
    const Time through = timing.head[op.index()] + dur(op) +
                         timing.tail[op.index()];
    if (time_lt(timing.critical_path, through)) {
      timing.critical_path = through;
    }
  }
  return timing;
}

/// Communication-free variant (the paper's first-phase bound).
template <OperationDuration Dur>
[[nodiscard]] DagTiming compute_dag_timing(const AlgorithmGraph& graph,
                                           Dur&& dur) {
  return compute_dag_timing(graph, std::forward<Dur>(dur),
                            [](DependencyId) -> Time { return 0; });
}

/// Operations reachable from `from` through precedence edges (excluding
/// `from` itself), ordered by id. Used by tests and schedule analysis.
[[nodiscard]] inline std::vector<OperationId> reachable_from(
    const AlgorithmGraph& graph, OperationId from) {
  std::vector<bool> seen(graph.operation_count(), false);
  std::vector<OperationId> stack{from};
  while (!stack.empty()) {
    const OperationId op = stack.back();
    stack.pop_back();
    for (OperationId succ : graph.successors(op)) {
      if (!seen[succ.index()]) {
        seen[succ.index()] = true;
        stack.push_back(succ);
      }
    }
  }
  std::vector<OperationId> result;
  for (const Operation& op : graph.operations()) {
    if (seen[op.id.index()]) result.push_back(op.id);
  }
  return result;
}

}  // namespace ftsched
