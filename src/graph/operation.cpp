#include "graph/operation.hpp"

namespace ftsched {

std::string to_string(OperationKind kind) {
  switch (kind) {
    case OperationKind::kComp:
      return "comp";
    case OperationKind::kMem:
      return "mem";
    case OperationKind::kExtioIn:
      return "extio-in";
    case OperationKind::kExtioOut:
      return "extio-out";
  }
  return "unknown";
}

}  // namespace ftsched
