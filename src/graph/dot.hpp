// Graphviz DOT export of an algorithm graph, for documentation and for the
// figure-reproduction benchmarks (the paper's Figures 7, 13, 21).
#pragma once

#include <string>

#include "graph/algorithm_graph.hpp"

namespace ftsched {

/// Renders the graph in DOT syntax. Operation kinds get distinct shapes
/// (extio: house/invhouse, mem: box, comp: ellipse); mem input edges are
/// drawn dashed to show they carry no intra-iteration precedence.
[[nodiscard]] std::string to_dot(const AlgorithmGraph& graph,
                                 const std::string& title = "algorithm");

}  // namespace ftsched
