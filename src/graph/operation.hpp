// Vertices and edges of the algorithm (data-flow) graph, paper §4.2.
#pragma once

#include <string>

#include "core/ids.hpp"

namespace ftsched {

/// The three operation kinds of the AAA algorithm model.
enum class OperationKind {
  /// Pure computation: outputs depend only on inputs, no internal state, no
  /// side effect ("safe"). May be replicated at will.
  kComp,
  /// Inter-iteration register: holds data between iterations; its *output*
  /// precedes its *input* within an iteration ("memory-safe"). Replicas must
  /// share the initial value.
  kMem,
  /// External input interface (sensor side). No predecessor; "unsafe" (side
  /// effects), but two executions within one iteration yield the same value.
  kExtioIn,
  /// External output interface (actuator side). No successor; "unsafe".
  kExtioOut,
};

[[nodiscard]] std::string to_string(OperationKind kind);

/// True for kinds with side effects, whose replication is tied to the
/// replication of the sensor/actuator hardware they control (§5.4 item 3).
[[nodiscard]] constexpr bool is_extio(OperationKind kind) noexcept {
  return kind == OperationKind::kExtioIn || kind == OperationKind::kExtioOut;
}

/// A vertex of the algorithm graph.
struct Operation {
  OperationId id;
  std::string name;
  OperationKind kind = OperationKind::kComp;
};

/// An edge of the algorithm graph: a data-flow channel carrying the value
/// produced by `src` to `dst` once per iteration.
struct Dependency {
  DependencyId id;
  OperationId src;
  OperationId dst;
  /// Diagnostic label, "src->dst" by default.
  std::string name;
};

}  // namespace ftsched
