#include "graph/dot.hpp"

namespace ftsched {

namespace {

const char* shape_for(OperationKind kind) {
  switch (kind) {
    case OperationKind::kComp:
      return "ellipse";
    case OperationKind::kMem:
      return "box";
    case OperationKind::kExtioIn:
      return "invhouse";
    case OperationKind::kExtioOut:
      return "house";
  }
  return "ellipse";
}

}  // namespace

std::string to_dot(const AlgorithmGraph& graph, const std::string& title) {
  std::string out = "digraph \"" + title + "\" {\n  rankdir=LR;\n";
  for (const Operation& op : graph.operations()) {
    out += "  \"" + op.name + "\" [shape=" + shape_for(op.kind) + "];\n";
  }
  for (const Dependency& dep : graph.dependencies()) {
    out += "  \"" + graph.operation(dep.src).name + "\" -> \"" +
           graph.operation(dep.dst).name + "\"";
    if (!graph.is_precedence(dep.id)) out += " [style=dashed]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ftsched
