#include "graph/algorithm_graph.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace ftsched {

OperationId AlgorithmGraph::add_operation(std::string name,
                                          OperationKind kind) {
  FTSCHED_REQUIRE(!name.empty(), "operation name must not be empty");
  FTSCHED_REQUIRE(!find_operation(name).valid(),
                  "duplicate operation name: " + name);
  const OperationId id{static_cast<OperationId::underlying_type>(
      operations_.size())};
  operations_.push_back(Operation{id, std::move(name), kind});
  in_.emplace_back();
  out_.emplace_back();
  return id;
}

DependencyId AlgorithmGraph::add_dependency(OperationId src, OperationId dst,
                                            std::string name) {
  FTSCHED_REQUIRE(src.valid() && src.index() < operations_.size(),
                  "dependency source is not a vertex of this graph");
  FTSCHED_REQUIRE(dst.valid() && dst.index() < operations_.size(),
                  "dependency destination is not a vertex of this graph");
  FTSCHED_REQUIRE(src != dst, "self-dependency is not allowed");
  const DependencyId id{static_cast<DependencyId::underlying_type>(
      dependencies_.size())};
  if (name.empty()) {
    name = operations_[src.index()].name + "->" + operations_[dst.index()].name;
  }
  dependencies_.push_back(Dependency{id, src, dst, std::move(name)});
  out_[src.index()].push_back(id);
  in_[dst.index()].push_back(id);
  return id;
}

const Operation& AlgorithmGraph::operation(OperationId id) const {
  FTSCHED_REQUIRE(id.valid() && id.index() < operations_.size(),
                  "unknown operation id");
  return operations_[id.index()];
}

const Dependency& AlgorithmGraph::dependency(DependencyId id) const {
  FTSCHED_REQUIRE(id.valid() && id.index() < dependencies_.size(),
                  "unknown dependency id");
  return dependencies_[id.index()];
}

OperationId AlgorithmGraph::find_operation(std::string_view name) const {
  for (const Operation& op : operations_) {
    if (op.name == name) return op.id;
  }
  return OperationId{};
}

const std::vector<DependencyId>& AlgorithmGraph::in_dependencies(
    OperationId op) const {
  FTSCHED_REQUIRE(op.valid() && op.index() < operations_.size(),
                  "unknown operation id");
  return in_[op.index()];
}

const std::vector<DependencyId>& AlgorithmGraph::out_dependencies(
    OperationId op) const {
  FTSCHED_REQUIRE(op.valid() && op.index() < operations_.size(),
                  "unknown operation id");
  return out_[op.index()];
}

bool AlgorithmGraph::is_precedence(DependencyId dep) const {
  const Dependency& d = dependency(dep);
  return operations_[d.dst.index()].kind != OperationKind::kMem;
}

std::vector<DependencyId> AlgorithmGraph::precedence_in(OperationId op) const {
  return precedence_in_ref(op);
}

const std::vector<DependencyId>& AlgorithmGraph::precedence_in_ref(
    OperationId op) const {
  static const std::vector<DependencyId> kNoDeps;
  if (operation(op).kind == OperationKind::kMem) return kNoDeps;
  return in_[op.index()];
}

std::vector<DependencyId> AlgorithmGraph::precedence_out(OperationId op) const {
  std::vector<DependencyId> result;
  for (DependencyId dep : out_dependencies(op)) {
    if (is_precedence(dep)) result.push_back(dep);
  }
  return result;
}

std::vector<OperationId> AlgorithmGraph::predecessors(OperationId op) const {
  std::vector<OperationId> result;
  for (DependencyId dep : precedence_in(op)) {
    result.push_back(dependencies_[dep.index()].src);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<OperationId> AlgorithmGraph::successors(OperationId op) const {
  std::vector<OperationId> result;
  for (DependencyId dep : precedence_out(op)) {
    result.push_back(dependencies_[dep.index()].dst);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<OperationId> AlgorithmGraph::sources() const {
  std::vector<OperationId> result;
  for (const Operation& op : operations_) {
    if (precedence_in(op.id).empty()) result.push_back(op.id);
  }
  return result;
}

std::vector<OperationId> AlgorithmGraph::sinks() const {
  std::vector<OperationId> result;
  for (const Operation& op : operations_) {
    if (precedence_out(op.id).empty()) result.push_back(op.id);
  }
  return result;
}

std::vector<OperationId> AlgorithmGraph::topological_order() const {
  std::vector<int> in_degree(operations_.size(), 0);
  for (const Operation& op : operations_) {
    in_degree[op.id.index()] =
        static_cast<int>(precedence_in_ref(op.id).size());
  }
  // Min-heap on id for deterministic tie-breaking.
  std::priority_queue<OperationId, std::vector<OperationId>,
                      std::greater<OperationId>>
      ready;
  for (const Operation& op : operations_) {
    if (in_degree[op.id.index()] == 0) ready.push(op.id);
  }
  std::vector<OperationId> order;
  order.reserve(operations_.size());
  while (!ready.empty()) {
    const OperationId op = ready.top();
    ready.pop();
    order.push_back(op);
    for (DependencyId dep : out_dependencies(op)) {
      if (!is_precedence(dep)) continue;
      const OperationId dst = dependencies_[dep.index()].dst;
      if (--in_degree[dst.index()] == 0) ready.push(dst);
    }
  }
  if (order.size() != operations_.size()) return {};  // cycle
  return order;
}

std::vector<std::string> AlgorithmGraph::check() const {
  std::vector<std::string> issues;
  if (!is_acyclic()) {
    issues.push_back("precedence relation has a cycle");
  }
  for (const Operation& op : operations_) {
    if (op.kind == OperationKind::kExtioIn && !in_[op.id.index()].empty()) {
      issues.push_back("extio input '" + op.name + "' has a predecessor");
    }
    if (op.kind == OperationKind::kExtioOut && !out_[op.id.index()].empty()) {
      issues.push_back("extio output '" + op.name + "' has a successor");
    }
  }
  return issues;
}

}  // namespace ftsched
