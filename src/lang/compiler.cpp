#include "lang/compiler.hpp"

#include <cctype>
#include <map>
#include <vector>

namespace ftsched::lang {

namespace {

// ---------------------------------------------------------------- lexer --

struct Token {
  enum class Kind { kIdent, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Token next() {
    skip_space_and_comments();
    Token token;
    token.line = line_;
    if (pos_ >= source_.size()) return token;
    const char c = source_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        ++pos_;
      }
      token.kind = Token::Kind::kIdent;
      token.text = std::string(source_.substr(start, pos_ - start));
      return token;
    }
    if (std::string_view("();:,=").find(c) != std::string_view::npos) {
      token.kind = Token::Kind::kPunct;
      token.text = std::string(1, c);
      ++pos_;
      return token;
    }
    token.kind = Token::Kind::kPunct;
    token.text = std::string(1, c);
    ++pos_;
    return token;  // unknown punctuation surfaces as a parse error later
  }

 private:
  void skip_space_and_comments() {
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < source_.size() &&
                 source_[pos_ + 1] == '-') {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// ------------------------------------------------------------------ AST --

struct Expr {
  enum class Kind { kRef, kPre, kCall };
  Kind kind = Kind::kRef;
  std::string name;  // variable (kRef/kPre) or function (kCall)
  std::vector<Expr> args;
  int line = 0;
};

struct Equation {
  std::string lhs;
  Expr rhs;
  int line = 0;
};

struct Param {
  std::string name;
  bool is_sensor = false;
  int line = 0;
};

struct Ast {
  std::string node_name;
  std::vector<Param> inputs;
  std::vector<Param> outputs;
  std::vector<Equation> equations;
};

Error at(int line, const std::string& message) {
  return Error{Error::Code::kInvalidInput,
               "line " + std::to_string(line) + ": " + message};
}

// ---------------------------------------------------------------- parser --

class Parser {
 public:
  explicit Parser(std::string_view source) : lexer_(source) { advance(); }

  Expected<Ast> parse() {
    Ast ast;
    if (auto err = expect_ident("node")) return *err;
    if (current_.kind != Token::Kind::kIdent) {
      return at(current_.line, "expected the node's name");
    }
    ast.node_name = current_.text;
    advance();

    if (auto err = parse_params(ast.inputs, /*inputs=*/true)) return *err;
    if (auto err = expect_ident("returns")) return *err;
    if (auto err = parse_params(ast.outputs, /*inputs=*/false)) return *err;
    if (auto err = expect_ident("let")) return *err;

    while (!(current_.kind == Token::Kind::kIdent &&
             current_.text == "tel")) {
      if (current_.kind == Token::Kind::kEnd) {
        return at(current_.line, "missing 'tel'");
      }
      Equation eq;
      eq.line = current_.line;
      if (current_.kind != Token::Kind::kIdent || reserved(current_.text)) {
        return at(current_.line, "expected an equation 'name = expr;'");
      }
      eq.lhs = current_.text;
      advance();
      if (auto err = expect_punct("=")) return *err;
      Expected<Expr> rhs = parse_expr();
      if (!rhs) return rhs.error();
      eq.rhs = std::move(rhs).value();
      if (auto err = expect_punct(";")) return *err;
      ast.equations.push_back(std::move(eq));
    }
    return ast;
  }

 private:
  static bool reserved(const std::string& word) {
    return word == "node" || word == "returns" || word == "let" ||
           word == "tel" || word == "sensor" || word == "actuator" ||
           word == "pre";
  }

  void advance() { current_ = lexer_.next(); }

  std::optional<Error> expect_punct(const char* text) {
    if (current_.kind != Token::Kind::kPunct || current_.text != text) {
      return at(current_.line, std::string("expected '") + text + "', got '" +
                                   current_.text + "'");
    }
    advance();
    return std::nullopt;
  }

  std::optional<Error> expect_ident(const char* word) {
    if (current_.kind != Token::Kind::kIdent || current_.text != word) {
      return at(current_.line, std::string("expected '") + word + "'");
    }
    advance();
    return std::nullopt;
  }

  std::optional<Error> parse_params(std::vector<Param>& params, bool inputs) {
    if (auto err = expect_punct("(")) return *err;
    while (true) {
      if (current_.kind != Token::Kind::kIdent || reserved(current_.text)) {
        return at(current_.line, "expected a parameter name");
      }
      Param param;
      param.name = current_.text;
      param.line = current_.line;
      advance();
      if (auto err = expect_punct(":")) return *err;
      if (current_.kind != Token::Kind::kIdent ||
          (current_.text != "sensor" && current_.text != "actuator")) {
        return at(current_.line, "expected 'sensor' or 'actuator'");
      }
      param.is_sensor = current_.text == "sensor";
      if (inputs && !param.is_sensor) {
        return at(current_.line, "inputs must be sensors");
      }
      if (!inputs && param.is_sensor) {
        return at(current_.line, "outputs must be actuators");
      }
      advance();
      params.push_back(std::move(param));
      if (current_.kind == Token::Kind::kPunct &&
          (current_.text == "," || current_.text == ";")) {
        advance();
        continue;
      }
      break;
    }
    return expect_punct(")");
  }

  Expected<Expr> parse_expr() {
    if (current_.kind != Token::Kind::kIdent) {
      return at(current_.line, "expected an expression");
    }
    Expr expr;
    expr.line = current_.line;
    expr.name = current_.text;
    const bool is_pre = current_.text == "pre";
    if (!is_pre && reserved(current_.text)) {
      return at(current_.line, "'" + current_.text + "' is reserved");
    }
    advance();
    if (current_.kind == Token::Kind::kPunct && current_.text == "(") {
      advance();
      if (is_pre) {
        // pre(variable) only: a unit-delay on a named flow.
        if (current_.kind != Token::Kind::kIdent || reserved(current_.text)) {
          return at(current_.line, "pre() takes a variable name");
        }
        expr.kind = Expr::Kind::kPre;
        expr.name = current_.text;
        advance();
        if (auto err = expect_punct(")")) return *err;
        return expr;
      }
      expr.kind = Expr::Kind::kCall;
      while (true) {
        Expected<Expr> arg = parse_expr();
        if (!arg) return arg.error();
        expr.args.push_back(std::move(arg).value());
        if (current_.kind == Token::Kind::kPunct && current_.text == ",") {
          advance();
          continue;
        }
        break;
      }
      if (auto err = expect_punct(")")) return *err;
      return expr;
    }
    if (is_pre) return at(expr.line, "pre needs parentheses: pre(x)");
    expr.kind = Expr::Kind::kRef;
    return expr;
  }

  Lexer lexer_;
  Token current_;
};

// --------------------------------------------------------------- codegen --

class Codegen {
 public:
  Expected<CompiledNode> run(Ast ast) {
    CompiledNode node;
    node.name = std::move(ast.node_name);
    node.graph = std::make_unique<AlgorithmGraph>();
    graph_ = node.graph.get();

    // Declarations first, so equations can reference in any order.
    for (const Param& input : ast.inputs) {
      if (producer_.count(input.name) != 0) {
        return at(input.line, "duplicate parameter " + input.name);
      }
      const OperationId op =
          graph_->add_operation(input.name, OperationKind::kExtioIn);
      producer_[input.name] = op;
      node.inputs.push_back(op);
    }
    for (const Equation& eq : ast.equations) {
      if (producer_.count(eq.lhs) != 0) {
        return at(eq.line, eq.lhs + " is defined twice (or shadows an "
                                    "input)");
      }
      // Outputs get a distinct comp for the computation; the actuator
      // extio itself is added below.
      producer_[eq.lhs] = graph_->add_operation(
          is_output(ast, eq.lhs) ? eq.lhs + "$val" : eq.lhs);
    }

    // Wire the right-hand sides.
    for (const Equation& eq : ast.equations) {
      const Expected<OperationId> value = value_of(eq.rhs, eq.lhs);
      if (!value) return value.error();
      const OperationId target = producer_.at(eq.lhs);
      if (value.value() != target) {
        // Alias equation (x = y; or x = pre(y);): identity comp.
        graph_->add_dependency(value.value(), target);
      }
    }

    // Actuators.
    for (const Param& output : ast.outputs) {
      const auto it = producer_.find(output.name);
      if (it == producer_.end()) {
        return at(output.line,
                  "output " + output.name + " has no defining equation");
      }
      const OperationId actuator =
          graph_->add_operation(output.name, OperationKind::kExtioOut);
      graph_->add_dependency(it->second, actuator);
      node.outputs.push_back(actuator);
    }

    if (!graph_->is_acyclic()) {
      return Error{Error::Code::kInvalidInput,
                   "instantaneous cycle: every feedback loop must go "
                   "through pre()"};
    }
    for (const std::string& issue : graph_->check()) {
      return Error{Error::Code::kInvalidInput, issue};
    }
    return node;
  }

 private:
  static bool is_output(const Ast& ast, const std::string& name) {
    for (const Param& output : ast.outputs) {
      if (output.name == name) return true;
    }
    return false;
  }

  /// The operation producing `expr`'s value; nested calls synthesize
  /// `scope$N` comps.
  Expected<OperationId> value_of(const Expr& expr, const std::string& scope) {
    switch (expr.kind) {
      case Expr::Kind::kRef: {
        const auto it = producer_.find(expr.name);
        if (it == producer_.end()) {
          return at(expr.line, "undefined variable " + expr.name);
        }
        return it->second;
      }
      case Expr::Kind::kPre: {
        const auto source = producer_.find(expr.name);
        if (source == producer_.end()) {
          return at(expr.line, "undefined variable " + expr.name);
        }
        const std::string mem_name = "pre$" + expr.name;
        auto [it, inserted] = producer_.try_emplace(mem_name);
        if (inserted) {
          it->second = graph_->add_operation(mem_name, OperationKind::kMem);
          // The value written for the next iteration: non-precedence edge.
          graph_->add_dependency(source->second, it->second);
        }
        return it->second;
      }
      case Expr::Kind::kCall: {
        // Scope equations' top-level calls onto the lhs comp itself; nested
        // calls get fresh synthesized operations.
        OperationId op;
        if (depth_ == 0) {
          op = producer_.at(scope);
        } else {
          op = graph_->add_operation(scope + "$" +
                                     std::to_string(++synth_counter_));
        }
        ++depth_;
        for (const Expr& arg : expr.args) {
          const Expected<OperationId> value = value_of(arg, scope);
          if (!value) {
            --depth_;
            return value.error();
          }
          graph_->add_dependency(value.value(), op);
        }
        --depth_;
        return op;
      }
    }
    return at(expr.line, "unreachable expression kind");
  }

  AlgorithmGraph* graph_ = nullptr;
  std::map<std::string, OperationId> producer_;
  int depth_ = 0;
  int synth_counter_ = 0;
};

}  // namespace

Expected<CompiledNode> compile_node(std::string_view source) {
  Expected<Ast> ast = Parser(source).parse();
  if (!ast) return ast.error();
  return Codegen{}.run(std::move(ast).value());
}

}  // namespace ftsched::lang
