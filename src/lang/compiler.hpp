// A miniature synchronous dataflow language compiling to AlgorithmGraph —
// the front-end role the paper delegates to ESTEREL/LUSTRE/SIGNAL through
// the DC common format (§4.1: "the [algorithm] graph can also be imported
// from a file which is the result of the compilation of a source program
// written in synchronous languages"). One node per program:
//
//   -- comments run to end of line
//   node cruise(speed: sensor; setpoint: sensor)
//   returns (throttle: actuator; brake: actuator)
//   let
//     err      = sub(setpoint, speed);
//     acc      = add(pre(acc), err);   -- pre() reads last iteration (mem)
//     throttle = gain(acc);
//     brake    = brake_map(err);
//   tel
//
// Semantics (matching §4.2's operation kinds):
//  * each sensor parameter becomes an extio-in operation;
//  * each actuator parameter becomes an extio-out operation fed by its
//    defining equation;
//  * each equation x = f(...) becomes a comp operation named x (nested
//    calls get synthesized names x$1, x$2, ...);
//  * pre(v) becomes a mem operation pre_v: its input edge from v carries no
//    intra-iteration precedence, which is exactly how feedback loops stay
//    schedulable (§4.2 item 2). pre() of an input is allowed.
//
// The compiler rejects undefined or doubly-defined variables, outputs
// without equations, and instantaneous cycles (cycles not broken by pre),
// each with a line number.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/error.hpp"
#include "graph/algorithm_graph.hpp"

namespace ftsched::lang {

struct CompiledNode {
  std::string name;
  std::unique_ptr<AlgorithmGraph> graph;
  /// Declared parameter order, for tooling.
  std::vector<OperationId> inputs;
  std::vector<OperationId> outputs;
};

[[nodiscard]] Expected<CompiledNode> compile_node(std::string_view source);

}  // namespace ftsched::lang
