// The executive-conformance property: on ANY problem, the failure-free
// simulation of a schedule must replay it date for date — no timeouts, no
// elections, no extra transfers. This pins the whole stack together: the
// engine's link bookkeeping, the timeout tables' contention refinement, and
// the simulator's time-triggered arbitration must all agree.
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::ArchKind;
using workload::OwnedProblem;
using workload::RandomProblemParams;

struct ReplayCase {
  ArchKind arch;
  std::size_t processors;
  int k;
  double ccr;
  std::uint64_t seed;
};

std::string replay_name(const ::testing::TestParamInfo<ReplayCase>& info) {
  const char* arch = "";
  switch (info.param.arch) {
    case ArchKind::kBus:
      arch = "Bus";
      break;
    case ArchKind::kFullyConnected:
      arch = "Full";
      break;
    case ArchKind::kRing:
      arch = "Ring";
      break;
    case ArchKind::kChain:
      arch = "Chain";
      break;
    case ArchKind::kStar:
      arch = "Star";
      break;
  }
  return std::string(arch) + std::to_string(info.param.processors) + "K" +
         std::to_string(info.param.k) + "Seed" +
         std::to_string(info.param.seed);
}

class ReplayProperties : public ::testing::TestWithParam<ReplayCase> {};

TEST_P(ReplayProperties, FailureFreeRunReplaysTheStaticSchedule) {
  RandomProblemParams params;
  params.dag.operations = 16;
  params.dag.width = 4;
  params.arch_kind = GetParam().arch;
  params.processors = GetParam().processors;
  params.failures_to_tolerate = GetParam().k;
  params.ccr = GetParam().ccr;
  params.restrict_probability = 0.1;
  params.seed = GetParam().seed;
  const OwnedProblem ex = workload::random_problem(params);

  for (const HeuristicKind kind :
       {HeuristicKind::kBase, HeuristicKind::kSolution1,
        HeuristicKind::kSolution2}) {
    const auto result = schedule(ex.problem, kind);
    ASSERT_TRUE(result.has_value())
        << to_string(kind) << ": " << result.error().message;
    const Simulator simulator(result.value());
    const IterationResult run = simulator.run();
    SCOPED_TRACE(to_string(kind));
    EXPECT_TRUE(run.all_outputs_produced);
    EXPECT_EQ(run.trace.count(TraceEvent::Kind::kTimeout), 0u);
    EXPECT_EQ(run.trace.count(TraceEvent::Kind::kElection), 0u);
    EXPECT_EQ(run.trace.count(TraceEvent::Kind::kDrop), 0u);
    // One transfer-start per hop of every active comm, none extra.
    std::size_t segments = 0;
    for (const ScheduledComm& comm : result->comms()) {
      if (comm.active) segments += comm.segments.size();
    }
    EXPECT_EQ(run.trace.count(TraceEvent::Kind::kTransferStart), segments);
    for (const ScheduledOperation& placement : result->operations()) {
      EXPECT_DOUBLE_EQ(
          run.trace.op_end(placement.op, placement.processor),
          placement.end)
          << ex.problem.algorithm->operation(placement.op).name << " on "
          << ex.problem.architecture->processor(placement.processor).name;
    }
  }
}

TEST_P(ReplayProperties, SimulationIsDeterministic) {
  RandomProblemParams params;
  params.dag.operations = 14;
  params.arch_kind = GetParam().arch;
  params.processors = GetParam().processors;
  params.failures_to_tolerate = GetParam().k;
  params.seed = GetParam().seed;
  const OwnedProblem ex = workload::random_problem(params);
  const auto result = schedule_solution1(ex.problem);
  ASSERT_TRUE(result.has_value());
  const Simulator simulator(result.value());

  const FailureScenario scenario =
      FailureScenario::crash(ProcessorId{0}, result->makespan() / 3);
  const IterationResult a = simulator.run(scenario);
  const IterationResult b = simulator.run(scenario);
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (std::size_t i = 0; i < a.trace.events().size(); ++i) {
    EXPECT_EQ(a.trace.events()[i].kind, b.trace.events()[i].kind);
    EXPECT_DOUBLE_EQ(a.trace.events()[i].time, b.trace.events()[i].time);
    EXPECT_EQ(a.trace.events()[i].proc, b.trace.events()[i].proc);
  }
  EXPECT_DOUBLE_EQ(a.response_time, b.response_time);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplayProperties,
    ::testing::Values(ReplayCase{ArchKind::kBus, 3, 1, 0.5, 31},
                      ReplayCase{ArchKind::kBus, 5, 2, 1.0, 32},
                      ReplayCase{ArchKind::kBus, 4, 0, 2.0, 33},
                      ReplayCase{ArchKind::kFullyConnected, 4, 1, 0.5, 34},
                      ReplayCase{ArchKind::kFullyConnected, 5, 2, 1.5, 35},
                      ReplayCase{ArchKind::kRing, 4, 1, 0.5, 36},
                      ReplayCase{ArchKind::kRing, 5, 1, 2.0, 37},
                      ReplayCase{ArchKind::kChain, 4, 1, 0.8, 38},
                      ReplayCase{ArchKind::kStar, 5, 1, 0.5, 39},
                      ReplayCase{ArchKind::kStar, 6, 2, 1.0, 40}),
    replay_name);

}  // namespace
}  // namespace ftsched
