// The headline property (paper §5.6): a K-fault-tolerant schedule keeps
// producing every output under ANY combination of at most K fail-stop
// processor failures. Verified by exhaustive subset injection on randomized
// problems over the architectures the paper targets (bus for solution 1,
// point-to-point for solution 2; both on both, since relay-free topologies
// keep the network connected under processor loss).
#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::ArchKind;
using workload::OwnedProblem;
using workload::RandomProblemParams;

struct FtSweep {
  HeuristicKind kind;
  ArchKind arch;
  std::size_t processors;
  int k;
  std::uint64_t seed;
};

std::string ft_name(const ::testing::TestParamInfo<FtSweep>& info) {
  std::string name = info.param.kind == HeuristicKind::kSolution1
                         ? "Sol1"
                         : "Sol2";
  name += info.param.arch == ArchKind::kBus ? "Bus" : "Full";
  name += std::to_string(info.param.processors) + "K" +
          std::to_string(info.param.k) + "Seed" +
          std::to_string(info.param.seed);
  return name;
}

class FaultToleranceProperties : public ::testing::TestWithParam<FtSweep> {};

TEST_P(FaultToleranceProperties, AllFailurePatternsUpToKAreMasked) {
  RandomProblemParams params;
  params.dag.operations = 14;
  params.dag.width = 4;
  params.arch_kind = GetParam().arch;
  params.processors = GetParam().processors;
  params.failures_to_tolerate = GetParam().k;
  params.ccr = 0.6;
  params.restrict_probability = 0.1;
  params.seed = GetParam().seed;
  const OwnedProblem ex = workload::random_problem(params);

  // Solution-1 sweeps also exercise the hybrid with a half-active policy:
  // the masking guarantee must be insensitive to the per-dependency choice.
  SchedulerOptions options;
  HeuristicKind kind = GetParam().kind;
  if (kind == HeuristicKind::kSolution1 && GetParam().seed % 2 == 1) {
    kind = HeuristicKind::kHybrid;
    options.active_comm_deps.assign(
        ex.problem.algorithm->dependency_count(), false);
    for (std::size_t d = 0; d < options.active_comm_deps.size(); d += 2) {
      options.active_comm_deps[d] = true;
    }
  }
  const auto result = schedule(ex.problem, kind, options);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const Simulator simulator(result.value());
  const Time makespan = result->makespan();

  for (const std::vector<ProcessorId>& subset :
       failure_subsets(GetParam().processors,
                       static_cast<std::size_t>(GetParam().k))) {
    // Permanent regime.
    const IterationResult settled =
        simulator.run(FailureScenario::dead_from_start(subset));
    EXPECT_TRUE(settled.all_outputs_produced)
        << subset.size() << " dead from start, first P"
        << subset.front().value() + 1;

    // Transient regime: all members crash together at a sweep of instants.
    for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      FailureScenario scenario;
      for (ProcessorId proc : subset) {
        scenario.events.push_back(FailureEvent{proc, makespan * fraction});
      }
      const IterationResult transient = simulator.run(scenario);
      EXPECT_TRUE(transient.all_outputs_produced)
          << subset.size() << " crash at " << makespan * fraction;
    }

    // Staggered crashes.
    if (subset.size() >= 2) {
      FailureScenario scenario;
      for (std::size_t i = 0; i < subset.size(); ++i) {
        scenario.events.push_back(FailureEvent{
            subset[i], makespan * (static_cast<double>(i) + 1) /
                           (static_cast<double>(subset.size()) + 1)});
      }
      EXPECT_TRUE(simulator.run(scenario).all_outputs_produced);
    }
  }
}

TEST_P(FaultToleranceProperties, KPlusOneFailuresMayLoseOutputs) {
  // Sanity check of the test harness itself: killing every processor that
  // can run some output extio must lose that output.
  RandomProblemParams params;
  params.dag.operations = 10;
  params.arch_kind = GetParam().arch;
  params.processors = GetParam().processors;
  params.failures_to_tolerate = GetParam().k;
  params.seed = GetParam().seed;
  const OwnedProblem ex = workload::random_problem(params);
  const auto result = schedule(ex.problem, GetParam().kind);
  ASSERT_TRUE(result.has_value());

  // Kill every host of the first output's replicas (K+1 > K failures).
  for (const Operation& op : ex.problem.algorithm->operations()) {
    if (op.kind != OperationKind::kExtioOut) continue;
    std::vector<ProcessorId> hosts;
    for (const ScheduledOperation* replica : result->replicas(op.id)) {
      hosts.push_back(replica->processor);
    }
    const Simulator simulator(result.value());
    EXPECT_FALSE(simulator.run(FailureScenario::dead_from_start(hosts))
                     .all_outputs_produced);
    break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultToleranceProperties,
    ::testing::Values(
        FtSweep{HeuristicKind::kSolution1, ArchKind::kBus, 3, 1, 21},
        FtSweep{HeuristicKind::kSolution1, ArchKind::kBus, 4, 1, 22},
        FtSweep{HeuristicKind::kSolution1, ArchKind::kBus, 4, 2, 23},
        FtSweep{HeuristicKind::kSolution1, ArchKind::kBus, 5, 2, 24},
        FtSweep{HeuristicKind::kSolution1, ArchKind::kFullyConnected, 4, 1,
                25},
        FtSweep{HeuristicKind::kSolution2, ArchKind::kFullyConnected, 3, 1,
                26},
        FtSweep{HeuristicKind::kSolution2, ArchKind::kFullyConnected, 4, 1,
                27},
        FtSweep{HeuristicKind::kSolution2, ArchKind::kFullyConnected, 4, 2,
                28},
        FtSweep{HeuristicKind::kSolution2, ArchKind::kFullyConnected, 5, 2,
                29},
        FtSweep{HeuristicKind::kSolution2, ArchKind::kBus, 4, 1, 30}),
    ft_name);

}  // namespace
}  // namespace ftsched
