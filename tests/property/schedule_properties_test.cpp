// Property sweep: every schedule any heuristic produces on randomized
// problems must satisfy the structural invariants (DESIGN.md §6), across
// topologies, K, CCR, and seeds.
#include <gtest/gtest.h>

#include "graph/dag_algorithms.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/pressure.hpp"
#include "sched/validate.hpp"
#include "workload/random_arch.hpp"

namespace ftsched {
namespace {

using workload::ArchKind;
using workload::OwnedProblem;
using workload::RandomProblemParams;

struct Sweep {
  ArchKind arch;
  std::size_t processors;
  int k;
  double ccr;
  std::uint64_t seed;
};

std::string sweep_name(const ::testing::TestParamInfo<Sweep>& info) {
  const char* arch = "";
  switch (info.param.arch) {
    case ArchKind::kBus:
      arch = "Bus";
      break;
    case ArchKind::kFullyConnected:
      arch = "Full";
      break;
    case ArchKind::kRing:
      arch = "Ring";
      break;
    case ArchKind::kChain:
      arch = "Chain";
      break;
    case ArchKind::kStar:
      arch = "Star";
      break;
  }
  return std::string(arch) + std::to_string(info.param.processors) + "K" +
         std::to_string(info.param.k) + "Ccr" +
         std::to_string(static_cast<int>(info.param.ccr * 10)) + "Seed" +
         std::to_string(info.param.seed);
}

class ScheduleProperties : public ::testing::TestWithParam<Sweep> {
 protected:
  OwnedProblem make_problem() const {
    RandomProblemParams params;
    params.dag.operations = 18;
    params.dag.width = 4;
    params.arch_kind = GetParam().arch;
    params.processors = GetParam().processors;
    params.failures_to_tolerate = GetParam().k;
    params.ccr = GetParam().ccr;
    params.restrict_probability = 0.15;
    params.seed = GetParam().seed;
    return workload::random_problem(params);
  }
};

TEST_P(ScheduleProperties, AllHeuristicsProduceValidSchedules) {
  const OwnedProblem ex = make_problem();
  const DagTiming bound = optimistic_timing(ex.problem);

  for (const HeuristicKind kind :
       {HeuristicKind::kBase, HeuristicKind::kSolution1,
        HeuristicKind::kSolution2}) {
    const auto result = schedule(ex.problem, kind);
    ASSERT_TRUE(result.has_value())
        << to_string(kind) << ": " << result.error().message;
    const Schedule& s = result.value();
    const auto issues = validate(s);
    EXPECT_TRUE(issues.empty())
        << to_string(kind) << ": " << issues.front();
    // The communication-free critical path lower-bounds any makespan.
    EXPECT_GE(s.makespan(), bound.critical_path - kTimeEpsilon);
    // Replication degree.
    const std::size_t expected =
        kind == HeuristicKind::kBase
            ? 1u
            : static_cast<std::size_t>(GetParam().k) + 1u;
    for (const Operation& op : ex.problem.algorithm->operations()) {
      EXPECT_EQ(s.replicas(op.id).size(), expected);
    }
  }
}

TEST_P(ScheduleProperties, HybridWithAlternatingPolicyIsValid) {
  // Hybrid with every other dependency actively replicated: the validator
  // must accept it and the replication/redundancy invariants must hold for
  // exactly the flagged dependencies.
  const OwnedProblem ex = make_problem();
  SchedulerOptions options;
  options.active_comm_deps.assign(ex.problem.algorithm->dependency_count(),
                                  false);
  for (std::size_t d = 0; d < options.active_comm_deps.size(); d += 2) {
    options.active_comm_deps[d] = true;
  }
  const auto result = schedule_hybrid_with_policy(ex.problem, options);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const auto issues = validate(result.value());
  EXPECT_TRUE(issues.empty()) << issues.front();
  EXPECT_EQ(result->active_comm_dep_count(),
            (options.active_comm_deps.size() + 1) / 2);
}

TEST_P(ScheduleProperties, FaultToleranceNeverBeatsTheBaselineByMuch) {
  // The FT schedules add work; they may occasionally tie the baseline but
  // must never be meaningfully shorter (same engine, more constraints).
  const OwnedProblem ex = make_problem();
  const Time base = schedule_base(ex.problem)->makespan();
  if (GetParam().k == 0) return;
  EXPECT_GE(schedule_solution1(ex.problem)->makespan(),
            base - kTimeEpsilon);
  EXPECT_GE(schedule_solution2(ex.problem)->makespan(),
            base - kTimeEpsilon);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleProperties,
    ::testing::Values(
        Sweep{ArchKind::kBus, 3, 1, 0.5, 1}, Sweep{ArchKind::kBus, 4, 1, 1.0, 2},
        Sweep{ArchKind::kBus, 5, 2, 0.3, 3}, Sweep{ArchKind::kBus, 4, 0, 0.5, 4},
        Sweep{ArchKind::kFullyConnected, 3, 1, 0.5, 5},
        Sweep{ArchKind::kFullyConnected, 4, 1, 2.0, 6},
        Sweep{ArchKind::kFullyConnected, 5, 2, 0.8, 7},
        Sweep{ArchKind::kFullyConnected, 4, 3, 0.5, 8},
        Sweep{ArchKind::kRing, 4, 1, 0.5, 9},
        Sweep{ArchKind::kRing, 5, 1, 1.5, 10},
        Sweep{ArchKind::kChain, 4, 1, 0.4, 11},
        Sweep{ArchKind::kChain, 5, 0, 1.0, 12},
        Sweep{ArchKind::kStar, 4, 1, 0.5, 13},
        Sweep{ArchKind::kStar, 6, 2, 0.7, 14},
        Sweep{ArchKind::kBus, 6, 3, 0.5, 15},
        Sweep{ArchKind::kFullyConnected, 6, 1, 0.2, 16}),
    sweep_name);

}  // namespace
}  // namespace ftsched
