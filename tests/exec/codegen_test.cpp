// Executive generation: the per-unit programs must be a faithful
// re-expression of the static schedule, and the pseudo-C emitter must list
// every instruction.
#include <gtest/gtest.h>

#include "exec/codegen.hpp"
#include "sched/heuristics.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

using workload::OwnedProblem;

TEST(Codegen, ComputationUnitsMatchScheduleOrder) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Executive executive = generate_executive(schedule);

  ASSERT_EQ(executive.processors.size(), 3u);
  for (const Processor& proc : ex.problem.architecture->processors()) {
    const auto placements = schedule.operations_on(proc.id);
    const UnitProgram& unit = executive.of(proc.id).computation;
    ASSERT_EQ(unit.instructions.size(), placements.size());
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const Instruction& instr = unit.instructions[i];
      EXPECT_EQ(instr.kind, Instruction::Kind::kExec);
      EXPECT_EQ(instr.op, placements[i]->op);
      EXPECT_EQ(instr.rank, placements[i]->rank);
      EXPECT_DOUBLE_EQ(instr.planned_start, placements[i]->start);
    }
  }
}

TEST(Codegen, EverySendHasAMatchingScheduleSegment) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Executive executive = generate_executive(schedule);

  std::size_t sends = 0;
  for (const ProcessorPrograms& programs : executive.processors) {
    for (const auto& [link, unit] : programs.comm_units) {
      for (const Instruction& instr : unit.instructions) {
        if (instr.kind != Instruction::Kind::kSend) continue;
        ++sends;
        bool matched = false;
        for (const ScheduledComm& comm : schedule.comms()) {
          if (!comm.active || comm.dep != instr.dep) continue;
          for (const CommSegment& seg : comm.segments) {
            matched |= seg.link == instr.link &&
                       time_eq(seg.start, instr.planned_start) &&
                       time_eq(seg.end, instr.planned_end);
          }
        }
        EXPECT_TRUE(matched);
      }
    }
  }
  // One send per active segment.
  std::size_t segments = 0;
  for (const ScheduledComm& comm : schedule.comms()) {
    if (comm.active) segments += comm.segments.size();
  }
  EXPECT_EQ(sends, segments);
}

TEST(Codegen, Solution1RecvsCarryWatchChains) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Executive executive = generate_executive(schedule);

  bool any_guarded_recv = false;
  std::size_t opcomms = 0;
  for (const ProcessorPrograms& programs : executive.processors) {
    for (const auto& [link, unit] : programs.comm_units) {
      for (const Instruction& instr : unit.instructions) {
        if (instr.kind == Instruction::Kind::kRecv && !instr.chain.empty()) {
          any_guarded_recv = true;
        }
        if (instr.kind == Instruction::Kind::kOpComm) {
          ++opcomms;
          EXPECT_FALSE(instr.chain.empty());
        }
      }
    }
  }
  EXPECT_TRUE(any_guarded_recv);
  std::size_t passive = 0;
  for (const ScheduledComm& comm : schedule.comms()) {
    passive += comm.active ? 0 : 1;
  }
  EXPECT_EQ(opcomms, passive);
}

TEST(Codegen, BaselineHasNoWatchMachinery) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_base(ex.problem).value();
  const Executive executive = generate_executive(schedule);
  for (const ProcessorPrograms& programs : executive.processors) {
    for (const auto& [link, unit] : programs.comm_units) {
      for (const Instruction& instr : unit.instructions) {
        EXPECT_NE(instr.kind, Instruction::Kind::kOpComm);
        EXPECT_TRUE(instr.chain.empty());
      }
    }
  }
}

TEST(Codegen, CommUnitsSortedByPlannedStart) {
  const OwnedProblem ex = workload::paper_example2();
  const Schedule schedule = schedule_solution2(ex.problem).value();
  const Executive executive = generate_executive(schedule);
  for (const ProcessorPrograms& programs : executive.processors) {
    for (const auto& [link, unit] : programs.comm_units) {
      for (std::size_t i = 1; i < unit.instructions.size(); ++i) {
        EXPECT_LE(unit.instructions[i - 1].planned_start,
                  unit.instructions[i].planned_start);
      }
    }
  }
}

TEST(Codegen, HybridGuardsOnlyPassiveDependencies) {
  const OwnedProblem ex = workload::paper_example2();
  SchedulerOptions options;
  options.active_comm_deps.assign(ex.algorithm->dependency_count(), false);
  options.active_comm_deps[1] = true;  // A->B actively replicated
  options.active_comm_deps[4] = true;  // B->E actively replicated
  const Schedule schedule =
      schedule_hybrid_with_policy(ex.problem, options).value();
  const Executive executive = generate_executive(schedule);

  bool guarded_passive = false;
  for (const ProcessorPrograms& programs : executive.processors) {
    for (const auto& [link, unit] : programs.comm_units) {
      for (const Instruction& instr : unit.instructions) {
        if (instr.kind != Instruction::Kind::kRecv &&
            instr.kind != Instruction::Kind::kOpComm) {
          continue;
        }
        if (schedule.uses_active_comms(instr.dep)) {
          // Actively replicated: no chains, no OpComm.
          EXPECT_TRUE(instr.chain.empty());
          EXPECT_NE(instr.kind, Instruction::Kind::kOpComm);
        } else if (!instr.chain.empty()) {
          guarded_passive = true;
        }
      }
    }
  }
  EXPECT_TRUE(guarded_passive);
}

TEST(Codegen, RelayedTransfersEmitPerHopSends) {
  // Chain P1-P2-P3 with endpoints pinned apart: the relay's comm unit must
  // carry both a recv (inbound hop) and a send (outbound hop).
  auto algorithm = workload::paper_algorithm();
  auto arch = std::make_unique<ArchitectureGraph>();
  const ProcessorId p1 = arch->add_processor("P1");
  const ProcessorId p2 = arch->add_processor("P2");
  const ProcessorId p3 = arch->add_processor("P3");
  arch->add_link("L1.2", p1, p2);
  arch->add_link("L2.3", p2, p3);
  auto exec = std::make_unique<ExecTable>(*algorithm, *arch);
  auto comm = std::make_unique<CommTable>(*algorithm, *arch);
  for (const Operation& op : algorithm->operations()) {
    exec->set_uniform(op.id, 1.0);
  }
  const OperationId a = algorithm->find_operation("A");
  const OperationId b = algorithm->find_operation("B");
  const OperationId i = algorithm->find_operation("I");
  exec->set(a, p2, kInfinite);
  exec->set(a, p3, kInfinite);
  exec->set(i, p2, kInfinite);
  exec->set(i, p3, kInfinite);
  exec->set(b, p1, kInfinite);
  exec->set(b, p2, kInfinite);
  for (const Dependency& dep : algorithm->dependencies()) {
    comm->set_uniform(dep.id, 0.5);
  }
  workload::OwnedProblem owned =
      workload::assemble(std::move(algorithm), std::move(arch),
                         std::move(exec), std::move(comm), 0);

  const Schedule schedule = schedule_base(owned.problem).value();
  const Executive executive = generate_executive(schedule);
  const auto& relay = executive.of(p2);
  bool inbound = false;
  bool outbound = false;
  for (const auto& [link, unit] : relay.comm_units) {
    for (const Instruction& instr : unit.instructions) {
      const std::string& name =
          owned.algorithm->dependency(instr.dep).name;
      if (name != "A->B") continue;
      inbound |= instr.kind == Instruction::Kind::kRecv;
      outbound |= instr.kind == Instruction::Kind::kSend;
    }
  }
  EXPECT_TRUE(inbound);
  EXPECT_TRUE(outbound);
}

TEST(Codegen, ExecutiveAgreesWithSimulatedExecution) {
  // Cross-module conformance: every planned instruction date in the
  // generated executive must coincide with an observed event of the
  // failure-free simulation — the executive and the simulator are two
  // views of the same run.
  for (const bool p2p : {false, true}) {
    const OwnedProblem ex =
        p2p ? workload::paper_example2() : workload::paper_example1();
    const Schedule schedule =
        (p2p ? schedule_solution2(ex.problem)
             : schedule_solution1(ex.problem))
            .value();
    const Executive executive = generate_executive(schedule);
    const Simulator simulator(schedule);
    const IterationResult run = simulator.run();

    for (const ProcessorPrograms& programs : executive.processors) {
      for (const Instruction& instr : programs.computation.instructions) {
        EXPECT_DOUBLE_EQ(
            run.trace.op_end(instr.op, programs.processor),
            instr.planned_end);
      }
      for (const auto& [link, unit] : programs.comm_units) {
        for (const Instruction& instr : unit.instructions) {
          if (instr.kind != Instruction::Kind::kSend) continue;
          bool matched = false;
          for (const TraceEvent& event : run.trace.events()) {
            matched |= event.kind == TraceEvent::Kind::kTransferStart &&
                       event.dep == instr.dep && event.link == instr.link &&
                       time_eq(event.time, instr.planned_start);
          }
          EXPECT_TRUE(matched)
              << "send of "
              << ex.problem.algorithm->dependency(instr.dep).name << " at "
              << time_to_string(instr.planned_start);
        }
      }
    }
  }
}

TEST(EmitC, ListsEveryUnitAndOperation) {
  const OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const Executive executive = generate_executive(schedule);
  const std::string code = emit_c(executive, schedule);

  EXPECT_NE(code.find("void compute_P1(void)"), std::string::npos);
  EXPECT_NE(code.find("void compute_P2(void)"), std::string::npos);
  EXPECT_NE(code.find("void compute_P3(void)"), std::string::npos);
  EXPECT_NE(code.find("void comm_P1_bus(void)"), std::string::npos);
  EXPECT_NE(code.find("exec_A();"), std::string::npos);
  EXPECT_NE(code.find("send("), std::string::npos);
  EXPECT_NE(code.find("recv("), std::string::npos);
  EXPECT_NE(code.find("op_comm("), std::string::npos);
  EXPECT_NE(code.find("watch:"), std::string::npos);
  EXPECT_NE(code.find("makespan 9.4"), std::string::npos);
  // Dependency identifiers are sanitized for C.
  EXPECT_EQ(code.find("A->B,"), std::string::npos);
  EXPECT_NE(code.find("A__B"), std::string::npos);
}

}  // namespace
}  // namespace ftsched
