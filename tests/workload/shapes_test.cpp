#include "workload/shapes.hpp"

#include <gtest/gtest.h>

#include "graph/dag_algorithms.hpp"

namespace ftsched {
namespace {

using namespace workload;

TEST(Shapes, ForkJoin) {
  const auto graph = fork_join(5);
  EXPECT_EQ(graph->operation_count(), 5u + 3u);
  EXPECT_TRUE(graph->is_acyclic());
  EXPECT_TRUE(graph->check().empty());
  const OperationId join = graph->find_operation("join");
  EXPECT_EQ(graph->predecessors(join).size(), 5u);
}

TEST(Shapes, Pipeline) {
  const auto graph = pipeline(7);
  EXPECT_EQ(graph->operation_count(), 9u);
  EXPECT_TRUE(graph->is_acyclic());
  // A pipeline's critical path is the whole chain.
  const DagTiming timing =
      compute_dag_timing(*graph, [](OperationId) -> Time { return 1; });
  EXPECT_DOUBLE_EQ(timing.critical_path, 9.0);
}

TEST(Shapes, Diamond) {
  const auto graph = diamond(3, 4);
  EXPECT_EQ(graph->operation_count(), 3u * 4u + 2u);
  EXPECT_TRUE(graph->is_acyclic());
  EXPECT_TRUE(graph->check().empty());
}

TEST(Shapes, Fft) {
  const auto graph = fft(3);  // 8 points, 3 stages
  EXPECT_EQ(graph->operation_count(), 8u + 3u * 8u + 8u);
  EXPECT_TRUE(graph->is_acyclic());
  // Every butterfly node has exactly two predecessors.
  for (const Operation& op : graph->operations()) {
    if (op.name[0] == 'b') {
      EXPECT_EQ(graph->in_dependencies(op.id).size(), 2u) << op.name;
    }
  }
}

TEST(Shapes, GaussianElimination) {
  const auto graph = gaussian_elimination(4);
  // 3 pivots + (3+2+1) updates + in + out.
  EXPECT_EQ(graph->operation_count(), 3u + 6u + 2u);
  EXPECT_TRUE(graph->is_acyclic());
  EXPECT_TRUE(graph->check().empty());
  EXPECT_EQ(graph->sinks().size(), 1u);
}

TEST(Shapes, ControlLoopHasMem) {
  const auto graph = control_loop(3, 2, 2);
  EXPECT_TRUE(graph->is_acyclic());
  EXPECT_TRUE(graph->check().empty());
  const OperationId state = graph->find_operation("state");
  ASSERT_TRUE(state.valid());
  EXPECT_EQ(graph->operation(state).kind, OperationKind::kMem);
  // The feedback edge into the mem carries no precedence.
  EXPECT_TRUE(graph->precedence_in(state).empty());
  EXPECT_FALSE(graph->in_dependencies(state).empty());
}

TEST(Shapes, RejectBadParameters) {
  EXPECT_THROW(fork_join(0), std::invalid_argument);
  EXPECT_THROW(fft(0), std::invalid_argument);
  EXPECT_THROW(gaussian_elimination(1), std::invalid_argument);
}

}  // namespace
}  // namespace ftsched
