#include <gtest/gtest.h>

#include "workload/random_arch.hpp"
#include "workload/random_dag.hpp"

namespace ftsched {
namespace {

using namespace workload;

TEST(RandomDag, DeterministicPerSeed) {
  RandomDagParams params;
  params.operations = 30;
  params.seed = 42;
  const auto a = random_dag(params);
  const auto b = random_dag(params);
  EXPECT_EQ(a->operation_count(), b->operation_count());
  EXPECT_EQ(a->dependency_count(), b->dependency_count());
  params.seed = 43;
  const auto c = random_dag(params);
  // Almost surely a different edge set.
  EXPECT_TRUE(a->dependency_count() != c->dependency_count() ||
              a->operation_count() == c->operation_count());
}

TEST(RandomDag, AlwaysAcyclicAndConnected) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomDagParams params;
    params.operations = 25;
    params.width = 5;
    params.density = 0.4;
    params.seed = seed;
    const auto graph = random_dag(params);
    EXPECT_TRUE(graph->is_acyclic()) << "seed " << seed;
    EXPECT_TRUE(graph->check().empty()) << "seed " << seed;
    // Everything except the sink reaches a successor, everything except the
    // source has a predecessor: single source, single sink.
    EXPECT_EQ(graph->sources().size(), 1u) << "seed " << seed;
    EXPECT_EQ(graph->sinks().size(), 1u) << "seed " << seed;
    EXPECT_EQ(graph->operation_count(), 27u);
  }
}

TEST(RandomProblem, WellFormedAcrossKindsAndK) {
  for (const ArchKind kind :
       {ArchKind::kBus, ArchKind::kFullyConnected, ArchKind::kRing,
        ArchKind::kChain, ArchKind::kStar}) {
    for (int k = 0; k <= 2; ++k) {
      RandomProblemParams params;
      params.dag.operations = 12;
      params.arch_kind = kind;
      params.processors = 4;
      params.failures_to_tolerate = k;
      params.restrict_probability = 0.3;
      params.seed = 7;
      const OwnedProblem problem = random_problem(params);
      EXPECT_TRUE(problem.problem.check().empty())
          << "kind " << static_cast<int>(kind) << " K=" << k;
    }
  }
}

TEST(RandomProblem, CcrScalesCommunication) {
  RandomProblemParams slow;
  slow.ccr = 2.0;
  slow.seed = 5;
  RandomProblemParams fast = slow;
  fast.ccr = 0.1;
  const OwnedProblem heavy = random_problem(slow);
  const OwnedProblem light = random_problem(fast);
  const LinkId link{0};
  Time heavy_sum = 0;
  Time light_sum = 0;
  for (const Dependency& dep : heavy.algorithm->dependencies()) {
    heavy_sum += heavy.comm->duration(dep.id, link);
  }
  for (const Dependency& dep : light.algorithm->dependencies()) {
    light_sum += light.comm->duration(dep.id, link);
  }
  EXPECT_GT(heavy_sum, light_sum * 5);
}

TEST(RandomProblem, ExtiosPinnedToKPlusOneProcessors) {
  RandomProblemParams params;
  params.processors = 5;
  params.failures_to_tolerate = 2;
  params.seed = 11;
  const OwnedProblem problem = random_problem(params);
  for (const Operation& op : problem.algorithm->operations()) {
    if (is_extio(op.kind)) {
      EXPECT_EQ(problem.exec->allowed_processors(op.id).size(), 3u);
    }
  }
}

TEST(RandomProblem, RejectsBadParameters) {
  RandomProblemParams params;
  params.processors = 2;
  params.failures_to_tolerate = 2;
  EXPECT_THROW(random_problem(params), std::invalid_argument);
}

}  // namespace
}  // namespace ftsched
