// End-to-end pipeline: model a CyCAB-like control application (the paper's
// §8 target: 5 processors on a CAN bus), schedule it fault-tolerantly,
// generate the executive, then drive it through consecutive iterations with
// failures detected in one iteration feeding the next — the full AAA loop.
#include <gtest/gtest.h>

#include "exec/codegen.hpp"
#include "sched/heuristics.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"
#include "sim/simulator.hpp"
#include "workload/paper_examples.hpp"
#include "workload/random_arch.hpp"
#include "workload/shapes.hpp"

namespace ftsched {
namespace {

workload::OwnedProblem cycab_like(int k) {
  auto algorithm = workload::control_loop(/*sensors=*/4, /*laws=*/3,
                                          /*actuators=*/2);
  auto arch = std::make_unique<ArchitectureGraph>();
  std::vector<ProcessorId> procs;
  for (int i = 1; i <= 5; ++i) {
    std::string name = "P";
    name += std::to_string(i);
    procs.push_back(arch->add_processor(name));
  }
  arch->add_bus("can", procs);

  auto exec = std::make_unique<ExecTable>(*algorithm, *arch);
  auto comm = std::make_unique<CommTable>(*algorithm, *arch);
  int spread = 0;
  for (const Operation& op : algorithm->operations()) {
    if (is_extio(op.kind)) {
      // Sensors/actuators wired to K+1 nodes each, rotating.
      for (int r = 0; r <= k; ++r) {
        exec->set(op.id, procs[(spread + r) % procs.size()], 0.4);
      }
      ++spread;
    } else {
      for (ProcessorId proc : procs) {
        exec->set(op.id, proc, op.kind == OperationKind::kMem ? 0.2 : 1.0);
      }
    }
  }
  for (const Dependency& dep : algorithm->dependencies()) {
    comm->set_uniform(dep.id, 0.3);
  }
  return workload::assemble(std::move(algorithm), std::move(arch),
                            std::move(exec), std::move(comm), k);
}

TEST(EndToEnd, CycabControlLoopSurvivesCascadedFailures) {
  const workload::OwnedProblem ex = cycab_like(/*k=*/2);
  ASSERT_TRUE(ex.problem.check().empty());

  const auto result = schedule_solution1(ex.problem);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  const Schedule& schedule = result.value();
  EXPECT_TRUE(validate(schedule).empty());

  const Executive executive = generate_executive(schedule);
  EXPECT_EQ(executive.processors.size(), 5u);
  EXPECT_FALSE(emit_c(executive, schedule).empty());

  // Iteration 1: P2 crashes mid-run.
  const Simulator simulator(schedule);
  FailureScenario first;
  first.events.push_back(
      FailureEvent{ex.problem.architecture->find_processor("P2"),
                   schedule.makespan() / 3});
  const IterationResult it1 = simulator.run(first);
  EXPECT_TRUE(it1.all_outputs_produced);
  ASSERT_FALSE(it1.detected_failures.empty());

  // Iteration 2: the detection feeds forward; P4 crashes on top.
  FailureScenario second;
  second.failed_at_start = it1.detected_failures;
  second.events.push_back(
      FailureEvent{ex.problem.architecture->find_processor("P4"),
                   schedule.makespan() / 2});
  const IterationResult it2 = simulator.run(second);
  EXPECT_TRUE(it2.all_outputs_produced);

  // Iteration 3: both failures settled; still serving, without timeouts.
  FailureScenario third;
  third.failed_at_start = it2.detected_failures;
  for (ProcessorId dead : it1.detected_failures) {
    if (std::find(third.failed_at_start.begin(), third.failed_at_start.end(),
                  dead) == third.failed_at_start.end()) {
      third.failed_at_start.push_back(dead);
    }
  }
  const IterationResult it3 = simulator.run(third);
  EXPECT_TRUE(it3.all_outputs_produced);
  // Detection mistakes (contention-late re-sends) may raise flags, but the
  // bus-scanning rejoin logic must clear every flag on a live processor:
  // only the genuinely dead ones remain detected.
  for (ProcessorId accused : it3.detected_failures) {
    EXPECT_TRUE(std::find(third.failed_at_start.begin(),
                          third.failed_at_start.end(),
                          accused) != third.failed_at_start.end())
        << "live processor P" << accused.value() + 1 << " still flagged";
  }
}

TEST(EndToEnd, SolutionsAgreeOnOutputsAcrossWorkloads) {
  // Every shape generator, scheduled by both solutions on both example
  // architectures, validates and survives a worst-instant single failure.
  const auto shapes = [] {
    std::vector<std::unique_ptr<AlgorithmGraph>> graphs;
    graphs.push_back(workload::fork_join(4));
    graphs.push_back(workload::pipeline(5));
    graphs.push_back(workload::diamond(3, 3));
    graphs.push_back(workload::gaussian_elimination(4));
    return graphs;
  }();

  for (const auto& shape : shapes) {
    auto arch = std::make_unique<ArchitectureGraph>(
        workload::make_architecture(workload::ArchKind::kBus, 4));
    auto exec = std::make_unique<ExecTable>(*shape, *arch);
    auto comm = std::make_unique<CommTable>(*shape, *arch);
    for (const Operation& op : shape->operations()) {
      exec->set_uniform(op.id, 1.0);
    }
    for (const Dependency& dep : shape->dependencies()) {
      comm->set_uniform(dep.id, 0.4);
    }
    auto algorithm_copy = std::make_unique<AlgorithmGraph>(*shape);
    workload::OwnedProblem owned = workload::assemble(
        std::move(algorithm_copy), std::move(arch), std::move(exec),
        std::move(comm), 1);

    for (const HeuristicKind kind :
         {HeuristicKind::kSolution1, HeuristicKind::kSolution2}) {
      const auto result = schedule(owned.problem, kind);
      ASSERT_TRUE(result.has_value()) << result.error().message;
      EXPECT_TRUE(validate(result.value()).empty());
      const Simulator simulator(result.value());
      for (std::size_t p = 0; p < 4; ++p) {
        const IterationResult run = simulator.run(
            FailureScenario::crash(ProcessorId{static_cast<int>(p)},
                                   result->makespan() / 2));
        EXPECT_TRUE(run.all_outputs_produced)
            << to_string(kind) << " P" << p + 1;
      }
    }
  }
}

TEST(EndToEnd, DeadlineGovernsFeasibility) {
  workload::OwnedProblem ex = cycab_like(1);
  const Time unconstrained = schedule_solution1(ex.problem)->makespan();
  ex.problem.deadline = unconstrained * 0.9;
  EXPECT_FALSE(schedule_solution1(ex.problem).has_value());
  ex.problem.deadline = unconstrained;
  EXPECT_TRUE(schedule_solution1(ex.problem).has_value());
}

}  // namespace
}  // namespace ftsched
