#include "io/problem_format.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

constexpr const char* kSample = R"(
# the paper's example 1, hand-written
algorithm
  operation I extio-in
  operation A
  operation B
  operation C
  operation D
  operation E
  operation O extio-out
  dependency I A
  dependency A B
  dependency A C
  dependency A D
  dependency B E
  dependency C E
  dependency D E
  dependency E O
architecture
  processor P1
  processor P2
  processor P3
  bus can P1 P2 P3
exec
  I P1 1
  I P2 1
  A * 2
  B P1 3
  B P2 1.5
  B P3 1.5
  C P1 2
  C P2 3
  C P3 1
  D P1 3
  D P2 1
  D P3 1
  E * 1
  O P1 1.5
  O P2 1.5
comm
  I->A * 1.25
  A->B * 0.5
  A->C * 0.5
  A->D * 1
  B->E * 0.5
  C->E * 0.6
  D->E * 0.8
  E->O * 1
problem
  tolerate 1
)";

TEST(ProblemFormat, ParsesExample1AndSchedulesIdentically) {
  const auto parsed = io::read_problem(kSample);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_TRUE(parsed->problem.check().empty());
  EXPECT_EQ(parsed->problem.failures_to_tolerate, 1);

  // The parsed problem yields the same Figure-17 schedule as the built-in.
  const Schedule schedule = schedule_solution1(parsed->problem).value();
  EXPECT_DOUBLE_EQ(schedule.makespan(), 9.4);
}

TEST(ProblemFormat, RoundTrip) {
  const workload::OwnedProblem original = workload::paper_example2();
  const std::string text = io::write_problem(original.problem);
  const auto reparsed = io::read_problem(text);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;

  EXPECT_EQ(reparsed->algorithm->operation_count(),
            original.algorithm->operation_count());
  EXPECT_EQ(reparsed->algorithm->dependency_count(),
            original.algorithm->dependency_count());
  EXPECT_EQ(reparsed->architecture->processor_count(),
            original.architecture->processor_count());
  EXPECT_EQ(reparsed->architecture->link_count(),
            original.architecture->link_count());
  EXPECT_EQ(reparsed->problem.failures_to_tolerate,
            original.problem.failures_to_tolerate);
  // Same schedule from both.
  EXPECT_DOUBLE_EQ(schedule_solution2(reparsed->problem)->makespan(),
                   schedule_solution2(original.problem)->makespan());
}

TEST(ProblemFormat, RoundTripPreservesDeadline) {
  workload::OwnedProblem ex = workload::paper_example1();
  ex.problem.deadline = 12.5;
  const auto reparsed = io::read_problem(io::write_problem(ex.problem));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_DOUBLE_EQ(reparsed->problem.deadline, 12.5);
}

TEST(ProblemFormat, ReportsErrorsWithLineNumbers) {
  const auto unknown_op = io::read_problem(
      "algorithm\n  operation A\n  dependency A Z\n");
  ASSERT_FALSE(unknown_op.has_value());
  EXPECT_NE(unknown_op.error().message.find("line 3"), std::string::npos);
  EXPECT_NE(unknown_op.error().message.find("unknown operation Z"),
            std::string::npos);

  const auto bad_kind =
      io::read_problem("algorithm\n  operation A gizmo\n");
  ASSERT_FALSE(bad_kind.has_value());
  EXPECT_NE(bad_kind.error().message.find("unknown kind"),
            std::string::npos);

  const auto bad_duration = io::read_problem(
      "algorithm\n  operation A\narchitecture\n  processor P1\n"
      "  processor P2\n  bus b P1 P2\nexec\n  A P1 fast\n");
  ASSERT_FALSE(bad_duration.has_value());
  EXPECT_NE(bad_duration.error().message.find("bad duration"),
            std::string::npos);

  const auto orphan = io::read_problem("  operation A\n");
  ASSERT_FALSE(orphan.has_value());
  EXPECT_NE(orphan.error().message.find("outside any section"),
            std::string::npos);

  const auto premature = io::read_problem("exec\n");
  ASSERT_FALSE(premature.has_value());

  const auto negative_k = io::read_problem("problem\n  tolerate -1\n");
  ASSERT_FALSE(negative_k.has_value());
}

TEST(ProblemFormat, ShippedExampleFileMatchesBuiltin) {
  // data/example1.ft is the file users start from; it must stay in sync
  // with the built-in paper example (same Figure-17 schedule).
  std::ifstream file(FTSCHED_SOURCE_DIR "/data/example1.ft");
  ASSERT_TRUE(file.good()) << "data/example1.ft missing";
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto parsed = io::read_problem(buffer.str());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_TRUE(parsed->problem.check().empty());
  EXPECT_DOUBLE_EQ(schedule_solution1(parsed->problem)->makespan(), 9.4);
}

TEST(ProblemFormat, CommentsAndBlankLinesIgnored) {
  const auto parsed = io::read_problem(
      "# header\n\nalgorithm\n  operation A  # trailing comment\n");
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->algorithm->operation_count(), 1u);
}

TEST(ProblemFormat, InfDurationRejectedByCommAcceptedByExec) {
  // exec accepts 'inf' ("not allowed here"); comm requires finite values.
  const char* base =
      "algorithm\n  operation A\n  operation B\n  dependency A B\n"
      "architecture\n  processor P1\n  processor P2\n  bus b P1 P2\n";
  const auto exec_inf =
      io::read_problem(std::string(base) + "exec\n  A P1 inf\n");
  EXPECT_TRUE(exec_inf.has_value());
  const auto comm_inf =
      io::read_problem(std::string(base) + "comm\n  A->B * inf\n");
  EXPECT_FALSE(comm_inf.has_value());
}

}  // namespace
}  // namespace ftsched
