// The scenario reproducer format: write/read round trips, hand-written
// input parses, and malformed input fails with a line-numbered error.
#include <gtest/gtest.h>

#include <string>

#include "campaign/scenario_gen.hpp"
#include "io/scenario_format.hpp"
#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched::io {
namespace {

const ArchitectureGraph& example1_arch() {
  static const workload::OwnedProblem ex = workload::paper_example1();
  return *ex.problem.architecture;
}

MissionPlan full_plan() {
  MissionPlan plan;
  plan.iterations = 3;
  plan.dead_at_start.push_back(ProcessorId(1));
  plan.failures.push_back(
      MissionFailure{1, FailureEvent{ProcessorId(2), 4.25}});
  plan.silences.push_back(
      MissionSilence{0, SilentWindow{ProcessorId(0), 2.0, 4.5}});
  plan.link_failures.push_back(
      MissionLinkFailure{2, LinkFailureEvent{LinkId(0), 3.0}});
  plan.dead_links_at_start.push_back(LinkId(0));
  plan.suspected_at_start.push_back(ProcessorId(0));
  return plan;
}

TEST(ScenarioFormat, RoundTripsEveryEventClass) {
  const ArchitectureGraph& arch = example1_arch();
  const MissionPlan plan = full_plan();
  const std::string text = write_scenario(plan, arch);
  const Expected<MissionPlan> parsed = read_scenario(text, arch);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->iterations, 3);
  ASSERT_EQ(parsed->dead_at_start.size(), 1u);
  EXPECT_EQ(parsed->dead_at_start[0], ProcessorId(1));
  ASSERT_EQ(parsed->failures.size(), 1u);
  EXPECT_EQ(parsed->failures[0].iteration, 1);
  EXPECT_EQ(parsed->failures[0].event.processor, ProcessorId(2));
  EXPECT_DOUBLE_EQ(parsed->failures[0].event.time, 4.25);
  ASSERT_EQ(parsed->silences.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->silences[0].window.from, 2.0);
  EXPECT_DOUBLE_EQ(parsed->silences[0].window.to, 4.5);
  ASSERT_EQ(parsed->link_failures.size(), 1u);
  EXPECT_EQ(parsed->link_failures[0].iteration, 2);
  ASSERT_EQ(parsed->dead_links_at_start.size(), 1u);
  EXPECT_EQ(parsed->dead_links_at_start[0], LinkId(0));
  ASSERT_EQ(parsed->suspected_at_start.size(), 1u);
  // Serialization is canonical: writing the parsed plan reproduces the
  // text bit-exactly.
  EXPECT_EQ(write_scenario(parsed.value(), arch), text);
}

TEST(ScenarioFormat, TimesRoundTripBitExactly) {
  const ArchitectureGraph& arch = example1_arch();
  MissionPlan plan;
  plan.iterations = 1;
  // An instant with no short decimal representation.
  const Time awkward = 1.0 / 3.0 + 1e-13;
  plan.failures.push_back(
      MissionFailure{0, FailureEvent{ProcessorId(0), awkward}});
  const Expected<MissionPlan> parsed =
      read_scenario(write_scenario(plan, arch), arch);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->failures[0].event.time, awkward);  // exact, not approx
}

TEST(ScenarioFormat, ParsesHandWrittenInput) {
  const std::string text =
      "# a comment\n"
      "scenario\n"
      "\n"
      "  iterations 2\n"
      "  dead P2\n"
      "  crash P3 4.25 @1\n"
      "  silent P1 2 4.5\n"
      "  suspected P1\n";
  const Expected<MissionPlan> parsed =
      read_scenario(text, example1_arch());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->iterations, 2);
  ASSERT_EQ(parsed->failures.size(), 1u);
  EXPECT_EQ(parsed->failures[0].iteration, 1);
  // '@N' omitted defaults to iteration 0.
  ASSERT_EQ(parsed->silences.size(), 1u);
  EXPECT_EQ(parsed->silences[0].iteration, 0);
}

TEST(ScenarioFormat, RejectsMalformedInput) {
  const ArchitectureGraph& arch = example1_arch();
  const auto expect_error = [&](const std::string& text) {
    const Expected<MissionPlan> parsed = read_scenario(text, arch);
    EXPECT_FALSE(parsed.has_value()) << text;
  };
  // Per-line errors carry the offending line number.
  const Expected<MissionPlan> bad = read_scenario("scenario\n  dead P9\n",
                                                  arch);
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos)
      << bad.error().message;
  expect_error("dead P1\n");                          // missing header
  expect_error("scenario\n  dead P9\n");              // unknown processor
  expect_error("scenario\n  crash P1\n");             // missing time
  expect_error("scenario\n  crash P1 x\n");           // malformed time
  expect_error("scenario\n  crash P1 -1\n");          // negative time
  expect_error("scenario\n  silent P1 5 2\n");        // from >= to
  expect_error("scenario\n  crash P1 1 @5\n");        // past iterations
  expect_error("scenario\n  iterations 0\n");         // no iterations
  expect_error("scenario\n  link-dead nosuch\n");     // unknown link
  expect_error("scenario\n  frobnicate P1\n");        // unknown directive
}

TEST(ScenarioFormat, PropertyRandomPlansOfEveryFaultClassRoundTrip) {
  // Property: for any plan the campaign generator can draw — the same
  // distribution whose shrunk counterexamples land in tests/ as
  // reproducers — parse(emit(plan)) is lossless and emit is a canonical
  // form (emit . parse . emit == emit). Times must survive bit-exactly:
  // generator instants are full-precision doubles with no short decimal
  // form, so this exercises the round-trip float encoding on every line
  // class, not just the hand-picked values above.
  static const workload::OwnedProblem ex = workload::paper_example1();
  const ArchitectureGraph& arch = *ex.problem.architecture;
  const Schedule schedule = schedule_solution1(ex.problem).value();

  campaign::CampaignSpec spec;
  spec.max_iterations = 4;
  spec.over_budget_fraction = 0.25;
  spec.silence_probability = 0.4;
  spec.suspect_probability = 0.4;
  spec.link_failure_probability = 0.4;
  const campaign::ScenarioGenerator gen(schedule, spec, 2026);

  std::size_t dead = 0, crashes = 0, silences = 0, link_dead = 0,
              link_crashes = 0, suspects = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    const MissionPlan plan = gen.scenario(i).plan;
    dead += plan.dead_at_start.size();
    crashes += plan.failures.size();
    silences += plan.silences.size();
    link_dead += plan.dead_links_at_start.size();
    link_crashes += plan.link_failures.size();
    suspects += plan.suspected_at_start.size();

    const std::string text = write_scenario(plan, arch);
    const Expected<MissionPlan> parsed = read_scenario(text, arch);
    ASSERT_TRUE(parsed.has_value())
        << "scenario " << i << ": " << parsed.error().message << "\n"
        << text;
    EXPECT_EQ(write_scenario(parsed.value(), arch), text) << "scenario " << i;

    // The canonical text already proves structural equality; the exact
    // (==, not near) time comparisons prove the encoding is bit-faithful.
    ASSERT_EQ(parsed->failures.size(), plan.failures.size());
    for (std::size_t f = 0; f < plan.failures.size(); ++f) {
      EXPECT_EQ(parsed->failures[f].event.time, plan.failures[f].event.time);
    }
    ASSERT_EQ(parsed->silences.size(), plan.silences.size());
    for (std::size_t s = 0; s < plan.silences.size(); ++s) {
      EXPECT_EQ(parsed->silences[s].window.from, plan.silences[s].window.from);
      EXPECT_EQ(parsed->silences[s].window.to, plan.silences[s].window.to);
    }
    ASSERT_EQ(parsed->link_failures.size(), plan.link_failures.size());
    for (std::size_t l = 0; l < plan.link_failures.size(); ++l) {
      EXPECT_EQ(parsed->link_failures[l].event.time,
                plan.link_failures[l].event.time);
    }
    EXPECT_EQ(parsed->dead_at_start, plan.dead_at_start);
    EXPECT_EQ(parsed->dead_links_at_start, plan.dead_links_at_start);
    EXPECT_EQ(parsed->suspected_at_start, plan.suspected_at_start);
  }
  // The corpus really covered all six fault classes.
  EXPECT_GT(dead, 0u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(silences, 0u);
  EXPECT_GT(link_dead, 0u);
  EXPECT_GT(link_crashes, 0u);
  EXPECT_GT(suspects, 0u);
}

TEST(ScenarioFormat, EmptyPlanRoundTrips) {
  const ArchitectureGraph& arch = example1_arch();
  MissionPlan plan;
  plan.iterations = 1;
  const Expected<MissionPlan> parsed =
      read_scenario(write_scenario(plan, arch), arch);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ(parsed->event_count(), 0u);
  EXPECT_EQ(parsed->iterations, 1);
}

}  // namespace
}  // namespace ftsched::io
