#include "io/schedule_export.hpp"

#include <gtest/gtest.h>

#include "sched/heuristics.hpp"
#include "workload/paper_examples.hpp"

namespace ftsched {
namespace {

TEST(ScheduleExport, JsonContainsEveryPlacement) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const std::string json = io::to_json(schedule);

  EXPECT_NE(json.find("\"makespan\": 9.4"), std::string::npos);
  EXPECT_NE(json.find("\"failures_tolerated\": 1"), std::string::npos);
  for (const Operation& op : ex.problem.algorithm->operations()) {
    EXPECT_NE(json.find("\"op\": \"" + op.name + "\""), std::string::npos);
  }
  EXPECT_NE(json.find("\"liveness\": false"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ScheduleExport, CsvRowsMatchScheduleContents) {
  const workload::OwnedProblem ex = workload::paper_example1();
  const Schedule schedule = schedule_solution1(ex.problem).value();
  const std::string csv = io::to_csv(schedule);

  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n';
  std::size_t segments = 0;
  for (const ScheduledComm& comm : schedule.comms()) {
    segments += comm.segments.size();
  }
  EXPECT_EQ(rows, 1 + schedule.operations().size() + segments);
  EXPECT_EQ(csv.rfind("kind,entity,rank,resource,start,end,extra", 0), 0u);
  EXPECT_NE(csv.find("op,I,0,P1,0,1,main"), std::string::npos);
}

}  // namespace
}  // namespace ftsched
