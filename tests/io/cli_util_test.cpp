// The hardened CLI operand parsers and artifact writer. Both tests pin
// real bugs: strtol/strtod report overflow ONLY through errno — the
// pre-fix parsers accepted "99999999999999999999" as a saturated
// LONG_MAX / HUGE_VAL — and ofstream reports disk-full or open failure
// only through the stream state the pre-fix writer never looked at.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "io/cli_util.hpp"

namespace ftsched::io {
namespace {

TEST(CliUtil, ParseNumberAcceptsPlainDecimals) {
  long out = -1;
  EXPECT_EQ(parse_number("0", out), ParseStatus::kOk);
  EXPECT_EQ(out, 0);
  EXPECT_EQ(parse_number("12345", out), ParseStatus::kOk);
  EXPECT_EQ(out, 12345);
}

TEST(CliUtil, ParseNumberRejectsMalformedOperands) {
  long out = 0;
  EXPECT_EQ(parse_number("", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_number("12abc", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_number("abc", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_number("-3", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_number("1 2", out), ParseStatus::kMalformed);
}

TEST(CliUtil, ParseNumberRejectsOverflowInsteadOfSaturating) {
  // strtol returns LONG_MAX here and only errno says anything went wrong;
  // the pre-fix parser accepted this operand as a "valid" huge budget.
  long out = 0;
  EXPECT_EQ(parse_number("99999999999999999999", out),
            ParseStatus::kOutOfRange);
  EXPECT_EQ(parse_number("-99999999999999999999", out),
            ParseStatus::kOutOfRange);
}

TEST(CliUtil, ParseFractionEnforcesTheUnitInterval) {
  double out = -1;
  EXPECT_EQ(parse_fraction("0", out), ParseStatus::kOk);
  EXPECT_EQ(out, 0.0);
  EXPECT_EQ(parse_fraction("0.25", out), ParseStatus::kOk);
  EXPECT_EQ(out, 0.25);
  EXPECT_EQ(parse_fraction("1", out), ParseStatus::kOk);
  EXPECT_EQ(parse_fraction("1.5", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_fraction("-0.5", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_fraction("half", out), ParseStatus::kMalformed);
  // 1e999 overflows to HUGE_VAL with errno = ERANGE: out of range, not
  // merely outside [0, 1].
  EXPECT_EQ(parse_fraction("1e999", out), ParseStatus::kOutOfRange);
}

TEST(CliUtil, ParseTimeRequiresAFinitePositiveValue) {
  double out = 0;
  EXPECT_EQ(parse_time("2.5", out), ParseStatus::kOk);
  EXPECT_EQ(out, 2.5);
  EXPECT_EQ(parse_time("0", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_time("-1", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_time("soon", out), ParseStatus::kMalformed);
  EXPECT_EQ(parse_time("1e999", out), ParseStatus::kOutOfRange);
}

TEST(CliUtil, ParseShardValidatesTheAssignment) {
  std::size_t index = 99, count = 99;
  EXPECT_EQ(parse_shard("0/1", index, count), ParseStatus::kOk);
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(parse_shard("3/8", index, count), ParseStatus::kOk);
  EXPECT_EQ(index, 3u);
  EXPECT_EQ(count, 8u);
  EXPECT_EQ(parse_shard("8/8", index, count), ParseStatus::kMalformed);
  EXPECT_EQ(parse_shard("-1/8", index, count), ParseStatus::kMalformed);
  EXPECT_EQ(parse_shard("3", index, count), ParseStatus::kMalformed);
  EXPECT_EQ(parse_shard("3/", index, count), ParseStatus::kMalformed);
  EXPECT_EQ(parse_shard("a/b", index, count), ParseStatus::kMalformed);
  EXPECT_EQ(parse_shard("3/8x", index, count), ParseStatus::kMalformed);
  EXPECT_EQ(parse_shard("99999999999999999999/8", index, count),
            ParseStatus::kOutOfRange);
  EXPECT_EQ(parse_shard("1/99999999999999999999", index, count),
            ParseStatus::kOutOfRange);
}

TEST(CliUtil, WriteFileRoundTripsContent) {
  const std::string path = ::testing::TempDir() + "cli_util_roundtrip.txt";
  ASSERT_TRUE(write_file(path, "frontier\n"));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "frontier");
  std::remove(path.c_str());
}

TEST(CliUtil, WriteFileReportsAnUnopenablePath) {
  // A path under a directory that does not exist cannot be opened; the
  // pre-fix writer returned true here and the caller shipped no artifact.
  EXPECT_FALSE(write_file("/nonexistent-ftsched-dir/out.json", "x"));
}

TEST(CliUtil, WriteFileReportsStreamFailureAfterTheWrite) {
  // /dev/full accepts the open but fails the flush with ENOSPC — the
  // exact disk-full shape the stream-state check exists for. Only
  // meaningful where the device exists (Linux CI).
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  probe.close();
  EXPECT_FALSE(write_file("/dev/full", "does not fit\n"));
}

}  // namespace
}  // namespace ftsched::io
